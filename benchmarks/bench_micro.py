"""Micro-benchmarks of the hot paths.

Not tied to a specific table/figure — these are the throughput numbers a
downstream user of the library cares about, and the regression guard for
the vectorized kernels: primitive intersection, 3-D DDA marking, voxel
pixel-list updates, full-frame tracing and one coherent step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import UniformGrid, traverse
from repro.coherence import CoherentRenderer, VoxelPixelMap
from repro.geometry import Cylinder, Sphere, TriangleMesh
from repro.render import RayTracer
from repro.rmath import AABB, normalize, vec3
from repro.scenes import newton_animation, newton_scene

N_RAYS = 20_000
RNG = np.random.default_rng(7)


@pytest.fixture(scope="module")
def ray_batch():
    origins = RNG.uniform(-5, 5, (N_RAYS, 3))
    origins[:, 2] = -10.0
    dirs = normalize(RNG.uniform(-0.3, 0.3, (N_RAYS, 3)) + [0, 0, 1.0])
    return origins, dirs


def test_sphere_intersection_throughput(benchmark, ray_batch):
    origins, dirs = ray_batch
    s = Sphere.at((0, 0, 0), 2.0)
    t, _ = benchmark(s.intersect, origins, dirs)
    assert np.isfinite(t).any()


def test_cylinder_intersection_throughput(benchmark, ray_batch):
    origins, dirs = ray_batch
    c = Cylinder.from_endpoints((0, -2, 0), (0, 2, 0), 1.5)
    t, _ = benchmark(c.intersect, origins, dirs)
    assert np.isfinite(t).any()


def test_mesh_intersection_throughput(benchmark, ray_batch):
    origins, dirs = ray_batch
    # An icosahedron-ish fan of 20 triangles.
    ring = np.array(
        [[np.cos(a), np.sin(a), 0.0] for a in np.linspace(0, 2 * np.pi, 21)[:-1]]
    )
    vertices = np.vstack([[0, 0, 1.0], [0, 0, -1.0], ring * 2.0])
    faces = np.array([[0, 2 + i, 2 + (i + 1) % 20] for i in range(20)])
    m = TriangleMesh(vertices, faces)
    t, _ = benchmark(m.intersect, origins, dirs)
    assert np.isfinite(t).any()


def test_dda_traversal_throughput(benchmark, ray_batch):
    origins, dirs = ray_batch
    grid = UniformGrid(AABB(vec3(-6, -6, -6), vec3(6, 6, 6)), 32)
    ray_idx, vox = benchmark(traverse, grid, origins, dirs)
    assert ray_idx.size > N_RAYS  # multiple voxels per ray


def test_voxel_pixel_map_update(benchmark):
    m = VoxelPixelMap(32**3, 320 * 240)
    vox = RNG.integers(0, 32**3, 200_000)
    pix = RNG.integers(0, 320 * 240, 200_000)
    m.add_marks(vox, pix)
    dirty = RNG.integers(0, 320 * 240, 2000)
    new_vox = RNG.integers(0, 32**3, 50_000)
    new_pix = RNG.choice(dirty, 50_000)

    def update():
        mm = m.copy()
        mm.replace_pixel_marks(dirty, new_vox, new_pix)
        return mm

    mm = benchmark(update)
    assert mm.n_entries > 0


def test_full_frame_render(benchmark):
    scene = newton_scene(width=160, height=120)
    tracer = RayTracer(scene)
    fb, res = benchmark.pedantic(tracer.render, rounds=2, iterations=1)
    assert res.stats.total > 0


def test_coherent_step(benchmark):
    """One incremental frame after warm-up — the steady-state FC cost."""
    anim = newton_animation(n_frames=45, width=160, height=120)
    renderer = CoherentRenderer(anim, grid_resolution=32)
    renderer.render_next()  # full first frame (not measured)

    def step():
        if renderer.frames_remaining == 0:
            pytest.skip("animation exhausted")
        return renderer.render_next()

    report = benchmark.pedantic(step, rounds=5, iterations=1)
    assert report.n_computed < anim.camera_at(0).n_pixels
