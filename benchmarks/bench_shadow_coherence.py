"""Ablation — the shadow-coherence extension (the paper's future work).

"Our future research goals include ... development of frame coherence
algorithms with shadow generation."  The extension reuses cached
primary-hit shadow attenuations for pixels that are dirty only through
secondary (reflection/refraction) paths; see
``repro.coherence.shadow_coherence``.

This bench runs the base and extended engines over the Newton sequence and
reports shadow rays fired, total rays and the exactness guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.coherence import CoherentRenderer, ShadowCoherentRenderer
from repro.render import RayTracer
from repro.scenes import newton_animation

from _bench_utils import write_result

N_FRAMES, W, H = 12, 128, 96


def _run():
    anim = newton_animation(n_frames=N_FRAMES, width=W, height=H)
    base = CoherentRenderer(anim, grid_resolution=32)
    ext = ShadowCoherentRenderer(anim, grid_resolution=32)
    base_shadow = ext_shadow = base_total = ext_total = 0
    exact = True
    for f in range(N_FRAMES):
        brep = base.render_next()
        erep = ext.render_next()
        base_shadow += brep.stats.shadow
        ext_shadow += erep.stats.shadow
        base_total += brep.stats.total
        ext_total += erep.stats.total
        if f in (0, N_FRAMES // 2, N_FRAMES - 1):
            full, _ = RayTracer(anim.scene_at(f)).render()
            exact &= bool(np.array_equal(ext.frame_image(), full.as_image()))
    return base_shadow, ext_shadow, base_total, ext_total, ext.total_shadow_rays_saved, exact


def test_shadow_coherence_extension(benchmark, results_dir):
    base_shadow, ext_shadow, base_total, ext_total, saved, exact = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    lines = [
        f"Shadow coherence extension — Newton, {N_FRAMES} frames, {W}x{H}:",
        "",
        f"  shadow rays, base engine     : {base_shadow:,}",
        f"  shadow rays, extension       : {ext_shadow:,}",
        f"  shadow rays saved            : {saved:,} "
        f"({saved / base_shadow:.1%} of base shadow rays)",
        f"  total rays, base -> extension: {base_total:,} -> {ext_total:,}",
        f"  images bit-identical to full : {exact}",
    ]
    write_result(results_dir, "ablation_shadow_coherence.txt", "\n".join(lines))

    assert exact
    assert ext_shadow < base_shadow
    assert base_shadow - ext_shadow == saved
    assert saved > 0.03 * base_shadow  # a real effect, not noise
