"""Figure 2 — actual vs. frame-coherence-predicted pixel differences.

The paper renders two consecutive frames of the glass-ball/brick-room
animation and shows (a) the pixels that actually changed and (b) the pixels
the coherence algorithm marks for recomputation.  (b) must cover (a) — the
algorithm is conservative, the images exact — while staying far below the
full frame.

This bench regenerates both masks, writes them as PGM-style PPM images
(``fig2a_actual.ppm`` / ``fig2b_predicted.ppm``) plus a coverage report,
and validates conservativeness over a 20-frame run.
"""

from __future__ import annotations

import numpy as np

from repro.coherence import CoherentRenderer
from repro.imageio import difference_mask_image, mask_stats, pixel_set_image, write_ppm
from repro.render import RayTracer

from _bench_utils import write_result

W, H = 160, 120


def _figure2(brick_spec):
    anim = brick_spec.build()
    full0, _ = RayTracer(anim.scene_at(0)).render()
    full1, _ = RayTracer(anim.scene_at(1)).render()
    actual = difference_mask_image(full0.as_image(), full1.as_image())

    renderer = CoherentRenderer(anim, grid_resolution=32)
    renderer.render_next()
    report = renderer.render_next()
    predicted = pixel_set_image(report.computed_pixels, W, H)
    return actual, predicted


def test_figure2_masks(benchmark, brick_spec, results_dir):
    actual, predicted = benchmark.pedantic(_figure2, args=(brick_spec,), rounds=1, iterations=1)
    stats = mask_stats(actual, predicted)

    write_ppm(results_dir / "fig2a_actual.ppm", np.repeat(actual[:, :, None], 3, axis=2))
    write_ppm(results_dir / "fig2b_predicted.ppm", np.repeat(predicted[:, :, None], 3, axis=2))
    lines = [
        "Figure 2 — changed-pixel masks, brick-room frames 1 -> 2",
        f"frame: {W}x{H} = {W * H} pixels",
        f"(a) actually changed : {stats['actual']:6d} pixels",
        f"(b) FC predicted     : {stats['predicted']:6d} pixels",
        f"missed (must be 0)   : {stats['missed']:6d}",
        f"overprediction ratio : {stats['overprediction']:.2f}x",
        f"fraction of frame    : {stats['fraction_of_frame'] * 100:.1f}%",
    ]
    write_result(results_dir, "fig2_coherence.txt", "\n".join(lines))

    assert stats["missed"] == 0  # conservative, like the paper's exact images
    assert stats["actual"] > 0  # the ball moved
    assert stats["predicted"] < 0.6 * W * H  # most pixels are copied forward


def test_figure2_conservative_over_sequence(benchmark, brick_spec):
    """Every frame of a 20-frame run: predicted superset of actual diff."""

    def run():
        anim = brick_spec.build()
        renderer = CoherentRenderer(anim, grid_resolution=32)
        renderer.render_next()
        prev_img = None
        worst = 0
        for f in range(anim.n_frames):
            if f > 0:
                report = renderer.render_next()
            full, _ = RayTracer(anim.scene_at(f)).render()
            img = full.as_image()
            if prev_img is not None:
                mask = difference_mask_image(prev_img, img)
                actual_ids = np.flatnonzero(mask.ravel())
                missed = np.setdiff1d(actual_ids, report.computed_pixels)
                worst = max(worst, missed.size)
            prev_img = img
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    assert worst == 0
