"""Ablation — the hybrid decomposition (subarea x subsequence).

The paper: "many other decomposition schemes exist, such as a hybrid of
the two methods proposed above (i.e., each processor computes pixels in a
subarea of a frame for a subsequence of the entire animation)".

This bench sweeps the hybrid's chunk length between the two extremes it
interpolates: chunk = n_frames reduces to pure frame division (one chain
per block), chunk = 1 reduces to fully incoherent block tasks.  Shorter
chunks buy scheduling freedom and lower per-node memory residency at the
price of chain-restart rays.
"""

from __future__ import annotations

from repro.cluster import ThrashModel, ncsu_testbed
from repro.parallel import (
    RenderFarmConfig,
    simulate_frame_division_fc,
    simulate_hybrid_fc,
    simulate_sequence_division_fc,
)

from _bench_utils import write_result

SPU = 5e-4
THRASH = ThrashModel(alpha=0.0)


def _run(oracle):
    machines = ncsu_testbed()
    cfg = RenderFarmConfig(pixel_scale=(320 * 240) / oracle.n_pixels)
    rows = [
        (
            "sequence division",
            simulate_sequence_division_fc(
                oracle, machines, cfg, sec_per_work_unit=SPU, thrash=THRASH
            ),
        ),
        (
            "frame division",
            simulate_frame_division_fc(
                oracle, machines, cfg, sec_per_work_unit=SPU, thrash=THRASH
            ),
        ),
    ]
    for chunk in (45, 15, 5, 1):
        rows.append(
            (
                f"hybrid, chunk={chunk}",
                simulate_hybrid_fc(
                    oracle,
                    machines,
                    cfg,
                    frames_per_chunk=chunk,
                    sec_per_work_unit=SPU,
                    thrash=THRASH,
                ),
            )
        )
    return rows


def test_hybrid_sweep(benchmark, newton_oracle, results_dir):
    rows = benchmark.pedantic(_run, args=(newton_oracle,), rounds=1, iterations=1)
    lines = [
        "Hybrid decomposition sweep — NCSU testbed, Newton 45 frames:",
        "",
        f"{'scheme':22s} {'total(s)':>10s} {'rays':>10s} {'chains':>7s} {'imbalance':>10s}",
    ]
    by_name = {}
    for name, out in rows:
        by_name[name] = out
        lines.append(
            f"{name:22s} {out.total_time:>10.1f} {out.total_rays:>10,d} "
            f"{out.n_chain_starts:>7d} {out.load_imbalance:>10.3f}"
        )
    write_result(results_dir, "ablation_hybrid.txt", "\n".join(lines))

    # chunk = n_frames is frame division up to scheduling noise.
    full_chunk = by_name["hybrid, chunk=45"]
    frame_div = by_name["frame division"]
    assert full_chunk.total_rays == frame_div.total_rays
    # Shorter chunks monotonically cost more rays (more chain starts)...
    assert (
        by_name["hybrid, chunk=1"].total_rays
        > by_name["hybrid, chunk=5"].total_rays
        > by_name["hybrid, chunk=15"].total_rays
        >= by_name["hybrid, chunk=45"].total_rays
    )
    # ...and chunk=1 (no intra-task coherence at all) is clearly slower.
    assert by_name["hybrid, chunk=1"].total_time > 1.3 * frame_div.total_time