"""Ablation — fault-tolerant rendering under machine failures.

Beyond the paper: the NOW's machines are desktops that crash and reboot.
This bench injects failures at various points of the Table-1 frame-division
run and measures the recovery cost (re-executed rays, extra wall clock)
against the failure-free fault-tolerant run and the non-fault-tolerant
baseline.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ThrashModel, ncsu_testbed
from repro.parallel import (
    RenderFarmConfig,
    simulate_frame_division_fc,
    simulate_frame_division_fc_fault_tolerant,
    simulate_sequence_division_fc_fault_tolerant,
)
from repro.runtime import AnimationSpec, FaultPlan, LocalRenderFarm

from _bench_utils import write_result

SPU = 5e-4
THRASH = ThrashModel(alpha=0.0)


def _run(oracle):
    machines = ncsu_testbed()
    cfg = RenderFarmConfig(pixel_scale=(320 * 240) / oracle.n_pixels)
    base = simulate_frame_division_fc(
        oracle, machines, cfg, sec_per_work_unit=SPU, thrash=THRASH
    )
    clean = simulate_frame_division_fc_fault_tolerant(
        oracle, machines, cfg, sec_per_work_unit=SPU, thrash=THRASH
    )
    rows = [("baseline (no FT)", base), ("FT, no failure", clean)]
    for label, frac in [("early", 0.1), ("midway", 0.5), ("late", 0.9)]:
        out = simulate_frame_division_fc_fault_tolerant(
            oracle,
            machines,
            cfg,
            sec_per_work_unit=SPU,
            thrash=THRASH,
            failures=[("indigo2-100", clean.total_time * frac)],
        )
        rows.append((f"FT, slave dies {label}", out))
    both = simulate_frame_division_fc_fault_tolerant(
        oracle,
        machines,
        cfg,
        sec_per_work_unit=SPU,
        thrash=THRASH,
        failures=[
            ("indigo2-100", clean.total_time * 0.3),
            ("indigo-100", clean.total_time * 0.6),
        ],
    )
    rows.append(("FT, both slaves die", both))
    return rows


def test_fault_tolerance_recovery_cost(benchmark, newton_oracle, results_dir):
    rows = benchmark.pedantic(_run, args=(newton_oracle,), rounds=1, iterations=1)
    by_name = dict(rows)
    clean = by_name["FT, no failure"]
    lines = [
        "Fault tolerance — frame division + FC on the NCSU testbed:",
        "",
        f"{'scenario':24s} {'total(s)':>10s} {'vs clean':>9s} {'rays':>10s} {'frames':>7s} {'events':>7s}",
    ]
    for name, out in rows:
        lines.append(
            f"{name:24s} {out.total_time:>10.1f} {out.total_time / clean.total_time:>8.2f}x "
            f"{out.total_rays:>10,d} {len(out.frame_completion_times):>7d} {out.n_steals:>7d}"
        )
    write_result(results_dir, "ablation_fault_tolerance.txt", "\n".join(lines))

    # Every scenario completes all 45 frames.
    for name, out in rows:
        assert len(out.frame_completion_times) == newton_oracle.n_frames, name
    # FT overhead without failures is modest.
    base = by_name["baseline (no FT)"]
    assert clean.total_time < 1.5 * base.total_time
    # A failure costs time; ray totals stay above the single-chain floor
    # (restart patterns differ run to run, so only the floor is invariant)
    # and within sanity of the clean run.
    floor = newton_oracle.total_coherent_rays()
    for scenario in ("FT, slave dies early", "FT, slave dies midway", "FT, slave dies late"):
        out = by_name[scenario]
        assert out.total_rays >= floor
        assert out.total_time > clean.total_time
        assert out.total_time < 4.0 * clean.total_time
    # Losing both slaves is survivable (single surviving machine).
    assert by_name["FT, both slaves die"].total_time > clean.total_time


def test_fault_tolerance_sequence_division(benchmark, newton_oracle, results_dir):
    """Same failure sweep for the paper's other scheme: each machine owns a
    contiguous frame range, so losing one orphans whole frames and the
    replacement chain restarts from scratch (no frame coherence to reuse)."""

    def _run(oracle):
        machines = ncsu_testbed()
        cfg = RenderFarmConfig(pixel_scale=(320 * 240) / oracle.n_pixels)
        clean = simulate_sequence_division_fc_fault_tolerant(
            oracle, machines, cfg, sec_per_work_unit=SPU, thrash=THRASH
        )
        rows = [("FT, no failure", clean)]
        for label, frac in [("early", 0.1), ("midway", 0.5)]:
            out = simulate_sequence_division_fc_fault_tolerant(
                oracle,
                machines,
                cfg,
                sec_per_work_unit=SPU,
                thrash=THRASH,
                failures=[("indigo2-100", clean.total_time * frac)],
            )
            rows.append((f"FT, slave dies {label}", out))
        return rows

    rows = benchmark.pedantic(_run, args=(newton_oracle,), rounds=1, iterations=1)
    by_name = dict(rows)
    clean = by_name["FT, no failure"]
    lines = [
        "Fault tolerance — sequence division + FC on the NCSU testbed:",
        "",
        f"{'scenario':24s} {'total(s)':>10s} {'vs clean':>9s} {'rays':>10s} {'frames':>7s}",
    ]
    for name, out in rows:
        lines.append(
            f"{name:24s} {out.total_time:>10.1f} {out.total_time / clean.total_time:>8.2f}x "
            f"{out.total_rays:>10,d} {len(out.frame_completion_times):>7d}"
        )
    write_result(results_dir, "ablation_fault_tolerance_seq.txt", "\n".join(lines))

    for name, out in rows:
        assert len(out.frame_completion_times) == newton_oracle.n_frames, name
    for scenario in ("FT, slave dies early", "FT, slave dies midway"):
        assert by_name[scenario].total_rays >= clean.total_rays


def test_real_farm_fault_injection_overhead(benchmark, results_dir):
    """The supervised *real* farm under injected faults: a crash, a hang and
    a corrupted block must cost retries, not correctness."""
    spec = AnimationSpec.newton(n_frames=3, width=64, height=48)

    def _run():
        reference = LocalRenderFarm(
            spec, mode="frame", executor="serial", grid_resolution=16
        ).render_reference()
        clean = LocalRenderFarm(
            spec, n_workers=4, mode="frame", executor="process", grid_resolution=16
        ).render()
        plan = FaultPlan(
            (
                FaultPlan.crash(1),
                FaultPlan.hang(3, hang_seconds=30.0),
                FaultPlan.corrupting(7),
            )
        )
        faulty = LocalRenderFarm(
            spec,
            n_workers=4,
            mode="frame",
            executor="process",
            grid_resolution=16,
            fault_plan=plan,
            task_timeout=5.0,
        ).render()
        return reference, clean, faulty

    reference, clean, faulty = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        "Real farm — supervised recovery under injected faults (newton 3x64x48):",
        "",
        f"{'run':16s} {'identical':>10s} {'retries':>8s} {'timeouts':>9s} {'crashes':>8s} {'invalid':>8s}",
        f"{'clean':16s} {str(np.array_equal(clean.frames, reference.frames)):>10s} "
        f"{clean.n_retries:>8d} {clean.n_timeouts:>9d} {clean.n_crashes:>8d} {clean.n_invalid:>8d}",
        f"{'crash+hang+nan':16s} {str(np.array_equal(faulty.frames, reference.frames)):>10s} "
        f"{faulty.n_retries:>8d} {faulty.n_timeouts:>9d} {faulty.n_crashes:>8d} {faulty.n_invalid:>8d}",
    ]
    write_result(results_dir, "real_farm_fault_injection.txt", "\n".join(lines))

    assert np.array_equal(clean.frames, reference.frames)
    assert np.array_equal(faulty.frames, reference.frames)
    assert faulty.n_retries > 0
