"""Helpers shared by the benchmark files."""

from __future__ import annotations

from pathlib import Path

__all__ = ["write_result"]


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated table/figure; EXPERIMENTS.md points at these."""
    path = results_dir / name
    path.write_text(text)
    print(f"\n[{name}]\n{text}")
