"""Figure 4 — sequence division vs. frame division layouts.

The paper's Figure 4 diagrams the two decompositions for four processors:
(a) each processor gets a run of whole frames; (b) each processor gets a
quadrant of every frame.  This bench regenerates both layouts (as text),
then actually *runs* both schemes in the cluster simulator on a 4-node
homogeneous cluster and reports the resulting load balance — the property
the figure is about.
"""

from __future__ import annotations

from repro.cluster import ThrashModel, homogeneous_cluster
from repro.parallel import (
    RenderFarmConfig,
    block_regions,
    region_grid_shape,
    sequence_ranges,
    simulate_frame_division_fc,
    simulate_sequence_division_fc,
)

from _bench_utils import write_result

N_PROC = 4


def _layout_text(oracle) -> str:
    lines = ["Figure 4(a) — sequence division, 4 processors:"]
    for i, (a, b) in enumerate(sequence_ranges(oracle.n_frames, N_PROC)):
        bar = "#" * (b - a)
        lines.append(f"  P{i + 1}: frames [{a:2d}, {b:2d})  {bar}")
    lines.append("")
    lines.append("Figure 4(b) — frame division, 4 processors (one quadrant each, all frames):")
    blocks = block_regions(oracle.width, oracle.height, oracle.width // 2, oracle.height // 2)
    cols, rows = region_grid_shape(blocks)
    assert (cols, rows) == (2, 2)
    for i, r in enumerate(blocks):
        lines.append(f"  P{i + 1}: pixels [{r.x0}:{r.x1}) x [{r.y0}:{r.y1})  ({r.n_pixels} px/frame)")
    return "\n".join(lines)


def test_figure4_layouts_and_balance(benchmark, newton_oracle, results_dir):
    machines = homogeneous_cluster(N_PROC, speed=1.0, memory_mb=128.0)
    cfg = RenderFarmConfig(pixel_scale=(320 * 240) / newton_oracle.n_pixels)
    thrash = ThrashModel(alpha=0.0)
    quadrants = block_regions(
        newton_oracle.width, newton_oracle.height, newton_oracle.width // 2, newton_oracle.height // 2
    )

    def run_both():
        seq = simulate_sequence_division_fc(
            newton_oracle, machines, cfg, sec_per_work_unit=1e-4, thrash=thrash, trace=True
        )
        frame = simulate_frame_division_fc(
            newton_oracle,
            machines,
            cfg,
            regions=quadrants,
            sec_per_work_unit=1e-4,
            thrash=thrash,
            trace=True,
        )
        return seq, frame

    seq, frame = benchmark.pedantic(run_both, rounds=1, iterations=1)

    text = _layout_text(newton_oracle) + "\n\n" + "\n".join(
        [
            "Simulated on 4 identical workstations:",
            f"  sequence division: total={seq.total_time:8.1f}s  imbalance={seq.load_imbalance:.3f}  "
            f"rays={seq.total_rays}  steals={seq.n_steals}",
            f"  frame division   : total={frame.total_time:8.1f}s  imbalance={frame.load_imbalance:.3f}  "
            f"rays={frame.total_rays}  steals={frame.n_steals}",
            "",
            "sequence-division timeline:",
            seq.timeline or "",
            "",
            "frame-division timeline:",
            frame.timeline or "",
        ]
    )
    write_result(results_dir, "fig4_partitioning.txt", text)

    # Both schemes keep all four processors busy within ~35%.
    assert seq.load_imbalance < 1.35
    assert frame.load_imbalance < 1.35
    # Layout sanity: sequence ranges tile the animation.
    ranges = sequence_ranges(newton_oracle.n_frames, N_PROC)
    assert ranges[0][0] == 0 and ranges[-1][1] == newton_oracle.n_frames
