"""Ablation — block-size sweep for frame division.

The paper: "Reducing the size of the subarea in frame subdivision can
result in better load balancing ... At the extreme, we could assign each
processor a single pixel to compute for the entire sequence; however, the
overhead of message passing, as well as other bookkeeping tasks, would
result in inefficiency and longer execution time."

This bench sweeps block sizes from one-block-per-worker down to 4x4 pixels
(plus a true per-pixel run on a miniature oracle) and regenerates exactly
that U-shaped curve: total time improves as blocks shrink (load balance),
then degrades as message passing dominates.
"""

from __future__ import annotations


from repro.bench import cached_oracle
from repro.cluster import ThrashModel, ncsu_testbed
from repro.parallel import (
    RenderFarmConfig,
    block_regions,
    pixel_regions,
    simulate_frame_division_fc,
)
from repro.runtime import AnimationSpec

from _bench_utils import write_result

SPU = 5e-4
THRASH = ThrashModel(alpha=0.0)


def _run_sweep(oracle):
    machines = ncsu_testbed()
    cfg = RenderFarmConfig(pixel_scale=(320 * 240) / oracle.n_pixels)
    w, h = oracle.width, oracle.height
    sweep = []
    for label, bw, bh in [
        ("whole frame (1 block)", w, h),
        ("half frame", w // 2, h),
        ("quadrant", w // 2, h // 2),
        ("paper 4x3 grid", w // 4, h // 3),
        ("fine 8x6 grid", w // 8, h // 6),
        ("very fine 16x12 grid", w // 16, h // 12),
        ("tiny 4x4 px blocks", 4, 4),
    ]:
        regions = block_regions(w, h, bw, bh)
        out = simulate_frame_division_fc(
            oracle, machines, cfg, regions=regions, sec_per_work_unit=SPU, thrash=THRASH
        )
        sweep.append((label, len(regions), out))
    return sweep


def test_block_size_sweep(benchmark, newton_oracle, results_dir):
    sweep = benchmark.pedantic(_run_sweep, args=(newton_oracle,), rounds=1, iterations=1)
    lines = ["Block-size sweep — frame division + FC on the NCSU testbed:", ""]
    lines.append(f"{'blocks':>8s} {'layout':28s} {'total(s)':>10s} {'imbalance':>10s} {'msgs':>8s} {'eth(s)':>8s}")
    for label, n, out in sweep:
        lines.append(
            f"{n:>8d} {label:28s} {out.total_time:>10.1f} {out.load_imbalance:>10.3f} "
            f"{out.n_messages:>8d} {out.ethernet_busy_seconds:>8.1f}"
        )
    write_result(results_dir, "ablation_block_size.txt", "\n".join(lines))

    times = {label: out.total_time for label, _, out in sweep}
    # Moderate subdivision beats one-block-per-machine (load balancing)...
    assert times["paper 4x3 grid"] < times["whole frame (1 block)"]
    # ...and the extreme is worse than the paper's sweet spot (messaging
    # and per-block bookkeeping overhead).
    assert times["tiny 4x4 px blocks"] > times["paper 4x3 grid"]


def test_pixel_division_extreme(benchmark, results_dir):
    """True per-pixel assignment on a miniature workload: the message count
    explodes and wall-clock loses to the paper's 80x80-equivalent blocks."""
    spec = AnimationSpec.newton(n_frames=6, width=32, height=24)
    oracle = cached_oracle(spec, grid_resolution=16)
    machines = ncsu_testbed()
    cfg = RenderFarmConfig(pixel_scale=(320 * 240) / oracle.n_pixels)

    def run():
        per_pixel = simulate_frame_division_fc(
            oracle,
            machines,
            cfg,
            regions=pixel_regions(oracle.width, oracle.height),
            sec_per_work_unit=SPU,
            thrash=THRASH,
        )
        blocks = simulate_frame_division_fc(
            oracle,
            machines,
            cfg,
            sec_per_work_unit=SPU,
            thrash=THRASH,
        )
        return per_pixel, blocks

    per_pixel, blocks = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        results_dir,
        "ablation_pixel_division.txt",
        "Per-pixel division (32x24, 6 frames) vs paper-style blocks:\n"
        f"  per-pixel: total={per_pixel.total_time:10.1f}s  messages={per_pixel.n_messages}\n"
        f"  blocks   : total={blocks.total_time:10.1f}s  messages={blocks.n_messages}\n",
    )
    assert per_pixel.n_messages > 50 * blocks.n_messages
    assert per_pixel.total_time > blocks.total_time
