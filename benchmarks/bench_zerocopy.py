"""What the zero-copy data plane buys, measured at its three layers.

PR 8 rebuilt every pixel-moving hop on `repro.buffers`: the wire codec
hands out views instead of copies, the frame assembler slices a chunk
deque instead of growing a bytearray, and process workers ship
shared-memory `FrameRef` handles instead of pickled stacks.  The legacy
pipeline survives behind `protocol.set_zero_copy(False)` with every
bulk copy charged to `repro.buffers.copystats`, so this benchmark can
run the *same payloads* through both modes and gate honestly:

* **codec drill** — encode → chunked reassembly → decode of
  result-sized frames must copy **>= 2x fewer pixel bytes** with
  zero-copy on than the legacy path (the headline acceptance ratio);
* **process transport** — supervised pool tasks returning `FrameRef`
  handles must beat the same tasks returning pickled arrays by
  **>= 1.3x wall-clock**;
* **fidelity** — a process-executor farm render with a mid-run worker
  crash stays bit-identical to the serial reference (zero-copy is an
  ownership discipline, not a different renderer).

Emits ``BENCH_zerocopy.json`` (including a peak-RSS line) and
``zerocopy.txt``.
"""

from __future__ import annotations

import resource
import time

import numpy as np
from _bench_utils import write_result

from repro.buffers import (
    SharedFrameStore,
    activate_worker_store,
    copystats,
    release_refs,
    worker_store,
)
from repro.net import protocol as wire
from repro.runtime import AnimationSpec, FaultPlan, LocalRenderFarm
from repro.runtime.supervisor import TaskSupervisor
from repro.telemetry import InMemorySink, Telemetry, metrics_from_events, write_bench_json

#: Result-sized payloads for the codec drill: 6 frames of 160x120 RGB.
FRAME_SHAPE = (6, 120, 160, 3)
N_MESSAGES = 8
#: Socket-realistic chunking for reassembly (a recv() rarely gets a frame).
CHUNK = 64 << 10

#: Process-transport drill: per-task pixel payload and task count.
TASK_SHAPE = (8, 240, 320, 3)  # ~4.7 MB of float64 per task
N_TASKS = 24
N_WORKERS = 2

#: The fidelity drill's farm (small: correctness, not throughput).
FARM_KW = dict(n_frames=6, width=96, height=72)


# -- codec drill -------------------------------------------------------------------
def _codec_round_trip(payloads) -> tuple[int, float]:
    """Pump payloads through pack -> chunked reassembly -> decode; returns
    (pixel bytes copied, wall seconds)."""
    copystats.reset()
    t0 = time.perf_counter()
    stream = b"".join(
        wire.pack_frame(wire.MSG_RESULT, p) for p in payloads
    )
    asm = wire.FrameAssembler()
    got = []
    for i in range(0, len(stream), CHUNK):
        asm.feed(stream[i : i + CHUNK])
        got.extend(asm)
    # Consume the pixels (a checksum read) so lazy views are not free.
    checksum = sum(float(np.asarray(p["frames"]).sum()) for _t, p, _n in got)
    wall = time.perf_counter() - t0
    assert len(got) == len(payloads) and np.isfinite(checksum)
    return copystats.total(), wall


# -- process-transport drill -------------------------------------------------------
def _fill_shm_task(arg):
    """Render stand-in that lands pixels straight in shared memory."""
    seq, shape = arg
    ref, view = worker_store().create(shape, np.float64)
    view.fill(float(seq))
    view = None
    ref.close_local()
    return (seq, ref)


def _fill_pickle_task(arg):
    """The same work, shipped the old way: the stack pickles home."""
    seq, shape = arg
    a = np.empty(shape, dtype=np.float64)
    a.fill(float(seq))
    return (seq, a)


def _transport_wall(shm: bool) -> float:
    tasks = [(i, TASK_SHAPE) for i in range(N_TASKS)]
    store = SharedFrameStore() if shm else None
    t0 = time.perf_counter()
    sup = TaskSupervisor(
        _fill_shm_task if shm else _fill_pickle_task,
        tasks,
        executor="process",
        n_workers=N_WORKERS,
        initializer=activate_worker_store if shm else None,
        initargs=(store.token,) if shm else (),
        max_attempts=2,
    )
    out = sup.run()
    # Consume every result on the master (equal page-touching both ways).
    total = 0.0
    for seq, frames in out.results:
        total += float(np.asarray(frames)[0, 0, 0, 0]) * seq
    wall = time.perf_counter() - t0
    if store is not None:
        release_refs(out.results)
        store.cleanup()
    assert len(out.results) == N_TASKS and np.isfinite(total)
    return wall


def test_zerocopy_gates(results_dir):
    rng = np.random.default_rng(11)
    payloads = [
        {"seq": i, "box": (0, 0, 160, 120), "frames": rng.random(FRAME_SHAPE)}
        for i in range(N_MESSAGES)
    ]
    frame_bytes = N_MESSAGES * payloads[0]["frames"].nbytes

    assert wire.zero_copy_enabled()
    zc_copied, zc_wall = _codec_round_trip(payloads)
    wire.set_zero_copy(False)
    try:
        legacy_copied, legacy_wall = _codec_round_trip(payloads)
    finally:
        wire.set_zero_copy(True)
        copystats.reset()
    copy_ratio = legacy_copied / max(1, zc_copied)
    # Acceptance gate 1: >= 2x fewer pixel bytes copied on the TCP path.
    assert copy_ratio >= 2.0, (legacy_copied, zc_copied)
    # The legacy ledger must be charging real frame traffic, or the
    # ratio above is vacuous.
    assert legacy_copied >= 2 * frame_bytes, (legacy_copied, frame_bytes)

    pickle_wall = _transport_wall(shm=False)
    shm_wall = _transport_wall(shm=True)
    transport_speedup = pickle_wall / shm_wall
    # Acceptance gate 2: shared-memory results beat pickled stacks.
    assert transport_speedup >= 1.3, (pickle_wall, shm_wall)

    # Fidelity: zero-copy through a crash-recovery render changes nothing.
    sink = InMemorySink()
    tel = Telemetry(sinks=(sink,))
    farm = LocalRenderFarm(
        AnimationSpec.newton(**FARM_KW),
        n_workers=2,
        executor="process",
        fault_plan=FaultPlan(faults=(FaultPlan.crash(0),)),
        telemetry=tel,
    )
    out = farm.render()
    tel.close()
    ref = farm.render_reference()
    assert out.n_crashes >= 1
    assert out.frames.tobytes() == ref.frames.tobytes()

    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    write_bench_json(
        results_dir,
        "zerocopy",
        metrics_from_events(sink.events),
        extra={
            "codec_bytes_copied_legacy": legacy_copied,
            "codec_bytes_copied_zerocopy": zc_copied,
            "codec_copy_reduction": copy_ratio,
            "codec_wall_legacy": legacy_wall,
            "codec_wall_zerocopy": zc_wall,
            "codec_frame_bytes": frame_bytes,
            "transport_wall_pickle": pickle_wall,
            "transport_wall_shm": shm_wall,
            "transport_speedup": transport_speedup,
            "transport_task_bytes": int(np.prod(TASK_SHAPE)) * 8,
            "n_transport_tasks": N_TASKS,
            "farm_crashes_recovered": out.n_crashes,
            "bit_identical_after_crash": True,
            "peak_rss_mb": peak_rss_mb,
        },
    )

    lines = [
        "zero-copy data plane vs the copying pipeline it replaced",
        f"  codec pixel bytes copied   {legacy_copied:,} B legacy -> "
        f"{zc_copied:,} B zero-copy ({copy_ratio:.1f}x less)",
        f"  codec wall                 {legacy_wall:.3f} s -> {zc_wall:.3f} s",
        f"  process transport wall     {pickle_wall:.3f} s pickled -> "
        f"{shm_wall:.3f} s shared-memory ({transport_speedup:.2f}x)",
        f"  per-task payload           {int(np.prod(TASK_SHAPE)) * 8:,} B "
        f"x {N_TASKS} tasks, {N_WORKERS} workers",
        f"  crash-drill fidelity       bit-identical ({out.n_crashes} crash recovered)",
        f"  peak RSS                   {peak_rss_mb:.0f} MB",
    ]
    write_result(results_dir, "zerocopy.txt", "\n".join(lines))
