"""Figures 1 and 5 — the paper's images, regenerated as Targa files.

* Figure 1: "the first two frames of a sample animation" — the glass ball
  in the brick room (``fig1_frame0.tga``, ``fig1_frame1.tga``).
* Figure 5: "frame 22 of the Newton animation" (``fig5_newton22.tga``).

The benchmark also times a full-frame render of each workload — the
per-frame cost that column (1) of Table 1 is made of.
"""

from __future__ import annotations

import numpy as np

from repro.imageio import write_targa
from repro.render import RayTracer
from repro.scenes import brick_room_animation, newton_animation

from _bench_utils import write_result


def test_figure1_brick_room_frames(benchmark, results_dir):
    anim = brick_room_animation(n_frames=2, width=160, height=120)

    def render_two():
        fbs = []
        for f in range(2):
            fb, res = RayTracer(anim.scene_at(f)).render()
            fbs.append((fb, res))
        return fbs

    fbs = benchmark.pedantic(render_two, rounds=1, iterations=1)
    for f, (fb, res) in enumerate(fbs):
        write_targa(results_dir / f"fig1_frame{f}.tga", fb.to_uint8())
        assert res.stats.refracted > 0  # the glass ball refracts
        img = fb.to_uint8()
        assert img.max() > 100  # not black
        assert img.std() > 10  # has structure
    # The two frames differ (the ball moved).
    a = fbs[0][0].as_image()
    b = fbs[1][0].as_image()
    assert np.any(a != b)
    write_result(
        results_dir,
        "fig1_info.txt",
        "Figure 1 — brick room frames 0 and 1 rendered to fig1_frame{0,1}.tga\n"
        f"frame 0 rays: {fbs[0][1].stats.as_dict()}\n"
        f"frame 1 rays: {fbs[1][1].stats.as_dict()}",
    )


def test_figure5_newton_frame22(benchmark, results_dir):
    anim = newton_animation(n_frames=45, width=160, height=120)
    scene = anim.scene_at(22)

    def render():
        return RayTracer(scene).render()

    fb, res = benchmark.pedantic(render, rounds=1, iterations=1)
    write_targa(results_dir / "fig5_newton22.tga", fb.to_uint8())
    assert res.stats.reflected > 0  # chrome marbles reflect
    assert res.stats.shadow > 0
    img = fb.to_uint8()
    assert img.max() > 100 and img.std() > 10
    write_result(
        results_dir,
        "fig5_info.txt",
        "Figure 5 — Newton animation frame 22 rendered to fig5_newton22.tga\n"
        f"rays: {res.stats.as_dict()}",
    )
