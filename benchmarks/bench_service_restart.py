"""What a crash costs: service restart recovery vs. a crash-free run.

The persistent service's robustness claim is cheap to state — ``kill -9``
plus ``--resume`` finishes every job bit-identically — but the paper's
operators would have asked the next question: *how much render time does
a crash actually cost?*  This benchmark answers it with the same
emulated-crash discipline the test suite uses (journal a ``running``
job, keep only half its checkpoint spool, restart):

* **recovery time** — ledger replay + re-admission (the part a bigger
  WAL makes slower) and the resumed attempt's wall time;
* **re-rendered-task overhead** — tasks the resumed run had to render
  again vs. the crash-free run, which is the real price of the
  journal's task granularity (at most the in-flight tasks, never the
  spooled ones).

Emits ``BENCH_service.json`` (render metrics from the crash-free job's
telemetry, recovery numbers in ``extra``) and ``service_restart.txt``.
"""

from __future__ import annotations

import shutil
import time

import numpy as np
from _bench_utils import write_result

from repro.service import JobLedger, RenderService
from repro.telemetry import metrics_from_events, read_events, write_bench_json

SPEC = {"workload": "newton", "n_frames": 6, "width": 64, "height": 48,
        "grid_resolution": 12}
FARM = dict(n_workers=2, executor="thread")


def _run_one(state_dir):
    """Submit SPEC and render it to completion; returns (service, job, wall)."""
    service = RenderService(state_dir, **FARM)
    job, _ = service.submit(SPEC)
    t0 = time.perf_counter()
    out = service.step()
    wall = time.perf_counter() - t0
    assert out is job and out.state == "done"
    service.stop()
    return job, wall


def test_service_restart_overhead(results_dir, tmp_path):
    # -- crash-free baseline -------------------------------------------------
    free_dir = tmp_path / "free"
    free_job, free_wall = _run_one(free_dir)
    free_spool = free_dir / "jobs" / free_job.job_id / "spool"
    spooled = sorted(p.name for p in free_spool.glob("task_*.npz"))
    with np.load(free_dir / "jobs" / free_job.job_id / "frames.npz") as npz:
        free_frames = npz["frames"]

    # -- emulated crash: job journaled running, half its spool on disk -------
    crash_dir = tmp_path / "crash"
    service = RenderService(crash_dir, **FARM)
    job, _ = service.submit(SPEC)
    service.stop()
    kept = spooled[: len(spooled) // 2]
    with JobLedger(crash_dir / "ledger.wal") as led:
        led.append("state", job=job.job_id, state="running", detail="attempt 1/3")
        for name in kept:
            led.append("task", job=job.job_id,
                       task=int(name[len("task_"):-len(".npz")]))
    spool = crash_dir / "jobs" / job.job_id / "spool"
    spool.mkdir(parents=True)
    shutil.copy(free_spool / "manifest.json", spool / "manifest.json")
    for name in kept:
        shutil.copy(free_spool / name, spool / name)

    # -- resume --------------------------------------------------------------
    t0 = time.perf_counter()
    resumed = RenderService(crash_dir, resume=True, **FARM)
    replay_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    out = resumed.step()
    resume_wall = time.perf_counter() - t0
    assert out.state == "done"
    assert out.n_from_checkpoint == len(kept)
    resumed.stop()
    with np.load(crash_dir / "jobs" / job.job_id / "frames.npz") as npz:
        np.testing.assert_array_equal(npz["frames"], free_frames)

    n_tasks = out.n_tasks
    re_rendered = n_tasks - out.n_from_checkpoint
    metrics = metrics_from_events(
        read_events(free_dir / "jobs" / free_job.job_id / "events.jsonl")
    )
    write_bench_json(
        results_dir,
        "service",
        metrics,
        extra={
            "crash_free_wall": free_wall,
            "ledger_replay_wall": replay_wall,
            "resume_wall": resume_wall,
            "recovery_total_wall": replay_wall + resume_wall,
            "n_tasks": n_tasks,
            "n_from_checkpoint": out.n_from_checkpoint,
            "re_rendered_tasks": re_rendered,
            "re_render_fraction": re_rendered / n_tasks,
            "resume_over_crash_free": (replay_wall + resume_wall) / free_wall,
        },
    )

    lines = [
        "service restart recovery (newton "
        f"{SPEC['n_frames']}f @ {SPEC['width']}x{SPEC['height']}, "
        f"{FARM['n_workers']} workers, crash at {len(kept)}/{n_tasks} tasks)",
        f"  crash-free render      {free_wall:.3f} s  ({n_tasks} tasks)",
        f"  ledger replay          {replay_wall * 1e3:.1f} ms",
        f"  resumed render         {resume_wall:.3f} s  "
        f"({re_rendered} tasks re-rendered, {out.n_from_checkpoint} from spool)",
        f"  recovery / crash-free  {(replay_wall + resume_wall) / free_wall:.2f}x",
        "  frames bit-identical to the crash-free run",
    ]
    write_result(results_dir, "service_restart.txt", "\n".join(lines))
