"""Overhead of the telemetry spine on a real render.

Instrumentation is worthless if it distorts the numbers it reports: the
acceptance bar for the spine is **< 5 % wall-time overhead** with a full
in-memory sink attached, and effectively zero when disabled (the ``NULL``
path is one attribute test per call site).

The workload is the ``random_spheres`` stress scene — many small objects,
every frame dirty in patches — rendered through the single-process engine
(the instrumentation-densest path: per-frame, per-chunk and per-sequence
hooks all fire in one process).
"""

from __future__ import annotations

import time

from _bench_utils import write_result

from repro.pipeline import _render_animation
from repro.scenes import random_spheres_animation
from repro.telemetry import InMemorySink, Telemetry, metrics_from_events, write_bench_json

KW = dict(n_frames=6, width=96, height=72)
GRID = 16
REPEATS = 3


def _render(telemetry=None) -> float:
    anim = random_spheres_animation(**KW)
    t0 = time.perf_counter()
    _render_animation(anim, grid_resolution=GRID, telemetry=telemetry, workload="spheres")
    return time.perf_counter() - t0


def _best(make_telemetry) -> tuple[float, list[dict]]:
    """Best-of-N wall time (noise floor), plus the event log of one run."""
    times, events = [], []
    for _ in range(REPEATS):
        tel = make_telemetry()
        times.append(_render(tel))
        if tel is not None and tel.sinks:
            events = tel.sinks[0].events
    return min(times), events


def test_telemetry_overhead_under_5_percent(results_dir):
    base, _ = _best(lambda: None)
    instrumented, events = _best(lambda: Telemetry(sinks=[InMemorySink()]))
    n_events = len(events)
    overhead = (instrumented - base) / base
    lines = [
        "telemetry overhead (stress scene, single-process engine)",
        f"  workload           random_spheres {KW['n_frames']}f @ {KW['width']}x{KW['height']}",
        f"  baseline           {base:.3f} s (best of {REPEATS})",
        f"  instrumented       {instrumented:.3f} s (best of {REPEATS}, "
        f"{n_events} events to in-memory sink)",
        f"  overhead           {100.0 * overhead:+.2f} %",
    ]
    write_result(results_dir, "telemetry_overhead.txt", "\n".join(lines))
    write_bench_json(
        results_dir,
        "telemetry_overhead",
        {**metrics_from_events(events), "wall_time": instrumented},
        extra={"baseline_wall_time": base, "overhead_pct": 100.0 * overhead},
    )
    assert n_events > 0
    assert overhead < 0.05, f"telemetry overhead {100 * overhead:.1f}% exceeds the 5% budget"
