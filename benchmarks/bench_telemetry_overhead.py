"""Overhead of the telemetry spine on a real render.

Instrumentation is worthless if it distorts the numbers it reports.  Two
bars, measured separately so each claim stays honest:

* **< 5 %** wall-time overhead with a bare in-memory sink — the spine
  itself (and effectively zero when disabled: the ``NULL`` path is one
  attribute test per call site);
* **< 8 %** with the full observability stack an operator actually runs:
  in-memory sink + JSONL sink writing every record to disk + the live
  :class:`~repro.obs.RunLedger` fold + the :class:`~repro.obs.MetricsPlane`
  sketch fold + an installed :class:`~repro.obs.FlightRecorder` tapping
  every record into its black-box ring.

The workload is the ``random_spheres`` stress scene — many small objects,
every frame dirty in patches — rendered through the single-process engine
(the instrumentation-densest path: per-frame, per-chunk and per-sequence
hooks all fire in one process).
"""

from __future__ import annotations

import time

from _bench_utils import write_result

from repro.obs import FlightRecorder, MetricsPlane, RunLedger
from repro.pipeline import _render_animation
from repro.scenes import random_spheres_animation
from repro.telemetry import (
    InMemorySink,
    JsonlSink,
    Telemetry,
    metrics_from_events,
    write_bench_json,
)

KW = dict(n_frames=6, width=96, height=72)
GRID = 16
REPEATS = 5


def _render(telemetry=None) -> float:
    anim = random_spheres_animation(**KW)
    t0 = time.perf_counter()
    _render_animation(anim, grid_resolution=GRID, telemetry=telemetry, workload="spheres")
    return time.perf_counter() - t0


def _best(make_telemetry) -> tuple[float, list[dict]]:
    """Best-of-N wall time (noise floor), plus the event log of one run."""
    times, events = [], []
    for i in range(REPEATS):
        tel = make_telemetry(i)
        times.append(_render(tel))
        if tel is not None:
            tel.close()
            if tel.sinks:
                events = tel.sinks[0].events
    return min(times), events


def test_telemetry_overhead_under_5_percent(results_dir):
    base, _ = _best(lambda _i: None)
    instrumented, events = _best(lambda _i: Telemetry(sinks=[InMemorySink()]))
    n_events = len(events)
    overhead = (instrumented - base) / base
    lines = [
        "telemetry overhead (stress scene, single-process engine)",
        f"  workload           random_spheres {KW['n_frames']}f @ {KW['width']}x{KW['height']}",
        f"  baseline           {base:.3f} s (best of {REPEATS})",
        f"  instrumented       {instrumented:.3f} s (best of {REPEATS}, "
        f"{n_events} events to in-memory sink)",
        f"  overhead           {100.0 * overhead:+.2f} %",
    ]
    write_result(results_dir, "telemetry_overhead.txt", "\n".join(lines))
    write_bench_json(
        results_dir,
        "telemetry_overhead",
        {**metrics_from_events(events), "wall_time": instrumented},
        extra={"baseline_wall_time": base, "overhead_pct": 100.0 * overhead},
    )
    assert n_events > 0
    assert overhead < 0.05, f"telemetry overhead {100 * overhead:.1f}% exceeds the 5% budget"


def test_full_obs_stack_overhead_under_8_percent(results_dir, tmp_path):
    """The stack an operator actually runs: memory + JSONL-to-disk + ledger
    + metrics plane, with a flight recorder tapping every record."""
    base, _ = _best(lambda _i: None)
    recorder = FlightRecorder("bench", tmp_path).install(signals=False)
    try:
        full, events = _best(
            lambda i: Telemetry(
                sinks=[
                    InMemorySink(),
                    JsonlSink(tmp_path / f"events_{i}.jsonl"),
                    RunLedger(),
                    MetricsPlane(detector=False),
                ]
            )
        )
    finally:
        recorder.uninstall()
    overhead = (full - base) / base
    lines = [
        "full observability stack overhead (memory + jsonl + ledger + plane + recorder)",
        f"  workload           random_spheres {KW['n_frames']}f @ {KW['width']}x{KW['height']}",
        f"  baseline           {base:.3f} s (best of {REPEATS})",
        f"  full stack         {full:.3f} s (best of {REPEATS}, {len(events)} events)",
        f"  overhead           {100.0 * overhead:+.2f} %",
    ]
    write_result(results_dir, "telemetry_overhead_full_stack.txt", "\n".join(lines))
    assert len(events) > 0
    assert (tmp_path / "events_0.jsonl").stat().st_size > 0  # jsonl really wrote
    assert overhead < 0.08, (
        f"full-stack overhead {100 * overhead:.1f}% exceeds the 8% budget"
    )
