"""Ablation — coherence gain vs. scene dynamism.

The paper: "performance depends on the amount of frame coherence we can
actually extract from the scene.  Only a small area of the scene changes
per frame, allowing us to avoid computing the majority of the pixels."

This bench measures the ray-reduction factor across workloads with very
different changing-area profiles: a static scene (everything coherent),
the Newton cradle (small changing area), the bouncing glass ball (medium),
and a fast-ball variant (large inter-frame motion).
"""

from __future__ import annotations

from repro.bench import cached_oracle
from repro.runtime import AnimationSpec

from _bench_utils import write_result


def _measure():
    rows = []
    # Static: a StaticAnimation has no spec factory; emulate with the cradle
    # at zero swing (nothing ever moves).
    frozen = AnimationSpec.newton(n_frames=8, width=96, height=72, swing_degrees=0.0)
    gentle = AnimationSpec.newton(n_frames=8, width=96, height=72, cycles=0.25)
    slow_ball = AnimationSpec.brick_room(n_frames=8, width=96, height=72, frames_per_bounce=48.0)
    fast_ball = AnimationSpec.brick_room(n_frames=8, width=96, height=72, frames_per_bounce=2.0)
    for label, spec in [
        ("frozen cradle (static)", frozen),
        ("gentle cradle (small area)", gentle),
        ("glass ball, slow (medium)", slow_ball),
        ("glass ball, fast (large)", fast_ball),
    ]:
        oracle = cached_oracle(spec, grid_resolution=32)
        rows.append(
            (
                label,
                oracle.mean_dirty_fraction(),
                oracle.total_full_rays() / oracle.total_coherent_rays(),
            )
        )
    return rows


def test_dynamism_sweep(benchmark, results_dir):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [
        "Coherence gain vs. scene dynamism (8 frames, 96x72):",
        "",
        f"{'workload':30s} {'dirty frac':>11s} {'ray reduction':>14s}",
    ]
    for label, frac, red in rows:
        lines.append(f"{label:30s} {frac:>11.3f} {red:>13.2f}x")
    write_result(results_dir, "ablation_dynamism.txt", "\n".join(lines))

    by_label = {label: (frac, red) for label, frac, red in rows}
    # A static scene is the upper bound: only the first frame costs rays.
    assert by_label["frozen cradle (static)"][0] == 0.0
    assert by_label["frozen cradle (static)"][1] > 6.0  # ~n_frames
    # Within the same scene family, faster motion means larger dirty sets
    # and smaller gains.
    assert (
        by_label["glass ball, slow (medium)"][0]
        < by_label["glass ball, fast (large)"][0]
    )
    assert (
        by_label["glass ball, slow (medium)"][1]
        > by_label["glass ball, fast (large)"][1]
        > 1.0
    )
    # Every dynamic workload still benefits from coherence.
    assert by_label["gentle cradle (small area)"][1] > 1.5
