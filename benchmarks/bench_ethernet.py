"""Ablation — network sensitivity.

The paper singles out "the ethernet network, which is relatively slow
compared to interconnection networks found on multiprocessor machines" and
argues the decomposition must keep "communication costs as low as possible".
This bench quantifies that: the Table-1 frame-division strategy is replayed
over networks from 1 Mbit/s to an idealised infinite-bandwidth fabric, for
both the paper's 4x3 block grid and an aggressively fine 16x12 grid.

Expected shape: coarse blocks barely notice the network (compute-bound on
10 Mbit Ethernet, the paper's operating point), while fine blocks degrade
badly on slow networks — the paper's per-pixel warning, in network form.
"""

from __future__ import annotations

from repro.cluster import ThrashModel, ncsu_testbed
from repro.parallel import RenderFarmConfig, block_regions, simulate_frame_division_fc

from _bench_utils import write_result

SPU = 5e-4
THRASH = ThrashModel(alpha=0.0)

NETWORKS = [
    ("1 Mbit shared", dict(bandwidth_bits_per_s=1e6, latency_s=3e-3)),
    ("10 Mbit shared (paper)", dict(bandwidth_bits_per_s=10e6, latency_s=1.5e-3)),
    ("100 Mbit switched-ish", dict(bandwidth_bits_per_s=100e6, latency_s=0.3e-3)),
    ("ideal fabric", dict(bandwidth_bits_per_s=1e15, latency_s=0.0)),
]


def _run(oracle):
    machines = ncsu_testbed()
    cfg = RenderFarmConfig(pixel_scale=(320 * 240) / oracle.n_pixels)
    w, h = oracle.width, oracle.height
    grids = {
        "paper 4x3 blocks": block_regions(w, h, w // 4, h // 3),
        "fine 16x12 blocks": block_regions(w, h, w // 16, h // 12),
    }
    rows = []
    for net_name, net_kw in NETWORKS:
        for grid_name, regions in grids.items():
            out = simulate_frame_division_fc(
                oracle,
                machines,
                cfg,
                regions=regions,
                sec_per_work_unit=SPU,
                thrash=THRASH,
                **net_kw,
            )
            rows.append((net_name, grid_name, out))
    return rows


def test_network_sensitivity(benchmark, newton_oracle, results_dir):
    rows = benchmark.pedantic(_run, args=(newton_oracle,), rounds=1, iterations=1)
    lines = [
        "Network sensitivity — frame division + FC on the NCSU testbed:",
        "",
        f"{'network':24s} {'blocks':20s} {'total(s)':>10s} {'eth busy':>9s} {'eth util':>9s}",
    ]
    by_key = {}
    for net_name, grid_name, out in rows:
        by_key[(net_name, grid_name)] = out
        lines.append(
            f"{net_name:24s} {grid_name:20s} {out.total_time:>10.1f} "
            f"{out.ethernet_busy_seconds:>9.1f} "
            f"{out.ethernet_busy_seconds / out.total_time:>9.1%}"
        )
    write_result(results_dir, "ablation_ethernet.txt", "\n".join(lines))

    paper = by_key[("10 Mbit shared (paper)", "paper 4x3 blocks")]
    ideal = by_key[("ideal fabric", "paper 4x3 blocks")]
    # At the paper's operating point, communication is a small tax (<15%).
    assert paper.total_time < ideal.total_time * 1.15
    # A slow network costs real time, and costs fine blocks more absolute
    # time than coarse blocks (more messages on a serialized medium).
    slow_fine = by_key[("1 Mbit shared", "fine 16x12 blocks")]
    ideal_fine = by_key[("ideal fabric", "fine 16x12 blocks")]
    slow_coarse = by_key[("1 Mbit shared", "paper 4x3 blocks")]
    loss_fine = slow_fine.total_time - ideal_fine.total_time
    loss_coarse = slow_coarse.total_time - ideal.total_time
    assert loss_fine > loss_coarse > 0
    # Fine blocks hold the wire longer at every bandwidth (16x the message
    # count; the ratio compresses on slow networks where the shared pixel
    # payload dominates per-message overhead).
    for net_name, _ in NETWORKS[:-1]:  # ideal fabric has ~zero busy time
        fine = by_key[(net_name, "fine 16x12 blocks")]
        coarse = by_key[(net_name, "paper 4x3 blocks")]
        assert fine.ethernet_busy_seconds > 1.5 * coarse.ethernet_busy_seconds
        assert fine.n_messages > 10 * coarse.n_messages
    # Bandwidth ordering is monotone for the fine grid.
    assert (
        by_key[("1 Mbit shared", "fine 16x12 blocks")].total_time
        > by_key[("10 Mbit shared (paper)", "fine 16x12 blocks")].total_time
        > by_key[("ideal fabric", "fine 16x12 blocks")].total_time
    )
