"""What the wire costs: process pool vs. TCP loopback, and compression.

The TCP transport's claim is *fidelity*, not speed — on one host it
re-renders the same adaptive schedule as the process pool, plus socket
framing, heartbeats, and daemon startup.  This benchmark pins down that
overhead (wall-time ratio on a small Newton render) and measures the
other axis the paper's shared-Ethernet testbed cared about: bytes on the
wire, with and without per-array zlib tile compression (smooth
framebuffers shrink a lot; the encoder keeps incompressible buffers raw).

Emits ``BENCH_net.json`` (metrics distilled from the TCP run's telemetry
log, wall times and byte counts in ``extra``) and ``net_overhead.txt``.
"""

from __future__ import annotations

import time

from _bench_utils import write_result

from repro.net.master import TcpTransport
from repro.net.tasks import spec_to_wire
from repro.obs import write_chrome_trace
from repro.runtime import AnimationSpec, LocalRenderFarm
from repro.sched import make_policy
from repro.telemetry import InMemorySink, Telemetry, metrics_from_events, write_bench_json

KW = dict(n_frames=4, width=48, height=36)
GRID = 12
N_WORKERS = 2


def _farm_run(transport: str):
    """One adaptive-schedule Newton render; returns (wall, events)."""
    sink = InMemorySink()
    tel = Telemetry(sinks=(sink,))
    farm = LocalRenderFarm(
        AnimationSpec.newton(**KW),
        n_workers=N_WORKERS,
        schedule="adaptive",
        transport=transport,
        grid_resolution=GRID,
        telemetry=tel,
    )
    t0 = time.perf_counter()
    farm.render()
    wall = time.perf_counter() - t0
    tel.close()
    return wall, sink.events


def _tcp_bytes(compress: bool):
    """Drive the render task over a raw TcpTransport and return NetStats."""
    spec_wire = spec_to_wire(AnimationSpec.newton(**KW))
    policy = make_policy(
        "sequence-division-fc", KW["n_frames"], sequence_ranges=[(0, KW["n_frames"])]
    )

    def materialize(a, lane):
        return (spec_wire, None, int(a.frame0), int(a.frame1), bool(a.fresh),
                "bench", GRID, 1, False, None)

    out = TcpTransport(
        policy,
        "render_segment",
        materialize,
        n_workers=N_WORKERS,
        compress=compress,
        startup_timeout=120.0,
    ).run()
    assert policy.finished and out.net.n_losses == 0
    return out.net


def test_net_overhead_and_bytes(results_dir):
    proc_wall, proc_events = _farm_run("process")
    tcp_wall, tcp_events = _farm_run("tcp")
    for label, events in (("process", proc_events), ("tcp", tcp_events)):
        run_id = next((r.get("run") for r in events if r.get("run")), label)
        write_chrome_trace(
            events, results_dir / f"trace_net_{label}.json", run_id=str(run_id)
        )

    raw = _tcp_bytes(compress=False)
    packed = _tcp_bytes(compress=True)
    # RESULT frames carry the framebuffers; Newton's smooth background
    # must compress, and the encoder never ships a grown buffer.
    assert packed.bytes_received < raw.bytes_received
    assert packed.n_results == raw.n_results

    metrics = metrics_from_events(tcp_events)
    write_bench_json(
        results_dir,
        "net",
        metrics,
        extra={
            "process_wall": proc_wall,
            "tcp_wall": tcp_wall,
            "tcp_over_process": tcp_wall / proc_wall,
            "bytes_on_wire_raw": raw.bytes_sent + raw.bytes_received,
            "bytes_on_wire_compressed": packed.bytes_sent + packed.bytes_received,
            "result_bytes_raw": raw.bytes_received,
            "result_bytes_compressed": packed.bytes_received,
            "n_workers": N_WORKERS,
        },
    )

    ratio = raw.bytes_received / max(1, packed.bytes_received)
    lines = [
        "network transport overhead (newton "
        f"{KW['n_frames']}f @ {KW['width']}x{KW['height']}, "
        f"{N_WORKERS} workers, adaptive schedule)",
        f"  process pool       {proc_wall:.3f} s",
        f"  tcp loopback       {tcp_wall:.3f} s  "
        f"({tcp_wall / proc_wall:.2f}x; includes daemon startup)",
        "  bytes on wire (master<->workers, render task only):",
        f"    uncompressed     {raw.bytes_sent + raw.bytes_received:,} "
        f"(results {raw.bytes_received:,})",
        f"    zlib tiles       {packed.bytes_sent + packed.bytes_received:,} "
        f"(results {packed.bytes_received:,}, {ratio:.1f}x smaller)",
    ]
    write_result(results_dir, "net_overhead.txt", "\n".join(lines))
