"""What tile streaming buys: first pixels sooner, smaller messages.

Whole-subarea shipping holds every pixel of an assignment hostage until
the last frame of the chain finishes; the distributed framebuffer
(`repro.dfb`) streams MSG_TILE frames as each frame completes, so the
master (and the `/preview` endpoint) sees pixels while the chain is
still rendering.  This benchmark renders the same Newton chain twice
over the TCP transport — tiles on, tiles off — and gates on the two
acceptance metrics:

* **time-to-first-tile** must be < 0.5x the time-to-first-whole-RESULT
  of the untiled run (same spec, same wire, same daemon startup), and
* the **largest single message payload** on the tiled wire must be at
  least 4x smaller than the untiled RESULT that ships the subarea.

Both runs must stay bit-identical to each other (the compositor is an
assembly strategy, not a different renderer).  Emits ``BENCH_tiles.json``
and ``tiles.txt``.
"""

from __future__ import annotations

from _bench_utils import write_result

from repro.runtime import AnimationSpec, LocalRenderFarm
from repro.telemetry import InMemorySink, Telemetry, metrics_from_events, write_bench_json

#: One long chain on one worker: the untiled RESULT can only arrive after
#: the full sequence renders, while the first tile lands after frame 0.
KW = dict(n_frames=12, width=160, height=120)
GRID = 12
TILE_PX = 16


def _run(tile_px: int | None):
    sink = InMemorySink()
    tel = Telemetry(sinks=(sink,))
    farm = LocalRenderFarm(
        AnimationSpec.newton(**KW),
        n_workers=1,
        schedule="adaptive",
        transport="tcp",
        grid_resolution=GRID,
        segment_frames=KW["n_frames"],
        tile_px=tile_px,
        telemetry=tel,
    )
    out = farm.render()
    tel.close()
    return out, sink.events


def test_tile_streaming_latency_and_payload(results_dir):
    tiled, tiled_events = _run(TILE_PX)
    whole, _ = _run(0)
    assert tiled.streamed and not whole.streamed
    assert tiled.frames.tobytes() == whole.frames.tobytes()

    t_first_tile = tiled.net.t_first_tile
    t_whole_result = whole.net.t_first_result
    assert t_first_tile is not None and t_whole_result is not None
    # Acceptance gate 1: pixels reach the master in well under half the
    # time whole-subarea shipping needs to produce its first RESULT.
    assert t_first_tile < 0.5 * t_whole_result, (t_first_tile, t_whole_result)

    # Acceptance gate 2: the tiled wire never carries a message anywhere
    # near the monolithic RESULT.  Compare as-shipped (compressed) bytes,
    # across *every* message kind the tiled run produced.
    tiled_max = max(tiled.net.max_msg_bytes.values())
    whole_result = whole.net.max_msg_bytes["result"]
    assert whole_result >= 4 * tiled_max, (whole_result, tiled.net.max_msg_bytes)

    metrics = metrics_from_events(tiled_events)
    write_bench_json(
        results_dir,
        "tiles",
        metrics,
        extra={
            "t_first_tile": t_first_tile,
            "t_first_result_tiled": tiled.net.t_first_result,
            "t_first_result_whole": t_whole_result,
            "first_pixel_speedup": t_whole_result / t_first_tile,
            "n_tiles": tiled.net.n_tiles,
            "tile_bytes": tiled.net.tile_bytes,
            "max_msg_bytes_tiled": dict(tiled.net.max_msg_bytes),
            "max_msg_bytes_whole": dict(whole.net.max_msg_bytes),
            "payload_shrink": whole_result / tiled_max,
            "tile_px": TILE_PX,
        },
    )

    lines = [
        "tile streaming vs whole-subarea shipping (newton "
        f"{KW['n_frames']}f @ {KW['width']}x{KW['height']}, one 1-worker chain)",
        f"  time to first tile      {t_first_tile:.3f} s",
        f"  time to first RESULT    {t_whole_result:.3f} s (untiled wire)",
        f"  first-pixel speedup     {t_whole_result / t_first_tile:.1f}x",
        f"  largest tiled message   {tiled_max:,} B",
        f"  untiled RESULT payload  {whole_result:,} B "
        f"({whole_result / tiled_max:.1f}x larger)",
        f"  tiles streamed          {tiled.net.n_tiles} "
        f"({tiled.net.tile_bytes:,} B total)",
    ]
    write_result(results_dir, "tiles.txt", "\n".join(lines))
