"""Shared benchmark fixtures.

The heavy artifact is the measured cost oracle of the 45-frame Newton
animation at the paper's own 320x240 resolution.  It is built once
(~70 s of analysis rendering) and cached on disk (``.oracle_cache/``), so
repeated benchmark runs skip it.

At full resolution the cluster model's ``pixel_scale`` is exactly 1 — no
scaling between measured pixels and the modelled 1998 memory/message
footprints.  The ablation benches that sweep many configurations use
smaller oracles for turnaround.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import cached_oracle
from repro.runtime import AnimationSpec

RESULTS_DIR = Path(__file__).parent / "results"

#: The Table-1 workload at the paper's scale.
NEWTON_KW = dict(n_frames=45, width=320, height=240)
GRID_RESOLUTION = 32


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def newton_spec() -> AnimationSpec:
    return AnimationSpec.newton(**NEWTON_KW)


@pytest.fixture(scope="session")
def newton_oracle(newton_spec):
    """Measured per-pixel costs + dirty sets of the Table-1 workload."""
    return cached_oracle(newton_spec, grid_resolution=GRID_RESOLUTION)


@pytest.fixture(scope="session")
def brick_spec() -> AnimationSpec:
    return AnimationSpec.brick_room(n_frames=20, width=160, height=120)


@pytest.fixture(scope="session")
def brick_oracle(brick_spec):
    return cached_oracle(brick_spec, grid_resolution=GRID_RESOLUTION)


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated table/figure; EXPERIMENTS.md points at these."""
    path = results_dir / name
    path.write_text(text)
    print(f"\n[{name}]\n{text}")
