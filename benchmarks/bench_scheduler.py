"""Ablation — dynamic schedules vs. static on the real supervised executor.

The paper's demand-driven and adaptive distribution exist to absorb
processor heterogeneity: a static pre-partition leaves the fast worker
idle while the slow one grinds through its fixed share.  This bench runs
the farm's three ``--schedule`` modes through the real
:class:`~repro.sched.process.ProcessTransport` (thread executor, two
lanes) on a calibrated sleep workload skewed 3x against one lane:

* ``static``   — one fixed frame range per lane, no redistribution
  (an adaptive policy with stealing off and whole-range segments,
  which is exactly what the static sequence farm dispatches);
* ``demand``   — single-frame units pulled from a shared queue;
* ``adaptive`` — per-lane chains with tail-stealing.

Both dynamic schedules must beat static wall-clock.
"""

from __future__ import annotations

import time

from repro.obs import write_chrome_trace
from repro.parallel.partition import sequence_ranges
from repro.sched.core import AdaptiveChainPolicy, Chain, DemandDrivenPolicy
from repro.sched.process import ProcessTransport
from repro.telemetry import InMemorySink, Telemetry

from _bench_utils import write_result

N_FRAMES = 16
FRAME_SECONDS = 0.02
SLOW_LANE = "lane1"
SLOW_FACTOR = 3.0


def _skewed_frame_task(args):
    """One assignment on one lane: sleep per frame, 3x slower on SLOW_LANE."""
    lane, f0, f1 = args
    per_frame = FRAME_SECONDS * (SLOW_FACTOR if lane == SLOW_LANE else 1.0)
    time.sleep(per_frame * (f1 - f0))
    return args


def _policies():
    ranges = sequence_ranges(N_FRAMES, 2)
    static = AdaptiveChainPolicy(
        [Chain(-1, a, b, fresh=True) for a, b in ranges],
        use_coherence=True,
        steal=False,
        segment_frames=N_FRAMES,
    )
    demand = DemandDrivenPolicy(
        [(-1, f, f + 1) for f in range(N_FRAMES)], use_coherence=False
    )
    adaptive = AdaptiveChainPolicy(
        [Chain(-1, a, b, fresh=True) for a, b in ranges],
        use_coherence=True,
        min_steal_frames=2,
        segment_frames=1,
    )
    return {"static": static, "demand": demand, "adaptive": adaptive}


def _run(results_dir):
    walls: dict[str, float] = {}
    logs: dict[str, list] = {}
    for name, policy in _policies().items():
        tel = Telemetry(sinks=[sink := InMemorySink()], run_id=f"sched-{name}")
        transport = ProcessTransport(
            policy,
            _skewed_frame_task,
            lambda a, lane: (lane, a.frame0, a.frame1),
            n_workers=2,
            executor="thread",
            telemetry=tel,
        )
        t0 = time.perf_counter()
        out = transport.run()
        walls[name] = time.perf_counter() - t0
        logs[name] = out.assignments
        tel.close()
        # One Perfetto-loadable lane timeline per schedule mode.
        write_chrome_trace(
            sink.events, results_dir / f"trace_scheduler_{name}.json",
            run_id=f"sched-{name}",
        )
    return walls, logs


def test_dynamic_schedules_beat_static(benchmark, results_dir):
    walls, logs = benchmark.pedantic(_run, args=(results_dir,), rounds=1, iterations=1)
    lines = [
        f"Real executor, 2 lanes, {SLOW_LANE} skewed {SLOW_FACTOR:.0f}x slower "
        f"({N_FRAMES} frames @ {FRAME_SECONDS * 1000:.0f} ms/frame on the fast lane):",
    ]
    for name in ("static", "demand", "adaptive"):
        lines.append(
            f"  {name:<9} wall={walls[name]:6.3f}s  tasks={len(logs[name]):3d}  "
            f"speedup_vs_static={walls['static'] / walls[name]:.2f}x"
        )
    write_result(results_dir, "ablation_scheduler.txt", "\n".join(lines))
    # the whole point of demand/adaptive distribution: absorb the skew
    assert walls["demand"] < walls["static"]
    assert walls["adaptive"] < walls["static"]
