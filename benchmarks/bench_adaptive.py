"""Ablation — adaptive vs. static sequence division.

The paper: "A potential drawback to this method occurs if the number of
frames assigned to each processor is static.  The situation may lead to
load imbalance due to differing processor speeds and the complexity of the
subsequences.  Each sequence, however, can be adaptively subdivided such
that a faster processor can receive more work once it completes its
sequence."

Static assignment is emulated by disabling stealing (min_steal_frames
larger than the animation) and, for the worst case, ignoring machine
speeds in the initial split.
"""

from __future__ import annotations

import dataclasses

from repro.cluster import ThrashModel, ncsu_testbed
from repro.parallel import RenderFarmConfig, simulate_sequence_division_fc

from _bench_utils import write_result

SPU = 5e-4
THRASH = ThrashModel(alpha=0.0)


def _run(oracle):
    machines = ncsu_testbed()
    base_cfg = RenderFarmConfig(pixel_scale=(320 * 240) / oracle.n_pixels)
    adaptive = simulate_sequence_division_fc(
        oracle, machines, base_cfg, sec_per_work_unit=SPU, thrash=THRASH
    )
    static_cfg = dataclasses.replace(base_cfg, min_steal_frames=10**6)
    static = simulate_sequence_division_fc(
        oracle, machines, static_cfg, sec_per_work_unit=SPU, thrash=THRASH
    )
    return adaptive, static


def test_adaptive_vs_static(benchmark, newton_oracle, results_dir):
    adaptive, static = benchmark.pedantic(_run, args=(newton_oracle,), rounds=1, iterations=1)
    lines = [
        "Sequence division on the heterogeneous NCSU testbed (2:1:1 speeds):",
        f"  adaptive (stealing on) : total={adaptive.total_time:8.1f}s  "
        f"imbalance={adaptive.load_imbalance:.3f}  steals={adaptive.n_steals}  rays={adaptive.total_rays}",
        f"  static   (stealing off): total={static.total_time:8.1f}s  "
        f"imbalance={static.load_imbalance:.3f}  steals={static.n_steals}  rays={static.total_rays}",
    ]
    write_result(results_dir, "ablation_adaptive.txt", "\n".join(lines))
    assert static.n_steals == 0
    # Adaptive subdivision never loses, and pays at most a few restart rays.
    assert adaptive.total_time <= static.total_time * 1.02
    assert adaptive.total_rays >= static.total_rays  # restarts cost rays
