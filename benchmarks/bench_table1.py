"""Table 1 — "Performance results for Newton sequence".

Regenerates all nine columns from a measured cost oracle of the Newton
animation, simulated on the paper's three-machine SGI testbed.  Column (1)
is calibrated to the paper's 2:55:51; everything else is model output.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only``; the
regenerated table lands in ``benchmarks/results/table1.txt``.
"""

from __future__ import annotations

import pytest

from repro.bench import PAPER_TABLE1, Table1Settings, format_table1, run_table1

from _bench_utils import write_result


@pytest.fixture(scope="module")
def table1(newton_oracle):
    return run_table1(newton_oracle, Table1Settings())


def test_table1_regeneration(benchmark, newton_oracle, results_dir):
    """Regenerate the whole table (all five strategy simulations) and check
    every shape the paper reports.  Paper values in parentheses."""
    result = benchmark.pedantic(
        run_table1, args=(newton_oracle, Table1Settings()), rounds=1, iterations=1
    )
    write_result(results_dir, "table1.txt", format_table1(result))

    # Machine-readable companions + coherence analytics.
    from repro.analysis import summarize_oracle
    from repro.bench import outcomes_csv, outcomes_markdown

    outcomes_csv(result.outcomes, path=results_dir / "table1_outcomes.csv")
    (results_dir / "table1_outcomes.md").write_text(outcomes_markdown(result.outcomes))
    summary = summarize_oracle(newton_oracle)
    write_result(
        results_dir,
        "table1_coherence_summary.txt",
        "\n".join(f"{k}: {v:.4f}" for k, v in summary.items()),
    )
    assert summary["frames_beyond_breakeven"] == 0  # FC pays on every frame

    # Column (1) calibrated to the paper's 2:55:51 by construction.
    assert result.single.total_time == pytest.approx(PAPER_TABLE1["single_total_s"], rel=1e-6)
    # Ray reduction (paper: 5x).
    assert 3.0 <= result.fc_ray_reduction <= 6.5
    # Column (3): single-processor FC speedup (paper: 2.93x).
    assert 2.5 <= result.fc_speedup <= 3.5
    # Column (5): distribution alone (paper: ~2x — fastest machine is 2x the others).
    assert 1.8 <= result.distributed_speedup <= 2.2
    # Column (7): sequence division + FC (paper: 5x).
    assert 3.5 <= result.seq_div_speedup <= 5.5
    # Column (9): frame division + FC (paper: 7x).
    assert 5.5 <= result.frame_div_speedup <= 8.0
    # Frame division wins (paper: 7 > 5).
    assert result.frame_div_speedup > result.seq_div_speedup
    # Better than multiplicative (paper: +18.5%).
    expected = result.fc_speedup * result.distributed_speedup
    assert result.frame_div_speedup > expected
    assert result.multiplicative_excess < 0.5

    # First-frame FC overhead (paper: ~12% of generation time).
    overhead = result.single_fc.first_frame_time / result.single.first_frame_time - 1.0
    assert 0.05 <= overhead <= 0.60

    # Ray-count orderings across columns.
    assert result.single.total_rays == result.distributed.total_rays
    assert result.single_fc.total_rays < result.single.total_rays
    assert result.seq_div_fc.total_rays >= result.frame_div_fc.total_rays >= result.single_fc.total_rays


def test_bench_frame_division_sim(benchmark, newton_oracle, table1):
    """Micro-benchmark: one frame-division+FC cluster-simulation replay."""
    from repro.parallel import RenderFarmConfig, simulate_frame_division_fc

    settings = Table1Settings()
    pixel_scale = settings.paper_pixels / newton_oracle.n_pixels
    cfg = RenderFarmConfig(pixel_scale=pixel_scale)
    benchmark(
        simulate_frame_division_fc,
        newton_oracle,
        settings.machines,
        cfg,
        sec_per_work_unit=table1.sec_per_work_unit,
        thrash=settings.thrash,
    )
