"""Object-space sharding benchmark: ray trading priced against pixel shipping.

Two questions, answered in one run (``BENCH_shard.json`` + ``shard.txt``):

1. **What does the ray exchange cost on a real trace?**  One Newton frame
   is rendered serially and sharded (in process, K=4); the sharded
   composite must be bit-identical, and the request/reply payload bytes of
   the wavefront rounds are the measured price of object-space division.

2. **Does it scale past the paper's three workstations?**  The measured
   :class:`~repro.shard.ShardProfile` is extrapolated by
   :class:`~repro.shard.ShardOracle` (fan-out grows as ``sqrt(K)``, the
   surface-to-volume law of median-split domains) and replayed through the
   discrete-event simulator on 100/300/1000 *heterogeneous* workers —
   object-space vs. frame-division-nofc on identical clusters, recording
   modelled wall clock and bytes-of-rays per policy.

Runs under pytest (CI) and as a script::

    python benchmarks/bench_shard.py --quick
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"

#: Simulated worker counts for the scale sweep (the paper stops at 3).
SWEEP = (100, 300, 1000)


def _heterogeneous(n: int):
    """n workers with a deterministic 1x-2.5x speed spread (no RNG: the
    sweep must be reproducible bit-for-bit across runs)."""
    from repro.cluster import Machine

    return [
        Machine(f"m{i:04d}", speed=1.0 + 0.5 * ((i * 7) % 4), memory_mb=128.0)
        for i in range(n)
    ]


def _pixel_oracle(width: int, height: int, n_frames: int):
    """A flat synthetic cost oracle: the sim needs frame geometry and a
    pixel price, not a measured map, for the sweep's pixel-policy rival."""
    from repro.parallel.oracle import AnimationCostOracle

    full = np.full((n_frames, width * height), 2, dtype=np.int32)
    dirty = [np.array([], dtype=np.int64) for _ in range(n_frames)]
    return AnimationCostOracle(width, height, n_frames, full, dirty, grid_resolution=4)


def run(quick: bool = True, results_dir: Path = RESULTS_DIR) -> dict:
    from repro.cluster import ThrashModel
    from repro.parallel.config import RenderFarmConfig
    from repro.parallel.strategies import default_blocks
    from repro.render import RayTracer
    from repro.scenes import newton_animation
    from repro.sched import OracleCostModel, SimTransport, make_policy
    from repro.shard import ShardOracle, ShardProfile, render_frame_sharded
    from repro.telemetry import write_bench_json

    width, height = (64, 48) if quick else (160, 120)
    n_frames, k_local = 2, 4
    anim = newton_animation(n_frames=n_frames, width=width, height=height)

    # -- 1: measured ray exchange, sharded vs serial, bit-identical --------
    per_frame, serial_wall, shard_wall, ray_bytes = [], 0.0, 0.0, 0
    kinds = {"camera": 0, "reflected": 0, "refracted": 0, "shadow": 0}
    rays_total = 0
    for f in range(n_frames):
        scene = anim.scene_at(f)
        t0 = time.perf_counter()
        serial_fb, serial_res = RayTracer(scene).render()
        serial_wall += time.perf_counter() - t0
        t0 = time.perf_counter()
        fb, _, stats = render_frame_sharded(scene, shards=k_local)
        shard_wall += time.perf_counter() - t0
        if not np.array_equal(serial_fb.data, fb.data):
            raise AssertionError(f"sharded frame {f} is not bit-identical to serial")
        per_frame.append((stats, serial_res.stats.total))
        rays_total += serial_res.stats.total
        for kind in kinds:
            kinds[kind] += getattr(serial_res.stats, kind, 0)
        ray_bytes += int(stats.total_ray_bytes)
    profile = ShardProfile.from_stats(per_frame, width * height)

    # -- 2: the 100/300/1000 heterogeneous sweep ---------------------------
    cfg = RenderFarmConfig()
    px_oracle = _pixel_oracle(width, height, n_frames)
    regions = default_blocks(px_oracle)
    pixel_cost = OracleCostModel(px_oracle, cfg, regions)
    no_thrash = ThrashModel(alpha=0.0)
    sweep_rows = []
    for n_workers in SWEEP:
        machines = _heterogeneous(n_workers)
        row = {"n_workers": n_workers}
        shard_oracle = ShardOracle(profile, n_shards=n_workers, cfg=cfg)
        p_obj = make_policy(
            "object-space", n_frames, n_regions=n_workers, frames_per_chunk=1
        )
        out_obj = SimTransport(
            p_obj,
            px_oracle,
            machines,
            cfg,
            cost_model=shard_oracle,
            label="object-space",
            sec_per_work_unit=1e-4,
            thrash=no_thrash,
        ).run()
        row["object-space"] = {
            "total_time": out_obj.total_time,
            "rays": shard_oracle.total_rays_of_log(p_obj.log),
            "ray_bytes": shard_oracle.ray_bytes_of_log(p_obj.log),
            "fanout": round(shard_oracle.fanout, 3),
        }
        p_px = make_policy(
            "frame-division-nofc",
            n_frames,
            n_regions=len(regions),
            frames_per_chunk=1,
        )
        out_px = SimTransport(
            p_px,
            px_oracle,
            machines,
            cfg,
            regions=regions,
            label="frame-division-nofc",
            sec_per_work_unit=1e-4,
            thrash=no_thrash,
        ).run()
        row["frame-division-nofc"] = {
            "total_time": out_px.total_time,
            "rays": pixel_cost.total_rays_of_log(p_px.log),
            "ray_bytes": 0,  # pixel policies ship pixels, never rays
        }
        sweep_rows.append(row)

    metrics = {
        "rays_total": int(rays_total),
        "rays_camera": int(kinds["camera"]),
        "rays_reflected": int(kinds["reflected"]),
        "rays_refracted": int(kinds["refracted"]),
        "rays_shadow": int(kinds["shadow"]),
        "computed_pixels": int(n_frames * width * height),
        "copied_pixels": 0,
        "wall_time": shard_wall,
        "n_frames": n_frames,
        "n_workers": k_local,
    }
    extra = {
        "quick": quick,
        "resolution": f"{width}x{height}",
        "n_shards_local": k_local,
        "serial_wall": serial_wall,
        "sharded_wall": shard_wall,
        "ray_exchange_bytes": ray_bytes,
        "rays_routed": int(sum(profile.rays_routed)),
        "fanout_measured": round(profile.fanout(), 3),
        "bytes_per_routed_ray": round(profile.bytes_per_routed_ray(), 1),
        "sweep": sweep_rows,
        "bit_identical": True,
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    path = write_bench_json(results_dir, "shard", metrics, extra=extra)

    lines = [
        f"object-space sharding (newton {n_frames}f @ {width}x{height}, K={k_local} local)",
        f"  serial wall          {serial_wall:.3f} s",
        f"  sharded wall         {shard_wall:.3f} s (in-process owners, bit-identical)",
        f"  rays traced          {rays_total:,}",
        f"  rays routed          {sum(profile.rays_routed):,} "
        f"(fan-out {profile.fanout():.2f} owners/ray)",
        f"  ray exchange         {ray_bytes:,} B "
        f"({profile.bytes_per_routed_ray():.0f} B/routed ray)",
        "",
        "  modelled sweep (heterogeneous workers, object-space vs frame-division-nofc):",
    ]
    for row in sweep_rows:
        o, p = row["object-space"], row["frame-division-nofc"]
        lines.append(
            f"    {row['n_workers']:>5} workers: obj {o['total_time']:8.2f}s "
            f"({o['ray_bytes']:>12,} B rays, fan-out {o['fanout']:.1f})  "
            f"vs pixel {p['total_time']:8.2f}s"
        )
    (results_dir / "shard.txt").write_text("\n".join(lines) + "\n")
    print("\n".join(lines))
    print(f"\nwrote {path}")
    return {"metrics": metrics, "extra": extra}


def test_shard_bench(results_dir):
    out = run(quick=True, results_dir=results_dir)
    extra = out["extra"]
    assert extra["bit_identical"]
    assert extra["ray_exchange_bytes"] > 0
    # Fan-out (and therefore bytes of rays) must grow with the shard count.
    fanouts = [row["object-space"]["fanout"] for row in extra["sweep"]]
    assert fanouts == sorted(fanouts)
    assert all(row["object-space"]["ray_bytes"] > 0 for row in extra["sweep"])


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="small frames, CI-sized")
    ap.add_argument("--out", default=str(RESULTS_DIR), help="results directory")
    args = ap.parse_args()
    run(quick=args.quick, results_dir=Path(args.out))
