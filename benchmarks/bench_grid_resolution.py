"""Ablation — uniform-grid (voxel) resolution.

The grid resolution is the knob of the coherence algorithm's precision:
coarse voxels make the changed region dirty more pixel lists (loose,
conservative over-prediction — more re-rendered pixels), fine voxels cost
more DDA marking and memory.  This bench sweeps the resolution on a short
Newton run and reports dirty fractions and coherent ray counts.
"""

from __future__ import annotations

from repro.bench import cached_oracle
from repro.runtime import AnimationSpec

from _bench_utils import write_result

SPEC = AnimationSpec.newton(n_frames=10, width=96, height=72)
RESOLUTIONS = [4, 8, 16, 32, 48]


def _sweep():
    rows = []
    for res in RESOLUTIONS:
        oracle = cached_oracle(SPEC, grid_resolution=res)
        rows.append(
            (
                res,
                oracle.mean_dirty_fraction(),
                oracle.total_coherent_rays(),
                oracle.total_full_rays(),
            )
        )
    return rows


def test_grid_resolution_sweep(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "Voxel-grid resolution sweep — Newton, 10 frames, 96x72:",
        "",
        f"{'grid':>6s} {'dirty frac':>11s} {'coherent rays':>14s} {'reduction':>10s}",
    ]
    for res, frac, coh, full in rows:
        lines.append(f"{res:>4d}^3 {frac:>11.3f} {coh:>14,d} {full / coh:>9.2f}x")
    write_result(results_dir, "ablation_grid_resolution.txt", "\n".join(lines))

    fracs = {res: frac for res, frac, _, _ in rows}
    # Finer grids predict (weakly) tighter dirty sets.
    assert fracs[32] <= fracs[8] <= fracs[4]
    # Every resolution is conservative yet useful.
    assert all(0 < frac < 1 for frac in fracs.values())
    # Diminishing returns: 48^3 buys little over 32^3.
    assert fracs[48] >= 0.5 * fracs[32]
