"""Ablation — scalability over cluster size and heterogeneity.

The paper's conclusion: "Depending on the number of workstations
participating in the computation and the performance power of each of the
machines, one can build an extremely powerful rendering environment", and
its future work calls for "further tests with heterogeneous environments,
as well as more homogeneous ones".  This bench runs both:

* a homogeneous scaling sweep (1..16 identical nodes, frame division + FC);
* a heterogeneity sweep (same aggregate speed, increasingly skewed).
"""

from __future__ import annotations

from repro.cluster import Machine, ThrashModel, homogeneous_cluster
from repro.parallel import RenderFarmConfig, simulate_frame_division_fc

from _bench_utils import write_result

SPU = 5e-4
THRASH = ThrashModel(alpha=0.0)


def _scaling(oracle):
    cfg = RenderFarmConfig(pixel_scale=(320 * 240) / oracle.n_pixels)
    rows = []
    for n in (1, 2, 4, 8, 16):
        machines = homogeneous_cluster(n, speed=1.0, memory_mb=128.0)
        out = simulate_frame_division_fc(
            oracle, machines, cfg, sec_per_work_unit=SPU, thrash=THRASH
        )
        rows.append((n, out))
    return rows


def _heterogeneity(oracle):
    cfg = RenderFarmConfig(pixel_scale=(320 * 240) / oracle.n_pixels)
    rows = []
    # Four machines, aggregate speed 4.0, increasingly skewed.
    for label, speeds in [
        ("1:1:1:1", [1.0, 1.0, 1.0, 1.0]),
        ("2:1:0.5:0.5", [2.0, 1.0, 0.5, 0.5]),
        ("3:0.5:0.25:0.25", [3.0, 0.5, 0.25, 0.25]),
    ]:
        machines = [
            Machine(f"m{i}", speed=s, memory_mb=128.0) for i, s in enumerate(speeds)
        ]
        out = simulate_frame_division_fc(
            oracle, machines, cfg, sec_per_work_unit=SPU, thrash=THRASH
        )
        rows.append((label, out))
    return rows


def test_homogeneous_scaling(benchmark, newton_oracle, results_dir):
    rows = benchmark.pedantic(_scaling, args=(newton_oracle,), rounds=1, iterations=1)
    t1 = rows[0][1].total_time
    lines = [
        "Homogeneous scaling — frame division + FC:",
        "",
        f"{'nodes':>6s} {'total(s)':>10s} {'speedup':>8s} {'efficiency':>11s} {'imbalance':>10s}",
    ]
    for n, out in rows:
        sp = t1 / out.total_time
        lines.append(
            f"{n:>6d} {out.total_time:>10.1f} {sp:>8.2f} {sp / n:>10.1%} {out.load_imbalance:>10.3f}"
        )
    write_result(results_dir, "ablation_scaling.txt", "\n".join(lines))

    speedups = {n: t1 / out.total_time for n, out in rows}
    # Monotone scaling with good efficiency through 8 nodes.
    assert speedups[2] > 1.6
    assert speedups[4] > 2.8
    assert speedups[8] > 4.5
    assert speedups[16] > speedups[8] * 0.9  # may flatten, must not regress much


def test_heterogeneity_tolerance(benchmark, newton_oracle, results_dir):
    rows = benchmark.pedantic(_heterogeneity, args=(newton_oracle,), rounds=1, iterations=1)
    lines = [
        "Heterogeneity sweep — 4 machines, aggregate speed 4.0, frame division + FC:",
        "",
        f"{'speeds':>18s} {'total(s)':>10s} {'steals':>7s}",
    ]
    for label, out in rows:
        lines.append(f"{label:>18s} {out.total_time:>10.1f} {out.n_steals:>7d}")
    write_result(results_dir, "ablation_heterogeneity.txt", "\n".join(lines))

    base = rows[0][1].total_time
    # Demand-driven frame division absorbs heterogeneity: even the most
    # skewed cluster stays within 40% of the homogeneous time at equal
    # aggregate speed.
    for _, out in rows[1:]:
        assert out.total_time < base * 1.4
