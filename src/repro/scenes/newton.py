"""The Newton animation (Figure 5 / Table 1 workload).

"The Newton animation, designed by Chris Gulka, consists of a set of
suspended chrome marbles, which when set into motion by raising the marble
on either end, illustrates the law of the conservation of energy ...
consisting of one plane, five spheres, and sixteen cylinders."

Object inventory (matching the paper's counts exactly):

* 1 plane — the floor;
* 5 spheres — the chrome marbles;
* 16 cylinders — 4 legs + 2 top rails of the frame, plus 2 suspension
  strings per marble (10 strings).

Motion: an analytic Newton's-cradle cycle.  The left end marble is raised
and released; it swings down (quarter pendulum period), the impulse
transfers through the middle marbles, and the right marble swings out and
back (half period); then the left marble swings out again, completing the
cycle.  Only the two end marbles and their four strings ever move — a small
changing region per frame, which is precisely why this workload shows frame
coherence at its best, while the chrome reflections make the *static*
pixels expensive ("those pixels that did not change were not easily
calculated to begin with").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Cylinder, Plane, Sphere
from ..lighting import PointLight
from ..materials import Checker, Finish, Material
from ..rmath import Transform, vec3
from ..scene import Camera, FunctionAnimation, Scene

__all__ = ["CradleRig", "newton_scene", "newton_animation", "cradle_angles"]


@dataclass(frozen=True)
class CradleRig:
    """Geometry parameters of the cradle."""

    n_marbles: int = 5
    marble_radius: float = 0.4
    string_radius: float = 0.02
    frame_post_radius: float = 0.08
    rail_height: float = 3.2
    rail_half_sep: float = 0.9  # rails at z = +/- this
    marble_height: float = 1.0  # rest height of marble centers
    floor_y: float = 0.0

    @property
    def spacing(self) -> float:
        """Center-to-center distance of adjacent marbles (touching)."""
        return 2.0 * self.marble_radius

    def marble_rest_x(self, i: int) -> float:
        """Rest x of marble ``i`` (row centered on the origin)."""
        return (i - (self.n_marbles - 1) / 2.0) * self.spacing

    @property
    def pendulum_length(self) -> float:
        return self.rail_height - self.marble_height

    @property
    def frame_half_width(self) -> float:
        """X half-extent of the frame, with clearance for the swing."""
        return self.marble_rest_x(self.n_marbles - 1) + self.pendulum_length * 0.9


def cradle_angles(t: float, theta0: float, omega: float) -> tuple[float, float]:
    """Swing angles ``(theta_left, theta_right)`` at time ``t`` (radians).

    The cycle has period ``2*pi/omega`` split into four quarter-periods:
    left falls (theta0 -> 0), right rises and returns (0 -> theta0 -> 0),
    left rises (0 -> theta0).  Angles are magnitudes; each end marble swings
    *outward* from the row.
    """
    if theta0 < 0:
        raise ValueError("theta0 must be non-negative")
    if omega <= 0:
        raise ValueError("omega must be positive")
    quarter = (np.pi / 2.0) / omega
    phase = t % (4.0 * quarter)
    if phase < quarter:  # left swinging down
        return theta0 * np.cos(omega * phase), 0.0
    if phase < 3.0 * quarter:  # right swinging out and back
        return 0.0, theta0 * np.sin(omega * (phase - quarter))
    # left swinging back out
    return theta0 * np.sin(omega * (phase - 3.0 * quarter)), 0.0


def _string_endpoints(rig: CradleRig, i: int, z_sign: float) -> tuple[np.ndarray, np.ndarray]:
    """Rest endpoints of one suspension string of marble ``i``."""
    x = rig.marble_rest_x(i)
    top = vec3(x, rig.rail_height, z_sign * rig.rail_half_sep)
    bottom = vec3(x, rig.marble_height, 0.0)
    return top, bottom


def newton_scene(rig: CradleRig | None = None, width: int = 320, height: int = 240) -> Scene:
    """The cradle at rest (marble and string names carry their indices)."""
    rig = rig or CradleRig()
    chrome = Material.chrome(tint=(0.92, 0.92, 0.95), reflection=0.7)
    steel = Material(
        pigment=Material.matte((0.35, 0.35, 0.4)).pigment,
        finish=Finish(ambient=0.08, diffuse=0.5, specular=0.4, phong_size=60.0, reflection=0.15),
    )
    string_mat = Material.matte((0.75, 0.72, 0.65), ambient=0.15, diffuse=0.7)
    floor_mat = Material.textured(
        Checker((0.85, 0.85, 0.85), (0.25, 0.3, 0.35)).scaled(1.2),
        Finish(ambient=0.12, diffuse=0.75, reflection=0.08),
    )

    objects = [
        Plane.from_normal((0.0, 1.0, 0.0), rig.floor_y, material=floor_mat, name="floor"),
    ]

    # 5 marbles
    for i in range(rig.n_marbles):
        objects.append(
            Sphere.at(
                (rig.marble_rest_x(i), rig.marble_height, 0.0),
                rig.marble_radius,
                material=chrome,
                name=f"marble{i}",
            )
        )

    # 10 strings (2 per marble, to the two rails)
    for i in range(rig.n_marbles):
        for z_sign, side in ((1.0, "a"), (-1.0, "b")):
            top, bottom = _string_endpoints(rig, i, z_sign)
            objects.append(
                Cylinder.from_endpoints(
                    top, bottom, rig.string_radius, material=string_mat, name=f"string{i}{side}"
                )
            )

    # 4 legs + 2 rails
    hw = rig.frame_half_width
    hs = rig.rail_half_sep
    for lx, leg_x in ((0, -hw), (1, hw)):
        for lz, leg_z in ((0, -hs), (1, hs)):
            objects.append(
                Cylinder.from_endpoints(
                    vec3(leg_x, rig.floor_y, leg_z),
                    vec3(leg_x, rig.rail_height, leg_z),
                    rig.frame_post_radius,
                    material=steel,
                    name=f"leg{lx}{lz}",
                )
            )
    for rz, rail_z in ((0, -hs), (1, hs)):
        objects.append(
            Cylinder.from_endpoints(
                vec3(-hw, rig.rail_height, rail_z),
                vec3(hw, rig.rail_height, rail_z),
                rig.frame_post_radius,
                material=steel,
                name=f"rail{rz}",
            )
        )

    assert sum(isinstance(o, Plane) for o in objects) == 1
    assert sum(isinstance(o, Sphere) for o in objects) == 5
    assert sum(isinstance(o, Cylinder) for o in objects) == 16

    camera = Camera(
        position=(0.0, 2.2, -7.5),
        look_at=(0.0, 1.8, 0.0),
        fov_degrees=48.0,
        width=width,
        height=height,
    )
    scene = Scene(
        camera=camera,
        objects=objects,
        lights=[
            PointLight(vec3(-6.0, 8.0, -6.0), vec3(0.9, 0.9, 0.9)),
            PointLight(vec3(5.0, 6.0, -4.0), vec3(0.45, 0.45, 0.5)),
        ],
        background=vec3(0.05, 0.06, 0.1),
        max_depth=5,
    )
    return scene


def newton_animation(
    n_frames: int = 45,
    width: int = 320,
    height: int = 240,
    rig: CradleRig | None = None,
    swing_degrees: float = 35.0,
    cycles: float = 1.25,
) -> FunctionAnimation:
    """The Table-1 animation: ``n_frames`` of the cradle cycle.

    ``cycles`` controls how many full cradle periods the sequence spans.
    The camera is stationary throughout, as the coherence algorithm
    requires.
    """
    rig = rig or CradleRig()
    scene = newton_scene(rig, width=width, height=height)
    theta0 = np.radians(swing_degrees)
    # Choose omega so that n_frames covers `cycles` full periods.
    omega = 2.0 * np.pi * cycles / max(n_frames - 1, 1)

    left_i = 0
    right_i = rig.n_marbles - 1
    pivot_left = vec3(rig.marble_rest_x(left_i), rig.rail_height, 0.0)
    pivot_right = vec3(rig.marble_rest_x(right_i), rig.rail_height, 0.0)

    def swing_about(pivot: np.ndarray, signed_angle_fn):
        def motion(frame: int) -> Transform:
            angle = signed_angle_fn(float(frame))
            return (
                Transform.translate(*pivot)
                @ Transform.rotate_z(angle)
                @ Transform.translate(*(-pivot))
            )

        return motion

    def left_angle(t: float) -> float:
        th_l, _ = cradle_angles(t, theta0, omega)
        return +th_l  # +z rotation moves the hanging ball toward -x? see note

    def right_angle(t: float) -> float:
        _, th_r = cradle_angles(t, theta0, omega)
        return -th_r

    # Note on signs: rotate_z(a) maps a point below the pivot (0,-L) to
    # (L*sin a, -L*cos a) relative to the pivot, i.e. +a swings toward +x.
    # The left marble must swing outward toward -x (negative angle), the
    # right marble toward +x (positive angle).
    motions = {
        f"marble{left_i}": swing_about(pivot_left, lambda t: -left_angle(t)),
        f"string{left_i}a": swing_about(pivot_left, lambda t: -left_angle(t)),
        f"string{left_i}b": swing_about(pivot_left, lambda t: -left_angle(t)),
        f"marble{right_i}": swing_about(pivot_right, lambda t: -right_angle(t)),
        f"string{right_i}a": swing_about(pivot_right, lambda t: -right_angle(t)),
        f"string{right_i}b": swing_about(pivot_right, lambda t: -right_angle(t)),
    }
    return FunctionAnimation(scene, n_frames, motions=motions)
