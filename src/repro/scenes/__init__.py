"""Built-in workloads: the paper's two animations plus stress scenes."""

from .brick_room import bounce_position, brick_room_animation, brick_room_scene
from .newton import CradleRig, cradle_angles, newton_animation, newton_scene
from .orbit import ease_in_out_cubic, orbit_animation, orbit_scene
from .stress import random_spheres_animation, random_spheres_scene, two_shot_animation

__all__ = [
    "CradleRig",
    "bounce_position",
    "brick_room_animation",
    "brick_room_scene",
    "cradle_angles",
    "ease_in_out_cubic",
    "newton_animation",
    "newton_scene",
    "orbit_animation",
    "orbit_scene",
    "random_spheres_animation",
    "random_spheres_scene",
    "two_shot_animation",
]
