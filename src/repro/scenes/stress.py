"""Stress workloads: many-object scenes and camera-cut animations.

The paper's future work calls for "experimentation with large, complex
animations that can more fully benefit from the frame coherence
techniques"; these scenes provide that — a field of many spheres with a
few movers (exercising bounds culling and tight dirty sets), and a
multi-shot animation whose camera cuts force the coherent-sequence
segmentation machinery.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Plane, Sphere
from ..lighting import PointLight
from ..materials import Checker, Material
from ..rmath import Transform, vec3
from ..scene import Camera, FunctionAnimation, Scene

__all__ = ["random_spheres_scene", "random_spheres_animation", "two_shot_animation"]


def random_spheres_scene(
    n_spheres: int = 60, seed: int = 0, width: int = 160, height: int = 120
) -> Scene:
    """A floor plus ``n_spheres`` spheres of mixed materials, deterministic."""
    if n_spheres < 1:
        raise ValueError("need at least one sphere")
    rng = np.random.default_rng(seed)
    objects = [
        Plane.from_normal(
            (0, 1, 0),
            0.0,
            material=Material.textured(Checker((0.9, 0.9, 0.9), (0.2, 0.2, 0.25)).scaled(1.5)),
            name="floor",
        )
    ]
    for i in range(n_spheres):
        r = float(rng.uniform(0.15, 0.5))
        pos = (
            float(rng.uniform(-6, 6)),
            float(rng.uniform(r, 3.0)),
            float(rng.uniform(-2, 8)),
        )
        roll = rng.uniform()
        if roll < 0.2:
            mat = Material.chrome()
        elif roll < 0.3:
            mat = Material.glass()
        else:
            mat = Material.matte(tuple(rng.uniform(0.2, 0.95, 3)))
        objects.append(Sphere.at(pos, r, material=mat, name=f"ball{i:03d}"))

    camera = Camera(
        position=(0, 3.2, -9), look_at=(0, 1.2, 1.0), fov_degrees=58, width=width, height=height
    )
    return Scene(
        camera=camera,
        objects=objects,
        lights=[
            PointLight(vec3(-6, 9, -6), vec3(0.9, 0.9, 0.85)),
            PointLight(vec3(6, 7, -2), vec3(0.4, 0.4, 0.5)),
        ],
        background=vec3(0.1, 0.12, 0.2),
    )


def random_spheres_animation(
    n_frames: int = 10,
    n_spheres: int = 60,
    n_movers: int = 3,
    seed: int = 0,
    width: int = 160,
    height: int = 120,
) -> FunctionAnimation:
    """The sphere field with a few spheres orbiting; the rest are static."""
    if not (0 <= n_movers <= n_spheres):
        raise ValueError("n_movers must be within [0, n_spheres]")
    scene = random_spheres_scene(n_spheres, seed=seed, width=width, height=height)

    def orbit(i: int):
        phase = i * 2.1

        def motion(frame: int) -> Transform:
            a = 0.35 * frame + phase
            return Transform.translate(0.6 * np.cos(a), 0.25 * np.sin(2 * a) + 0.3, 0.6 * np.sin(a))

        return motion

    motions = {f"ball{i:03d}": orbit(i) for i in range(n_movers)}
    return FunctionAnimation(scene, n_frames, motions=motions)


def two_shot_animation(
    n_frames: int = 8, cut_at: int | None = None, width: int = 96, height: int = 72
) -> FunctionAnimation:
    """A cradle-free animation with a hard camera cut in the middle.

    The first shot views the spheres from the front, the second from the
    side; the coherence pipeline must split at the cut (the paper: "any
    camera movement logically separates one sequence from another").
    """
    cut_at = n_frames // 2 if cut_at is None else int(cut_at)
    if not (0 < cut_at < n_frames):
        raise ValueError("cut must be strictly inside the animation")
    scene = random_spheres_scene(12, seed=3, width=width, height=height)

    front = Camera(position=(0, 3.2, -9), look_at=(0, 1.2, 1.0), fov_degrees=58, width=width, height=height)
    side = Camera(position=(9, 2.5, 2.0), look_at=(0, 1.0, 2.0), fov_degrees=58, width=width, height=height)

    def camera_fn(frame: int) -> Camera:
        return front if frame < cut_at else side

    def bob(frame: int) -> Transform:
        return Transform.translate(0.0, 0.4 * abs(np.sin(0.6 * frame)), 0.0)

    return FunctionAnimation(scene, n_frames, motions={"ball000": bob}, camera_fn=camera_fn)
