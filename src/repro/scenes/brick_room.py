"""The glass-ball-in-a-brick-room animation (Figures 1 and 2).

"Figure 1 shows the first two scenes of a ray-traced animation in which a
glass ball bounces around a brick room."  A refractive sphere bounces under
gravity inside a room whose walls carry a procedural brick texture; the
camera is stationary.  The refracted/reflected view of the room through the
ball and the ball's shadow are what make the changed-pixel footprint
(Figure 2) larger than the ball's silhouette alone.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Plane, Sphere
from ..lighting import PointLight
from ..materials import Brick, Checker, Finish, Material
from ..rmath import Transform, vec3
from ..scene import Camera, FunctionAnimation, Scene

__all__ = ["brick_room_scene", "brick_room_animation", "bounce_position"]

_ROOM_HALF_X = 4.0
_ROOM_DEPTH = 6.0
_ROOM_HEIGHT = 5.0
_BALL_RADIUS = 0.7


def bounce_position(t: float, x_span: float = 2.2, period: float = 1.0) -> np.ndarray:
    """Ball center at normalized time ``t``: parabolic bounces drifting in x.

    ``t`` is in bounce periods; the ball bounces elastically off the floor
    (height follows ``|sin|``-squared arcs) while oscillating across the
    room in x.
    """
    # Height: repeated parabola h = h_max * 4*u*(1-u) with u = frac(t).
    u = t / period - np.floor(t / period)
    h_max = 2.2
    y = _BALL_RADIUS + h_max * 4.0 * u * (1.0 - u)
    # Horizontal drift: triangle-ish sweep via sine.
    x = x_span * np.sin(2.0 * np.pi * t / (6.0 * period))
    z = 1.2 * np.sin(2.0 * np.pi * t / (9.0 * period))
    return vec3(float(x), float(y), float(z))


def brick_room_scene(width: int = 320, height: int = 240) -> Scene:
    """The room with the glass ball at its t=0 position."""
    brick = Material.textured(
        Brick(
            brick_color=(0.55, 0.22, 0.18),
            mortar_color=(0.72, 0.7, 0.66),
            brick_size=(1.1, 0.4, 0.6),
            mortar=0.06,
        ),
        Finish(ambient=0.15, diffuse=0.8),
    )
    floor_mat = Material.textured(
        Checker((0.8, 0.78, 0.72), (0.4, 0.36, 0.3)),
        Finish(ambient=0.12, diffuse=0.8, reflection=0.05),
    )
    ceiling_mat = Material.matte((0.85, 0.85, 0.8), ambient=0.2, diffuse=0.7)
    glass = Material.glass(tint=(0.9, 0.97, 0.9), ior=1.5)

    hx, d, h = _ROOM_HALF_X, _ROOM_DEPTH, _ROOM_HEIGHT
    objects = [
        Plane.from_normal((0, 1, 0), 0.0, material=floor_mat, name="floor"),
        Plane.from_normal((0, -1, 0), -h, material=ceiling_mat, name="ceiling"),
        Plane.from_normal((0, 0, -1), -d, material=brick, name="back_wall"),
        Plane.from_normal((1, 0, 0), -hx, material=brick, name="left_wall"),
        Plane.from_normal((-1, 0, 0), -hx, material=brick, name="right_wall"),
        Sphere.at(bounce_position(0.0), _BALL_RADIUS, material=glass, name="ball"),
    ]

    camera = Camera(
        position=(0.0, 2.0, -7.0),
        look_at=(0.0, 1.8, 0.0),
        fov_degrees=55.0,
        width=width,
        height=height,
    )
    return Scene(
        camera=camera,
        objects=objects,
        lights=[
            PointLight(vec3(0.0, 4.5, -3.0), vec3(0.95, 0.95, 0.9)),
            PointLight(vec3(-2.5, 3.5, -5.5), vec3(0.35, 0.35, 0.4)),
        ],
        background=vec3(0.02, 0.02, 0.03),
        max_depth=5,
    )


def brick_room_animation(
    n_frames: int = 30, width: int = 320, height: int = 240, frames_per_bounce: float = 12.0
) -> FunctionAnimation:
    """The bouncing glass ball, stationary camera."""
    scene = brick_room_scene(width=width, height=height)
    p0 = bounce_position(0.0)

    def motion(frame: int) -> Transform:
        p = bounce_position(frame / frames_per_bounce)
        delta = p - p0
        return Transform.translate(*delta)

    return FunctionAnimation(scene, n_frames, motions={"ball": motion})
