"""Orbit workload: an easing-curve camera sweep around a sphere cluster.

The sharded renderer's natural prey is a *moving camera*: frame
coherence dies the moment the eye moves (every frame is a camera cut),
but the object-space shard map barely changes, so workers keep their
owned geometry warm while the master re-aims the wavefront.  This
workload provides that regime — the camera rides a full orbit around a
reflective cluster, its azimuth driven by a QEasingCurve-style
ease-in-out cubic so it launches gently, sweeps fast over the far side,
and brakes into the final frame.

Because the camera differs at every frame,
:func:`~repro.scene.animation.split_coherent_sequences` degenerates to
one range per frame — the property ``tests/test_shard.py`` pins, and the
reason the CLI's coherent engines treat ``orbit`` as worst-case input.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Plane, Sphere
from ..lighting import PointLight
from ..materials import Checker, Material
from ..rmath import vec3
from ..scene import Camera, FunctionAnimation, Scene

__all__ = ["ease_in_out_cubic", "orbit_animation", "orbit_scene"]


def ease_in_out_cubic(t: float) -> float:
    """QEasingCurve.InOutCubic: slow-fast-slow over ``t`` in [0, 1]."""
    t = min(1.0, max(0.0, float(t)))
    if t < 0.5:
        return 4.0 * t * t * t
    u = 2.0 * t - 2.0
    return 0.5 * u * u * u + 1.0


def orbit_scene(width: int = 160, height: int = 120) -> Scene:
    """A checkered floor and a ring of mixed-material spheres around a
    chrome centerpiece — enough occlusion structure that a spatial-median
    split yields shards with genuinely disjoint domains."""
    objects = [
        Plane.from_normal(
            (0, 1, 0),
            0.0,
            material=Material.textured(Checker((0.85, 0.85, 0.9), (0.15, 0.15, 0.2)).scaled(1.2)),
            name="floor",
        ),
        Sphere.at((0.0, 1.1, 0.0), 1.1, material=Material.chrome(), name="core"),
    ]
    palette = [
        (0.85, 0.25, 0.2),
        (0.2, 0.65, 0.85),
        (0.9, 0.75, 0.2),
        (0.35, 0.8, 0.35),
        (0.7, 0.4, 0.85),
        (0.9, 0.55, 0.3),
    ]
    n_ring = len(palette)
    for i, color in enumerate(palette):
        phi = 2.0 * np.pi * i / n_ring
        pos = (2.6 * np.cos(phi), 0.55, 2.6 * np.sin(phi))
        mat = Material.glass() if i == n_ring - 1 else Material.matte(color)
        objects.append(Sphere.at(pos, 0.55, material=mat, name=f"orb{i}"))

    camera = Camera(
        position=(0.0, 2.4, -7.0),
        look_at=(0.0, 0.9, 0.0),
        fov_degrees=55,
        width=width,
        height=height,
    )
    return Scene(
        camera=camera,
        objects=objects,
        lights=[
            PointLight(vec3(-5, 8, -5), vec3(0.95, 0.95, 0.9)),
            PointLight(vec3(5, 6, -1), vec3(0.35, 0.38, 0.45)),
        ],
        background=vec3(0.08, 0.1, 0.16),
    )


def orbit_animation(
    n_frames: int = 24,
    width: int = 160,
    height: int = 120,
    radius: float = 7.0,
    elevation: float = 2.4,
    cycles: float = 1.0,
    easing=ease_in_out_cubic,
) -> FunctionAnimation:
    """``n_frames`` of the eased camera orbit (objects stay put).

    ``cycles`` full revolutions are covered; the azimuth at frame ``f``
    is ``2*pi*cycles * easing(f / (n_frames - 1))``, so spacing between
    consecutive frames follows the easing curve's velocity profile.
    """
    scene = orbit_scene(width=width, height=height)
    look_at = (0.0, 0.9, 0.0)
    start = -np.pi / 2.0  # frame 0 matches orbit_scene's camera at (0, ., -r)
    denom = max(n_frames - 1, 1)

    def camera_fn(frame: int) -> Camera:
        theta = start + 2.0 * np.pi * cycles * easing(frame / denom)
        position = (
            radius * np.cos(theta),
            elevation,
            radius * np.sin(theta),
        )
        return Camera(
            position=position,
            look_at=look_at,
            fov_degrees=55,
            width=width,
            height=height,
        )

    return FunctionAnimation(scene, n_frames, camera_fn=camera_fn)
