"""Minimal discrete-event simulation engine.

A priority queue of timestamped callbacks with a deterministic tie-break
(insertion order), plus a FIFO resource primitive used to model serially
shared hardware — the Ethernet segment, each workstation's CPU and its local
disk.  Virtual time is a float in seconds and is completely decoupled from
wall-clock time, so simulated Table-1 runs are reproducible to the bit.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["Simulator", "FifoResource"]


class Simulator:
    """Run-to-completion discrete-event loop."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def schedule_at(self, t: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute virtual time ``t`` (>= now)."""
        if t < self.now - 1e-12:
            raise ValueError(f"cannot schedule into the past ({t} < {self.now})")
        heapq.heappush(self._heap, (max(t, self.now), self._seq, fn))
        self._seq += 1

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_at(self.now + delay, fn)

    def run(self, until: float = float("inf")) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the final virtual time.
        """
        while self._heap:
            t, _, fn = self._heap[0]
            if t > until:
                break
            heapq.heappop(self._heap)
            self.now = t
            fn()
        if until != float("inf") and (not self._heap or self._heap[0][0] > until):
            self.now = max(self.now, until) if self._heap else self.now
        return self.now

    @property
    def pending(self) -> int:
        return len(self._heap)


class FifoResource:
    """A resource that serves one request at a time, in arrival order.

    ``acquire(duration, fn)`` books the earliest available slot of length
    ``duration`` and schedules ``fn`` at its completion time.  Because our
    workloads are run-to-completion (a message transfer, a render task, a
    file write), a busy-until watermark is sufficient — no preemption.
    """

    def __init__(self, sim: Simulator, name: str = "resource"):
        self.sim = sim
        self.name = name
        self._busy_until = 0.0
        self.total_busy = 0.0
        self.n_served = 0

    def acquire(self, duration: float, fn: Callable[[float, float], None]) -> tuple[float, float]:
        """Reserve the resource for ``duration``; call ``fn(start, end)`` at ``end``.

        Returns the booked ``(start, end)`` interval immediately (useful for
        tracing).
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(self.sim.now, self._busy_until)
        end = start + duration
        self._busy_until = end
        self.total_busy += duration
        self.n_served += 1
        self.sim.schedule_at(end, lambda: fn(start, end))
        return start, end

    @property
    def available_at(self) -> float:
        return max(self._busy_until, self.sim.now)

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` spent busy."""
        return self.total_busy / horizon if horizon > 0 else 0.0
