"""Text timelines (Gantt charts) of simulated cluster runs.

Enable ``pvm.tracing = True`` before ``pvm.run()`` and feed the finished
virtual machine to :func:`render_timeline`:

::

    indigo2-200 |################# ##########################| 93% busy
    indigo2-100 |#######  ########################  #########| 87% busy
    indigo-100  |######## #######################  ##########| 86% busy
    ethernet    |  . .   .    .  .    . .   .  .    .  .     | 41 msgs

One character is one time bucket; ``#`` marks CPU-busy buckets, ``.``
marks buckets with wire traffic.  This is the picture behind the load-
balance claims of the paper's Section 3.
"""

from __future__ import annotations

import numpy as np

from .pvm import VirtualPVM

__all__ = ["render_timeline", "machine_busy_intervals"]


def machine_busy_intervals(pvm: VirtualPVM) -> dict[str, list[tuple[float, float]]]:
    """Per-machine CPU-busy intervals from a traced run."""
    out: dict[str, list[tuple[float, float]]] = {name: [] for name in pvm.machines}
    for ev in pvm.events:
        if ev[0] == "compute":
            _, machine, _task, start, end = ev
            out[machine].append((start, end))
    return out


def _bucket_fill(intervals: list[tuple[float, float]], horizon: float, width: int) -> np.ndarray:
    """Fraction of each of ``width`` buckets covered by the intervals."""
    fill = np.zeros(width)
    if horizon <= 0:
        return fill
    scale = width / horizon
    for start, end in intervals:
        a = max(0.0, start * scale)
        b = min(float(width), end * scale)
        if b <= a:
            continue
        i0, i1 = int(a), min(int(np.ceil(b)), width)
        for i in range(i0, i1):
            lo = max(a, i)
            hi = min(b, i + 1)
            fill[i] += max(0.0, hi - lo)
    return np.clip(fill, 0.0, 1.0)


def render_timeline(pvm: VirtualPVM, width: int = 64) -> str:
    """Render the traced run as a per-machine text Gantt chart."""
    if not pvm.events:
        raise ValueError(
            "no events recorded — set pvm.tracing = True before running"
        )
    if width < 8:
        raise ValueError("width must be >= 8")
    horizon = pvm.sim.now
    lines = [f"virtual time 0 .. {horizon:.2f}s ({width} buckets)"]
    name_w = max(len(n) for n in pvm.machines) if pvm.machines else 8

    busy = machine_busy_intervals(pvm)
    for name in pvm.machines:
        fill = _bucket_fill(busy[name], horizon, width)
        chars = np.where(fill > 0.66, "#", np.where(fill > 0.05, "+", " "))
        pct = sum(e - s for s, e in busy[name]) / horizon if horizon else 0.0
        lines.append(f"{name:>{name_w}s} |{''.join(chars)}| {pct:4.0%} busy")

    wire = [(ev[5], ev[6]) for ev in pvm.events if ev[0] == "send"]
    fill = _bucket_fill(wire, horizon, width)
    chars = np.where(fill > 0.66, "#", np.where(fill > 0.01, ".", " "))
    lines.append(f"{'ethernet':>{name_w}s} |{''.join(chars)}| {len(wire)} msgs")
    return "\n".join(lines)
