"""Workstation models.

The paper's testbed: "one SGI Indigo 2 running at 200 MHz with 64 MB of
memory, one SGI Indigo 2 running at 100 MHz with 32 MB of memory and one SGI
Indigo also running at 100 MHz with 32 MB of memory."  Speeds are relative
work-unit rates (the 200 MHz machine "runs twice as fast as each of the
other two"); the memory figure drives the thrashing penalty that explains
why frame division (small per-node working sets) beats the multiplicative
expectation in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Machine", "ncsu_testbed", "homogeneous_cluster", "ThrashModel"]


@dataclass(frozen=True)
class Machine:
    """A workstation in the NOW.

    Attributes
    ----------
    name:
        Unique identifier.
    speed:
        Relative compute rate (work units per second multiplier).  The
        calibration constant ``sec_per_work_unit`` is defined for a machine
        of speed 1.0.
    memory_mb:
        Physical memory available to the render process.
    disk_mb_per_s:
        Local/NFS write bandwidth for image output.
    """

    name: str
    speed: float
    memory_mb: float
    disk_mb_per_s: float = 5.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError("machine speed must be positive")
        if self.memory_mb <= 0:
            raise ValueError("machine memory must be positive")
        if self.disk_mb_per_s <= 0:
            raise ValueError("disk bandwidth must be positive")


@dataclass(frozen=True)
class ThrashModel:
    """Slowdown applied when a task's working set exceeds physical memory.

    ``factor = 1 + alpha * excess**exponent`` with
    ``excess = max(0, ws/mem - 1)``.

    A sublinear exponent (default 1/3) models that paging penalties grow
    slowly: the hot fraction of the working set (the pixel lists of the
    actively changing region) stays resident and only the cold tail pages.
    This shape is what reconciles Table 1: a full-frame coherence chain
    (~75 MB at 320x240) slows the 64 MB machine ~17% — the paper's
    "aggregate memory" bonus for distributed runs — while still letting
    the 32 MB machines make useful progress in sequence division (~30%
    slowdown).

    ``alpha = 0`` disables the model; ``exponent = 1`` gives a plain
    linear penalty.
    """

    alpha: float = 0.30
    exponent: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be >= 0")
        if self.exponent <= 0:
            raise ValueError("exponent must be positive")

    def slowdown(self, working_set_mb: float, memory_mb: float) -> float:
        if working_set_mb <= 0:
            return 1.0
        excess = max(0.0, working_set_mb / memory_mb - 1.0)
        if excess == 0.0:
            return 1.0
        return 1.0 + self.alpha * float(np.power(excess, self.exponent))


def ncsu_testbed() -> list[Machine]:
    """The three SGI machines of the paper's Multimedia Lab, fastest first.

    The single-processor baselines of Table 1 ran on ``indigo2-200``.
    """
    return [
        Machine("indigo2-200", speed=2.0, memory_mb=64.0),
        Machine("indigo2-100", speed=1.0, memory_mb=32.0),
        Machine("indigo-100", speed=1.0, memory_mb=32.0),
    ]


def homogeneous_cluster(n: int, speed: float = 1.0, memory_mb: float = 64.0) -> list[Machine]:
    """``n`` identical workstations (the paper's "more homogeneous" future test)."""
    if n < 1:
        raise ValueError("cluster needs at least one machine")
    return [Machine(f"node{i:02d}", speed=speed, memory_mb=memory_mb) for i in range(n)]
