"""A PVM-like message-passing layer over the discrete-event simulator.

The paper coordinates its workstations with PVM 3.1 ("message-passing
systems, such as PVM and MPI, are robust, easy to use, and available
without cost").  This module reproduces the programming model: tasks are
sequential programs that compute, ``send`` and ``recv``; the master/slave
renderers in :mod:`repro.parallel` are written against it exactly as the
C originals were written against ``pvm_send``/``pvm_recv``.

Tasks are Python generators.  They *yield* requests and are resumed with
the result once the simulated operation completes:

    def worker(ctx):
        while True:
            msg = yield Recv()
            if msg.tag == "stop":
                return
            yield Compute(units=msg.payload["work"], working_set_mb=12.0)
            yield Send(msg.src, nbytes=4096, payload=result, tag="done")

Virtual-time semantics:

* ``Compute(units)`` occupies the task's machine CPU for
  ``units * sec_per_unit / machine.speed * thrash`` seconds; tasks sharing
  a machine serialize.
* ``Send`` occupies the shared Ethernet; the sender blocks until the
  message leaves the wire (a synchronous ``pvm_send`` on 10BASE-T).
* ``Recv`` blocks until a matching message is in the task's mailbox.
* ``WriteFile(nbytes)`` occupies the machine's disk.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Generator

from .event import FifoResource, Simulator
from .machine import Machine, ThrashModel
from .network import Ethernet

__all__ = [
    "Compute",
    "Recv",
    "Send",
    "Sleep",
    "WriteFile",
    "Message",
    "TaskContext",
    "VirtualPVM",
    "DeadlockError",
]


# -- requests a task may yield -------------------------------------------------
@dataclass(frozen=True)
class Compute:
    """Burn CPU for ``units`` work units (rays, in the render programs)."""

    units: float
    working_set_mb: float = 0.0


@dataclass(frozen=True)
class Send:
    """Transmit ``payload`` (modelled size ``nbytes``) to task ``dst``."""

    dst: int
    nbytes: int
    payload: Any = None
    tag: str = ""


@dataclass(frozen=True)
class Recv:
    """Wait for the next message (optionally restricted to ``tag``).

    With ``timeout`` set, the task resumes with ``None`` after that many
    virtual seconds if no matching message arrived — the primitive a
    fault-tolerant master needs to detect dead workers.
    """

    tag: str | None = None
    timeout: float | None = None


@dataclass(frozen=True)
class WriteFile:
    """Write ``nbytes`` to the local disk (image output)."""

    nbytes: int


@dataclass(frozen=True)
class Sleep:
    """Idle for ``dt`` virtual seconds."""

    dt: float


@dataclass(frozen=True)
class Message:
    """What ``Recv`` resolves to."""

    src: int
    tag: str
    payload: Any
    nbytes: int


class DeadlockError(RuntimeError):
    """The event queue drained while tasks were still blocked in Recv."""


@dataclass
class TaskContext:
    """Per-task runtime state (also handed to programs for introspection)."""

    tid: int
    name: str
    machine: Machine
    mailbox: deque = field(default_factory=deque)
    waiting_tag: str | None = None
    blocked: bool = False
    finished: bool = False
    dead: bool = False
    result: Any = None
    compute_seconds: float = 0.0
    units_computed: float = 0.0
    wait_seq: int = 0  # invalidates stale Recv timeouts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<task {self.tid} {self.name!r} on {self.machine.name}>"


class VirtualPVM:
    """The virtual machine: workstations + Ethernet + task scheduler.

    Parameters
    ----------
    machines:
        The workstation pool.  Task placement is by machine name.
    sec_per_work_unit:
        Seconds a speed-1.0 machine needs per work unit.  The Table-1
        calibration sets this from the paper's column (1).
    thrash:
        Memory-pressure model (see :class:`ThrashModel`).
    ethernet_kwargs:
        Forwarded to :class:`Ethernet`.
    """

    def __init__(
        self,
        machines: list[Machine],
        sec_per_work_unit: float = 1.0,
        thrash: ThrashModel | None = None,
        **ethernet_kwargs,
    ):
        if not machines:
            raise ValueError("need at least one machine")
        names = [m.name for m in machines]
        if len(names) != len(set(names)):
            raise ValueError("machine names must be unique")
        if sec_per_work_unit <= 0:
            raise ValueError("sec_per_work_unit must be positive")
        self.sim = Simulator()
        self.machines = {m.name: m for m in machines}
        self.ethernet = Ethernet(self.sim, **ethernet_kwargs)
        self.sec_per_work_unit = float(sec_per_work_unit)
        self.thrash = thrash if thrash is not None else ThrashModel(alpha=0.0)
        self._cpus = {m.name: FifoResource(self.sim, f"cpu:{m.name}") for m in machines}
        self._disks = {m.name: FifoResource(self.sim, f"disk:{m.name}") for m in machines}
        self._tasks: dict[int, TaskContext] = {}
        self._gens: dict[int, Generator] = {}
        self._next_tid = 1
        self.trace: list[tuple[float, str, str]] = []
        self.tracing = False
        #: Structured activity records, populated when ``tracing`` is on:
        #: ("compute", machine, task_name, start, end),
        #: ("send", src_name, dst_name, tag, nbytes, start, end),
        #: ("write", machine, task_name, start, end).
        self.events: list[tuple] = []

    # -- task management -----------------------------------------------------
    def spawn(self, program: Generator, machine_name: str, name: str | None = None) -> int:
        """Register a task generator on a machine; returns its tid.

        The generator starts running at virtual time 0 (or at spawn time if
        spawned mid-simulation — the paper's adaptive schemes do not need
        dynamic spawning, but it works).
        """
        if machine_name not in self.machines:
            raise KeyError(f"unknown machine {machine_name!r}")
        tid = self._next_tid
        self._next_tid += 1
        ctx = TaskContext(tid=tid, name=name or f"task{tid}", machine=self.machines[machine_name])
        self._tasks[tid] = ctx
        self._gens[tid] = program
        self.sim.schedule(0.0, lambda: self._step(tid, None))
        return tid

    def task(self, tid: int) -> TaskContext:
        """The :class:`TaskContext` of a spawned task."""
        return self._tasks[tid]

    @property
    def tasks(self) -> dict[int, TaskContext]:
        return self._tasks

    def _log(self, kind: str, detail: str) -> None:
        if self.tracing:
            self.trace.append((self.sim.now, kind, detail))

    # -- the scheduler ---------------------------------------------------------
    def _step(self, tid: int, value: Any) -> None:
        ctx = self._tasks[tid]
        if ctx.dead or ctx.finished:
            return  # a crashed machine's tasks never run again
        gen = self._gens[tid]
        try:
            req = gen.send(value)
        except StopIteration as stop:
            ctx.finished = True
            ctx.result = stop.value
            self._log("finish", ctx.name)
            return
        self._dispatch(tid, req)

    def _dispatch(self, tid: int, req: Any) -> None:
        ctx = self._tasks[tid]
        if isinstance(req, Compute):
            slowdown = self.thrash.slowdown(req.working_set_mb, ctx.machine.memory_mb)
            duration = req.units * self.sec_per_work_unit / ctx.machine.speed * slowdown
            ctx.compute_seconds += duration
            ctx.units_computed += req.units
            self._log("compute", f"{ctx.name} {req.units:.0f}u {duration:.3f}s x{slowdown:.2f}")
            start, end = self._cpus[ctx.machine.name].acquire(
                duration, lambda s, e: self._step(tid, None)
            )
            if self.tracing:
                self.events.append(("compute", ctx.machine.name, ctx.name, start, end))
        elif isinstance(req, Send):
            if req.dst not in self._tasks:
                raise KeyError(f"send to unknown tid {req.dst}")
            msg = Message(src=tid, tag=req.tag, payload=req.payload, nbytes=req.nbytes)
            self._log("send", f"{ctx.name} -> {self._tasks[req.dst].name} {req.tag} {req.nbytes}B")

            def delivered(msg=msg, dst=req.dst, sender=tid):
                self._deliver(dst, msg)
                self._step(sender, None)

            if self.tracing:
                wire = self.ethernet.transfer_time(req.nbytes)
                start = self.ethernet._medium.available_at
                self.events.append(
                    (
                        "send",
                        ctx.name,
                        self._tasks[req.dst].name,
                        req.tag,
                        req.nbytes,
                        start,
                        start + wire,
                    )
                )
            self.ethernet.transmit(req.nbytes, delivered)
        elif isinstance(req, Recv):
            idx = self._find_message(ctx, req.tag)
            if idx is not None:
                msg = ctx.mailbox[idx]
                del ctx.mailbox[idx]
                self.sim.schedule(0.0, lambda: self._step(tid, msg))
            else:
                ctx.blocked = True
                ctx.waiting_tag = req.tag
                ctx.wait_seq += 1
                if req.timeout is not None:
                    if req.timeout < 0:
                        raise ValueError("Recv timeout must be non-negative")
                    seq = ctx.wait_seq

                    def expire(tid=tid, seq=seq):
                        c = self._tasks[tid]
                        if c.blocked and c.wait_seq == seq and not c.dead:
                            c.blocked = False
                            c.waiting_tag = None
                            self._log("recv-timeout", c.name)
                            self._step(tid, None)

                    self.sim.schedule(req.timeout, expire)
        elif isinstance(req, WriteFile):
            duration = req.nbytes / (ctx.machine.disk_mb_per_s * 1e6)
            self._log("write", f"{ctx.name} {req.nbytes}B {duration:.3f}s")
            start, end = self._disks[ctx.machine.name].acquire(
                duration, lambda s, e: self._step(tid, None)
            )
            if self.tracing:
                self.events.append(("write", ctx.machine.name, ctx.name, start, end))
        elif isinstance(req, Sleep):
            if req.dt < 0:
                raise ValueError("Sleep.dt must be non-negative")
            self.sim.schedule(req.dt, lambda: self._step(tid, None))
        else:
            raise TypeError(f"task {ctx.name!r} yielded unknown request {req!r}")

    @staticmethod
    def _find_message(ctx: TaskContext, tag: str | None) -> int | None:
        for i, msg in enumerate(ctx.mailbox):
            if tag is None or msg.tag == tag:
                return i
        return None

    def _deliver(self, dst: int, msg: Message) -> None:
        ctx = self._tasks[dst]
        if ctx.dead:
            self._log("drop", f"message to dead task {ctx.name}")
            return
        ctx.mailbox.append(msg)
        if ctx.blocked:
            idx = self._find_message(ctx, ctx.waiting_tag)
            if idx is not None:
                m = ctx.mailbox[idx]
                del ctx.mailbox[idx]
                ctx.blocked = False
                ctx.waiting_tag = None
                self.sim.schedule(0.0, lambda: self._step(dst, m))

    # -- failures -----------------------------------------------------------
    def fail_machine(self, machine_name: str, at_time: float) -> None:
        """Crash a workstation at virtual time ``at_time``.

        Every task placed on it dies permanently: in-flight computations
        never complete, queued messages to its tasks are dropped, and it
        never sends again.  This is the failure model a fault-tolerant
        master (see :mod:`repro.parallel.fault_tolerance`) must survive.
        """
        if machine_name not in self.machines:
            raise KeyError(f"unknown machine {machine_name!r}")

        def crash():
            for ctx in self._tasks.values():
                if ctx.machine.name == machine_name and not ctx.finished:
                    ctx.dead = True
                    ctx.blocked = False
            self._log("crash", machine_name)

        self.sim.schedule_at(at_time, crash)

    # -- running ---------------------------------------------------------------
    def run(self) -> float:
        """Run to completion; returns the final virtual time.

        Raises :class:`DeadlockError` if live tasks remain blocked when the
        event queue drains (a protocol bug in the master/worker programs).
        Dead tasks (crashed machines) are exempt.
        """
        end = self.sim.run()
        stuck = [c for c in self._tasks.values() if not c.finished and not c.dead]
        if stuck:
            raise DeadlockError(
                "simulation drained with blocked tasks: "
                + ", ".join(f"{c.name}(waiting tag={c.waiting_tag!r})" for c in stuck)
            )
        return end

    def results(self) -> dict[str, Any]:
        """Task name -> returned value."""
        return {c.name: c.result for c in self._tasks.values()}

    def cpu_busy_seconds(self) -> dict[str, float]:
        """Per-machine CPU busy time (for utilization/load-balance metrics)."""
        return {name: cpu.total_busy for name, cpu in self._cpus.items()}
