"""Shared-medium Ethernet model.

The paper's cluster is connected by "the ethernet network, which is
relatively slow compared to interconnection networks found on
multiprocessor machines" — classic 10 Mbit/s shared (hubbed) Ethernet, on
which at most one frame is on the wire at a time.  We model the segment as
a FIFO resource: a transfer occupies the medium for ``latency +
bytes/bandwidth`` seconds, and concurrent transfers serialize.
"""

from __future__ import annotations

from .event import FifoResource, Simulator

__all__ = ["Ethernet"]


class Ethernet:
    """A shared Ethernet segment.

    Parameters
    ----------
    bandwidth_bits_per_s:
        Raw signalling rate; default 10 Mbit/s (1998 lab Ethernet).
    latency_s:
        Fixed per-message cost: protocol stack + PVM packing + propagation.
    efficiency:
        Fraction of raw bandwidth achievable by a user process (CSMA/CD,
        IP + PVM header overhead); 0.7 is a conventional figure for TCP on
        10BASE-T.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bits_per_s: float = 10e6,
        latency_s: float = 1.5e-3,
        efficiency: float = 0.7,
    ):
        if bandwidth_bits_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        if not (0 < efficiency <= 1):
            raise ValueError("efficiency must be in (0, 1]")
        self.sim = sim
        self.bandwidth_bytes_per_s = bandwidth_bits_per_s * efficiency / 8.0
        self.latency_s = latency_s
        self._medium = FifoResource(sim, "ethernet")
        self.bytes_carried = 0
        self.n_messages = 0

    def transfer_time(self, nbytes: int) -> float:
        """Wire time of one message of ``nbytes`` payload."""
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def transmit(self, nbytes: int, on_delivered) -> None:
        """Queue a message; ``on_delivered()`` fires when it leaves the wire."""
        self.bytes_carried += int(nbytes)
        self.n_messages += 1
        self._medium.acquire(self.transfer_time(nbytes), lambda s, e: on_delivered())

    @property
    def busy_seconds(self) -> float:
        return self._medium.total_busy

    def utilization(self, horizon: float) -> float:
        return self._medium.utilization(horizon)
