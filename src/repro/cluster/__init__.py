"""NOW substrate: discrete-event cluster simulation with a PVM-like API."""

from .event import FifoResource, Simulator
from .machine import Machine, ThrashModel, homogeneous_cluster, ncsu_testbed
from .network import Ethernet
from .pvm import (
    Compute,
    DeadlockError,
    Message,
    Recv,
    Send,
    Sleep,
    TaskContext,
    VirtualPVM,
    WriteFile,
)
from .timeline import machine_busy_intervals, render_timeline

__all__ = [
    "Compute",
    "DeadlockError",
    "Ethernet",
    "FifoResource",
    "Machine",
    "Message",
    "Recv",
    "Send",
    "Simulator",
    "Sleep",
    "TaskContext",
    "ThrashModel",
    "VirtualPVM",
    "WriteFile",
    "homogeneous_cluster",
    "machine_busy_intervals",
    "ncsu_testbed",
    "render_timeline",
]
