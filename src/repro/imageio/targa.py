"""Targa (TGA) image output.

"The POV-Ray renderer generated animation frames with [320x240] resolution
in targa format with 24-bit color."  We implement the uncompressed 24-bit
true-color TGA type 2 format (and read it back for tests).  TGA stores
pixels bottom-up, BGR.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

__all__ = ["write_targa", "read_targa", "targa_nbytes"]

_HEADER = struct.Struct("<BBBHHBHHHHBB")


def targa_nbytes(width: int, height: int) -> int:
    """On-disk size of a 24-bit uncompressed TGA — the file-write cost the
    cluster simulator charges the master per frame."""
    return _HEADER.size + width * height * 3


def write_targa(path: str | Path, image: np.ndarray) -> int:
    """Write an ``(H, W, 3)`` image to ``path``.

    ``image`` may be uint8 or float in [0, 1] (converted).  Returns the
    number of bytes written.
    """
    img = np.asarray(image)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ValueError("image must be (H, W, 3)")
    if img.dtype != np.uint8:
        img = (np.clip(img.astype(np.float64), 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    h, w, _ = img.shape
    header = _HEADER.pack(
        0,  # id length
        0,  # no color map
        2,  # uncompressed true color
        0, 0, 0,  # color map spec
        0, 0,  # origin
        w, h,
        24,  # bits per pixel
        0,  # descriptor: bottom-up, no alpha
    )
    # Bottom-up scanline order, BGR channel order.
    body = img[::-1, :, ::-1].tobytes()
    data = header + body
    Path(path).write_bytes(data)
    return len(data)


def read_targa(path: str | Path) -> np.ndarray:
    """Read a 24-bit uncompressed TGA back as an ``(H, W, 3)`` uint8 array."""
    data = Path(path).read_bytes()
    if len(data) < _HEADER.size:
        raise ValueError("truncated TGA header")
    (
        id_len,
        cmap_type,
        img_type,
        _cm0, _cm1, _cm2,
        _x0, _y0,
        w, h,
        bpp,
        desc,
    ) = _HEADER.unpack_from(data)
    if img_type != 2 or cmap_type != 0 or bpp != 24:
        raise ValueError("only uncompressed 24-bit true-color TGA is supported")
    offset = _HEADER.size + id_len
    need = offset + w * h * 3
    if len(data) < need:
        raise ValueError("truncated TGA body")
    body = np.frombuffer(data, dtype=np.uint8, count=w * h * 3, offset=offset)
    img = body.reshape(h, w, 3)[:, :, ::-1]  # BGR -> RGB
    if not (desc & 0x20):  # bottom-up unless top-origin bit set
        img = img[::-1]
    return np.ascontiguousarray(img)
