"""PPM output — a human-toolable secondary format for examples and docs."""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["write_ppm", "read_ppm"]


def write_ppm(path: str | Path, image: np.ndarray) -> int:
    """Write an ``(H, W, 3)`` uint8/float image as binary PPM (P6)."""
    img = np.asarray(image)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ValueError("image must be (H, W, 3)")
    if img.dtype != np.uint8:
        img = (np.clip(img.astype(np.float64), 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    h, w, _ = img.shape
    header = f"P6\n{w} {h}\n255\n".encode("ascii")
    data = header + img.tobytes()
    Path(path).write_bytes(data)
    return len(data)


def read_ppm(path: str | Path) -> np.ndarray:
    """Read a binary PPM (P6) as ``(H, W, 3)`` uint8."""
    data = Path(path).read_bytes()
    # Parse header tokens: magic, width, height, maxval (comments allowed).
    tokens: list[bytes] = []
    i = 0
    while len(tokens) < 4:
        if i >= len(data):
            raise ValueError("truncated PPM header")
        if data[i : i + 1] == b"#":
            while i < len(data) and data[i : i + 1] != b"\n":
                i += 1
            i += 1
            continue
        if data[i : i + 1].isspace():
            i += 1
            continue
        j = i
        while j < len(data) and not data[j : j + 1].isspace():
            j += 1
        tokens.append(data[i:j])
        i = j
    if tokens[0] != b"P6":
        raise ValueError("not a binary PPM (P6) file")
    w, h, maxval = int(tokens[1]), int(tokens[2]), int(tokens[3])
    if maxval != 255:
        raise ValueError("only maxval 255 supported")
    i += 1  # single whitespace after maxval
    body = np.frombuffer(data, dtype=np.uint8, count=w * h * 3, offset=i)
    return body.reshape(h, w, 3).copy()
