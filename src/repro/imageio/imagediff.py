"""Image differencing utilities (Figure 2).

Figure 2(a) is "actual pixel differences between frames"; Figure 2(b) is
"pixel differences as computed by the frame coherence algorithm" — a
binary mask image in both cases (white = changed / recompute).  These
helpers build those mask images from framebuffers and pixel sets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["difference_mask_image", "pixel_set_image", "mask_stats"]


def difference_mask_image(image_a: np.ndarray, image_b: np.ndarray, tol: float = 0.0) -> np.ndarray:
    """White-on-black ``(H, W)`` uint8 mask of pixels that differ."""
    a = np.asarray(image_a, dtype=np.float64)
    b = np.asarray(image_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("image shapes differ")
    changed = np.any(np.abs(a - b) > tol, axis=-1)
    return np.where(changed, np.uint8(255), np.uint8(0))


def pixel_set_image(pixel_ids: np.ndarray, width: int, height: int) -> np.ndarray:
    """White-on-black ``(H, W)`` uint8 mask of a flat pixel-index set."""
    mask = np.zeros(width * height, dtype=np.uint8)
    ids = np.asarray(pixel_ids, dtype=np.int64)
    if ids.size and (ids.min() < 0 or ids.max() >= mask.size):
        raise IndexError("pixel index out of range")
    mask[ids] = 255
    return mask.reshape(height, width)


def mask_stats(actual: np.ndarray, predicted: np.ndarray) -> dict[str, float]:
    """Coverage statistics of a predicted mask vs the actual mask.

    Both are (H, W) uint8/bool.  ``missed`` must be 0 for a conservative
    predictor; ``overprediction`` is predicted/actual pixel-count ratio.
    """
    a = np.asarray(actual).astype(bool)
    p = np.asarray(predicted).astype(bool)
    if a.shape != p.shape:
        raise ValueError("mask shapes differ")
    n_actual = int(a.sum())
    n_pred = int(p.sum())
    missed = int((a & ~p).sum())
    return {
        "actual": n_actual,
        "predicted": n_pred,
        "missed": missed,
        "overprediction": (n_pred / n_actual) if n_actual else float("inf") if n_pred else 1.0,
        "fraction_of_frame": n_pred / a.size,
    }
