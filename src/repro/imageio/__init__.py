"""Image I/O: Targa (the paper's format), PPM and mask/diff helpers."""

from .imagediff import difference_mask_image, mask_stats, pixel_set_image
from .ppm import read_ppm, write_ppm
from .targa import read_targa, targa_nbytes, write_targa

__all__ = [
    "difference_mask_image",
    "mask_stats",
    "pixel_set_image",
    "read_ppm",
    "read_targa",
    "targa_nbytes",
    "write_ppm",
    "write_targa",
]
