"""Oracle caching for the benchmark suite.

Building a cost oracle renders the whole animation twice; benchmarks share
one oracle per (workload, resolution, frames, grid) via an on-disk cache so
`pytest benchmarks/` doesn't re-render per test.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from ..parallel import AnimationCostOracle, build_oracle
from ..runtime import AnimationSpec

__all__ = ["cached_oracle", "default_cache_dir"]


def default_cache_dir() -> Path:
    """The repository-level ``.oracle_cache/`` directory (created if absent)."""
    d = Path(__file__).resolve().parents[3] / ".oracle_cache"
    d.mkdir(exist_ok=True)
    return d


def cached_oracle(
    spec: AnimationSpec,
    grid_resolution: int = 32,
    cache_dir: Path | None = None,
    verbose: bool = False,
) -> AnimationCostOracle:
    """Build (or load) the oracle for an animation spec."""
    cache_dir = cache_dir or default_cache_dir()
    key_src = repr((spec.factory, sorted(spec.kwargs.items()), grid_resolution))
    key = hashlib.sha256(key_src.encode()).hexdigest()[:16]
    path = cache_dir / f"oracle_{key}.npz"
    if path.exists():
        try:
            return AnimationCostOracle.load(path)
        except Exception:
            path.unlink()  # stale/corrupt cache entry: rebuild
    oracle = build_oracle(spec.build(), grid_resolution=grid_resolution, verbose=verbose)
    oracle.save(path)
    return oracle
