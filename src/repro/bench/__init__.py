"""Benchmark harness: Table-1 regeneration, calibration and caching."""

from .cache import cached_oracle, default_cache_dir
from .report import (
    frame_completion_csv,
    frame_latency_stats,
    outcomes_csv,
    outcomes_markdown,
)
from .table1 import PAPER_TABLE1, Table1Result, Table1Settings, format_table1, run_table1

__all__ = [
    "PAPER_TABLE1",
    "Table1Result",
    "Table1Settings",
    "cached_oracle",
    "default_cache_dir",
    "format_table1",
    "frame_completion_csv",
    "frame_latency_stats",
    "outcomes_csv",
    "outcomes_markdown",
    "run_table1",
]
