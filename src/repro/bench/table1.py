"""Regeneration of Table 1: "Performance results for Newton sequence".

The paper's table has nine columns:

    (1) single processor                 — no coherence
    (2) single processor + coherence     (3) = (2) speedup over (1)
    (4) distributed (blocks), no FC      (5) = (4) speedup over (1)
    (6) sequence division + FC           (7) = (6) speedup over (1)
    (8) frame division + FC              (9) = (8) speedup over (1)

and four rows: total # rays, first-frame time, average frame time, total
time.  :func:`run_table1` reproduces all of it from a cost oracle of the
Newton animation and the simulated NCSU testbed.

Calibration: ``sec_per_work_unit`` is fitted so that column (1)'s total
time equals the paper's 2:55:51 — a single scale constant standing in for
"seconds per ray on a 200 MHz SGI Indigo² running POV-Ray 3.0".  Every
other number is then produced by the model, not fitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import Machine, ThrashModel, ncsu_testbed
from ..parallel import (
    AnimationCostOracle,
    RenderFarmConfig,
    SimulationOutcome,
    format_hms,
    simulate_frame_division_fc,
    simulate_frame_division_nofc,
    simulate_sequence_division_fc,
    simulate_single_processor,
)

__all__ = ["PAPER_TABLE1", "Table1Settings", "Table1Result", "run_table1", "format_table1"]

#: The paper's reported values (OCR-garbled cells omitted).  Times in
#: seconds; ratios straight from the table; quotes from the text.
PAPER_TABLE1 = {
    "single_rays": 21_970_900,
    "single_total_s": 2 * 3600 + 55 * 60 + 51,  # "2:55:51"
    "fc_ray_reduction": 5.0,  # "the total number of rays produced decreased by a factor of 5"
    "fc_speedup": 2.93,  # "total animation generation speed increased nearly by a factor of 3"
    "fc_first_frame_overhead": 0.12,  # "overhead constitutes a reasonable 12%"
    "distributed_speedup": 2.0,  # "Rendering is about twice as fast here, as expected"
    "seq_div_speedup": 5.0,  # "significant speedups of 5"
    "frame_div_speedup": 7.0,  # "... and 7 for sequence and frame division"
    "multiplicative_excess": 0.185,  # "better than the multiplicative expectation (18.5%)"
}

#: Default memory-pressure model.  See RenderFarmConfig for the working-set
#: model; the sublinear paging curve is tuned so a full-frame coherence
#: chain (~73 MB at 320x240) slows the 64 MB master ~17% and the 32 MB
#: slaves ~30% — the paper's "aggregate memory" effect.
_DEFAULT_THRASH = ThrashModel(alpha=0.30, exponent=1.0 / 3.0)


@dataclass
class Table1Settings:
    """Parameters of a Table-1 regeneration run."""

    machines: list[Machine] = field(default_factory=ncsu_testbed)
    cfg: RenderFarmConfig = field(default_factory=RenderFarmConfig)
    thrash: ThrashModel = _DEFAULT_THRASH
    calibrate_total_s: float | None = float(PAPER_TABLE1["single_total_s"])
    sec_per_work_unit: float = 1e-4  # used when calibrate_total_s is None
    paper_pixels: int = 320 * 240


@dataclass
class Table1Result:
    """All nine columns, plus the outcomes they came from."""

    single: SimulationOutcome
    single_fc: SimulationOutcome
    distributed: SimulationOutcome
    seq_div_fc: SimulationOutcome
    frame_div_fc: SimulationOutcome
    sec_per_work_unit: float

    @property
    def outcomes(self) -> list[SimulationOutcome]:
        return [self.single, self.single_fc, self.distributed, self.seq_div_fc, self.frame_div_fc]

    # Ratio columns (3), (5), (7), (9):
    @property
    def fc_speedup(self) -> float:
        return self.single_fc.speedup_vs(self.single)

    @property
    def distributed_speedup(self) -> float:
        return self.distributed.speedup_vs(self.single)

    @property
    def seq_div_speedup(self) -> float:
        return self.seq_div_fc.speedup_vs(self.single)

    @property
    def frame_div_speedup(self) -> float:
        return self.frame_div_fc.speedup_vs(self.single)

    @property
    def fc_ray_reduction(self) -> float:
        return self.single.total_rays / self.single_fc.total_rays

    @property
    def multiplicative_excess(self) -> float:
        """How far frame division beats fc_speedup x distributed_speedup."""
        expected = self.fc_speedup * self.distributed_speedup
        return self.frame_div_speedup / expected - 1.0


def run_table1(
    oracle: AnimationCostOracle, settings: Table1Settings | None = None
) -> Table1Result:
    """Simulate all five strategies of Table 1 against one cost oracle."""
    s = settings or Table1Settings()
    # Scale memory/message pixel counts to the paper's resolution.
    pixel_scale = s.paper_pixels / oracle.n_pixels
    cfg = RenderFarmConfig(
        **{**s.cfg.__dict__, "pixel_scale": s.cfg.pixel_scale * pixel_scale}
    )

    fast = s.machines[0]
    if s.calibrate_total_s is not None:
        # Fit sec_per_work_unit so column (1) hits the paper's total.  The
        # single no-FC run has no thrash (working set fits) and no
        # communication, so total = units * spu / speed + write time; solve
        # by one probe run at spu = 1.
        probe = simulate_single_processor(
            oracle, fast, cfg, use_coherence=False, sec_per_work_unit=1.0, thrash=s.thrash
        )
        write_time = probe.total_time - probe.total_units * 1.0 / fast.speed
        spu = (s.calibrate_total_s - write_time) * fast.speed / probe.total_units
        if spu <= 0:
            raise ValueError("calibration target too small for the modelled write time")
    else:
        spu = s.sec_per_work_unit

    single = simulate_single_processor(
        oracle, fast, cfg, use_coherence=False, sec_per_work_unit=spu, thrash=s.thrash
    )
    single_fc = simulate_single_processor(
        oracle, fast, cfg, use_coherence=True, sec_per_work_unit=spu, thrash=s.thrash
    )
    distributed = simulate_frame_division_nofc(
        oracle, s.machines, cfg, sec_per_work_unit=spu, thrash=s.thrash
    )
    seq_div = simulate_sequence_division_fc(
        oracle, s.machines, cfg, sec_per_work_unit=spu, thrash=s.thrash
    )
    frame_div = simulate_frame_division_fc(
        oracle, s.machines, cfg, sec_per_work_unit=spu, thrash=s.thrash
    )
    return Table1Result(
        single=single,
        single_fc=single_fc,
        distributed=distributed,
        seq_div_fc=seq_div,
        frame_div_fc=frame_div,
        sec_per_work_unit=spu,
    )


def format_table1(result: Table1Result) -> str:
    """Render the table in the paper's layout, paper values alongside."""
    r = result
    cols = [
        ("(1) single", r.single, None, None),
        ("(2) single+FC", r.single_fc, r.fc_speedup, PAPER_TABLE1["fc_speedup"]),
        ("(4) distributed", r.distributed, r.distributed_speedup, PAPER_TABLE1["distributed_speedup"]),
        ("(6) seq div+FC", r.seq_div_fc, r.seq_div_speedup, PAPER_TABLE1["seq_div_speedup"]),
        ("(8) frame div+FC", r.frame_div_fc, r.frame_div_speedup, PAPER_TABLE1["frame_div_speedup"]),
    ]
    lines = []
    header = f"{'':22s}" + "".join(f"{name:>18s}" for name, *_ in cols)
    lines.append(header)
    lines.append(
        f"{'# rays':22s}" + "".join(f"{o.total_rays:>18,d}" for _, o, _, _ in cols)
    )
    ff = r.single.first_frame_time
    ff_fc = r.single_fc.first_frame_time
    lines.append(
        f"{'first frame':22s}{format_hms(ff):>18s}{format_hms(ff_fc):>18s}"
        + f"{'-':>18s}" * 3
    )
    lines.append(
        f"{'average frame':22s}"
        + "".join(f"{format_hms(o.avg_frame_time):>18s}" for _, o, _, _ in cols)
    )
    lines.append(
        f"{'total time':22s}" + "".join(f"{format_hms(o.total_time):>18s}" for _, o, _, _ in cols)
    )
    lines.append(
        f"{'speedup vs (1)':22s}"
        + "".join(
            f"{'1.00':>18s}" if sp is None else f"{sp:>18.2f}" for _, _, sp, _ in cols
        )
    )
    lines.append(
        f"{'paper speedup':22s}"
        + "".join(f"{'-':>18s}" if pp is None else f"{pp:>18.2f}" for _, _, _, pp in cols)
    )
    lines.append("")
    lines.append(
        f"ray reduction (1)/(2): measured {r.fc_ray_reduction:.2f}x, "
        f"paper {PAPER_TABLE1['fc_ray_reduction']:.1f}x"
    )
    lines.append(
        f"frame-div excess over multiplicative: measured "
        f"{r.multiplicative_excess * 100:.1f}%, paper "
        f"{PAPER_TABLE1['multiplicative_excess'] * 100:.1f}%"
    )
    return "\n".join(lines)
