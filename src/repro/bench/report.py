"""Outcome reporting: markdown/CSV exports of simulated runs.

The Table-1 text formatter lives in :mod:`repro.bench.table1`; this module
adds machine-readable exports (CSV) and generic side-by-side comparisons
(markdown) for arbitrary sets of strategy outcomes — what you paste into a
lab notebook after trying a new scheduler.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from ..parallel import SimulationOutcome, format_hms

__all__ = ["outcomes_markdown", "outcomes_csv", "frame_completion_csv", "frame_latency_stats"]


def outcomes_markdown(outcomes: list[SimulationOutcome], baseline: SimulationOutcome | None = None) -> str:
    """A markdown comparison table of strategy outcomes.

    ``baseline`` (default: the first outcome) anchors the speedup column.
    """
    if not outcomes:
        raise ValueError("need at least one outcome")
    base = baseline if baseline is not None else outcomes[0]
    header = (
        "| strategy | total | avg frame | speedup | rays | messages | imbalance |\n"
        "|---|---|---|---|---|---|---|"
    )
    rows = []
    for o in outcomes:
        rows.append(
            f"| {o.strategy} | {format_hms(o.total_time)} | {format_hms(o.avg_frame_time)} "
            f"| {o.speedup_vs(base):.2f}x | {o.total_rays:,} | {o.n_messages} "
            f"| {o.load_imbalance:.3f} |"
        )
    return "\n".join([header, *rows])


def outcomes_csv(outcomes: list[SimulationOutcome], path: str | Path | None = None) -> str:
    """CSV of the headline metrics; optionally written to ``path``."""
    if not outcomes:
        raise ValueError("need at least one outcome")
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        [
            "strategy",
            "total_seconds",
            "avg_frame_seconds",
            "total_rays",
            "total_units",
            "messages",
            "bytes_on_wire",
            "ethernet_busy_seconds",
            "chain_starts",
            "steals",
            "load_imbalance",
        ]
    )
    for o in outcomes:
        writer.writerow(
            [
                o.strategy,
                f"{o.total_time:.6f}",
                f"{o.avg_frame_time:.6f}",
                o.total_rays,
                f"{o.total_units:.1f}",
                o.n_messages,
                o.bytes_on_wire,
                f"{o.ethernet_busy_seconds:.6f}",
                o.n_chain_starts,
                o.n_steals,
                f"{o.load_imbalance:.6f}",
            ]
        )
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def frame_completion_csv(outcome: SimulationOutcome, path: str | Path | None = None) -> str:
    """Per-frame completion timestamps as CSV (frame, virtual_seconds)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["frame", "completed_at_seconds"])
    for frame in sorted(outcome.frame_completion_times):
        writer.writerow([frame, f"{outcome.frame_completion_times[frame]:.6f}"])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def frame_latency_stats(outcome: SimulationOutcome) -> dict[str, float]:
    """Distribution of inter-frame completion gaps (the delivery cadence).

    Frames may complete out of order under frame division; gaps are taken
    over completion times sorted by frame index, clipped at zero.
    """
    times = [outcome.frame_completion_times[f] for f in sorted(outcome.frame_completion_times)]
    if len(times) < 2:
        return {"mean": 0.0, "p50": 0.0, "p90": 0.0, "max": 0.0}
    gaps = np.maximum(np.diff(np.sort(times)), 0.0)
    return {
        "mean": float(gaps.mean()),
        "p50": float(np.percentile(gaps, 50)),
        "p90": float(np.percentile(gaps, 90)),
        "max": float(gaps.max()),
    }
