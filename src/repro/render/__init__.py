"""Rendering: wavefront Whitted tracer, framebuffer and ray statistics."""

from .antialias import AdaptiveRender, contrast_pixels, render_adaptive
from .framebuffer import Framebuffer
from .intersect import HitRecord, SceneIntersector
from .raytracer import MARK_CLASSES, RayTracer, TraceResult
from .shading import shade_local
from .shadow_cache import ShadowCache
from .stats import RayStats

__all__ = [
    "AdaptiveRender",
    "Framebuffer",
    "HitRecord",
    "contrast_pixels",
    "render_adaptive",
    "MARK_CLASSES",
    "RayStats",
    "RayTracer",
    "SceneIntersector",
    "ShadowCache",
    "TraceResult",
    "shade_local",
]
