"""The wavefront Whitted ray tracer.

Rays are processed in batches (see :class:`~repro.geometry.RayBatch`): one
pass intersects a whole batch, shades all hits, fires all shadow rays, and
emits child reflected/refracted batches for the next depth level.  The
recursion of a classical ray tracer becomes a queue of batches — the numpy
way to keep per-ray Python overhead at zero.

When *path tracking* is enabled, every batch additionally runs the
vectorized 3-D DDA over the uniform grid and records ``(voxel, pixel)``
visits — the raw material of the paper's frame-coherence pixel lists.
Visits are segregated into three classes so the shadow-coherence extension
can reason about them separately:

* ``camera``    — the depth-0 camera segment of each pixel;
* ``pshadow``   — shadow rays fired at the primary (depth-0) hit;
* ``secondary`` — every reflected/refracted ray and their shadow rays.

The shading model is the paper's:

    I = I_local + k_rg * I_reflected + k_tg * I_transmitted
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..accel import UniformGrid, traverse
from ..geometry import RayBatch, RayKind
from ..rmath import dot, reflect, refract
from ..scene import Scene
from .framebuffer import Framebuffer
from .intersect import SceneIntersector
from .shading import shade_local
from .shadow_cache import ShadowCache
from .stats import RayStats

__all__ = ["RayTracer", "TraceResult", "MARK_CLASSES"]

#: Children whose maximum throughput falls below this add < 1/255 to the
#: pixel and are culled (POV's adc_bailout).
_ADC_BAILOUT = 1.0 / 255.0

#: Path-mark classes, in reporting order.
MARK_CLASSES = ("camera", "pshadow", "secondary")


def _empty_marks() -> dict[str, tuple[np.ndarray, np.ndarray]]:
    e = np.empty(0, dtype=np.int64)
    return {c: (e, e) for c in MARK_CLASSES}


@dataclass
class TraceResult:
    """Output of tracing a set of pixels.

    Attributes
    ----------
    pixel_ids : (K,) the pixels that were traced (flat indices)
    colors : (K, 3) their final RGB values
    stats : ray counts by kind
    mark_voxels, mark_pixels : parallel arrays of ``(voxel, pixel)`` visits
        across all classes (empty when path tracking is off; may contain
        duplicates — the voxel-pixel map coalesces on insert)
    marks_by_class : per-class ``(voxels, pixels)`` pairs (keys:
        ``camera`` / ``pshadow`` / ``secondary``)
    rays_per_pixel : (K,) total rays fired on behalf of each traced pixel
        (the cost signal consumed by the cluster simulator's oracle)
    n_intersection_tests : per-ray primitive intersection tests executed
        during this trace (telemetry; culled rays excluded)
    """

    pixel_ids: np.ndarray
    colors: np.ndarray
    stats: RayStats
    mark_voxels: np.ndarray
    mark_pixels: np.ndarray
    rays_per_pixel: np.ndarray
    marks_by_class: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=_empty_marks)
    n_intersection_tests: int = 0


class _MarkCollector:
    """Accumulates (voxel, pixel) visit arrays per mark class."""

    def __init__(self):
        self.voxels: dict[str, list[np.ndarray]] = {c: [] for c in MARK_CLASSES}
        self.pixels: dict[str, list[np.ndarray]] = {c: [] for c in MARK_CLASSES}

    def add(self, cls: str, voxels: np.ndarray, pixels: np.ndarray) -> None:
        if voxels.size:
            self.voxels[cls].append(voxels)
            self.pixels[cls].append(pixels)

    def finalize(self) -> tuple[np.ndarray, np.ndarray, dict]:
        by_class = {}
        all_v, all_p = [], []
        empty = np.empty(0, dtype=np.int64)
        for c in MARK_CLASSES:
            if self.voxels[c]:
                v = np.concatenate(self.voxels[c])
                p = np.concatenate(self.pixels[c])
            else:
                v, p = empty, empty
            by_class[c] = (v, p)
            all_v.append(v)
            all_p.append(p)
        return np.concatenate(all_v), np.concatenate(all_p), by_class


class RayTracer:
    """Renders pixels of one scene, optionally tracking ray paths.

    Parameters
    ----------
    scene:
        The scene to render.
    grid:
        Uniform grid for path tracking; built from the scene when omitted
        and ``track_paths`` is on.
    track_paths:
        Record (voxel, pixel) visits for the coherence engine.
    chunk_size:
        Camera rays are traced in chunks of this many pixels to bound peak
        memory (each chunk runs the full wavefront to completion).
    shadow_cache:
        Optional :class:`ShadowCache` enabling the shadow-coherence
        extension at primary hits.  Incompatible with supersampling (the
        cache is per pixel, not per sample).
    """

    def __init__(
        self,
        scene: Scene,
        grid: UniformGrid | None = None,
        track_paths: bool = False,
        chunk_size: int = 32768,
        shadow_cache: ShadowCache | None = None,
    ):
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.scene = scene
        self.track_paths = bool(track_paths)
        if self.track_paths and grid is None:
            grid = UniformGrid.for_scene(scene)
        self.grid = grid
        self.intersector = SceneIntersector(scene.objects)
        self.chunk_size = int(chunk_size)
        self.shadow_cache = shadow_cache
        if shadow_cache is not None:
            if shadow_cache.n_pixels != scene.camera.n_pixels:
                raise ValueError("shadow cache sized for a different resolution")
            if shadow_cache.n_lights != len(scene.lights):
                raise ValueError("shadow cache sized for a different light count")

    # -- public API ---------------------------------------------------------
    def trace_pixels(self, pixel_ids: np.ndarray, samples_per_axis: int = 1) -> TraceResult:
        """Trace the given flat pixel indices and return their colors.

        ``samples_per_axis`` > 1 enables stratified supersampling with a
        deterministic sub-pixel grid (``n^2`` camera rays per pixel).
        """
        if samples_per_axis > 1 and self.shadow_cache is not None:
            raise ValueError("shadow coherence requires samples_per_axis == 1")
        pixel_ids = np.unique(np.asarray(pixel_ids, dtype=np.int64))
        cam = self.scene.camera
        n_pixels_total = cam.n_pixels

        acc = np.zeros((n_pixels_total, 3), dtype=np.float64)
        rays_pp = np.zeros(n_pixels_total, dtype=np.int64)
        stats = RayStats()
        marks = _MarkCollector()
        tests_before = self.intersector.n_primitive_tests

        for start in range(0, pixel_ids.size, self.chunk_size):
            chunk = pixel_ids[start : start + self.chunk_size]
            batch = self._camera_batch(chunk, samples_per_axis)
            self._trace_wavefront(batch, acc, rays_pp, stats, marks)

        all_v, all_p, by_class = marks.finalize()
        return TraceResult(
            pixel_ids=pixel_ids,
            colors=acc[pixel_ids],
            stats=stats,
            mark_voxels=all_v,
            mark_pixels=all_p,
            rays_per_pixel=rays_pp[pixel_ids],
            marks_by_class=by_class,
            n_intersection_tests=self.intersector.n_primitive_tests - tests_before,
        )

    def render(self, samples_per_axis: int = 1) -> tuple[Framebuffer, TraceResult]:
        """Trace the full frame into a framebuffer."""
        cam = self.scene.camera
        result = self.trace_pixels(cam.pixel_grid(), samples_per_axis)
        fb = Framebuffer(cam.width, cam.height)
        fb.scatter(result.pixel_ids, result.colors)
        return fb, result

    # -- internals ------------------------------------------------------------
    def _camera_batch(self, pixel_ids: np.ndarray, samples_per_axis: int) -> RayBatch:
        cam = self.scene.camera
        if samples_per_axis <= 1:
            return cam.rays_for_pixels(pixel_ids)
        n = samples_per_axis
        # Deterministic stratified sub-pixel offsets in [-0.5, 0.5).
        cell = (np.arange(n, dtype=np.float64) + 0.5) / n - 0.5
        ox, oy = np.meshgrid(cell, cell, indexing="ij")
        offsets = np.stack([ox.ravel(), oy.ravel()], axis=-1)  # (n^2, 2)
        rep_pixels = np.repeat(pixel_ids, n * n)
        rep_jitter = np.tile(offsets, (pixel_ids.size, 1))
        batch = cam.rays_for_pixels(rep_pixels, jitter=rep_jitter)
        batch.weight /= float(n * n)
        return batch

    @staticmethod
    def _mark_class(batch: RayBatch) -> str:
        if batch.depth == 0 and batch.kind == RayKind.CAMERA:
            return "camera"
        return "secondary"

    def _mark(self, batch: RayBatch, t_max: np.ndarray, marks: _MarkCollector) -> None:
        if not self.track_paths:
            return
        ray_idx, voxel_id = traverse(self.grid, batch.origins, batch.dirs, t_max)
        if ray_idx.size:
            marks.add(self._mark_class(batch), voxel_id, batch.pixel[ray_idx])

    def _trace_wavefront(self, first: RayBatch, acc, rays_pp, stats, marks: _MarkCollector) -> None:
        queue: deque[RayBatch] = deque([first])
        max_depth = self.scene.max_depth
        background = self.scene.background

        while queue:
            batch = queue.popleft()
            if len(batch) == 0:
                continue
            stats.record(batch.kind, len(batch))
            np.add.at(rays_pp, batch.pixel, 1)

            rec = self.intersector.nearest(batch)
            self._mark(batch, rec.t, marks)

            miss = ~rec.hit
            if np.any(miss):
                np.add.at(acc, batch.pixel[miss], batch.weight[miss] * background)
            if not np.any(rec.hit):
                continue

            hits = batch.select(rec.hit)
            t = rec.t[rec.hit]
            obj_index = rec.obj_index[rec.hit]
            geo_n = rec.normals[rec.hit]
            points = hits.points_at(t)
            # Orient normals against the incoming ray.
            facing = dot(geo_n, hits.dirs) < 0.0
            normals = np.where(facing[:, None], geo_n, -geo_n)

            is_primary = batch.depth == 0 and batch.kind == RayKind.CAMERA
            shadow_class = "pshadow" if is_primary else "secondary"

            # --- I_local (fires shadow rays through the hook) -------------
            def shadow_hook(origins, dirs, dists, _mask, _hits=hits, _cls=shadow_class):
                stats.record(RayKind.SHADOW, origins.shape[0])
                np.add.at(rays_pp, _hits.pixel[_mask], 1)
                if self.track_paths and origins.shape[0]:
                    ray_idx, voxel_id = traverse(self.grid, origins, dirs, dists)
                    if ray_idx.size:
                        marks.add(_cls, voxel_id, _hits.pixel[_mask][ray_idx])

            local = shade_local(
                self.scene,
                self.intersector,
                points,
                normals,
                hits.dirs,
                obj_index,
                shadow_hook=shadow_hook,
                pixel_ids=hits.pixel if is_primary else None,
                shadow_cache=self.shadow_cache if is_primary else None,
            )
            np.add.at(acc, hits.pixel, hits.weight * local)

            # --- children: k_rg * I_reflected + k_tg * I_transmitted -------
            if batch.depth + 1 >= max_depth:
                continue

            reflection = np.zeros(len(hits), dtype=np.float64)
            transmission = np.zeros(len(hits), dtype=np.float64)
            ior = np.ones(len(hits), dtype=np.float64)
            for idx in np.unique(obj_index):
                sel = obj_index == idx
                fin = self.scene.objects[idx].material.finish
                reflection[sel] = fin.reflection
                transmission[sel] = fin.transmission
                ior[sel] = fin.ior

            refl_weight = hits.weight * reflection[:, None]
            want_refl = refl_weight.max(axis=1) > _ADC_BAILOUT

            # Refraction first (it can convert to reflection on TIR).
            trans_weight = hits.weight * transmission[:, None]
            want_trans = trans_weight.max(axis=1) > _ADC_BAILOUT
            tir_mask = np.zeros(len(hits), dtype=bool)
            if np.any(want_trans):
                eta = np.where(hits.inside, ior, 1.0 / ior)
                refr_dirs, tir = refract(hits.dirs, normals, eta)
                tir_mask = want_trans & tir
                ok = want_trans & ~tir
                if np.any(ok):
                    queue.append(
                        RayBatch(
                            origins=points[ok] - normals[ok] * 1e-6,
                            dirs=refr_dirs[ok],
                            pixel=hits.pixel[ok],
                            weight=trans_weight[ok],
                            kind=RayKind.REFRACTED,
                            depth=batch.depth + 1,
                            inside=~hits.inside[ok],
                        )
                    )

            # Reflected batch: regular mirror reflection plus TIR energy.
            spawn_refl = want_refl | tir_mask
            if np.any(spawn_refl):
                w = np.where(
                    tir_mask[:, None], refl_weight + trans_weight, refl_weight
                )[spawn_refl]
                refl_dirs = reflect(hits.dirs, normals)[spawn_refl]
                queue.append(
                    RayBatch(
                        origins=points[spawn_refl] + normals[spawn_refl] * 1e-6,
                        dirs=refl_dirs,
                        pixel=hits.pixel[spawn_refl],
                        weight=w,
                        kind=RayKind.REFLECTED,
                        depth=batch.depth + 1,
                        inside=hits.inside[spawn_refl],
                    )
                )
