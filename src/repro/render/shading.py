"""Local illumination (the ``I_local`` term of the paper's equation).

``I_local`` is POV 3.0's Phong model: an ambient term plus, per visible
light, a Lambertian diffuse term tinted by the pigment and an untinted Phong
specular highlight.  Visibility is established with shadow rays fired
through the same intersector (and therefore counted and voxel-marked like
every other ray).

Shadow-coherence support: when a :class:`~repro.render.shadow_cache.ShadowCache`
and the hit pixels' ids are supplied, pixels flagged reusable take their
primary-shadow attenuation from the cache instead of firing shadow rays;
all other pixels fire normally and refresh their cache rows.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..rmath import dot, reflect

__all__ = ["shade_local"]


def shade_local(
    scene,
    intersector,
    points: np.ndarray,
    normals: np.ndarray,
    view_dirs: np.ndarray,
    obj_index: np.ndarray,
    shadow_hook: Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], None] | None = None,
    pixel_ids: np.ndarray | None = None,
    shadow_cache=None,
) -> np.ndarray:
    """Local color at hit points.

    Parameters
    ----------
    points, normals, view_dirs:
        ``(K, 3)`` hit points, *ray-facing* unit normals, and incoming ray
        directions (pointing toward the surface).
    obj_index:
        ``(K,)`` object indices of the hits (into ``scene.objects``).
    shadow_hook:
        Called once per light with ``(origins, dirs, dists, mask)`` where
        ``mask`` selects which of the K points actually fired a shadow ray.
        The tracer uses it for ray counting and voxel marking.
    pixel_ids, shadow_cache:
        Optional shadow-coherence inputs: the flat pixel index of each hit
        and the cache of primary-shadow attenuations.  Only meaningful for
        primary (depth-0 camera) hits.

    Returns
    -------
    (K, 3) local RGB.
    """
    k = points.shape[0]
    out = np.zeros((k, 3), dtype=np.float64)
    if k == 0:
        return out

    obj_index = np.asarray(obj_index, dtype=np.int64)
    # Per-object material lookups, grouped so each object's pigment runs once.
    base_color = np.zeros((k, 3), dtype=np.float64)
    ambient = np.zeros(k, dtype=np.float64)
    diffuse = np.zeros(k, dtype=np.float64)
    specular = np.zeros(k, dtype=np.float64)
    phong_size = np.ones(k, dtype=np.float64)
    for idx in np.unique(obj_index):
        sel = obj_index == idx
        mat = scene.objects[idx].material
        if mat is None:
            raise ValueError(f"object {scene.objects[idx].name!r} has no material")
        base_color[sel] = mat.color_at(points[sel])
        fin = mat.finish
        ambient[sel] = fin.ambient
        diffuse[sel] = fin.diffuse
        specular[sel] = fin.specular
        phong_size[sel] = fin.phong_size

    out += ambient[:, None] * scene.ambient_light * base_color

    # Self-intersection offset along the shading normal.
    shadow_origins = points + normals * 1e-6

    for light_index, light in enumerate(scene.lights):
        l_dirs, l_dists = light.shadow_rays(shadow_origins)
        n_dot_l = dot(normals, l_dirs)
        lit = n_dot_l > 0.0

        if shadow_cache is not None and pixel_ids is not None:
            cached, reuse = shadow_cache.lookup(pixel_ids, light_index)
        else:
            cached = None
            reuse = np.zeros(k, dtype=bool)

        fire = lit & ~reuse
        # POV fires a shadow ray whenever the surface faces the light (and,
        # with shadow coherence, the cache cannot answer).  Soft (area)
        # lights fire one ray per emitter sample and average.
        atten = np.zeros(k, dtype=np.float64)
        if np.any(fire):
            origins_f = shadow_origins[fire]
            if light.is_soft:
                acc = np.zeros(origins_f.shape[0], dtype=np.float64)
                targets = light.sample_positions()
                for target in targets:
                    s_dirs, s_dists = light.shadow_rays_to(origins_f, target)
                    if shadow_hook is not None:
                        shadow_hook(origins_f, s_dirs, s_dists, fire)
                    acc += intersector.shadow_attenuation(origins_f, s_dirs, s_dists)
                atten[fire] = acc / len(targets)
            else:
                if shadow_hook is not None:
                    shadow_hook(origins_f, l_dirs[fire], l_dists[fire], fire)
                atten[fire] = intersector.shadow_attenuation(
                    origins_f, l_dirs[fire], l_dists[fire]
                )
        if cached is not None:
            # Reused rows: the geometry (and therefore the lit mask) is
            # provably unchanged, so the cached attenuation applies exactly
            # where the pixel is lit.  Unlit rows stay 0 regardless of any
            # stale cache content.
            use = reuse & lit
            atten[use] = cached[use]
            shadow_cache.rays_saved += int(use.sum())
            if np.any(fire):
                shadow_cache.store(pixel_ids[fire], light_index, atten[fire])

        visible = atten > 0.0
        if not np.any(visible):
            continue
        intensity = light.intensity_at(l_dists) * atten[:, None]

        contrib = np.zeros((k, 3), dtype=np.float64)
        # Diffuse: pigment-tinted Lambert.
        contrib += (diffuse * np.maximum(n_dot_l, 0.0))[:, None] * base_color
        # Phong specular: highlight of the light's color, untinted.
        r = reflect(view_dirs, normals)
        r_dot_l = np.maximum(dot(r, l_dirs), 0.0)
        # Guard 0**0: where specular is off the pow is skipped anyway.
        spec = np.where(specular > 0.0, r_dot_l**phong_size, 0.0)
        contrib += (specular * spec)[:, None]

        out += np.where(visible[:, None], contrib * intensity, 0.0)

    return out
