"""Framebuffer: a flat RGB image addressed by pixel index.

The coherence engine keeps one persistent framebuffer per sequence and
scatters freshly computed dirty pixels into it; unchanged pixels carry over
verbatim, which is exactly the paper's "do not need to be re-computed"
copy-forward.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Framebuffer"]


class Framebuffer:
    """An ``(H*W, 3)`` float64 image with flat-index pixel access."""

    def __init__(self, width: int, height: int):
        if width <= 0 or height <= 0:
            raise ValueError("framebuffer dimensions must be positive")
        self.width = int(width)
        self.height = int(height)
        self.data = np.zeros((self.width * self.height, 3), dtype=np.float64)

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    def scatter(self, pixel_ids: np.ndarray, colors: np.ndarray) -> None:
        """Overwrite the given pixels with ``colors`` (``(K, 3)``)."""
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
        colors = np.asarray(colors, dtype=np.float64)
        if pixel_ids.size and (pixel_ids.min() < 0 or pixel_ids.max() >= self.n_pixels):
            raise IndexError("pixel index out of range")
        self.data[pixel_ids] = colors

    def accumulate(self, pixel_ids: np.ndarray, colors: np.ndarray) -> None:
        """Add ``colors`` into the given pixels (duplicates sum correctly)."""
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
        np.add.at(self.data, pixel_ids, np.asarray(colors, dtype=np.float64))

    def gather(self, pixel_ids: np.ndarray) -> np.ndarray:
        return self.data[np.asarray(pixel_ids, dtype=np.int64)].copy()

    def as_image(self) -> np.ndarray:
        """``(H, W, 3)`` float view-copy of the buffer."""
        return self.data.reshape(self.height, self.width, 3).copy()

    def to_uint8(self) -> np.ndarray:
        """Tonemapped 24-bit image (simple clamp, like POV's default)."""
        return (np.clip(self.data, 0.0, 1.0).reshape(self.height, self.width, 3) * 255.0 + 0.5).astype(
            np.uint8
        )

    def copy(self) -> "Framebuffer":
        fb = Framebuffer(self.width, self.height)
        fb.data[:] = self.data
        return fb

    def diff_mask(self, other: "Framebuffer", tol: float = 0.0) -> np.ndarray:
        """Boolean mask of pixels whose color differs by more than ``tol``."""
        if (self.width, self.height) != (other.width, other.height):
            raise ValueError("framebuffer dimensions differ")
        return np.any(np.abs(self.data - other.data) > tol, axis=1)
