"""Ray statistics.

Table 1's first row is the *total number of rays produced* for the whole
animation under each rendering strategy — it is the paper's hardware-
independent measure of work (the frame coherence algorithm "decreased [it]
by a factor of 5").  The tracer counts every ray it fires, by kind, and the
cost oracle additionally tracks rays per pixel so partitioning strategies
can be replayed in the cluster simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geometry import RayKind

__all__ = ["RayStats"]


@dataclass
class RayStats:
    """Counts of rays fired, by kind; addable and mergeable."""

    counts: np.ndarray = field(default_factory=lambda: np.zeros(len(RayKind), dtype=np.int64))

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts, dtype=np.int64).reshape(len(RayKind))

    def record(self, kind: RayKind, n: int) -> None:
        self.counts[int(kind)] += int(n)

    @property
    def camera(self) -> int:
        return int(self.counts[RayKind.CAMERA])

    @property
    def reflected(self) -> int:
        return int(self.counts[RayKind.REFLECTED])

    @property
    def refracted(self) -> int:
        return int(self.counts[RayKind.REFRACTED])

    @property
    def shadow(self) -> int:
        return int(self.counts[RayKind.SHADOW])

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def __add__(self, other: "RayStats") -> "RayStats":
        return RayStats(self.counts + other.counts)

    def __iadd__(self, other: "RayStats") -> "RayStats":
        self.counts += other.counts
        return self

    @classmethod
    def merge(cls, items) -> "RayStats":
        """Sum an iterable of :class:`RayStats` and/or raw count arrays.

        The single aggregation path for every consumer that collects
        per-task or per-frame counts (pipeline, real farm, simulators) —
        hand-rolled ``+=`` loops over heterogeneous shapes drift; this
        doesn't.
        """
        total = cls()
        for item in items:
            counts = item.counts if isinstance(item, RayStats) else item
            total.counts += np.asarray(counts, dtype=np.int64).reshape(len(RayKind))
        return total

    def copy(self) -> "RayStats":
        return RayStats(self.counts.copy())

    def as_dict(self) -> dict[str, int]:
        return {
            "camera": self.camera,
            "reflected": self.reflected,
            "refracted": self.refracted,
            "shadow": self.shadow,
            "total": self.total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RayStats(total={self.total}, camera={self.camera}, reflected={self.reflected}, "
            f"refracted={self.refracted}, shadow={self.shadow})"
        )
