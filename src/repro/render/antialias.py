"""Adaptive antialiasing (POV-Ray's ``+A`` mode).

The frame is first traced at one sample per pixel; pixels whose color
differs from a horizontal or vertical neighbor by more than ``threshold``
(in any channel) are then re-traced with an ``n x n`` stratified sample
grid.  This is how POV 3.0 antialiases, and it is the economical way to
smooth silhouette and texture edges without paying supersampling on flat
regions.

Note: adaptive AA refines based on *neighbor* contrast, which makes a
pixel's final color depend on its neighborhood — incompatible with the
frame-coherence engine's per-pixel recompute contract.  Use it for stills
(or final-frame passes); animations use uniform supersampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .framebuffer import Framebuffer
from .raytracer import RayTracer
from .stats import RayStats

__all__ = ["render_adaptive", "contrast_pixels", "AdaptiveRender"]


def contrast_pixels(image: np.ndarray, threshold: float) -> np.ndarray:
    """Flat indices of pixels exceeding ``threshold`` against a neighbor.

    A pixel is flagged when any channel differs by more than ``threshold``
    from the pixel to its right or below (both sides of an edge flag).
    """
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ValueError("image must be (H, W, 3)")
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    h, w, _ = img.shape
    flagged = np.zeros((h, w), dtype=bool)
    dx = np.any(np.abs(img[:, 1:] - img[:, :-1]) > threshold, axis=2)
    flagged[:, 1:] |= dx
    flagged[:, :-1] |= dx
    dy = np.any(np.abs(img[1:] - img[:-1]) > threshold, axis=2)
    flagged[1:] |= dy
    flagged[:-1] |= dy
    return np.flatnonzero(flagged.ravel())


@dataclass
class AdaptiveRender:
    """Result of :func:`render_adaptive`."""

    framebuffer: Framebuffer
    stats: RayStats
    refined_pixels: np.ndarray

    @property
    def n_refined(self) -> int:
        return int(self.refined_pixels.size)


def render_adaptive(
    scene,
    threshold: float = 0.1,
    samples_per_axis: int = 3,
    chunk_size: int = 32768,
) -> AdaptiveRender:
    """Render ``scene`` with POV-style adaptive antialiasing."""
    if samples_per_axis < 2:
        raise ValueError("samples_per_axis must be >= 2 (else nothing is refined)")
    tracer = RayTracer(scene, chunk_size=chunk_size)
    fb, base = tracer.render()
    stats = base.stats.copy()

    refined = contrast_pixels(fb.as_image(), threshold)
    if refined.size:
        fine = tracer.trace_pixels(refined, samples_per_axis=samples_per_axis)
        fb.scatter(fine.pixel_ids, fine.colors)
        stats += fine.stats
    return AdaptiveRender(framebuffer=fb, stats=stats, refined_pixels=refined)
