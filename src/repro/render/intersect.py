"""Nearest-hit and occlusion queries over a scene's object list.

The intersector evaluates every primitive against the whole ray batch as a
vectorized broadcast.  For the handful-of-quadrics scenes of the paper (the
Newton scene has 22 objects) this does far less Python-level work than a
per-ray grid walk would, which is the right trade-off in numpy; the uniform
grid's job in this system is *coherence tracking*, not hit-finding.

For larger scenes the intersector adds **bounds culling**: each object's
world AABB is slab-tested against the batch first (a cheap fused kernel),
the expensive primitive test runs only on the surviving rays, and the slab
entry distance prunes objects that cannot beat the current best hit.
Culling is enabled automatically above a small object count and never
changes results.
"""

from __future__ import annotations

import numpy as np

from ..geometry import MISS, Primitive, RayBatch
from ..rmath import ray_aabb_intersect

__all__ = ["SceneIntersector", "HitRecord"]

#: A slab test costs roughly one sphere test, so only primitives at least
#: this many times more expensive are worth pre-testing.
_CULL_COST_THRESHOLD = 4.0


class HitRecord:
    """Result of a nearest-hit query over a batch.

    Attributes
    ----------
    t : (N,) parametric hit distance (+inf for misses)
    obj_index : (N,) index into the object list (-1 for misses)
    normals : (N, 3) geometric unit normals (zero rows for misses)
    hit : (N,) boolean mask
    """

    __slots__ = ("t", "obj_index", "normals", "hit")

    def __init__(self, t: np.ndarray, obj_index: np.ndarray, normals: np.ndarray):
        self.t = t
        self.obj_index = obj_index
        self.normals = normals
        self.hit = np.isfinite(t)


class SceneIntersector:
    """Vectorized intersector over a fixed object list.

    Parameters
    ----------
    objects:
        The scene's primitives.
    cull_bounds:
        ``True`` forces AABB pre-tests on every finite object, ``False``
        disables them entirely; ``None`` (default) pre-tests only objects
        whose ``intersect_cost_hint`` says the primitive test is expensive
        enough to be worth saving (meshes, mainly).
    """

    def __init__(self, objects: list[Primitive], cull_bounds: bool | None = None):
        self.objects = list(objects)
        #: Running count of per-ray primitive intersection tests actually
        #: executed (culled rays excluded).  Monotonic; readers take deltas.
        #: The increments are O(1) integer adds on already-materialized
        #: arrays, so the counter is always on.
        self.n_primitive_tests = 0
        self._box_lo: list[np.ndarray | None] = []
        self._box_hi: list[np.ndarray | None] = []
        self._cull: list[bool] = []
        for obj in self.objects:
            b = obj.bounds()
            finite = bool(np.all(np.isfinite(b.lo)) and np.all(np.isfinite(b.hi)))
            self._box_lo.append(b.lo if finite else None)
            self._box_hi.append(b.hi if finite else None)
            if cull_bounds is None:
                cull = finite and obj.intersect_cost_hint >= _CULL_COST_THRESHOLD
            else:
                cull = finite and bool(cull_bounds)
            self._cull.append(cull)
        self.cull_bounds = any(self._cull)

    def nearest(self, batch: RayBatch) -> HitRecord:
        """Closest intersection per ray."""
        n = len(batch)
        best_t = np.full(n, MISS)
        best_obj = np.full(n, -1, dtype=np.int64)
        best_n = np.zeros((n, 3), dtype=np.float64)
        inv = batch.inv_dirs if self.cull_bounds else None
        rows = np.arange(n)
        for idx, obj in enumerate(self.objects):
            lo = self._box_lo[idx]
            if self._cull[idx]:
                box_hit, t_enter, _ = ray_aabb_intersect(
                    batch.origins, inv, lo, self._box_hi[idx], t_max=best_t
                )
                sel = box_hit & (t_enter < best_t)
                if not np.any(sel):
                    continue
                t_sub, n_sub = obj.intersect(batch.origins[sel], batch.dirs[sel])
                self.n_primitive_tests += t_sub.size
                sub_rows = rows[sel]
                closer = t_sub < best_t[sub_rows]
                if np.any(closer):
                    upd = sub_rows[closer]
                    best_t[upd] = t_sub[closer]
                    best_obj[upd] = idx
                    best_n[upd] = n_sub[closer]
            else:
                t, nrm = obj.intersect(batch.origins, batch.dirs)
                self.n_primitive_tests += t.size
                closer = t < best_t
                if np.any(closer):
                    best_t = np.where(closer, t, best_t)
                    best_obj = np.where(closer, idx, best_obj)
                    best_n = np.where(closer[:, None], nrm, best_n)
        return HitRecord(best_t, best_obj, best_n)

    def shadow_attenuation(
        self,
        origins: np.ndarray,
        dirs: np.ndarray,
        max_dist: np.ndarray,
        eps: float = 1e-6,
    ) -> np.ndarray:
        """Light transmission along shadow segments, in [0, 1] per ray.

        Opaque occluders block completely (0); transmissive occluders filter
        the light by their finish's ``transmission`` (one factor per occluding
        object, the usual POV-style approximation of filtered shadows).
        """
        origins = np.asarray(origins, dtype=np.float64)
        dirs = np.asarray(dirs, dtype=np.float64)
        max_dist = np.asarray(max_dist, dtype=np.float64)
        n = origins.shape[0]
        atten = np.ones(n, dtype=np.float64)
        if self.cull_bounds:
            with np.errstate(divide="ignore"):
                inv = 1.0 / dirs
        rows = np.arange(n)
        for idx, obj in enumerate(self.objects):
            lo = self._box_lo[idx]
            if self._cull[idx]:
                # Fully shadowed rays cannot get darker; skip them too.
                live = atten > 0.0
                box_hit, _, _ = ray_aabb_intersect(
                    origins, inv, lo, self._box_hi[idx], t_max=max_dist
                )
                sel = box_hit & live
                if not np.any(sel):
                    continue
                t, _ = obj.intersect(origins[sel], dirs[sel])
                self.n_primitive_tests += t.size
                blocking_sub = np.isfinite(t) & (t > eps) & (t < max_dist[sel] - eps)
                if not np.any(blocking_sub):
                    continue
                target = rows[sel][blocking_sub]
                if obj.material is not None and obj.material.finish.is_transmissive:
                    atten[target] *= obj.material.finish.transmission
                else:
                    atten[target] = 0.0
            else:
                t, _ = obj.intersect(origins, dirs)
                self.n_primitive_tests += t.size
                blocking = np.isfinite(t) & (t > eps) & (t < max_dist - eps)
                if not np.any(blocking):
                    continue
                if obj.material is not None and obj.material.finish.is_transmissive:
                    atten = np.where(
                        blocking, atten * obj.material.finish.transmission, atten
                    )
                else:
                    atten = np.where(blocking, 0.0, atten)
        return atten
