"""Per-pixel primary-hit shadow cache (the shadow-coherence extension).

The paper lists "development of frame coherence algorithms with shadow
generation" as future work and notes "we are also exploring the use of
frame coherence in the generation of shadows".  This module implements the
data structure that makes it sound:

For every pixel and light, the attenuation measured along the *primary*
shadow segment (hit point -> light) is cached.  When a pixel must be
re-rendered but change detection can prove that neither its camera segment
nor any of its primary shadow segments crossed a changed voxel — i.e. the
pixel is dirty only through reflection/refraction paths — the cached
attenuation is provably still exact and the primary shadow rays need not
be re-fired.

The cache is *only* consulted for pixels in ``reusable``; the tracer
refreshes entries for every other pixel it shades.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ShadowCache"]


class ShadowCache:
    """Cached primary-hit shadow attenuation per (pixel, light).

    Attributes
    ----------
    atten : (n_pixels, n_lights) float64
        Last measured attenuation (1 = fully lit, 0 = fully shadowed).
    reusable : (n_pixels,) bool
        Pixels whose cached rows are proven valid for the frame being
        rendered.  Set by the shadow-coherent engine before each frame.
    hits_saved : int
        Number of shadow rays skipped thanks to the cache (statistics).
    """

    def __init__(self, n_pixels: int, n_lights: int):
        if n_pixels < 1 or n_lights < 0:
            raise ValueError("need n_pixels >= 1 and n_lights >= 0")
        self.n_pixels = int(n_pixels)
        self.n_lights = int(n_lights)
        self.atten = np.zeros((n_pixels, max(n_lights, 1)), dtype=np.float64)
        self.reusable = np.zeros(n_pixels, dtype=bool)
        self.rays_saved = 0

    def set_reusable(self, pixel_ids: np.ndarray) -> None:
        """Mark exactly the given pixels as cache-valid for the next frame."""
        self.reusable[:] = False
        ids = np.asarray(pixel_ids, dtype=np.int64)
        if ids.size:
            self.reusable[ids] = True

    def lookup(self, pixel_ids: np.ndarray, light_index: int) -> tuple[np.ndarray, np.ndarray]:
        """(cached values, reuse mask) for a batch of pixels."""
        ids = np.asarray(pixel_ids, dtype=np.int64)
        reuse = self.reusable[ids]
        return self.atten[ids, light_index], reuse

    def store(self, pixel_ids: np.ndarray, light_index: int, values: np.ndarray) -> None:
        """Refresh cache rows after firing real shadow rays."""
        ids = np.asarray(pixel_ids, dtype=np.int64)
        self.atten[ids, light_index] = values
