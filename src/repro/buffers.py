"""Buffer ownership for the zero-copy data plane.

The paper's aggregate-memory argument assumes pixels move between
workstations cheaply; this module is the ownership layer that makes our
stack honor that.  Three pieces, one contract:

``BufferPool``
    Pinned, recycled numpy arrays for the compositor.  ``acquire`` hands
    out an array keyed by (shape, dtype); ``release`` parks it for the
    next acquirer instead of returning it to the allocator.  Whoever
    acquires owns the buffer until they release it — there is no
    refcounting here, just an explicit hand-back.

``SharedFrameStore`` / ``FrameRef``
    Frames rendered in a pool worker land directly in a
    :mod:`multiprocessing.shared_memory` segment; only a tiny picklable
    ``FrameRef`` (segment name + shape + dtype) crosses the fork
    boundary, instead of the pickled pixels.  The master attaches the
    segment read-only on first access (``np.asarray(ref)`` works — the
    ref is array-like), and **the master releases**: ``ref.release()``
    closes the mapping and unlinks the segment.  A run-scoped
    ``cleanup()`` sweeps segments whose refs never came home (crashed
    worker, discarded duplicate result).

``copystats``
    A process-wide counter of bulk pixel-byte copies, incremented at
    every site that still memcpys frame data.  ``benchmarks/
    bench_zerocopy.py`` gates on it; the legacy (pre-zero-copy) codec
    paths count their copies too, so the before/after ratio is honest.

Decoded wire arrays and resolved FrameRefs are **read-only views**; a
consumer that needs to mutate makes its own copy (``np.array(a)``) — the
copy-on-write escape hatch.  See DESIGN §15.
"""

from __future__ import annotations

import os
import threading
import uuid
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

__all__ = [
    "CopyStats",
    "copystats",
    "PoolStats",
    "BufferPool",
    "default_pool",
    "FrameRef",
    "SharedFrameStore",
    "activate_worker_store",
    "worker_store",
    "release_refs",
    "attach_refs",
    "SEGMENT_PREFIX",
]

#: Shared-memory segment name prefix; run cleanup globs on it.
SEGMENT_PREFIX = "reprobuf"


# -- copy accounting ---------------------------------------------------------------
class CopyStats:
    """Process-wide ledger of bulk pixel-byte copies, by site.

    Sites are short dotted names (``encode.tobytes``, ``decode.copy``,
    ``assembler.join``, …).  Only *frame-sized* copies are counted —
    metadata shuffling stays off the books so the ratio the benchmark
    gates on reflects the data plane, not header bookkeeping.
    """

    __slots__ = ("_lock", "_by_site")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_site: dict[str, int] = {}

    def add(self, nbytes: int, site: str) -> None:
        if nbytes <= 0:
            return
        with self._lock:
            self._by_site[site] = self._by_site.get(site, 0) + int(nbytes)

    def total(self) -> int:
        with self._lock:
            return sum(self._by_site.values())

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._by_site)

    def reset(self) -> None:
        with self._lock:
            self._by_site.clear()


#: The one process-wide instance every copy site reports to.
copystats = CopyStats()


# -- pooled buffers ----------------------------------------------------------------
class PoolStats:
    """Counters a :class:`BufferPool` keeps (read via ``pool.stats()``)."""

    __slots__ = ("n_acquired", "n_hits", "n_misses", "n_released", "bytes_pooled")

    def __init__(self) -> None:
        self.n_acquired = 0
        self.n_hits = 0
        self.n_misses = 0
        self.n_released = 0
        self.bytes_pooled = 0

    @property
    def n_outstanding(self) -> int:
        return self.n_acquired - self.n_released

    def as_dict(self) -> dict[str, int]:
        return {
            "n_acquired": self.n_acquired,
            "n_hits": self.n_hits,
            "n_misses": self.n_misses,
            "n_released": self.n_released,
            "n_outstanding": self.n_outstanding,
            "bytes_pooled": self.bytes_pooled,
        }


class BufferPool:
    """Recycled numpy arrays keyed by (shape, dtype).

    ``acquire`` pops a parked buffer when one fits (``zero=True`` blanks
    it — a fill, not a copy) and allocates otherwise; ``release`` parks
    the array for reuse unless the pool is already holding ``max_bytes``.
    Thread-safe; the dfb compositor releases from callback context.
    """

    def __init__(self, max_bytes: int = 256 << 20) -> None:
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._free: dict[tuple, list[np.ndarray]] = {}
        self._stats = PoolStats()

    @staticmethod
    def _key(shape, dtype) -> tuple:
        return (tuple(int(d) for d in shape), np.dtype(dtype).str)

    def acquire(self, shape, dtype=np.float64, *, zero: bool = False) -> np.ndarray:
        key = self._key(shape, dtype)
        with self._lock:
            self._stats.n_acquired += 1
            bucket = self._free.get(key)
            arr = bucket.pop() if bucket else None
            if arr is not None:
                self._stats.n_hits += 1
                self._stats.bytes_pooled -= arr.nbytes
            else:
                self._stats.n_misses += 1
        if arr is None:
            arr = np.empty(key[0], dtype=np.dtype(dtype))
        if zero:
            arr.fill(0)
        return arr

    def release(self, arr: np.ndarray) -> bool:
        """Park ``arr`` for reuse; returns False when dropped (pool full
        or the array isn't poolable — non-contiguous views stay out)."""
        if not isinstance(arr, np.ndarray) or not arr.flags.c_contiguous:
            with self._lock:
                self._stats.n_released += 1
            return False
        if not arr.flags.writeable:  # never recycle a read-only view's storage
            with self._lock:
                self._stats.n_released += 1
            return False
        key = self._key(arr.shape, arr.dtype)
        with self._lock:
            self._stats.n_released += 1
            if self._stats.bytes_pooled + arr.nbytes > self.max_bytes:
                return False
            self._free.setdefault(key, []).append(arr)
            self._stats.bytes_pooled += arr.nbytes
        return True

    def stats(self) -> dict[str, int]:
        with self._lock:
            return self._stats.as_dict()

    def clear(self) -> None:
        with self._lock:
            self._free.clear()
            self._stats.bytes_pooled = 0


_DEFAULT_POOL = BufferPool()


def default_pool() -> BufferPool:
    """The process-wide compositor pool (dfb uses it unless handed one)."""
    return _DEFAULT_POOL


# -- shared-memory frames ----------------------------------------------------------
def _untrack(shm_name: str) -> None:
    """Opt a segment out of the resource tracker's auto-unlink.

    CPython's tracker registers shared memory on *attach* as well as
    create (bpo-39959), so without this every process that ever touched
    a segment tries to unlink it at exit and warns about leaks.  Lifetime
    is ours: the releasing side unlinks, ``cleanup`` sweeps strays.
    """
    try:
        resource_tracker.unregister("/" + shm_name.lstrip("/"), "shared_memory")
    except Exception:  # noqa: BLE001 — tracker internals vary; never fatal
        pass


_SHM_DIR = Path("/dev/shm")


def _unlink_segment(name: str) -> None:
    """Remove a segment by name without touching the resource tracker.

    ``SharedMemory.unlink()`` unregisters with the tracker as a side
    effect, which double-unregisters against :func:`_untrack` and makes
    the tracker process log a KeyError.  On Linux a POSIX segment is a
    file under ``/dev/shm`` — unlink it directly.
    """
    if _SHM_DIR.is_dir():
        try:
            (_SHM_DIR / name).unlink()
        except OSError:
            pass
        return
    try:  # non-Linux fallback: attach registers once, unlink unregisters once
        tmp = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return
    try:
        tmp.unlink()
    finally:
        tmp.close()


def _close_quietly(shm) -> None:
    """Close a mapping; if a view still aliases it, neuter the handle so
    the eventual ``__del__`` retry can't print an unraisable error."""
    try:
        shm.close()
    except (BufferError, ValueError):
        shm._buf = None  # noqa: SLF001 — abandon, GC reaps the mmap
        shm._mmap = None  # noqa: SLF001


class FrameRef:
    """Picklable handle to frames parked in a shared-memory segment.

    Workers return this instead of the pixels.  It is array-like —
    ``np.asarray(ref)`` attaches the segment and yields a **read-only**
    view, so validators and compositors consume it exactly like the
    ndarray it replaces.  Ownership: the consumer that accepted the
    result calls :meth:`release` (close + unlink) once the pixels have
    been folded into the output; :meth:`release` is idempotent.
    """

    __slots__ = ("name", "shape", "dtype", "released", "_shm", "_view")

    def __init__(self, name: str, shape: tuple, dtype: str) -> None:
        self.name = name
        self.shape = tuple(int(d) for d in shape)
        self.dtype = str(dtype)
        self.released = False
        self._shm = None
        self._view = None

    @property
    def nbytes(self) -> int:
        n = np.dtype(self.dtype).itemsize
        for dim in self.shape:
            n *= dim
        return n

    # Only the address crosses the pickle boundary — that is the point.
    def __getstate__(self):
        return (self.name, self.shape, self.dtype, self.released)

    def __setstate__(self, state):
        self.name, self.shape, self.dtype, self.released = state
        self._shm = None
        self._view = None

    def _adopt(self, shm) -> np.ndarray:
        """Wrap an already-open segment (create side); view is writable."""
        self._shm = shm
        view = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf)
        self._view = view
        return view

    def resolve(self) -> np.ndarray:
        """Attach (cached) and return the frames as a read-only view."""
        if self.released:
            raise ValueError(f"FrameRef {self.name} used after release")
        if self._view is None:
            shm = shared_memory.SharedMemory(name=self.name)
            _untrack(shm._name)  # noqa: SLF001 — tracker wants the slashed name
            self._shm = shm
            view = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf)
            view.setflags(write=False)
            self._view = view
        return self._view

    def __array__(self, dtype=None, copy=None):
        view = self.resolve()
        if dtype is not None and np.dtype(dtype) != view.dtype:
            return view.astype(dtype)
        if copy:
            return view.copy()
        return view

    def release(self) -> None:
        """Close the mapping and unlink the segment.  Idempotent; unlink
        races (cleanup already swept it) are fine."""
        if self.released:
            return
        self.released = True
        shm, self._shm, self._view = self._shm, None, None
        if shm is not None:
            _close_quietly(shm)
        _unlink_segment(self.name)

    def mutate(self, fn) -> None:
        """Re-attach the segment writable and apply ``fn(array)`` to it.

        Exists for fault injection (a worker scribbling garbage into the
        frames it already handed over); the data plane proper only ever
        resolves read-only views.
        """
        shm = shared_memory.SharedMemory(name=self.name)
        _untrack(shm._name)  # noqa: SLF001
        try:
            arr = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf)
            fn(arr)
            del arr
        finally:
            _close_quietly(shm)

    def close_local(self) -> None:
        """Drop this process's mapping without unlinking (worker side)."""
        shm, self._shm, self._view = self._shm, None, None
        if shm is not None:
            _close_quietly(shm)

    def __repr__(self) -> str:
        state = "released" if self.released else "live"
        return f"FrameRef({self.name!r}, shape={self.shape}, dtype={self.dtype!r}, {state})"


class SharedFrameStore:
    """One run's family of shared-memory frame segments.

    The master constructs it (minting the run token) and hands the token
    to pool workers through the initializer; workers ``create`` segments
    and render straight into them.  At run end the master calls
    :meth:`cleanup` to unlink anything a released ref didn't already —
    segments leaked by a crashed worker or parked under a duplicate
    result the supervisor discarded.
    """

    def __init__(self, token: str | None = None) -> None:
        self.token = token or uuid.uuid4().hex[:12]
        self._lock = threading.Lock()
        self._seq = 0

    def create(self, shape, dtype=np.float64) -> tuple[FrameRef, np.ndarray]:
        """A fresh segment sized for ``shape``; returns (ref, writable view)."""
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        with self._lock:
            self._seq += 1
            seq = self._seq
        name = f"{SEGMENT_PREFIX}_{self.token}_{os.getpid()}_{seq}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
        _untrack(shm._name)  # noqa: SLF001
        ref = FrameRef(name, tuple(shape), dt.str)
        view = ref._adopt(shm)  # noqa: SLF001 — store and ref are one layer
        return ref, view

    def cleanup(self) -> int:
        """Unlink this run's leftover segments; returns how many."""
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():  # non-POSIX: nothing to sweep by name
            return 0
        swept = 0
        for path in shm_dir.glob(f"{SEGMENT_PREFIX}_{self.token}_*"):
            try:
                path.unlink()
                swept += 1
            except OSError:
                pass
        return swept


# -- worker-side activation --------------------------------------------------------
_WORKER_STORE: SharedFrameStore | None = None


def activate_worker_store(token: str | None) -> None:
    """Install (or clear) the store render tasks allocate from.

    Called from the pool initializer with the master's run token; a
    ``None`` token (thread executor, serial degrade, TCP worker daemons)
    leaves tasks returning plain ndarrays.
    """
    global _WORKER_STORE
    _WORKER_STORE = SharedFrameStore(token) if token else None


def worker_store() -> SharedFrameStore | None:
    return _WORKER_STORE


# -- result traversal helpers ------------------------------------------------------
def _walk_refs(obj, depth: int = 0):
    if isinstance(obj, FrameRef):
        yield obj
    elif depth < 3 and isinstance(obj, (tuple, list)):
        for item in obj:
            yield from _walk_refs(item, depth + 1)


def attach_refs(result) -> None:
    """Resolve every FrameRef in a task result (master side, at accept).

    Attaching before the run's cleanup sweep means a later unlink cannot
    strand the consumer: POSIX keeps an attached segment's memory alive
    until the last mapping closes.
    """
    for ref in _walk_refs(result):
        ref.resolve()


def release_refs(results) -> int:
    """Release every FrameRef found in an iterable of task results."""
    n = 0
    for result in results or ():
        for ref in _walk_refs(result):
            ref.release()
            n += 1
    return n
