"""High-level rendering pipeline: whole animations, including camera cuts.

The coherence algorithm "works only for sequences in which the camera is
stationary; any camera movement logically separates one sequence from
another.  These shorter sequences represent the computational tasks for
which parallelization and frame coherence will be exploited."

:func:`_render_animation` is that sentence as code: it splits the animation
at camera cuts (:func:`repro.scene.split_coherent_sequences`), renders each
run with a fresh coherent (or shadow-coherent) renderer, and returns the
assembled frames with merged statistics.

This module is the *animation engine* behind the unified
:func:`repro.api.render` facade — use the facade; the long-deprecated
``render_animation`` entry point has been removed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .coherence import CoherentRenderer, FrameReport, ShadowCoherentRenderer
from .render import RayStats
from .scene import Animation, split_coherent_sequences
from .telemetry import NULL as NULL_TELEMETRY

__all__ = ["AnimationRender"]


@dataclass
class AnimationRender:
    """Assembled output of the animation engine."""

    frames: np.ndarray  # (n_frames, H, W, 3) float64
    stats: RayStats
    reports: list[FrameReport]
    sequences: list[tuple[int, int]]
    shadow_rays_saved: int = 0
    per_sequence_stats: list[RayStats] = field(default_factory=list)

    @property
    def n_frames(self) -> int:
        return self.frames.shape[0]

    def total_computed_pixels(self) -> int:
        return sum(r.n_computed for r in self.reports)

    def total_copied_pixels(self) -> int:
        return sum(r.n_copied for r in self.reports)


def _render_animation(
    animation: Animation,
    grid_resolution: int | tuple[int, int, int] = 24,
    shadow_coherence: bool = False,
    samples_per_axis: int = 1,
    chunk_size: int = 32768,
    on_frame: Callable[[int, FrameReport, np.ndarray], None] | None = None,
    telemetry=None,
    workload: str = "animation",
) -> AnimationRender:
    """Render every frame of ``animation`` with frame coherence.

    Camera cuts are handled by splitting into stationary-camera runs; the
    first frame of each run is rendered in full.

    Parameters
    ----------
    shadow_coherence:
        Use the :class:`ShadowCoherentRenderer` extension (requires
        ``samples_per_axis == 1``).
    on_frame:
        Optional callback ``(frame_index, report, image)`` invoked as each
        frame completes (for progress display or streaming output).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; the engine emits the
        full core event set (run.start, one ``task`` span per coherent
        sequence, per-frame events via the renderers, worker, run.end) so a
        single-process render is report-compatible with a farm run.
    workload:
        Label stamped into the ``run.start`` event.
    """
    if shadow_coherence and samples_per_axis != 1:
        raise ValueError("shadow coherence requires samples_per_axis == 1")
    tel = telemetry if telemetry is not None else NULL_TELEMETRY

    cam0 = animation.camera_at(0)
    frames = np.empty((animation.n_frames, cam0.height, cam0.width, 3), dtype=np.float64)
    reports: list[FrameReport] = []
    sequences = split_coherent_sequences(animation)
    shadow_saved = 0
    per_seq: list[RayStats] = []
    mode = "shadow-coherent" if shadow_coherence else "coherent"

    t_run0 = time.perf_counter()
    tel.event(
        "run.start",
        engine="animation",
        workload=workload,
        n_frames=int(animation.n_frames),
        width=int(cam0.width),
        height=int(cam0.height),
        n_workers=1,
        mode=mode,
    )

    for start, stop in sequences:
        cam = animation.camera_at(start)
        if (cam.width, cam.height) != (cam0.width, cam0.height):
            raise ValueError("all shots must share one resolution")
        tel.event("sequence", first_frame=int(start), last_frame=int(stop))
        if shadow_coherence:
            renderer = ShadowCoherentRenderer(
                animation,
                grid_resolution=grid_resolution,
                chunk_size=chunk_size,
                first_frame=start,
                last_frame=stop,
                telemetry=tel,
            )
        else:
            renderer = CoherentRenderer(
                animation,
                grid_resolution=grid_resolution,
                samples_per_axis=samples_per_axis,
                chunk_size=chunk_size,
                first_frame=start,
                last_frame=stop,
                telemetry=tel,
            )
        with tel.span(
            "task",
            worker="local",
            mode=mode,
            frame0=int(start),
            frame1=int(stop),
            region=int(cam0.n_pixels),
            rays=0,
            n_computed=0,
            attempt=0,
        ) as sp:
            seq_reports: list[FrameReport] = []
            for f in range(start, stop):
                report = renderer.render_next()
                image = renderer.frame_image()
                frames[f] = image
                reports.append(report)
                seq_reports.append(report)
                if on_frame is not None:
                    on_frame(f, report, image)
            seq_stats = RayStats.merge(r.stats for r in seq_reports)
            sp.attrs["rays"] = seq_stats.total
            sp.attrs["n_computed"] = sum(r.n_computed for r in seq_reports)
        per_seq.append(seq_stats)
        if shadow_coherence:
            shadow_saved += renderer.total_shadow_rays_saved

    stats = RayStats.merge(per_seq)
    wall = time.perf_counter() - t_run0
    if tel.enabled:
        busy = sum(r.wall_time for r in reports)
        tel.event(
            "worker",
            worker="local",
            busy=busy,
            n_tasks=len(sequences),
            utilization=(busy / wall) if wall > 0 else 0.0,
        )
        tel.event(
            "run.end",
            wall_time=wall,
            computed_pixels=sum(r.n_computed for r in reports),
            copied_pixels=sum(r.n_copied for r in reports),
            n_tasks=len(sequences),
            n_workers=1,
            rays_camera=stats.camera,
            rays_reflected=stats.reflected,
            rays_refracted=stats.refracted,
            rays_shadow=stats.shadow,
            rays_total=stats.total,
        )

    return AnimationRender(
        frames=frames,
        stats=stats,
        reports=reports,
        sequences=sequences,
        shadow_rays_saved=shadow_saved,
        per_sequence_stats=per_seq,
    )
