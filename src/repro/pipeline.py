"""High-level rendering pipeline: whole animations, including camera cuts.

The coherence algorithm "works only for sequences in which the camera is
stationary; any camera movement logically separates one sequence from
another.  These shorter sequences represent the computational tasks for
which parallelization and frame coherence will be exploited."

:func:`render_animation` is that sentence as code: it splits the animation
at camera cuts (:func:`repro.scene.split_coherent_sequences`), renders each
run with a fresh coherent (or shadow-coherent) renderer, and returns the
assembled frames with merged statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .coherence import CoherentRenderer, FrameReport, ShadowCoherentRenderer
from .render import RayStats
from .scene import Animation, split_coherent_sequences

__all__ = ["render_animation", "AnimationRender"]


@dataclass
class AnimationRender:
    """Assembled output of :func:`render_animation`."""

    frames: np.ndarray  # (n_frames, H, W, 3) float64
    stats: RayStats
    reports: list[FrameReport]
    sequences: list[tuple[int, int]]
    shadow_rays_saved: int = 0
    per_sequence_stats: list[RayStats] = field(default_factory=list)

    @property
    def n_frames(self) -> int:
        return self.frames.shape[0]

    def total_computed_pixels(self) -> int:
        return sum(r.n_computed for r in self.reports)

    def total_copied_pixels(self) -> int:
        return sum(r.n_copied for r in self.reports)


def render_animation(
    animation: Animation,
    grid_resolution: int | tuple[int, int, int] = 24,
    shadow_coherence: bool = False,
    samples_per_axis: int = 1,
    chunk_size: int = 32768,
    on_frame: Callable[[int, FrameReport, np.ndarray], None] | None = None,
) -> AnimationRender:
    """Render every frame of ``animation`` with frame coherence.

    Camera cuts are handled by splitting into stationary-camera runs; the
    first frame of each run is rendered in full.

    Parameters
    ----------
    shadow_coherence:
        Use the :class:`ShadowCoherentRenderer` extension (requires
        ``samples_per_axis == 1``).
    on_frame:
        Optional callback ``(frame_index, report, image)`` invoked as each
        frame completes (for progress display or streaming output).
    """
    if shadow_coherence and samples_per_axis != 1:
        raise ValueError("shadow coherence requires samples_per_axis == 1")

    cam0 = animation.camera_at(0)
    frames = np.empty((animation.n_frames, cam0.height, cam0.width, 3), dtype=np.float64)
    stats = RayStats()
    reports: list[FrameReport] = []
    sequences = split_coherent_sequences(animation)
    shadow_saved = 0
    per_seq: list[RayStats] = []

    for start, stop in sequences:
        cam = animation.camera_at(start)
        if (cam.width, cam.height) != (cam0.width, cam0.height):
            raise ValueError("all shots must share one resolution")
        if shadow_coherence:
            renderer = ShadowCoherentRenderer(
                animation,
                grid_resolution=grid_resolution,
                chunk_size=chunk_size,
                first_frame=start,
                last_frame=stop,
            )
        else:
            renderer = CoherentRenderer(
                animation,
                grid_resolution=grid_resolution,
                samples_per_axis=samples_per_axis,
                chunk_size=chunk_size,
                first_frame=start,
                last_frame=stop,
            )
        seq_stats = RayStats()
        for f in range(start, stop):
            report = renderer.render_next()
            image = renderer.frame_image()
            frames[f] = image
            stats += report.stats
            seq_stats += report.stats
            reports.append(report)
            if on_frame is not None:
                on_frame(f, report, image)
        per_seq.append(seq_stats)
        if shadow_coherence:
            shadow_saved += renderer.total_shadow_rays_saved

    return AnimationRender(
        frames=frames,
        stats=stats,
        reports=reports,
        sequences=sequences,
        shadow_rays_saved=shadow_saved,
        per_sequence_stats=per_seq,
    )
