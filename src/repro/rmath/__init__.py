"""Math substrate: batched vectors, AABBs, affine transforms and noise."""

from .vec import (
    EPS,
    angle_between,
    clamp01,
    cross,
    dot,
    lerp,
    norm,
    norm_sq,
    normalize,
    orthonormal_basis,
    project,
    reflect,
    refract,
    reject,
    vec3,
    vec3s,
)
from .aabb import AABB, ray_aabb_intersect, union
from .transform import Transform
from .noise import fbm, turbulence, value_noise

__all__ = [
    "EPS",
    "AABB",
    "Transform",
    "angle_between",
    "clamp01",
    "cross",
    "dot",
    "fbm",
    "lerp",
    "norm",
    "norm_sq",
    "normalize",
    "orthonormal_basis",
    "project",
    "ray_aabb_intersect",
    "reflect",
    "refract",
    "reject",
    "turbulence",
    "union",
    "value_noise",
    "vec3",
    "vec3s",
]
