"""Deterministic lattice value noise for procedural textures.

POV-Ray's marble/agate/bozo textures are built on a smooth noise function.
We implement trilinear-interpolated value noise over an integer lattice with
a hash-based gradient-free lookup, plus fractal (fBm) and turbulence sums.
Everything is vectorized over ``(..., 3)`` point arrays and fully
deterministic (the lattice hash is a fixed integer mix), so renders are
reproducible across runs and processes — a requirement for the coherence
validator's bit-identical comparisons.
"""

from __future__ import annotations

import numpy as np

__all__ = ["value_noise", "fbm", "turbulence"]

_PRIME_X = np.uint64(0x9E3779B185EBCA87)
_PRIME_Y = np.uint64(0xC2B2AE3D27D4EB4F)
_PRIME_Z = np.uint64(0x165667B19E3779F9)


def _hash_lattice(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Map integer lattice coordinates to floats in [0, 1) deterministically."""
    with np.errstate(over="ignore"):
        h = (
            ix.astype(np.uint64) * _PRIME_X
            + iy.astype(np.uint64) * _PRIME_Y
            + iz.astype(np.uint64) * _PRIME_Z
        )
        h ^= h >> np.uint64(33)
        h *= np.uint64(0xFF51AFD7ED558CCD)
        h ^= h >> np.uint64(33)
    # use the top 53 bits for a uniform double in [0, 1)
    return (h >> np.uint64(11)).astype(np.float64) * (1.0 / 9007199254740992.0)


def _smoothstep(t: np.ndarray) -> np.ndarray:
    """Quintic fade (Perlin's improved curve): C2-continuous at cell edges."""
    return t * t * t * (t * (t * 6.0 - 15.0) + 10.0)


def value_noise(p: np.ndarray) -> np.ndarray:
    """Smooth value noise in [0, 1) sampled at points ``p`` of shape (..., 3)."""
    p = np.asarray(p, dtype=np.float64)
    pf = np.floor(p)
    ip = pf.astype(np.int64)
    f = p - pf
    u = _smoothstep(f)

    ix, iy, iz = ip[..., 0], ip[..., 1], ip[..., 2]
    ux, uy, uz = u[..., 0], u[..., 1], u[..., 2]

    def corner(dx: int, dy: int, dz: int) -> np.ndarray:
        return _hash_lattice(ix + dx, iy + dy, iz + dz)

    c000, c100 = corner(0, 0, 0), corner(1, 0, 0)
    c010, c110 = corner(0, 1, 0), corner(1, 1, 0)
    c001, c101 = corner(0, 0, 1), corner(1, 0, 1)
    c011, c111 = corner(0, 1, 1), corner(1, 1, 1)

    x00 = c000 + ux * (c100 - c000)
    x10 = c010 + ux * (c110 - c010)
    x01 = c001 + ux * (c101 - c001)
    x11 = c011 + ux * (c111 - c011)
    y0 = x00 + uy * (x10 - x00)
    y1 = x01 + uy * (x11 - x01)
    out = y0 + uz * (y1 - y0)
    # Trilinear interpolation can undershoot/overshoot by a few ulps near
    # cell corners; clamp so the documented [0, 1) contract holds exactly.
    return np.clip(out, 0.0, np.nextafter(1.0, 0.0))


def fbm(p: np.ndarray, octaves: int = 4, lacunarity: float = 2.0, gain: float = 0.5) -> np.ndarray:
    """Fractal Brownian motion: a geometric sum of noise octaves, in [0, 1)."""
    if octaves < 1:
        raise ValueError("octaves must be >= 1")
    p = np.asarray(p, dtype=np.float64)
    total = np.zeros(p.shape[:-1], dtype=np.float64)
    amp, freq, amp_sum = 1.0, 1.0, 0.0
    for _ in range(octaves):
        total += amp * value_noise(p * freq)
        amp_sum += amp
        amp *= gain
        freq *= lacunarity
    return total / amp_sum


def turbulence(p: np.ndarray, octaves: int = 4, lacunarity: float = 2.0, gain: float = 0.5) -> np.ndarray:
    """POV-style turbulence: a sum of |noise - 0.5| octaves, in [0, ~1)."""
    if octaves < 1:
        raise ValueError("octaves must be >= 1")
    p = np.asarray(p, dtype=np.float64)
    total = np.zeros(p.shape[:-1], dtype=np.float64)
    amp, freq, amp_sum = 1.0, 1.0, 0.0
    for _ in range(octaves):
        total += amp * np.abs(value_noise(p * freq) - 0.5) * 2.0
        amp_sum += amp
        amp *= gain
        freq *= lacunarity
    return total / amp_sum
