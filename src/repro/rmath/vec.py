"""Batched 3-vector operations.

Every function operates on arrays of shape ``(..., 3)`` so the renderer can
process whole wavefronts of rays with single numpy calls (structure-of-arrays
style).  Scalars broadcast per the usual numpy rules; the trailing axis is
always the spatial axis.

The module is deliberately free of classes: a "vector" is just an ndarray,
which keeps the hot path allocation-light and lets callers use views.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "vec3",
    "vec3s",
    "dot",
    "norm",
    "norm_sq",
    "normalize",
    "cross",
    "reflect",
    "refract",
    "lerp",
    "clamp01",
    "project",
    "reject",
    "angle_between",
    "orthonormal_basis",
    "EPS",
]

#: Geometric epsilon used across the tracer for self-intersection offsets.
EPS = 1e-9


def vec3(x: float, y: float, z: float, dtype=np.float64) -> np.ndarray:
    """Build a single 3-vector as a ``(3,)`` float array."""
    return np.array([x, y, z], dtype=dtype)


def vec3s(n: int, fill: float = 0.0, dtype=np.float64) -> np.ndarray:
    """Allocate an ``(n, 3)`` array filled with ``fill``."""
    return np.full((n, 3), fill, dtype=dtype)


def dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise dot product of ``(..., 3)`` arrays; returns shape ``(...,)``."""
    return np.einsum("...i,...i->...", a, b)


def norm_sq(a: np.ndarray) -> np.ndarray:
    """Squared Euclidean length along the last axis."""
    return dot(a, a)


def norm(a: np.ndarray) -> np.ndarray:
    """Euclidean length along the last axis."""
    return np.sqrt(norm_sq(a))


def normalize(a: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Return unit vectors; zero vectors are returned unchanged (length 0).

    ``out`` may alias ``a`` for in-place normalization.
    """
    n = norm(a)
    safe = np.where(n > 0.0, n, 1.0)
    if out is None:
        return a / safe[..., None]
    np.divide(a, safe[..., None], out=out)
    return out


def cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise cross product of ``(..., 3)`` arrays."""
    return np.cross(a, b)


def reflect(d: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Reflect incident directions ``d`` about unit normals ``n``.

    ``d`` points *toward* the surface.  Result has the same shape as ``d``.
    """
    return d - 2.0 * dot(d, n)[..., None] * n


def refract(
    d: np.ndarray, n: np.ndarray, eta: np.ndarray | float
) -> tuple[np.ndarray, np.ndarray]:
    """Refract unit incident directions ``d`` through unit normals ``n``.

    ``eta`` is the ratio n_incident / n_transmitted.  Returns ``(t, tir)``
    where ``t`` are the transmitted directions and ``tir`` is a boolean mask
    of rays that suffered total internal reflection (their ``t`` rows are
    zero-filled and must not be used).
    """
    d = np.asarray(d, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    eta = np.asarray(eta, dtype=np.float64)
    cos_i = -dot(d, n)
    sin2_t = eta * eta * np.maximum(0.0, 1.0 - cos_i * cos_i)
    tir = sin2_t > 1.0
    cos_t = np.sqrt(np.maximum(0.0, 1.0 - sin2_t))
    t = eta[..., None] * d + (eta * cos_i - cos_t)[..., None] * n
    t = np.where(tir[..., None], 0.0, t)
    return t, tir


def lerp(a: np.ndarray, b: np.ndarray, t: np.ndarray | float) -> np.ndarray:
    """Linear interpolation ``a + t*(b-a)`` with broadcasting."""
    t = np.asarray(t)
    return a + t[..., None] * (b - a) if np.ndim(t) and np.ndim(a) > np.ndim(t) else a + t * (b - a)


def clamp01(a: np.ndarray) -> np.ndarray:
    """Clamp values into [0, 1]."""
    return np.clip(a, 0.0, 1.0)


def project(a: np.ndarray, onto: np.ndarray) -> np.ndarray:
    """Project ``a`` onto vector(s) ``onto`` (not necessarily unit)."""
    denom = np.maximum(norm_sq(onto), EPS)
    return (dot(a, onto) / denom)[..., None] * onto


def reject(a: np.ndarray, frm: np.ndarray) -> np.ndarray:
    """Component of ``a`` orthogonal to ``frm``."""
    return a - project(a, frm)


def angle_between(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Angle in radians between vector pairs, numerically clamped."""
    c = dot(normalize(a), normalize(b))
    return np.arccos(np.clip(c, -1.0, 1.0))


def orthonormal_basis(n: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Build tangent/bitangent pairs for unit normals ``n`` (``(..., 3)``).

    Uses the branchless Frisvad-style construction, vectorized.
    """
    n = np.asarray(n, dtype=np.float64)
    single = n.ndim == 1
    nn = np.atleast_2d(n)
    sign = np.where(nn[:, 2] >= 0.0, 1.0, -1.0)
    a = -1.0 / (sign + nn[:, 2])
    b = nn[:, 0] * nn[:, 1] * a
    t = np.stack(
        [1.0 + sign * nn[:, 0] * nn[:, 0] * a, sign * b, -sign * nn[:, 0]], axis=-1
    )
    bt = np.stack([b, sign + nn[:, 1] * nn[:, 1] * a, -nn[:, 1]], axis=-1)
    if single:
        return t[0], bt[0]
    return t, bt
