"""Axis-aligned bounding boxes.

AABBs are the currency between the geometry layer, the uniform grid and the
frame-coherence change detector: every primitive reports its bounds per
frame, and the coherence engine diffs bounds between frames to find changed
voxels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AABB", "union", "ray_aabb_intersect"]


@dataclass(frozen=True)
class AABB:
    """An axis-aligned box ``[lo, hi]`` with inclusive corners."""

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "lo", np.asarray(self.lo, dtype=np.float64))
        object.__setattr__(self, "hi", np.asarray(self.hi, dtype=np.float64))
        if self.lo.shape != (3,) or self.hi.shape != (3,):
            raise ValueError("AABB corners must be 3-vectors")

    @staticmethod
    def empty() -> "AABB":
        """The identity for :func:`union`: contains nothing."""
        return AABB(np.full(3, np.inf), np.full(3, -np.inf))

    @staticmethod
    def from_points(points: np.ndarray) -> "AABB":
        """Tight bounds of an ``(n, 3)`` point cloud."""
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        if pts.shape[0] == 0:
            return AABB.empty()
        return AABB(pts.min(axis=0), pts.max(axis=0))

    def is_empty(self) -> bool:
        return bool(np.any(self.lo > self.hi))

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def extent(self) -> np.ndarray:
        return np.maximum(self.hi - self.lo, 0.0)

    @property
    def surface_area(self) -> float:
        e = self.extent
        return float(2.0 * (e[0] * e[1] + e[1] * e[2] + e[2] * e[0]))

    @property
    def volume(self) -> float:
        e = self.extent
        return float(e[0] * e[1] * e[2])

    def contains_point(self, p: np.ndarray) -> np.ndarray:
        """Boolean containment test for points of shape ``(..., 3)``."""
        p = np.asarray(p, dtype=np.float64)
        return np.all((p >= self.lo) & (p <= self.hi), axis=-1)

    def overlaps(self, other: "AABB") -> bool:
        """True when the two boxes share any volume (touching counts)."""
        if self.is_empty() or other.is_empty():
            return False
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def expanded(self, margin: float) -> "AABB":
        """Uniformly grow the box by ``margin`` on every side."""
        if self.is_empty():
            return self
        m = np.full(3, float(margin))
        return AABB(self.lo - m, self.hi + m)

    def union(self, other: "AABB") -> "AABB":
        return union(self, other)

    def corners(self) -> np.ndarray:
        """All 8 corner points as an ``(8, 3)`` array."""
        lo, hi = self.lo, self.hi
        xs = np.array([lo[0], hi[0]])
        ys = np.array([lo[1], hi[1]])
        zs = np.array([lo[2], hi[2]])
        gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
        return np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=-1)


def union(a: AABB, b: AABB) -> AABB:
    """Smallest box containing both ``a`` and ``b``."""
    return AABB(np.minimum(a.lo, b.lo), np.maximum(a.hi, b.hi))


def ray_aabb_intersect(
    origins: np.ndarray,
    inv_dirs: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    t_max: np.ndarray | float = np.inf,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized slab test for ray batches against one box.

    Parameters
    ----------
    origins, inv_dirs:
        ``(n, 3)`` ray origins and reciprocal directions (``1/d``; infinities
        for zero components are fine and handled by the slab method).
    lo, hi:
        Box corners, broadcastable against the rays.
    t_max:
        Upper clip on the parametric interval (e.g. hit distance).

    Returns
    -------
    hit : ``(n,)`` bool mask
    t_enter, t_exit : parametric interval, clipped to ``[0, t_max]``.
    """
    origins = np.asarray(origins, dtype=np.float64)
    inv_dirs = np.asarray(inv_dirs, dtype=np.float64)
    with np.errstate(invalid="ignore", over="ignore"):  # 0 * inf -> NaN rows
        t0 = (lo - origins) * inv_dirs
        t1 = (hi - origins) * inv_dirs
    # NaNs appear when origin sits exactly on a slab with zero direction;
    # fmin/fmax suppress them in favour of the finite operand.
    t_small = np.fmin(t0, t1)
    t_big = np.fmax(t0, t1)
    t_enter = np.max(t_small, axis=-1)
    t_exit = np.min(t_big, axis=-1)
    t_enter = np.maximum(t_enter, 0.0)
    t_exit = np.minimum(t_exit, t_max)
    hit = t_enter <= t_exit
    return hit, t_enter, t_exit
