"""Affine transforms (4x4 homogeneous) for object placement and animation.

Primitives in :mod:`repro.geometry` are defined in a canonical local frame
(e.g. the unit cylinder along +Y); a :class:`Transform` places them in the
world.  Rays are intersected by transforming them into local space, which
keeps every primitive's intersection routine simple and fully vectorized.
"""

from __future__ import annotations

import numpy as np

from .aabb import AABB

__all__ = ["Transform"]


class Transform:
    """An invertible affine map ``p -> M @ p + t`` stored as a 4x4 matrix.

    Instances are immutable; composition returns new objects.  The inverse
    and the inverse-transpose (for normals) are computed once and cached.
    """

    __slots__ = ("m", "inv", "normal_m", "_is_identity")

    def __init__(self, m: np.ndarray | None = None):
        if m is None:
            m = np.eye(4)
        m = np.asarray(m, dtype=np.float64)
        if m.shape != (4, 4):
            raise ValueError("Transform expects a 4x4 matrix")
        self.m = m
        self.inv = np.linalg.inv(m)
        # Normals transform by the inverse-transpose of the upper-left 3x3.
        self.normal_m = self.inv[:3, :3].T.copy()
        # Cached: queried once per object per ray batch on the hot path.
        # rtol must be 0: allclose's default rtol=1e-5 against the unit
        # diagonal would classify e.g. scale(0.99999) as the identity.
        self._is_identity = bool(np.allclose(m, np.eye(4), rtol=0.0, atol=1e-12))

    # -- constructors -----------------------------------------------------
    @staticmethod
    def identity() -> "Transform":
        return Transform()

    @staticmethod
    def translate(x: float, y: float, z: float) -> "Transform":
        m = np.eye(4)
        m[:3, 3] = (x, y, z)
        return Transform(m)

    @staticmethod
    def scale(x: float, y: float | None = None, z: float | None = None) -> "Transform":
        y = x if y is None else y
        z = x if z is None else z
        if x == 0 or y == 0 or z == 0:
            raise ValueError("scale factors must be non-zero")
        m = np.diag([x, y, z, 1.0])
        return Transform(m)

    @staticmethod
    def rotate_x(angle: float) -> "Transform":
        c, s = np.cos(angle), np.sin(angle)
        m = np.eye(4)
        m[1, 1], m[1, 2], m[2, 1], m[2, 2] = c, -s, s, c
        return Transform(m)

    @staticmethod
    def rotate_y(angle: float) -> "Transform":
        c, s = np.cos(angle), np.sin(angle)
        m = np.eye(4)
        m[0, 0], m[0, 2], m[2, 0], m[2, 2] = c, s, -s, c
        return Transform(m)

    @staticmethod
    def rotate_z(angle: float) -> "Transform":
        c, s = np.cos(angle), np.sin(angle)
        m = np.eye(4)
        m[0, 0], m[0, 1], m[1, 0], m[1, 1] = c, -s, s, c
        return Transform(m)

    @staticmethod
    def rotate_axis(axis: np.ndarray, angle: float) -> "Transform":
        """Rodrigues rotation about an arbitrary (non-zero) axis."""
        axis = np.asarray(axis, dtype=np.float64)
        n = np.linalg.norm(axis)
        if n == 0:
            raise ValueError("rotation axis must be non-zero")
        x, y, z = axis / n
        c, s = np.cos(angle), np.sin(angle)
        omc = 1.0 - c
        r = np.array(
            [
                [c + x * x * omc, x * y * omc - z * s, x * z * omc + y * s],
                [y * x * omc + z * s, c + y * y * omc, y * z * omc - x * s],
                [z * x * omc - y * s, z * y * omc + x * s, c + z * z * omc],
            ]
        )
        m = np.eye(4)
        m[:3, :3] = r
        return Transform(m)

    # -- composition -------------------------------------------------------
    def then(self, other: "Transform") -> "Transform":
        """Apply ``self`` first, then ``other`` (i.e. ``other @ self``)."""
        return Transform(other.m @ self.m)

    def __matmul__(self, other: "Transform") -> "Transform":
        """Matrix-style composition: ``(a @ b)(p) == a(b(p))``."""
        return Transform(self.m @ other.m)

    def inverse(self) -> "Transform":
        return Transform(self.inv)

    # -- application -------------------------------------------------------
    def apply_points(self, p: np.ndarray) -> np.ndarray:
        """Transform points of shape ``(..., 3)``."""
        p = np.asarray(p, dtype=np.float64)
        return p @ self.m[:3, :3].T + self.m[:3, 3]

    def apply_vectors(self, v: np.ndarray) -> np.ndarray:
        """Transform directions (no translation)."""
        v = np.asarray(v, dtype=np.float64)
        return v @ self.m[:3, :3].T

    def apply_normals(self, n: np.ndarray) -> np.ndarray:
        """Transform normals by the inverse-transpose (not renormalized)."""
        n = np.asarray(n, dtype=np.float64)
        return n @ self.normal_m.T

    def inv_points(self, p: np.ndarray) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        return p @ self.inv[:3, :3].T + self.inv[:3, 3]

    def inv_vectors(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        return v @ self.inv[:3, :3].T

    def apply_aabb(self, box: AABB) -> AABB:
        """Bounds of a transformed box (bounds of the 8 mapped corners).

        A box with infinite extents (planes) maps to the all-infinite box:
        a rotation can spread an infinite axis across all three, so the only
        safe tight-enough answer is "unbounded"; consumers clip it to the
        scene's voxelized region.
        """
        if box.is_empty():
            return box
        if not (np.all(np.isfinite(box.lo)) and np.all(np.isfinite(box.hi))):
            return AABB(np.full(3, -np.inf), np.full(3, np.inf))
        return AABB.from_points(self.apply_points(box.corners()))

    # -- misc ---------------------------------------------------------------
    def is_identity(self, tol: float = 1e-12) -> bool:
        if tol == 1e-12:
            return self._is_identity
        return bool(np.allclose(self.m, np.eye(4), rtol=0.0, atol=tol))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transform({self.m.tolist()!r})"
