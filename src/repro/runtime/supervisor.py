"""Supervised task scheduling for the real render farm.

``ProcessPoolExecutor.map`` trusts every worker with its life: one crash
aborts the render, one hang stalls it forever.  On a network of
workstations that is the common case, not the exception — so the farm
submits tasks individually through this supervisor, which:

* enforces a **per-task deadline** derived from observed task durations
  (``timeout_factor`` x the slowest completion so far, the same 3x
  heuristic :func:`repro.parallel.fault_tolerance.default_worker_timeout`
  uses for the simulated cluster), or a fixed ``task_timeout``;
* detects **worker crashes** (a broken pool) — the pool is rebuilt and
  every in-flight task re-queued;
* detects **hangs** — a task past its deadline is declared lost and
  re-submitted; the abandoned future is kept so a *merely slow* worker's
  late completion is still accepted (or ignored as a duplicate once its
  replacement finished first); if every worker slot is presumed hung the
  pool is killed and rebuilt;
* **validates outputs** before accepting them (``validate`` callback —
  the farm checks shape and finiteness, catching corrupted blocks);
* re-queues failures with **capped retries and exponential backoff**,
  and on retry exhaustion **degrades to in-process serial execution** of
  the task instead of aborting the whole render;
* records every attempt (:class:`TaskAttempt`) and surfaces robustness
  counters in the :class:`SupervisorOutcome`.

The supervisor is renderer-agnostic: ``fn`` is any picklable module-level
function of one task argument, so it is reusable for any master/worker
decomposition (and directly testable with toy tasks).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from .faults import FaultPlan

__all__ = [
    "TaskSupervisor",
    "TaskAttempt",
    "SupervisorOutcome",
    "SupervisorError",
    "task_context",
]

# Which (task_index, attempt) this worker is currently executing.  Task
# functions that emit telemetry read it via task_context(); thread-local so
# the thread executor's concurrent workers don't trample each other.
_TASK_CONTEXT = threading.local()


def task_context() -> tuple[int, int]:
    """(task_index, attempt) of the task running in the calling worker."""
    return (
        getattr(_TASK_CONTEXT, "index", -1),
        getattr(_TASK_CONTEXT, "attempt", 0),
    )


class SupervisorError(RuntimeError):
    """A task could not be completed despite retries and degradation."""


@dataclass(frozen=True)
class TaskAttempt:
    """One dispatch of one task and how it ended."""

    task_index: int
    attempt: int
    outcome: str  # ok | late-ok | degraded-ok | duplicate | timeout | crash | error | invalid
    duration: float
    error: str = ""
    started: float = 0.0  # seconds after supervisor start this attempt began


@dataclass
class SupervisorOutcome:
    """Results plus the robustness story of how they were obtained."""

    results: list
    attempts: list[TaskAttempt] = field(default_factory=list)
    n_retries: int = 0
    n_timeouts: int = 0
    n_crashes: int = 0
    n_invalid: int = 0
    n_degraded: int = 0
    n_duplicates: int = 0
    n_pool_rebuilds: int = 0
    n_from_checkpoint: int = 0
    wall_time: float = 0.0


def _run_task(payload):
    """Worker entry point: consult the fault plan, compute, consult again."""
    fn, task, task_index, attempt, plan, disruptive_ok = payload
    _TASK_CONTEXT.index = task_index
    _TASK_CONTEXT.attempt = attempt
    if plan is not None:
        plan.apply_before(task_index, attempt, disruptive_ok)
    result = fn(task)
    if plan is not None:
        result = plan.apply_after(task_index, attempt, result)
    return result


class TaskSupervisor:
    """Run ``fn`` over ``tasks`` with crash/hang recovery.

    Parameters
    ----------
    fn:
        Picklable function of one task argument.
    tasks:
        Sequence of task arguments; results keep this order.
    executor:
        ``"process"`` (sandboxed, full fault coverage), ``"thread"``
        (crash/hang faults are not injected — they would take down the
        master), or ``"serial"`` (in-process reference path).
    validate:
        ``validate(task, result) -> bool``; a False result is treated as
        a failure and retried.
    max_attempts:
        Pool attempts per task before degradation (>= 1).
    task_timeout / timeout_factor / timeout_margin / startup_timeout:
        Deadline policy.  A fixed ``task_timeout`` wins; otherwise the
        deadline adapts to ``timeout_factor * max(observed) + margin``
        once a task has completed, with ``startup_timeout`` (None = no
        deadline) covering the observation-free start-up window.
    degrade_serial:
        On retry exhaustion, run the task in-process instead of failing.
    completed:
        ``{task_index: result}`` already finished (checkpoint resume);
        these tasks are not re-executed.
    on_result:
        ``on_result(task_index, result)`` called once per accepted
        result, in completion order — the farm spools checkpoints here.
    feed:
        Optional ``feed() -> list | None`` called whenever the pending
        queue is empty and worker slots are free: a list of new task
        arguments extends ``tasks`` (indices keep growing), ``[]`` means
        "nothing right now, ask again after the next completion", and
        ``None`` means the source is exhausted.  This is how a
        scheduling policy drives the supervisor demand-style instead of
        handing it a static upfront list.
    """

    def __init__(
        self,
        fn,
        tasks,
        *,
        executor: str = "process",
        n_workers: int = 2,
        initializer=None,
        initargs=(),
        validate=None,
        max_attempts: int = 3,
        task_timeout: float | None = None,
        timeout_factor: float = 3.0,
        timeout_margin: float = 1.0,
        startup_timeout: float | None = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        degrade_serial: bool = True,
        max_pool_rebuilds: int = 4,
        poll_interval: float = 0.05,
        fault_plan: FaultPlan | None = None,
        completed: dict | None = None,
        on_result=None,
        feed=None,
    ):
        if executor not in ("process", "thread", "serial"):
            raise ValueError("executor must be 'process', 'thread' or 'serial'")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.fn = fn
        self.tasks = list(tasks)
        self.executor = executor
        self.n_workers = n_workers
        self.initializer = initializer
        self.initargs = initargs
        self.validate = validate
        self.max_attempts = max_attempts
        self.task_timeout = task_timeout
        self.timeout_factor = timeout_factor
        self.timeout_margin = timeout_margin
        self.startup_timeout = startup_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.degrade_serial = degrade_serial
        self.max_pool_rebuilds = max_pool_rebuilds
        self.poll_interval = poll_interval
        self.fault_plan = fault_plan
        self.completed = dict(completed or {})
        self.on_result = on_result
        self.feed = feed
        self._feed_done = feed is None

        self._pool = None
        self._inflight: dict = {}  # Future -> (task_index, attempt, submitted_at)
        self._late: dict = {}  # abandoned-but-maybe-finishing futures
        self._durations: list[float] = []
        self._results: dict[int, object] = {}
        self._pending: deque = deque()
        self._t0 = 0.0
        self._out = SupervisorOutcome(results=[None] * len(self.tasks))

    # -- public entry ----------------------------------------------------------
    def run(self) -> SupervisorOutcome:
        t0 = self._t0 = time.monotonic()
        out = self._out
        out.n_from_checkpoint = len(self.completed)
        self._results.update(self.completed)
        self._pending = deque(
            (i, 0, 0.0) for i in range(len(self.tasks)) if i not in self._results
        )
        try:
            if self.executor == "serial":
                self._run_serial()
            else:
                self._run_pooled()
        finally:
            self._close_pool()
        out.results = [self._results[i] for i in range(len(self.tasks))]
        out.wall_time = time.monotonic() - t0
        return out

    # -- feed plumbing -----------------------------------------------------------
    def _pull_feed(self) -> int:
        """Ask the feed for more tasks; returns how many were added."""
        if self._feed_done:
            return 0
        new = self.feed()
        if new is None:
            self._feed_done = True
            return 0
        added = 0
        for task in new:
            idx = len(self.tasks)
            self.tasks.append(task)
            self._pending.append((idx, 0, 0.0))
            added += 1
        return added

    # -- serial reference path -------------------------------------------------
    def _run_serial(self) -> None:
        pending = self._pending
        while pending or not self._feed_done:
            if not pending:
                if self._pull_feed() == 0:
                    if self._feed_done:
                        break
                    raise SupervisorError(
                        "supervisor stalled: feed returned no work with none in flight"
                    )
                continue
            idx, attempt, not_before = pending.popleft()
            if idx in self._results:
                continue
            if attempt >= self.max_attempts:
                self._degrade(idx, attempt)
                continue
            delay = not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            ok, result, err, dur = self._attempt_inline(idx, attempt)
            if ok:
                self._accept(idx, attempt, result, dur, "ok")
            else:
                self._record(idx, attempt, "invalid" if err == "invalid" else "error", dur, err)
                if err == "invalid":
                    self._out.n_invalid += 1
                self._requeue(idx, attempt)

    # -- pooled path -------------------------------------------------------------
    def _run_pooled(self) -> None:
        pending = self._pending
        self._pool = self._make_pool()
        while len(self._results) < len(self.tasks) or not self._feed_done:
            now = time.monotonic()
            # Fill free slots with ready pending work, pulling the feed
            # when the queue runs dry.
            while len(self._inflight) < self.n_workers:
                if not pending and self._pull_feed() == 0:
                    break
                idx, attempt, not_before = pending[0]
                if not_before > now:
                    break
                pending.popleft()
                if idx in self._results:
                    continue
                if attempt >= self.max_attempts:
                    self._degrade(idx, attempt)
                    continue
                self._submit(idx, attempt)
            watched = list(self._inflight) + list(self._late)
            if not watched:
                if pending:  # everything is backing off; wait for the head
                    time.sleep(max(0.0, min(pending[0][2] - now, self.backoff_cap)))
                    continue
                if not self._feed_done:
                    if self._pull_feed() > 0:
                        continue
                    if self._feed_done:
                        continue  # loop condition decides whether we are done
                    raise SupervisorError(
                        "supervisor stalled: feed returned no work with none in flight"
                    )
                if len(self._results) < len(self.tasks):  # pragma: no cover - invariant
                    raise SupervisorError("supervisor stalled with no work in flight")
                break
            done, _ = wait(watched, timeout=self._tick(now), return_when=FIRST_COMPLETED)
            broken = False
            for fut in done:
                broken = self._harvest(fut) or broken
            if broken:
                self._out.n_crashes += 1
                self._rebuild_pool(outcome="crash")
                continue
            self._sweep_deadlines()
            # Every worker slot presumed hung: only a fresh pool can make
            # progress on whatever is still queued or unfinished.
            hung = sum(1 for f in self._late if not f.done())
            if hung >= self.n_workers and len(self._results) < len(self.tasks):
                self._rebuild_pool(outcome="abandoned")

    # -- pool plumbing -----------------------------------------------------------
    def _make_pool(self):
        if self.executor == "thread":
            return ThreadPoolExecutor(
                max_workers=self.n_workers,
                initializer=self.initializer,
                initargs=self.initargs,
            )
        return ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def _kill_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        procs = getattr(pool, "_processes", None) or {}
        for p in list(procs.values()):
            try:
                p.terminate()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _close_pool(self) -> None:
        pool = self._pool
        if pool is None:
            return
        leftovers = [f for f in (*self._inflight, *self._late) if not f.done()]
        if leftovers:
            self._kill_pool()  # hung workers must not block shutdown
        else:
            self._pool = None
            pool.shutdown(wait=True)

    def _rebuild_pool(self, outcome: str) -> None:
        """Abandon the current pool, re-queue its in-flight tasks, start anew.

        Tasks already moved to ``_late`` were re-queued when their deadline
        fired, so only ``_inflight`` entries are re-queued here.
        """
        now = time.monotonic()
        for _fut, (idx, attempt, submitted_at) in self._inflight.items():
            self._record(idx, attempt, outcome, now - submitted_at)
            self._requeue(idx, attempt)
        self._inflight.clear()
        self._late.clear()
        self._kill_pool()
        self._out.n_pool_rebuilds += 1
        if self._out.n_pool_rebuilds > self.max_pool_rebuilds:
            raise SupervisorError(
                f"worker pool lost {self._out.n_pool_rebuilds} times "
                f"(limit {self.max_pool_rebuilds}); presuming all workers dead"
            )
        self._pool = self._make_pool()

    # -- scheduling internals ----------------------------------------------------
    def _submit(self, idx: int, attempt: int) -> None:
        disruptive_ok = self.executor == "process"
        payload = (self.fn, self.tasks[idx], idx, attempt, self.fault_plan, disruptive_ok)
        fut = self._pool.submit(_run_task, payload)
        self._inflight[fut] = (idx, attempt, time.monotonic())

    def _current_timeout(self) -> float | None:
        if self.task_timeout is not None:
            return self.task_timeout
        if self._durations:
            return self.timeout_factor * max(self._durations) + self.timeout_margin
        return self.startup_timeout

    def _tick(self, now: float) -> float:
        timeout = self._current_timeout()
        if timeout is None or not self._inflight:
            return 0.25
        next_deadline = min(at + timeout for _i, _a, at in self._inflight.values())
        return min(0.5, max(self.poll_interval, next_deadline - now))

    def _harvest(self, fut) -> bool:
        """Absorb one completed future; returns True if the pool is broken."""
        now = time.monotonic()
        if fut.cancelled():
            self._inflight.pop(fut, None)
            self._late.pop(fut, None)
            return False
        exc = fut.exception()
        if isinstance(exc, BrokenExecutor):
            return True  # maps left intact for _rebuild_pool
        info = self._inflight.pop(fut, None)
        was_late = info is None
        if was_late:
            info = self._late.pop(fut, None)
        if info is None:
            return False
        idx, attempt, submitted_at = info
        dur = now - submitted_at
        if exc is not None:
            self._record(idx, attempt, "error", dur, repr(exc))
            if not was_late:  # a late failure was already re-queued at timeout
                self._requeue(idx, attempt)
            return False
        result = fut.result()
        if idx in self._results:
            self._out.n_duplicates += 1
            self._record(idx, attempt, "duplicate", dur)
            return False
        if not self._valid(idx, result):
            self._out.n_invalid += 1
            self._record(idx, attempt, "invalid", dur)
            if not was_late:
                self._requeue(idx, attempt)
            return False
        self._accept(idx, attempt, result, dur, "late-ok" if was_late else "ok")
        return False

    def _sweep_deadlines(self) -> None:
        timeout = self._current_timeout()
        if timeout is None:
            return
        pending = self._pending
        now = time.monotonic()
        for fut in [f for f, (_i, _a, at) in self._inflight.items() if now - at >= timeout]:
            idx, attempt, submitted_at = self._inflight.pop(fut)
            if fut.cancel():
                # Never started (queued behind hung workers): re-queue at the
                # same attempt — the task itself did nothing wrong.
                pending.append((idx, attempt, now))
                continue
            if fut.done():
                self._inflight[fut] = (idx, attempt, submitted_at)
                continue  # finished between sweep start and cancel; harvest next tick
            self._out.n_timeouts += 1
            self._record(idx, attempt, "timeout", now - submitted_at)
            self._late[fut] = (idx, attempt, submitted_at)
            self._requeue(idx, attempt)

    def _requeue(self, idx: int, attempt: int) -> None:
        self._out.n_retries += 1
        backoff = min(self.backoff_cap, self.backoff_base * (2.0**attempt))
        self._pending.append((idx, attempt + 1, time.monotonic() + backoff))

    # -- attempt bookkeeping -----------------------------------------------------
    def _valid(self, idx: int, result) -> bool:
        if self.validate is None:
            return True
        try:
            return bool(self.validate(self.tasks[idx], result))
        except Exception:
            return False

    def _accept(self, idx: int, attempt: int, result, dur: float, outcome: str) -> None:
        self._results[idx] = result
        self._durations.append(dur)
        self._record(idx, attempt, outcome, dur)
        if self.on_result is not None:
            self.on_result(idx, result)

    def _record(self, idx: int, attempt: int, outcome: str, dur: float, err: str = "") -> None:
        # Recorded at attempt end, so its start is "now minus duration" on
        # the supervisor's clock — the worker-utilization timeline's x-axis.
        started = max(0.0, time.monotonic() - dur - self._t0)
        self._out.attempts.append(TaskAttempt(idx, attempt, outcome, dur, err, started))

    def _attempt_inline(self, idx: int, attempt: int):
        """Run one task in-process (serial executor and degradation path)."""
        t0 = time.monotonic()
        payload = (self.fn, self.tasks[idx], idx, attempt, self.fault_plan, False)
        try:
            result = _run_task(payload)
        except Exception as exc:
            return False, None, repr(exc), time.monotonic() - t0
        dur = time.monotonic() - t0
        if not self._valid(idx, result):
            return False, None, "invalid", dur
        return True, result, "", dur

    def _degrade(self, idx: int, attempt: int) -> None:
        if not self.degrade_serial:
            raise SupervisorError(
                f"task {idx} failed {attempt} attempts (limit {self.max_attempts}) "
                "and serial degradation is disabled"
            )
        ok, result, err, dur = self._attempt_inline(idx, attempt)
        if not ok:
            raise SupervisorError(
                f"task {idx} failed {attempt} pool attempts and the in-process "
                f"serial fallback: {err}"
            )
        self._out.n_degraded += 1
        self._accept(idx, attempt, result, dur, "degraded-ok")
