"""Real parallel rendering on the local machine.

The cluster simulator (:mod:`repro.cluster`) answers "what would this have
cost on the 1998 testbed"; this module actually *runs* the master/worker
decomposition with live processes, demonstrating the protocol end-to-end
and providing the ground truth that partitioned rendering assembles the
same images as a single renderer.

Both of the paper's schemes are implemented:

* ``frame`` mode — frame division: the image is tiled into blocks; each
  worker owns a block and renders it coherently across every frame.
* ``sequence`` mode — sequence division: each worker owns a contiguous
  frame range and renders whole frames coherently inside it.
* ``hybrid`` mode — the paper's "each processor computes pixels in a
  subarea of a frame for a subsequence of the entire animation": one task
  per (block, frame-chunk) pair.

Executors: ``process`` (fork-based multiprocessing; the real thing),
``thread`` (shared-memory; numpy releases the GIL enough to help), and
``serial`` (deterministic in-process reference).

Scheduling: the default ``schedule="static"`` builds the task list
upfront (one task per block / range / chunk).  ``"demand"`` and
``"adaptive"`` instead drive the supervisor through a pure scheduling
policy (:mod:`repro.sched`) — the same state machines the cluster
simulator replays: demand-driven (block x frame-chunk) distribution, and
adaptive sequence subdivision with tail-stealing plus a worker-side
renderer-continuation cache so a chain's coherence survives across its
segment tasks on the thread/serial executors.

Dispatch is **supervised** (:mod:`repro.runtime.supervisor`): tasks are
submitted individually with per-task deadlines, crashed or hung workers
are detected and their tasks re-queued with capped retries, corrupted
outputs are rejected by a shape/finiteness check before assembly, and a
task that keeps failing degrades to in-process serial execution instead
of aborting the render.  Passing ``run_dir`` to :meth:`LocalRenderFarm.
render` spools each completed task to disk as it arrives; a later
``render(resume=run_dir)`` skips the finished tasks — checkpoint/resume
at the task granularity, complementing the intra-chain granularity of
:mod:`repro.coherence.checkpoint`.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..coherence import CoherentRenderer, grid_for_animation
from ..geometry import RayKind
from ..obs.trace import TraceContext, flight_span_id, new_run_id, worker_session
from ..parallel.partition import PixelRegion, default_block_layout, sequence_ranges
from ..render import RayStats
from ..telemetry import NULL as NULL_TELEMETRY
from ..buffers import (
    FrameRef,
    SharedFrameStore,
    activate_worker_store,
    release_refs,
    worker_store,
)
from ..telemetry import Telemetry
from ..telemetry.profiling import profile_into
from .faults import FaultPlan
from .spec import AnimationSpec
from .supervisor import TaskAttempt, TaskSupervisor, task_context

__all__ = ["LocalRenderFarm", "FarmResult"]

#: TaskAttempt outcomes that represent a recovery action taken by the
#: supervisor (surfaced as ``recovery`` telemetry events).
_RECOVERY_OUTCOMES = {"timeout", "crash", "error", "invalid", "abandoned", "degraded-ok"}

# Per-process cache keyed by spec: workers build each animation once, and
# concurrent farms with *different* specs (the thread executor shares this
# module's globals) can no longer evict or corrupt each other's entry
# mid-render the way a single global (spec, anim) pair could.
_WORKER_CACHE: dict[tuple, object] = {}
_WORKER_CACHE_LOCK = threading.Lock()
_WORKER_CACHE_MAX = 4


def _spec_key(spec: AnimationSpec) -> tuple:
    return (spec.factory, repr(sorted(spec.kwargs.items())))


def _worker_init(spec: AnimationSpec, shm_token: str | None = None) -> None:
    _get_anim(spec)
    # A token means the master runs a process pool and wants frames in
    # shared memory; thread/serial executors pass None (same process —
    # pickling never happens, so plain arrays are already zero-copy).
    activate_worker_store(shm_token)


def _frames_alloc(shape) -> tuple:
    """One task's output framebuffer: ``(handle, writable array)``.

    With an armed worker store the array is a shared-memory segment the
    renderer fills in place and ``handle`` is the picklable
    :class:`~repro.buffers.FrameRef` that rides home in the result tuple
    — the pixels themselves never cross the fork boundary.  Otherwise
    both are one plain ndarray.
    """
    store = worker_store()
    if store is None:
        frames = np.empty(shape, dtype=np.float64)
        return frames, frames
    return store.create(shape, np.float64)


def _seal_frames(handle) -> None:
    """Drop the worker's own mapping of a shm-backed result (the master
    re-attaches from the FrameRef; keeping ours open just holds pages).
    The caller must have dropped its own view of the frames first, or the
    mapping survives until GC collects the view."""
    if isinstance(handle, FrameRef):
        handle.close_local()


def _get_anim(spec: AnimationSpec):
    key = _spec_key(spec)
    with _WORKER_CACHE_LOCK:
        anim = _WORKER_CACHE.get(key)
    if anim is not None:
        return anim
    anim = spec.build()  # built outside the lock; a racing duplicate is benign
    with _WORKER_CACHE_LOCK:
        anim = _WORKER_CACHE.setdefault(key, anim)
        while len(_WORKER_CACHE) > _WORKER_CACHE_MAX:
            oldest = next(k for k in _WORKER_CACHE if k != key)
            del _WORKER_CACHE[oldest]
    return anim


def _worker_label() -> str:
    """Stable-within-a-run worker identity: process id (process executor)
    plus thread id (distinguishes the thread executor's workers)."""
    return f"{os.getpid()}.{threading.get_ident() % 100000}"


def _ctx_worker(ctx) -> str:
    """The worker identity a task span should report: the scheduling lane
    the dispatcher stamped into the trace context (stable, shared with
    the master's flight spans), falling back to the local pid/thread
    label for static task lists."""
    if isinstance(ctx, dict) and ctx.get("worker"):
        return str(ctx["worker"])
    return _worker_label()


def _worker_telemetry(ctx):
    """(telemetry, sink) for one task; disabled tasks share NULL.

    ``ctx`` is the envelope's telemetry slot: a trace-context dict (run
    id, parent span, namespace seed — see :mod:`repro.obs.trace`), the
    legacy ``True`` (telemetry on, untraced), or falsy (off).  The local
    task index and attempt counter disambiguate the span namespace when
    the supervised pool retries a task with identical args.
    """
    idx, attempt = task_context()
    return worker_session(ctx, attempt=attempt, index=idx)


def _worker_profile_path(profile_dir) -> str | None:
    if not profile_dir:
        return None
    idx, attempt = task_context()
    return str(Path(profile_dir) / f"task_{idx:04d}_a{attempt}_{os.getpid()}.prof")


def _finish_worker_events(tel: Telemetry, sink) -> str:
    """Flush and serialize a worker task's event buffer for transport (the
    master re-emits it into the run's sinks via ``Telemetry.absorb``)."""
    if sink is None:
        return ""
    tel.close()
    return tel.serialize_events(sink.events)


def _render_block_task(args):
    """Frame-division worker: render one block across all frames."""
    spec, box, grid_resolution, samples, tel_ctx, profile_dir = args
    anim = _get_anim(spec)
    region = PixelRegion(*box, width=anim.camera_at(0).width).pixels
    tel, sink = _worker_telemetry(tel_ctx)
    _idx, attempt = task_context()
    with profile_into(_worker_profile_path(profile_dir)):
        with tel.span(
            "task",
            worker=_ctx_worker(tel_ctx),
            mode="frame",
            frame0=0,
            frame1=anim.n_frames,
            region=int(region.size),
            rays=0,
            n_computed=0,
            attempt=attempt,
        ) as sp:
            renderer = CoherentRenderer(
                anim,
                region=region,
                grid_resolution=grid_resolution,
                samples_per_axis=samples,
                telemetry=tel,
            )
            out_frames, frames = _frames_alloc((anim.n_frames, region.size, 3))
            for f in range(anim.n_frames):
                renderer.render_next()
                frames[f] = renderer.framebuffer.gather(region)
            stats = RayStats.merge(r.stats for r in renderer.reports)
            sp.attrs["rays"] = stats.total
            sp.attrs["n_computed"] = sum(r.n_computed for r in renderer.reports)
    frames = None
    _seal_frames(out_frames)
    return box, region, out_frames, stats.counts, _finish_worker_events(tel, sink)


def _render_sequence_task(args):
    """Sequence-division worker: render whole frames for one range."""
    spec, start, stop, grid_resolution, samples, tel_ctx, profile_dir = args
    anim = _get_anim(spec)
    tel, sink = _worker_telemetry(tel_ctx)
    _idx, attempt = task_context()
    cam = anim.camera_at(start)
    with profile_into(_worker_profile_path(profile_dir)):
        with tel.span(
            "task",
            worker=_ctx_worker(tel_ctx),
            mode="sequence",
            frame0=int(start),
            frame1=int(stop),
            region=int(cam.n_pixels),
            rays=0,
            n_computed=0,
            attempt=attempt,
        ) as sp:
            renderer = CoherentRenderer(
                anim,
                grid_resolution=grid_resolution,
                samples_per_axis=samples,
                first_frame=start,
                last_frame=stop,
                telemetry=tel,
            )
            out_frames, frames = _frames_alloc((stop - start, cam.height, cam.width, 3))
            for i in range(stop - start):
                renderer.render_next()
                frames[i] = renderer.frame_image()
            stats = RayStats.merge(r.stats for r in renderer.reports)
            sp.attrs["rays"] = stats.total
            sp.attrs["n_computed"] = sum(r.n_computed for r in renderer.reports)
    frames = None
    _seal_frames(out_frames)
    return start, stop, out_frames, stats.counts, _finish_worker_events(tel, sink)


def _render_hybrid_task(args):
    """Hybrid worker: one block over one frame chunk (subarea x subsequence)."""
    spec, box, start, stop, grid_resolution, samples, tel_ctx, profile_dir = args
    anim = _get_anim(spec)
    region = PixelRegion(*box, width=anim.camera_at(0).width).pixels
    tel, sink = _worker_telemetry(tel_ctx)
    _idx, attempt = task_context()
    with profile_into(_worker_profile_path(profile_dir)):
        with tel.span(
            "task",
            worker=_ctx_worker(tel_ctx),
            mode="hybrid",
            frame0=int(start),
            frame1=int(stop),
            region=int(region.size),
            rays=0,
            n_computed=0,
            attempt=attempt,
        ) as sp:
            renderer = CoherentRenderer(
                anim,
                region=region,
                grid_resolution=grid_resolution,
                samples_per_axis=samples,
                first_frame=start,
                last_frame=stop,
                telemetry=tel,
            )
            out_frames, frames = _frames_alloc((stop - start, region.size, 3))
            for i in range(stop - start):
                renderer.render_next()
                frames[i] = renderer.framebuffer.gather(region)
            stats = RayStats.merge(r.stats for r in renderer.reports)
            sp.attrs["rays"] = stats.total
            sp.attrs["n_computed"] = sum(r.n_computed for r in renderer.reports)
    frames = None
    _seal_frames(out_frames)
    return box, region, start, stop, out_frames, stats.counts, _finish_worker_events(tel, sink)


# Renderer-continuation cache for the dynamic schedules: an adaptive
# chain's segments arrive as separate tasks, and on the thread/serial
# executors (shared memory) the renderer that just finished frame f-1 is
# parked here so the task rendering frame f continues it coherently
# instead of starting fresh.  Keyed by (animation, region, quality) plus
# the frame the renderer is positioned at; pop-on-acquire, so a failed
# attempt leaves no stale entry behind and its retry falls back to a
# fresh full render.  Entries orphaned by steals age out via the cap.
_SEGMENT_CACHE: dict[tuple, CoherentRenderer] = {}
_SEGMENT_CACHE_LOCK = threading.Lock()
_SEGMENT_CACHE_MAX = 16


def _segment_cache_key(spec, box, grid_resolution, samples, frame) -> tuple:
    return (_spec_key(spec), box, int(grid_resolution), int(samples), int(frame))


def _render_segment_task(args, emit_tile=None):
    """Policy-scheduled worker: render frames ``[f0, f1)`` of one region.

    ``fresh`` marks a chain start (full render of ``f0``); a non-fresh
    segment tries to continue the renderer parked at ``f0`` by the chain's
    previous segment, rendering fresh when the cache misses (different
    process, evicted, or the previous attempt failed).

    ``emit_tile`` switches on the distributed framebuffer: each finished
    frame's region pixels are handed to ``emit_tile(frame, x0, y0, image)``
    as they complete (the TCP worker's tile sink streams them to the
    master) and the returned result carries ``frames=None`` — the pixels
    never ride in the RESULT payload.
    """
    spec, box, f0, f1, fresh, label, grid_resolution, samples, tel_ctx, profile_dir = args
    anim = _get_anim(spec)
    cam = anim.camera_at(0)
    region = None if box is None else PixelRegion(*box, width=cam.width).pixels
    n_px = int(cam.n_pixels if region is None else region.size)
    tel, sink = _worker_telemetry(tel_ctx)
    _idx, attempt = task_context()
    renderer = None
    if not fresh:
        with _SEGMENT_CACHE_LOCK:
            renderer = _SEGMENT_CACHE.pop(
                _segment_cache_key(spec, box, grid_resolution, samples, f0), None
            )
    with profile_into(_worker_profile_path(profile_dir)):
        with tel.span(
            "task",
            worker=_ctx_worker(tel_ctx),
            mode=label,
            frame0=int(f0),
            frame1=int(f1),
            region=n_px,
            rays=0,
            n_computed=0,
            attempt=attempt,
        ) as sp:
            if renderer is None:
                renderer = CoherentRenderer(
                    anim,
                    region=region,
                    grid_resolution=grid_resolution,
                    samples_per_axis=samples,
                    first_frame=f0,
                    last_frame=anim.n_frames,
                    telemetry=tel,
                )
            else:
                renderer.telemetry = tel
            n_new = f1 - f0
            if emit_tile is not None:
                # Streaming: pixels leave through the sink frame by frame;
                # the result ships no framebuffer at all.
                out_frames = frames = None
                for i in range(n_new):
                    renderer.render_next()
                    if region is None:
                        emit_tile(f0 + i, 0, 0, renderer.frame_image())
                    else:
                        x0, y0, x1, y1 = box
                        emit_tile(
                            f0 + i, x0, y0,
                            renderer.framebuffer.gather(region)
                            .reshape(y1 - y0, x1 - x0, 3),
                        )
            elif region is None:
                out_frames, frames = _frames_alloc((n_new, cam.height, cam.width, 3))
                for i in range(n_new):
                    renderer.render_next()
                    frames[i] = renderer.frame_image()
            else:
                out_frames, frames = _frames_alloc((n_new, region.size, 3))
                for i in range(n_new):
                    renderer.render_next()
                    frames[i] = renderer.framebuffer.gather(region)
            reports = renderer.reports[-n_new:]
            stats = RayStats.merge(r.stats for r in reports)
            sp.attrs["rays"] = stats.total
            sp.attrs["n_computed"] = sum(r.n_computed for r in reports)
    if f1 < anim.n_frames:
        with _SEGMENT_CACHE_LOCK:
            _SEGMENT_CACHE[_segment_cache_key(spec, box, grid_resolution, samples, f1)] = renderer
            while len(_SEGMENT_CACHE) > _SEGMENT_CACHE_MAX:
                del _SEGMENT_CACHE[next(iter(_SEGMENT_CACHE))]
    frames = None
    _seal_frames(out_frames)
    return box, f0, f1, out_frames, stats.counts, _finish_worker_events(tel, sink)


_TASK_FNS = {
    "frame": _render_block_task,
    "sequence": _render_sequence_task,
    "hybrid": _render_hybrid_task,
}

_MANIFEST_NAME = "manifest.json"
# Format 2 appended the serialized worker-telemetry events to every task
# result tuple; old spools fail the manifest check and re-render.
_SPOOL_FORMAT = 2


def _spool_path(run_dir: Path, idx: int) -> Path:
    return run_dir / f"task_{idx:04d}.npz"


def _save_task_result(path: Path, result: tuple) -> None:
    """Spool one task result atomically (write-then-rename), so a render
    killed mid-write never leaves a half-readable checkpoint behind."""
    arrays = {f"f{i}": np.asarray(v) for i, v in enumerate(result)}
    tmp = path.with_name(f".{path.name}.tmp.npz")
    np.savez_compressed(tmp, n=len(result), **arrays)
    os.replace(tmp, path)


def _load_task_result(path: Path) -> tuple:
    with np.load(path) as z:
        n = int(z["n"])
        out = []
        for i in range(n):
            a = z[f"f{i}"]
            out.append(a.item() if a.ndim == 0 else a)
        return tuple(out)


@dataclass
class FarmResult:
    """Assembled output of a local farm run, plus its robustness story."""

    frames: np.ndarray  # (n_frames, H, W, 3) float64
    stats: RayStats
    n_tasks: int
    mode: str
    n_retries: int = 0
    n_timeouts: int = 0
    n_crashes: int = 0
    n_invalid: int = 0
    n_degraded: int = 0
    n_from_checkpoint: int = 0
    attempts: list[TaskAttempt] = field(default_factory=list)
    # TCP runs expose the master's wire accounting (NetStats): tile
    # counts, first-tile/first-result latency, per-message-type maxima.
    net: object | None = None
    streamed: bool = False

    @property
    def n_frames(self) -> int:
        return self.frames.shape[0]


class LocalRenderFarm:
    """Render an animation with real local parallelism.

    Parameters
    ----------
    spec:
        Recipe workers use to rebuild the animation (see AnimationSpec).
    n_workers:
        Degree of parallelism; defaults to the CPU count (capped at 8).
    mode:
        ``"frame"`` (block per task) or ``"sequence"`` (frame range per task).
    executor:
        ``"process"``, ``"thread"`` or ``"serial"``.
    transport:
        ``"process"`` executes on this host through the supervised pool;
        ``"tcp"`` runs a loopback network farm instead — a
        :class:`~repro.net.master.MasterServer` on 127.0.0.1 driving
        ``n_workers`` spawned ``python -m repro.worker`` daemons over
        real sockets.  TCP requires a dynamic schedule (the policy is
        what the master serves); each connection is one scheduling lane,
        so chain affinity keeps a daemon's continuation cache warm
        exactly like the thread/serial executors do.
    net_die_after:
        TCP fault drill: maps a worker index to the assignment count
        after which that daemon is spawned to hard-crash
        (``--die-after``), exercising ``on_worker_lost`` reassignment.
    net_die_after_frames:
        The mid-task variant: maps a worker index to the frame count
        after which that daemon hard-crashes *inside* an assignment
        (``--die-after-frames``), leaving an open task span for the
        flight-recorder black box to capture.
    blackbox_dir:
        Flight-recorder dump directory for the TCP master and its
        spawned daemons; worker-loss events point at the victim's
        ``blackbox_worker_<pid>.jsonl`` here (DESIGN §17).
    schedule:
        ``"static"`` (the upfront task list above), ``"demand"``
        (demand-driven block x frame-chunk units from a shared queue) or
        ``"adaptive"`` (sequence chains with tail-stealing).  The dynamic
        schedules run the :mod:`repro.sched` policies — the same state
        machines the cluster simulator replays — through the supervisor's
        feed hook.
    segment_frames:
        Frames per dispatched segment for ``schedule="adaptive"``.
        Default: 1 on the thread/serial executors (segments continue the
        cached renderer, preserving coherence), coarser on the process
        executor (each segment renders fresh; fewer, bigger tasks).
    block_w, block_h:
        Frame-division block size (defaults to a 4x3 tiling like the paper's
        80x80-of-320x240).
    max_attempts:
        Pool attempts per task before degrading to serial execution.
    task_timeout:
        Fixed per-task deadline in seconds; default None adapts the
        deadline to 3x the slowest observed task (plus a margin), the
        simulator's ``default_worker_timeout`` heuristic.
    startup_timeout:
        Deadline before any task has completed (None = wait patiently).
    degrade_serial:
        Run a task in-process after its retries are exhausted instead of
        raising :class:`~repro.runtime.supervisor.SupervisorError`.
    fault_plan:
        A :class:`~repro.runtime.faults.FaultPlan` for deterministic
        crash/hang/raise/corrupt injection (tests and drills).
    tile_px:
        Distributed-framebuffer tile edge for the TCP transport.  ``None``
        (default) enables tiling at the master's default edge; ``0``
        disables streaming (workers ship whole sub-areas in RESULT, the
        pre-tile wire shape); any other value is the tile edge in pixels.
        Ignored off-TCP (the pool shares memory; there is nothing to
        stream).
    preview:
        A :class:`~repro.dfb.PreviewHub` to attach the run's
        :class:`~repro.dfb.FrameAssembler` to, so a status server can
        serve the partially composited frames while the run is live.
    on_tile, on_frame:
        Progress callbacks.  On a streaming TCP run ``on_tile`` receives
        a :class:`~repro.dfb.TileEvent` per wire tile and ``on_frame`` a
        :class:`~repro.dfb.FrameEvent` as each frame's last tile lands;
        non-streaming paths synthesize one whole-frame tile plus a frame
        event per frame after assembly, so callers observe the same
        contract on every transport.
    """

    def __init__(
        self,
        spec: AnimationSpec,
        n_workers: int | None = None,
        mode: str = "frame",
        executor: str = "process",
        schedule: str = "static",
        transport: str = "process",
        net_die_after: dict[int, int] | None = None,
        net_die_after_frames: dict[int, int] | None = None,
        blackbox_dir: str | Path | None = None,
        segment_frames: int | None = None,
        block_w: int | None = None,
        block_h: int | None = None,
        grid_resolution: int = 24,
        samples_per_axis: int = 1,
        frames_per_chunk: int | None = None,
        max_attempts: int = 3,
        task_timeout: float | None = None,
        timeout_factor: float = 3.0,
        startup_timeout: float | None = None,
        backoff_base: float = 0.05,
        degrade_serial: bool = True,
        fault_plan: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
        profile_dir: str | Path | None = None,
        tile_px: int | None = None,
        preview=None,
        on_tile=None,
        on_frame=None,
    ):
        if mode not in ("frame", "sequence", "hybrid"):
            raise ValueError("mode must be 'frame', 'sequence' or 'hybrid'")
        if executor not in ("process", "thread", "serial"):
            raise ValueError("executor must be 'process', 'thread' or 'serial'")
        if schedule not in ("static", "demand", "adaptive"):
            raise ValueError("schedule must be 'static', 'demand' or 'adaptive'")
        if transport not in ("process", "tcp"):
            raise ValueError("transport must be 'process' or 'tcp'")
        if transport == "tcp" and schedule == "static":
            raise ValueError(
                "transport='tcp' requires a dynamic schedule ('demand' or 'adaptive'); "
                "the network master serves a scheduling policy, not a fixed task list"
            )
        self.spec = spec
        self.mode = mode
        self.executor = executor
        self.schedule = schedule
        self.transport = transport
        self.net_die_after = dict(net_die_after or {})
        self.net_die_after_frames = dict(net_die_after_frames or {})
        self.blackbox_dir = str(blackbox_dir) if blackbox_dir is not None else None
        self.segment_frames = segment_frames
        self.n_workers = min(os.cpu_count() or 2, 8) if n_workers is None else int(n_workers)
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.block_w = block_w
        self.block_h = block_h
        self.grid_resolution = grid_resolution
        self.samples_per_axis = samples_per_axis
        self.frames_per_chunk = frames_per_chunk
        self.max_attempts = max_attempts
        self.task_timeout = task_timeout
        self.timeout_factor = timeout_factor
        self.startup_timeout = startup_timeout
        self.backoff_base = backoff_base
        self.degrade_serial = degrade_serial
        self.fault_plan = fault_plan
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.profile_dir = str(profile_dir) if profile_dir is not None else None
        self.tile_px = None if tile_px is None else int(tile_px)
        self.preview = preview
        self.on_tile = on_tile
        self.on_frame = on_frame
        # Build once locally for geometry bookkeeping (cheap).
        self._anim = spec.build()
        self._cam = self._anim.camera_at(0)
        self._run_span = None  # root span id, allocated by _begin_trace()

    # -- task construction -----------------------------------------------------
    def _block_layout(self):
        return default_block_layout(
            self._cam.width, self._cam.height, self.block_w, self.block_h
        )

    # -- trace identity ----------------------------------------------------------
    def _begin_trace(self) -> float:
        """Stamp the run id, allocate the root ``run`` span, return its t0.

        Every record the run emits — master-side and absorbed worker-side
        alike — carries the run id; worker spans parent (via per-dispatch
        flight spans or directly) under the root span allocated here, so
        the merged stream is one connected trace.
        """
        tel = self.telemetry
        if tel.enabled and not tel.run_id:
            tel.run_id = new_run_id()
        self._run_span = tel.new_span_id() if tel.enabled else None
        return tel.now()

    def _end_trace(self, t_run0: float) -> None:
        tel = self.telemetry
        if tel.enabled:
            tel.emit_span(
                "run", t_run0, tel.now() - t_run0,
                span=self._run_span, parent=None, engine="farm",
            )

    def _static_ctx(self):
        """The telemetry slot shared by a static task list: one context
        parenting every task span under the run root (the per-task span
        namespace is disambiguated worker-side from the task index)."""
        tel = self.telemetry
        if not tel.enabled:
            return False
        return TraceContext(run=tel.run_id, parent=self._run_span).to_arg()

    def _tasks(self):
        tel_on = self._static_ctx()
        prof = self.profile_dir
        if self.mode == "frame":
            return [
                (
                    self.spec,
                    (r.x0, r.y0, r.x1, r.y1),
                    self.grid_resolution,
                    self.samples_per_axis,
                    tel_on,
                    prof,
                )
                for r in self._block_layout()
            ]
        if self.mode == "hybrid":
            chunk = self.frames_per_chunk or max(1, self._anim.n_frames // 2)
            chunks = [
                (a, min(a + chunk, self._anim.n_frames))
                for a in range(0, self._anim.n_frames, chunk)
            ]
            return [
                (
                    self.spec,
                    (r.x0, r.y0, r.x1, r.y1),
                    a,
                    b,
                    self.grid_resolution,
                    self.samples_per_axis,
                    tel_on,
                    prof,
                )
                for r in self._block_layout()
                for a, b in chunks
            ]
        ranges = sequence_ranges(self._anim.n_frames, self.n_workers)
        return [
            (self.spec, a, b, self.grid_resolution, self.samples_per_axis, tel_on, prof)
            for a, b in ranges
        ]

    def _sched_policy(self):
        """Build the scheduling policy (and its region table) for this run."""
        from ..sched.core import AdaptiveChainPolicy, Chain, DemandDrivenPolicy

        n_frames = self._anim.n_frames
        if self.schedule == "demand":
            regions = self._block_layout()
            chunk = self.frames_per_chunk or max(1, n_frames // 2)
            chunks = [(a, min(a + chunk, n_frames)) for a in range(0, n_frames, chunk)]
            units = [(ri, a, b) for ri in range(len(regions)) for a, b in chunks]
            policy = DemandDrivenPolicy(
                units, use_coherence=True, units_per_frame=len(regions)
            )
            return policy, regions
        # adaptive: whole-frame chains over pre-split ranges, tail-stealing on.
        # A pool process can receive any segment, so continuations there must
        # render fresh; a TCP lane (like a thread/serial worker) is pinned to
        # one daemon, whose continuation cache carries a chain's coherence
        # across segments — so fine 1-frame segments stay cheap.
        pooled = self.transport == "process" and self.executor == "process"
        if self.segment_frames is not None:
            seg = max(1, int(self.segment_frames))
        elif pooled:
            seg = max(1, -(-n_frames // (4 * self.n_workers)))
        else:
            seg = 1
        chains = [
            Chain(-1, a, b, fresh=True)
            for a, b in sequence_ranges(n_frames, self.n_workers)
        ]
        policy = AdaptiveChainPolicy(
            chains,
            use_coherence=True,
            units_per_frame=1,
            min_steal_frames=max(2, seg + 1),
            segment_frames=seg,
            continuation_fresh=pooled,
        )
        return policy, None

    # -- output validity ----------------------------------------------------------
    def _make_validator(self):
        """Shape/finiteness check applied before a task result is accepted
        (or a spooled checkpoint trusted): a corrupted block must never
        reach assembly."""
        n_frames = self._anim.n_frames
        height, width = self._cam.height, self._cam.width
        n_kinds = len(RayKind)
        mode = self.mode

        def counts_ok(counts) -> bool:
            c = np.asarray(counts)
            return c.shape == (n_kinds,) and c.dtype.kind in "iu"

        def validate(task, result) -> bool:
            if not isinstance(result, tuple):
                return False
            if mode == "frame":
                if len(result) != 5:
                    return False
                _box, region, frames, counts, events = result
                expected = (n_frames, np.asarray(region).size, 3)
            elif mode == "sequence":
                if len(result) != 5:
                    return False
                start, stop, frames, counts, events = result
                expected = (int(stop) - int(start), height, width, 3)
            else:
                if len(result) != 7:
                    return False
                _box, region, start, stop, frames, counts, events = result
                expected = (int(stop) - int(start), np.asarray(region).size, 3)
            frames = np.asarray(frames)
            return (
                frames.shape == expected
                and bool(np.isfinite(frames).all())
                and counts_ok(counts)
                and isinstance(events, str)
            )

        return validate

    def _make_sched_validator(self, assembler=None):
        """Same corruption gate for the policy-scheduled segment results."""
        height, width = self._cam.height, self._cam.width
        n_kinds = len(RayKind)

        def validate(task, result) -> bool:
            if not isinstance(result, tuple) or len(result) != 6:
                return False
            box, f0, f1, frames, counts, events = result
            c = np.asarray(counts)
            counts_ok = c.shape == (n_kinds,) and c.dtype.kind in "iu"
            if frames is None:
                # Streaming result: the pixels traveled tile-by-tile ahead
                # of this RESULT on the same ordered connection, so accept
                # it only if the assembler really holds the whole range.
                return (
                    assembler is not None
                    and counts_ok
                    and isinstance(events, str)
                    and assembler.range_complete(box, int(f0), int(f1))
                )
            n_new = int(f1) - int(f0)
            if box is None:
                expected = (n_new, height, width, 3)
            else:
                x0, y0, x1, y1 = box
                expected = (n_new, (int(x1) - int(x0)) * (int(y1) - int(y0)), 3)
            frames = np.asarray(frames)
            return (
                frames.shape == expected
                and bool(np.isfinite(frames).all())
                and counts_ok
                and isinstance(events, str)
            )

        return validate

    # -- progress callbacks --------------------------------------------------------
    def _fire_synthetic_events(self, frames: np.ndarray) -> None:
        """Honor the streaming callback contract on paths that don't
        stream: one whole-frame tile plus a frame event per frame, in
        frame order, after assembly."""
        if self.on_tile is None and self.on_frame is None:
            return
        from ..dfb import FrameEvent, TileEvent

        h, w = int(frames.shape[1]), int(frames.shape[2])
        for f in range(frames.shape[0]):
            if self.on_tile is not None:
                self.on_tile(TileEvent(
                    frame=f, x0=0, y0=0, x1=w, y1=h,
                    pixels=frames[f], frame_complete=True,
                ))
            if self.on_frame is not None:
                self.on_frame(FrameEvent(f, frames[f]))

    # -- checkpoint spool ----------------------------------------------------------
    def _manifest(self, n_tasks: int) -> dict:
        return {
            "format": _SPOOL_FORMAT,
            "factory": self.spec.factory,
            "kwargs": repr(sorted(self.spec.kwargs.items())),
            "mode": self.mode,
            "n_frames": int(self._anim.n_frames),
            "width": int(self._cam.width),
            "height": int(self._cam.height),
            "grid_resolution": int(self.grid_resolution),
            "samples_per_axis": int(self.samples_per_axis),
            "n_tasks": int(n_tasks),
        }

    def _load_spooled(self, run_dir: Path, tasks: list, validate) -> dict:
        """Recover finished tasks from a previous (interrupted) run.

        Unreadable or invalid spool files are treated as not-completed —
        the task simply re-renders, so a truncated write costs one task,
        never the run."""
        completed: dict[int, tuple] = {}
        for idx in range(len(tasks)):
            path = _spool_path(run_dir, idx)
            if not path.exists():
                continue
            try:
                result = _load_task_result(path)
            except Exception:
                continue
            if validate(tasks[idx], result):
                completed[idx] = result
        return completed

    # -- entry point -------------------------------------------------------------
    def render(
        self, run_dir: str | Path | None = None, resume: str | Path | None = None
    ) -> FarmResult:
        """Render all frames; assemble and return them with merged stats.

        ``run_dir`` spools each completed task to that directory;
        ``resume`` points at such a directory and skips the tasks it
        already holds (implies spooling new completions there too).
        """
        if self.schedule != "static":
            if run_dir is not None or resume is not None:
                raise ValueError(
                    "checkpoint spooling (run_dir/resume) requires schedule='static'; "
                    "dynamic schedules decide the task list at run time"
                )
            return self._render_scheduled()
        if resume is not None:
            if run_dir is not None and Path(run_dir) != Path(resume):
                raise ValueError("pass either run_dir or resume, not two different dirs")
            run_dir = resume
        run_path = Path(run_dir) if run_dir is not None else None

        anim = self._anim
        cam = self._cam
        tel = self.telemetry
        t_run0 = self._begin_trace()
        tasks = self._tasks()
        validate = self._make_validator()
        if self.profile_dir:
            Path(self.profile_dir).mkdir(parents=True, exist_ok=True)

        tel.event(
            "run.start",
            engine="farm",
            workload=self.spec.factory,
            n_frames=int(anim.n_frames),
            width=int(cam.width),
            height=int(cam.height),
            n_workers=self.n_workers,
            mode=self.mode,
        )

        completed: dict[int, tuple] = {}
        on_result = None
        if run_path is not None:
            run_path.mkdir(parents=True, exist_ok=True)
            manifest = self._manifest(len(tasks))
            manifest_path = run_path / _MANIFEST_NAME
            if manifest_path.exists():
                existing = json.loads(manifest_path.read_text())
                if existing != manifest:
                    raise ValueError(
                        f"run directory {run_path} belongs to a different render "
                        "(manifest mismatch); refusing to mix checkpoints"
                    )
                completed = self._load_spooled(run_path, tasks, validate)
                for idx in sorted(completed):
                    tel.event("checkpoint", task=idx, action="loaded")
            else:
                tmp = manifest_path.with_suffix(".json.tmp")
                tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True))
                os.replace(tmp, manifest_path)

            def on_result(idx: int, result: tuple) -> None:
                _save_task_result(_spool_path(run_path, idx), result)
                tel.event("checkpoint", task=idx, action="saved")

        # Process pools get a shared-memory frame store: workers render
        # into segments and return FrameRef handles, so no pixels are
        # pickled back across the fork boundary.  The master (here)
        # releases every ref after assembly and sweeps stragglers —
        # segments of crashed attempts or discarded duplicates.
        store = SharedFrameStore() if self.executor == "process" else None
        supervisor = TaskSupervisor(
            _TASK_FNS[self.mode],
            tasks,
            executor=self.executor,
            n_workers=self.n_workers,
            initializer=_worker_init,
            initargs=(self.spec, store.token if store else None),
            validate=validate,
            max_attempts=self.max_attempts,
            task_timeout=self.task_timeout,
            timeout_factor=self.timeout_factor,
            startup_timeout=self.startup_timeout,
            backoff_base=self.backoff_base,
            degrade_serial=self.degrade_serial,
            fault_plan=self.fault_plan,
            completed=completed,
            on_result=on_result,
        )
        out = None
        try:
            out = supervisor.run()

            frames = np.zeros((anim.n_frames, cam.height, cam.width, 3), dtype=np.float64)
            if self.mode == "frame":
                flat = frames.reshape(anim.n_frames, cam.n_pixels, 3)
                for _box, region, block_frames, _counts, _ev in out.results:
                    flat[:, np.asarray(region), :] = block_frames
            elif self.mode == "hybrid":
                flat = frames.reshape(anim.n_frames, cam.n_pixels, 3)
                for _box, region, start, stop, chunk_frames, _counts, _ev in out.results:
                    flat[int(start) : int(stop)][:, np.asarray(region), :] = chunk_frames
            else:
                for start, stop, seq_frames, _counts, _ev in out.results:
                    frames[int(start) : int(stop)] = seq_frames
            stats = RayStats.merge(res[-2] for res in out.results)
        finally:
            if store is not None:
                release_refs(out.results if out is not None else ())
                store.cleanup()
        self._fire_synthetic_events(frames)

        if tel.enabled:
            self._emit_run_telemetry(out, stats, len(tasks))
        self._end_trace(t_run0)

        return FarmResult(
            frames=frames,
            stats=stats,
            n_tasks=len(tasks),
            mode=self.mode,
            n_retries=out.n_retries,
            n_timeouts=out.n_timeouts,
            n_crashes=out.n_crashes,
            n_invalid=out.n_invalid,
            n_degraded=out.n_degraded,
            n_from_checkpoint=out.n_from_checkpoint,
            attempts=out.attempts,
        )

    def _render_scheduled(self) -> FarmResult:
        """Render under a dynamic (policy-driven) schedule.

        The policy decides every dispatch; the supervised pool executes
        them via :class:`~repro.sched.process.ProcessTransport`, one
        assignment in flight per lane.  No spooling: the task list does
        not exist upfront, so checkpoints have nothing stable to key on.
        """
        from ..sched.process import ProcessTransport

        anim, cam, tel = self._anim, self._cam, self.telemetry
        policy, regions = self._sched_policy()
        # Distributed framebuffer: tiling is a TCP concern (the pool
        # shares memory); tile_px=0 opts a TCP run out explicitly.
        assembler = None
        if self.transport == "tcp" and self.tile_px != 0:
            from ..dfb import FrameAssembler

            assembler = FrameAssembler(anim.n_frames, cam.width, cam.height)
            if self.preview is not None:
                self.preview.attach(
                    assembler,
                    workload=self.spec.factory,
                    n_workers=int(self.n_workers),
                )
        validate = self._make_sched_validator(assembler)
        if self.profile_dir:
            Path(self.profile_dir).mkdir(parents=True, exist_ok=True)

        t_run0 = self._begin_trace()
        tel.event(
            "run.start",
            engine="farm",
            workload=self.spec.factory,
            n_frames=int(anim.n_frames),
            width=int(cam.width),
            height=int(cam.height),
            n_workers=self.n_workers,
            mode=self.schedule,
        )

        spec, grid, samples = self.spec, self.grid_resolution, self.samples_per_axis
        prof, label = self.profile_dir, self.schedule
        run_id, run_span, enabled = tel.run_id, self._run_span, tel.enabled

        def ctx_of(a, lane):
            # Per-dispatch trace context: the worker's task span parents
            # under this assignment's flight span (id derivable from the
            # dispatch seq on both sides of the wire) and reports the
            # scheduling lane as its worker identity.
            if not enabled:
                return False
            return TraceContext(
                run=run_id, parent=flight_span_id(a.seq), seed=f"s{a.seq}",
                worker=str(lane),
            ).to_arg()

        def box_of(a):
            if regions is not None and a.region_index >= 0:
                r = regions[a.region_index]
                return (r.x0, r.y0, r.x1, r.y1)
            return None

        if self.transport == "tcp":
            from ..net.master import TcpTransport
            from ..net.tasks import spec_to_wire

            spec_wire = spec_to_wire(spec)

            def materialize(a, lane):
                return (spec_wire, box_of(a), int(a.frame0), int(a.frame1),
                        bool(a.fresh), label, grid, samples, ctx_of(a, lane), prof)

            master_on_tile = None
            if assembler is not None and (
                self.on_tile is not None or self.on_frame is not None
            ):
                from ..dfb import FrameEvent, TileEvent

                def master_on_tile(worker, frame, tbox, pixels, frame_complete):
                    if self.on_tile is not None:
                        tx0, ty0, tx1, ty1 = tbox
                        self.on_tile(TileEvent(
                            frame=frame, x0=tx0, y0=ty0, x1=tx1, y1=ty1,
                            pixels=pixels, worker=worker,
                            frame_complete=frame_complete,
                        ))
                    if frame_complete and self.on_frame is not None:
                        self.on_frame(
                            FrameEvent(frame, assembler.frame_image(frame))
                        )

            transport = TcpTransport(
                policy,
                "render_segment",
                materialize,
                n_workers=self.n_workers,
                die_after=self.net_die_after,
                die_after_frames=self.net_die_after_frames,
                blackbox_dir=self.blackbox_dir,
                telemetry=tel,
                trace_root=run_span,
                validate=validate,
                max_attempts=self.max_attempts,
                task_timeout=self.task_timeout,
                timeout_factor=self.timeout_factor,
                startup_timeout=self.startup_timeout,
                assembler=assembler,
                tile_px=self.tile_px,
                tile_box=box_of,
                on_tile=master_on_tile,
            )
        else:

            def materialize(a, lane):
                return (spec, box_of(a), int(a.frame0), int(a.frame1), bool(a.fresh),
                        label, grid, samples, ctx_of(a, lane), prof)

            # Same shared-memory contract as the static path: pool workers
            # park pixels in segments, only FrameRef handles ride back.
            store = SharedFrameStore() if self.executor == "process" else None
            transport = ProcessTransport(
                policy,
                _render_segment_task,
                materialize,
                n_workers=self.n_workers,
                telemetry=tel,
                trace_root=run_span,
                frame_store=store,
                executor=self.executor,
                initializer=_worker_init,
                initargs=(self.spec, store.token if store else None),
                validate=validate,
                max_attempts=self.max_attempts,
                task_timeout=self.task_timeout,
                timeout_factor=self.timeout_factor,
                startup_timeout=self.startup_timeout,
                backoff_base=self.backoff_base,
                degrade_serial=self.degrade_serial,
                fault_plan=self.fault_plan,
            )
        try:
            out = transport.run()
        finally:
            if self.preview is not None and assembler is not None:
                self.preview.detach()

        if assembler is not None:
            # Every result — streamed tiles and whole sub-areas from
            # non-tiling workers alike — was folded into the compositor
            # as it arrived; taking the frames hands the per-frame
            # composite buffers back to the pool.
            frames = assembler.take_frames()
        else:
            frames = np.zeros(
                (anim.n_frames, cam.height, cam.width, 3), dtype=np.float64
            )
            flat = frames.reshape(anim.n_frames, cam.n_pixels, 3)
            for box, f0, f1, seg_frames, _counts, _ev in out.results:
                f0, f1 = int(f0), int(f1)
                if box is None:
                    frames[f0:f1] = seg_frames
                else:
                    region = PixelRegion(*box, width=cam.width).pixels
                    flat[f0:f1][:, region, :] = seg_frames
            release_refs(out.results)
        stats = RayStats.merge(res[-2] for res in out.results)
        if assembler is None:
            self._fire_synthetic_events(frames)

        sup = out.supervisor
        if tel.enabled:
            # The TCP master already absorbed worker event buffers live
            # (with clock-offset correction); re-emitting them here would
            # duplicate every span in the stream.
            self._emit_run_telemetry(
                sup, stats, len(out.assignments),
                absorb_events=self.transport != "tcp",
            )
        self._end_trace(t_run0)
        return FarmResult(
            frames=frames,
            stats=stats,
            n_tasks=len(out.assignments),
            mode=self.schedule,
            n_retries=sup.n_retries,
            n_timeouts=sup.n_timeouts,
            n_crashes=sup.n_crashes,
            n_invalid=sup.n_invalid,
            n_degraded=sup.n_degraded,
            n_from_checkpoint=0,
            attempts=sup.attempts,
            net=getattr(transport, "master", None) and transport.master.net,
            streamed=assembler is not None,
        )

    def _emit_run_telemetry(
        self, out, stats: RayStats, n_tasks: int, absorb_events: bool = True
    ) -> None:
        """Absorb worker event buffers and emit the run-level events
        (task.attempt / recovery timeline, per-worker utilization,
        run.end totals) into the farm's telemetry session.

        ``absorb_events=False`` still folds the buffers into the summary
        stats but skips re-emitting them — the TCP transport absorbs
        each buffer at result time (clock-corrected), so only the
        process/thread paths absorb here."""
        tel = self.telemetry
        worker_busy: dict[str, list] = {}  # worker -> [busy_seconds, n_tasks]
        computed = copied = 0
        for res in out.results:
            payload = res[-1]
            if not payload:
                continue
            try:
                events = json.loads(payload)
            except (TypeError, ValueError):
                continue
            if absorb_events:
                tel.absorb(events)
            for rec in events:
                name, attrs = rec.get("name"), rec.get("attrs") or {}
                if rec.get("type") == "span" and name == "task":
                    w = str(attrs.get("worker", "?"))
                    busy = worker_busy.setdefault(w, [0.0, 0])
                    busy[0] += float(rec.get("dur", 0.0))
                    busy[1] += 1
                elif rec.get("type") == "event" and name == "frame":
                    computed += int(attrs.get("n_computed", 0))
                    copied += int(attrs.get("n_copied", 0))

        for a in out.attempts:
            tel.event(
                "task.attempt",
                task=a.task_index,
                attempt=a.attempt,
                outcome=a.outcome,
                duration=a.duration,
                started=a.started,
            )
            tel.histogram("task.duration", a.duration)
            if a.outcome in _RECOVERY_OUTCOMES:
                kind = "degraded" if a.outcome == "degraded-ok" else a.outcome
                # The pool doesn't say which OS worker held the attempt, so
                # the farm can't attribute the loss the way the simulator can.
                tel.event(
                    "recovery",
                    kind=kind,
                    task=a.task_index,
                    attempt=a.attempt,
                    duration=a.duration,
                    worker="?",
                )

        wall = out.wall_time
        for w in sorted(worker_busy):
            busy, n = worker_busy[w]
            tel.event(
                "worker",
                worker=w,
                busy=busy,
                n_tasks=n,
                utilization=(busy / wall) if wall > 0 else 0.0,
            )
        if self.profile_dir:
            tel.event("profile", path=self.profile_dir)
        tel.event(
            "run.end",
            wall_time=wall,
            computed_pixels=computed,
            copied_pixels=copied,
            n_tasks=n_tasks,
            n_workers=self.n_workers,
            rays_camera=stats.camera,
            rays_reflected=stats.reflected,
            rays_refracted=stats.refracted,
            rays_shadow=stats.shadow,
            rays_total=stats.total,
        )

    def render_reference(self) -> FarmResult:
        """Single coherent renderer over the whole animation (ground truth)."""
        anim = self._anim
        cam = self._cam
        renderer = CoherentRenderer(
            anim,
            grid=grid_for_animation(anim, self.grid_resolution),
            samples_per_axis=self.samples_per_axis,
        )
        frames = np.empty((anim.n_frames, cam.height, cam.width, 3), dtype=np.float64)
        for f in range(anim.n_frames):
            renderer.render_next()
            frames[f] = renderer.frame_image()
        stats = RayStats.merge(r.stats for r in renderer.reports)
        return FarmResult(frames=frames, stats=stats, n_tasks=1, mode="reference")
