"""Real parallel rendering on the local machine.

The cluster simulator (:mod:`repro.cluster`) answers "what would this have
cost on the 1998 testbed"; this module actually *runs* the master/worker
decomposition with live processes, demonstrating the protocol end-to-end
and providing the ground truth that partitioned rendering assembles the
same images as a single renderer.

Both of the paper's schemes are implemented:

* ``frame`` mode — frame division: the image is tiled into blocks; each
  worker owns a block and renders it coherently across every frame.
* ``sequence`` mode — sequence division: each worker owns a contiguous
  frame range and renders whole frames coherently inside it.
* ``hybrid`` mode — the paper's "each processor computes pixels in a
  subarea of a frame for a subsequence of the entire animation": one task
  per (block, frame-chunk) pair.

Executors: ``process`` (fork-based multiprocessing; the real thing),
``thread`` (shared-memory; numpy releases the GIL enough to help), and
``serial`` (deterministic in-process reference).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..coherence import CoherentRenderer, grid_for_animation
from ..parallel.partition import PixelRegion, block_regions, sequence_ranges
from ..render import RayStats
from .spec import AnimationSpec

__all__ = ["LocalRenderFarm", "FarmResult"]

# Per-process cache: workers build the animation once, not once per task.
_WORKER_ANIM = None
_WORKER_SPEC = None


def _worker_init(spec: AnimationSpec) -> None:
    global _WORKER_ANIM, _WORKER_SPEC
    _WORKER_SPEC = spec
    _WORKER_ANIM = spec.build()


def _get_anim(spec: AnimationSpec):
    global _WORKER_ANIM, _WORKER_SPEC
    if _WORKER_ANIM is None or _WORKER_SPEC != spec:
        _worker_init(spec)
    return _WORKER_ANIM


def _render_block_task(args):
    """Frame-division worker: render one block across all frames."""
    spec, box, grid_resolution, samples = args
    anim = _get_anim(spec)
    region = PixelRegion(*box, width=anim.camera_at(0).width).pixels
    renderer = CoherentRenderer(
        anim, region=region, grid_resolution=grid_resolution, samples_per_axis=samples
    )
    frames = np.empty((anim.n_frames, region.size, 3), dtype=np.float64)
    stats = RayStats()
    for f in range(anim.n_frames):
        renderer.render_next()
        frames[f] = renderer.framebuffer.gather(region)
        stats += renderer.reports[-1].stats
    return box, region, frames, stats.counts


def _render_sequence_task(args):
    """Sequence-division worker: render whole frames for one range."""
    spec, start, stop, grid_resolution, samples = args
    anim = _get_anim(spec)
    renderer = CoherentRenderer(
        anim,
        grid_resolution=grid_resolution,
        samples_per_axis=samples,
        first_frame=start,
        last_frame=stop,
    )
    cam = anim.camera_at(start)
    frames = np.empty((stop - start, cam.height, cam.width, 3), dtype=np.float64)
    stats = RayStats()
    for i in range(stop - start):
        renderer.render_next()
        frames[i] = renderer.frame_image()
        stats += renderer.reports[-1].stats
    return start, stop, frames, stats.counts


def _render_hybrid_task(args):
    """Hybrid worker: one block over one frame chunk (subarea x subsequence)."""
    spec, box, start, stop, grid_resolution, samples = args
    anim = _get_anim(spec)
    region = PixelRegion(*box, width=anim.camera_at(0).width).pixels
    renderer = CoherentRenderer(
        anim,
        region=region,
        grid_resolution=grid_resolution,
        samples_per_axis=samples,
        first_frame=start,
        last_frame=stop,
    )
    frames = np.empty((stop - start, region.size, 3), dtype=np.float64)
    stats = RayStats()
    for i in range(stop - start):
        renderer.render_next()
        frames[i] = renderer.framebuffer.gather(region)
        stats += renderer.reports[-1].stats
    return box, region, start, stop, frames, stats.counts


@dataclass
class FarmResult:
    """Assembled output of a local farm run."""

    frames: np.ndarray  # (n_frames, H, W, 3) float64
    stats: RayStats
    n_tasks: int
    mode: str

    @property
    def n_frames(self) -> int:
        return self.frames.shape[0]


class LocalRenderFarm:
    """Render an animation with real local parallelism.

    Parameters
    ----------
    spec:
        Recipe workers use to rebuild the animation (see AnimationSpec).
    n_workers:
        Degree of parallelism; defaults to the CPU count (capped at 8).
    mode:
        ``"frame"`` (block per task) or ``"sequence"`` (frame range per task).
    executor:
        ``"process"``, ``"thread"`` or ``"serial"``.
    block_w, block_h:
        Frame-division block size (defaults to a 4x3 tiling like the paper's
        80x80-of-320x240).
    """

    def __init__(
        self,
        spec: AnimationSpec,
        n_workers: int | None = None,
        mode: str = "frame",
        executor: str = "process",
        block_w: int | None = None,
        block_h: int | None = None,
        grid_resolution: int = 24,
        samples_per_axis: int = 1,
        frames_per_chunk: int | None = None,
    ):
        if mode not in ("frame", "sequence", "hybrid"):
            raise ValueError("mode must be 'frame', 'sequence' or 'hybrid'")
        if executor not in ("process", "thread", "serial"):
            raise ValueError("executor must be 'process', 'thread' or 'serial'")
        self.spec = spec
        self.mode = mode
        self.executor = executor
        self.n_workers = min(os.cpu_count() or 2, 8) if n_workers is None else int(n_workers)
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.block_w = block_w
        self.block_h = block_h
        self.grid_resolution = grid_resolution
        self.samples_per_axis = samples_per_axis
        self.frames_per_chunk = frames_per_chunk
        # Build once locally for geometry bookkeeping (cheap).
        self._anim = spec.build()
        self._cam = self._anim.camera_at(0)

    # -- task construction -----------------------------------------------------
    def _block_layout(self):
        w, h = self._cam.width, self._cam.height
        bw = self.block_w or max(1, w // 4)
        bh = self.block_h or max(1, h // 3)
        return block_regions(w, h, bw, bh)

    def _tasks(self):
        if self.mode == "frame":
            return [
                (self.spec, (r.x0, r.y0, r.x1, r.y1), self.grid_resolution, self.samples_per_axis)
                for r in self._block_layout()
            ]
        if self.mode == "hybrid":
            chunk = self.frames_per_chunk or max(1, self._anim.n_frames // 2)
            chunks = [
                (a, min(a + chunk, self._anim.n_frames))
                for a in range(0, self._anim.n_frames, chunk)
            ]
            return [
                (
                    self.spec,
                    (r.x0, r.y0, r.x1, r.y1),
                    a,
                    b,
                    self.grid_resolution,
                    self.samples_per_axis,
                )
                for r in self._block_layout()
                for a, b in chunks
            ]
        ranges = sequence_ranges(self._anim.n_frames, self.n_workers)
        return [
            (self.spec, a, b, self.grid_resolution, self.samples_per_axis) for a, b in ranges
        ]

    def _map(self, fn, tasks):
        if self.executor == "serial":
            return [fn(t) for t in tasks]
        if self.executor == "thread":
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                return list(pool.map(fn, tasks))
        with ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_worker_init,
            initargs=(self.spec,),
        ) as pool:
            return list(pool.map(fn, tasks))

    # -- entry point -------------------------------------------------------------
    def render(self) -> FarmResult:
        """Render all frames; assemble and return them with merged stats."""
        anim = self._anim
        cam = self._cam
        frames = np.zeros((anim.n_frames, cam.height, cam.width, 3), dtype=np.float64)
        stats = RayStats()
        tasks = self._tasks()

        if self.mode == "frame":
            results = self._map(_render_block_task, tasks)
            flat = frames.reshape(anim.n_frames, cam.n_pixels, 3)
            for _box, region, block_frames, counts in results:
                flat[:, region, :] = block_frames
                stats += RayStats(counts)
        elif self.mode == "hybrid":
            results = self._map(_render_hybrid_task, tasks)
            flat = frames.reshape(anim.n_frames, cam.n_pixels, 3)
            for _box, region, start, stop, chunk_frames, counts in results:
                flat[start:stop][:, region, :] = chunk_frames
                stats += RayStats(counts)
        else:
            results = self._map(_render_sequence_task, tasks)
            for start, stop, seq_frames, counts in results:
                frames[start:stop] = seq_frames
                stats += RayStats(counts)

        return FarmResult(frames=frames, stats=stats, n_tasks=len(tasks), mode=self.mode)

    def render_reference(self) -> FarmResult:
        """Single coherent renderer over the whole animation (ground truth)."""
        anim = self._anim
        cam = self._cam
        renderer = CoherentRenderer(
            anim,
            grid=grid_for_animation(anim, self.grid_resolution),
            samples_per_axis=self.samples_per_axis,
        )
        frames = np.empty((anim.n_frames, cam.height, cam.width, 3), dtype=np.float64)
        stats = RayStats()
        for f in range(anim.n_frames):
            renderer.render_next()
            frames[f] = renderer.frame_image()
            stats += renderer.reports[-1].stats
        return FarmResult(frames=frames, stats=stats, n_tasks=1, mode="reference")
