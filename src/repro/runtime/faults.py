"""Deterministic fault injection for the real render farm.

The paper's NOW is built from desktops that get rebooted, unplugged and
slowed down by their owners.  The cluster simulator injects machine
failures at virtual times; this module does the moral equivalent for the
*real* worker processes of :class:`~repro.runtime.local.LocalRenderFarm`:
a :class:`FaultPlan` travels (pickled) to every worker, which consults it
before and after computing a task and deterministically misbehaves.

Fault kinds
-----------
``crash``
    The worker process dies abruptly (``os._exit``), exactly like a
    machine losing power.  The supervisor sees a broken pool, rebuilds
    it and re-queues the in-flight tasks.
``hang``
    The worker sleeps for ``hang_seconds`` before computing — a machine
    that is swapping or whose owner just launched a compile job.  The
    supervisor's per-task deadline declares it lost; if it eventually
    finishes anyway (a *false positive*), the duplicate completion is
    ignored.
``raise``
    The task raises :class:`FaultInjected` — a software failure inside
    an otherwise healthy worker.
``corrupt``
    The task returns its result with NaNs smeared into the pixel data —
    caught by the supervisor's output-validity check before assembly.

Faults are keyed by ``(task_index, attempt)`` so every recovery path is
exercisable and every retry can be made to succeed (or not).  Crash and
hang faults are only honoured inside sandboxed *process* workers: a
thread worker or the in-process serial fallback skips them rather than
taking the master down with it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["FaultInjected", "FaultSpec", "FaultPlan", "corrupt_result"]


class FaultInjected(RuntimeError):
    """Raised by a ``raise``-kind fault inside a worker."""


_KINDS = ("crash", "hang", "raise", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One planned misbehaviour: ``kind`` fires when ``task_index`` is
    executed on any attempt number listed in ``attempts``."""

    kind: str
    task_index: int
    attempts: tuple[int, ...] = (0,)
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")

    def matches(self, task_index: int, attempt: int) -> bool:
        return task_index == self.task_index and attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable schedule of worker faults."""

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    # -- convenience constructors ---------------------------------------------
    @staticmethod
    def crash(task_index: int, attempts: tuple[int, ...] = (0,)) -> "FaultSpec":
        return FaultSpec("crash", task_index, attempts)

    @staticmethod
    def hang(
        task_index: int, attempts: tuple[int, ...] = (0,), hang_seconds: float = 3600.0
    ) -> "FaultSpec":
        return FaultSpec("hang", task_index, attempts, hang_seconds)

    @staticmethod
    def raising(task_index: int, attempts: tuple[int, ...] = (0,)) -> "FaultSpec":
        return FaultSpec("raise", task_index, attempts)

    @staticmethod
    def corrupting(task_index: int, attempts: tuple[int, ...] = (0,)) -> "FaultSpec":
        return FaultSpec("corrupt", task_index, attempts)

    # -- worker-side protocol --------------------------------------------------
    def lookup(self, task_index: int, attempt: int) -> FaultSpec | None:
        for f in self.faults:
            if f.matches(task_index, attempt):
                return f
        return None

    def apply_before(self, task_index: int, attempt: int, disruptive_ok: bool) -> None:
        """Consulted before the task computes.  ``disruptive_ok`` is True
        only in a sandboxed process worker — threads and the serial
        fallback must not crash or stall the master."""
        f = self.lookup(task_index, attempt)
        if f is None:
            return
        if f.kind == "crash" and disruptive_ok:
            os._exit(3)
        elif f.kind == "hang" and disruptive_ok:
            time.sleep(f.hang_seconds)
        elif f.kind == "raise":
            raise FaultInjected(
                f"injected failure in task {task_index} (attempt {attempt})"
            )

    def apply_after(self, task_index: int, attempt: int, result):
        """Consulted after the task computes; may corrupt the result."""
        f = self.lookup(task_index, attempt)
        if f is not None and f.kind == "corrupt":
            return corrupt_result(result)
        return result


def corrupt_result(result):
    """Smear NaNs into the first float array of a task result tuple.

    Models a worker returning garbage pixels (bad RAM, truncated
    transfer); generic over the farm's per-mode result layouts because it
    only needs to defeat the supervisor's finite-value check.
    """
    from ..buffers import FrameRef

    if not isinstance(result, tuple):
        return result
    out = list(result)
    for i, item in enumerate(out):
        if isinstance(item, FrameRef):
            # Shared-memory result: the garbage lands in the segment
            # itself — exactly what a worker with bad RAM would ship.
            def smear(view: np.ndarray) -> None:
                if np.issubdtype(view.dtype, np.floating):
                    view.reshape(-1)[: max(1, view.size // 16)] = np.nan

            item.mutate(smear)
            break
        if isinstance(item, np.ndarray) and np.issubdtype(item.dtype, np.floating):
            bad = item.copy()
            bad.reshape(-1)[: max(1, bad.size // 16)] = np.nan
            out[i] = bad
            break
    return tuple(out)
