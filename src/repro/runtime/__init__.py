"""Real local parallel execution of the paper's master/worker decompositions."""

from .local import FarmResult, LocalRenderFarm
from .spec import AnimationSpec

__all__ = ["AnimationSpec", "FarmResult", "LocalRenderFarm"]
