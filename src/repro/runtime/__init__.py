"""Real local parallel execution of the paper's master/worker decompositions."""

from .faults import FaultInjected, FaultPlan, FaultSpec
from .local import FarmResult, LocalRenderFarm
from .spec import AnimationSpec
from .supervisor import SupervisorError, SupervisorOutcome, TaskAttempt, TaskSupervisor

__all__ = [
    "AnimationSpec",
    "FarmResult",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "LocalRenderFarm",
    "SupervisorError",
    "SupervisorOutcome",
    "TaskAttempt",
    "TaskSupervisor",
]
