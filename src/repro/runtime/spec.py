"""Animation specs: how real worker processes receive their scene.

The paper's PVM slaves did not receive live C data structures — each slave
ran POV-Ray and re-parsed the scene description locally.  We do the same:
a :class:`AnimationSpec` names a factory function (module-qualified) plus
keyword arguments; every worker process rebuilds the animation from it.
This also sidesteps pickling of scene closures and keeps messages small.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field

from ..scene import Animation

__all__ = ["AnimationSpec"]


@dataclass(frozen=True)
class AnimationSpec:
    """A recipe for building an :class:`~repro.scene.Animation`.

    Attributes
    ----------
    factory:
        Dotted path ``package.module:function`` (or ``package.module.function``)
        of a zero-side-effect callable returning an Animation.
    kwargs:
        Keyword arguments for the factory.  Must be picklable.
    """

    factory: str
    kwargs: dict = field(default_factory=dict)

    def resolve(self):
        path = self.factory
        if ":" in path:
            mod_name, fn_name = path.split(":", 1)
        else:
            mod_name, _, fn_name = path.rpartition(".")
        if not mod_name or not fn_name:
            raise ValueError(f"malformed factory path {self.factory!r}")
        mod = importlib.import_module(mod_name)
        try:
            return getattr(mod, fn_name)
        except AttributeError as exc:
            raise ValueError(f"no function {fn_name!r} in module {mod_name!r}") from exc

    def build(self) -> Animation:
        anim = self.resolve()(**self.kwargs)
        if not isinstance(anim, Animation):
            raise TypeError(f"factory {self.factory!r} did not return an Animation")
        return anim

    @staticmethod
    def newton(**kwargs) -> "AnimationSpec":
        """Convenience spec for the Table-1 workload."""
        return AnimationSpec("repro.scenes.newton:newton_animation", dict(kwargs))

    @staticmethod
    def brick_room(**kwargs) -> "AnimationSpec":
        """Convenience spec for the Figures 1/2 workload."""
        return AnimationSpec("repro.scenes.brick_room:brick_room_animation", dict(kwargs))
