"""repro — Rendering Computer Animations on a Network of Workstations.

A from-scratch reproduction of Davis & Davis (IPPS 1998): a frame-coherent
ray tracer (the paper's extension of POV-Ray 3.0) combined with distributed
rendering on a (simulated) network of workstations coordinated by a
PVM-style master/slave protocol.

Layered public API:

* :mod:`repro.rmath` — batched vector math, AABBs, transforms, noise.
* :mod:`repro.geometry` — ray batches and vectorized primitives.
* :mod:`repro.materials` / :mod:`repro.lighting` — POV-style shading inputs.
* :mod:`repro.scene` — camera, scene, animation, scene-description language.
* :mod:`repro.accel` — uniform voxel grid + 3-D DDA traversal.
* :mod:`repro.render` — the wavefront Whitted tracer.
* :mod:`repro.coherence` — the paper's frame-coherence algorithm.
* :mod:`repro.cluster` — discrete-event NOW simulator with a PVM-like API.
* :mod:`repro.parallel` — partitioning schemes and Table-1 strategies.
* :mod:`repro.runtime` — real multiprocessing master/worker execution.
* :mod:`repro.imageio` — Targa/PPM output and Figure-2 diff masks.
* :mod:`repro.scenes` — the Newton and brick-room workloads.
* :mod:`repro.bench` — Table-1 regeneration harness.

* :mod:`repro.telemetry` — structured tracing/metrics spine shared by all
  engines.
* :mod:`repro.api` — the unified :func:`~repro.api.render` facade.

Quickstart (the unified API — same call drives the single-process engine,
the real farm, and the Table-1 simulators)::

    from repro.api import RenderRequest, render
    from repro.imageio import write_targa

    result = render(RenderRequest(workload="newton", n_frames=10,
                                  engine="animation", telemetry=True))
    for f in range(result.n_frames):
        write_targa(f"newton{f:03d}.tga", result.frames[f])
    print(result.stats.total, "rays,", len(result.events), "telemetry events")
"""

from .api import RenderRequest, RenderResult, render
from .coherence import CoherentRenderer, ShadowCoherentRenderer, validate_sequence
from .pipeline import AnimationRender
from .geometry import Box, Cylinder, Disc, Plane, RayBatch, RayKind, Sphere, Triangle, TriangleMesh
from .lighting import PointLight
from .materials import Brick, Checker, Finish, Marble, Material, SolidColor
from .render import Framebuffer, RayStats, RayTracer
from .rmath import AABB, Transform, vec3
from .scene import (
    Animation,
    Camera,
    FunctionAnimation,
    Scene,
    StaticAnimation,
    load_scene,
    parse_scene,
    split_coherent_sequences,
)

__version__ = "1.0.0"

__all__ = [
    "AABB",
    "Animation",
    "AnimationRender",
    "ShadowCoherentRenderer",
    "Box",
    "Brick",
    "Camera",
    "Checker",
    "CoherentRenderer",
    "Cylinder",
    "Disc",
    "Finish",
    "Framebuffer",
    "FunctionAnimation",
    "Marble",
    "Material",
    "Plane",
    "PointLight",
    "RayBatch",
    "RayKind",
    "RayStats",
    "RayTracer",
    "RenderRequest",
    "RenderResult",
    "render",
    "Scene",
    "SolidColor",
    "Sphere",
    "StaticAnimation",
    "Transform",
    "Triangle",
    "TriangleMesh",
    "load_scene",
    "parse_scene",
    "split_coherent_sequences",
    "validate_sequence",
    "vec3",
    "__version__",
]
