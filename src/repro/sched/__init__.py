"""Transport-agnostic master/worker scheduling (the paper's Section 4 brain).

The Table-1 partitioning schemes are *policies* — decisions about which
(region, frame-range) unit a hungry worker should compute next — and the
paper runs the same policies over PVM that our reproduction runs over both
a discrete-event simulator and a real multiprocessing farm.  This package
separates the two concerns:

* :mod:`repro.sched.core` — each policy as a pure state machine
  (``next_assignment`` / ``on_result`` / ``on_worker_lost``) with no I/O,
  no clocks and no knowledge of what executes its assignments;
* :mod:`repro.sched.cost` — the oracle-backed cost model that prices an
  assignment for the simulator (rays, work units, working set, message
  bytes);
* :mod:`repro.sched.sim` — ``SimTransport``: drives a policy over the
  :class:`~repro.cluster.VirtualPVM` discrete-event cluster (the Table-1
  replay path);
* :mod:`repro.sched.process` — ``ProcessTransport``: drives the *same*
  policy over the supervised multiprocessing executor (the real farm);
* :mod:`repro.net` — ``TcpTransport`` (re-exported here): drives it over
  real sockets, master + worker daemons on a network of workstations.

Because all transports consume identical policy objects, a simulated run,
a pooled run and a networked run of the same workload produce the same
task-assignment sequence — the equivalence
``tests/test_sched_equivalence.py`` pins down.
"""

from .core import (
    AdaptiveChainPolicy,
    Assignment,
    Chain,
    DemandDrivenPolicy,
    ObjectSpacePolicy,
    SchedulingPolicy,
    make_policy,
    single_processor_policy,
)
from .cost import AssignmentCost, OracleCostModel
from .sim import SimTransport

_PROCESS_NAMES = ("ProcessTransport", "SchedOutcome", "assignment_echo_task")
_NET_NAMES = ("TcpTransport", "MasterServer")


def __getattr__(name: str):
    # repro.sched.process pulls in repro.runtime (the supervisor), which in
    # turn imports the renderer stack; loading it lazily keeps
    # `import repro.parallel` -> strategies -> repro.sched free of that
    # cycle and that weight.  Same story for the network transport.
    if name in _PROCESS_NAMES:
        from . import process

        return getattr(process, name)
    if name in _NET_NAMES:
        from ..net import master

        return getattr(master, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdaptiveChainPolicy",
    "Assignment",
    "AssignmentCost",
    "Chain",
    "DemandDrivenPolicy",
    "MasterServer",
    "ObjectSpacePolicy",
    "OracleCostModel",
    "ProcessTransport",
    "SchedOutcome",
    "SchedulingPolicy",
    "SimTransport",
    "TcpTransport",
    "assignment_echo_task",
    "make_policy",
    "single_processor_policy",
]
