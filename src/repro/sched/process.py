"""Drive a scheduling policy over the supervised multiprocessing executor.

Where :class:`~repro.sched.sim.SimTransport` replays assignments against
modelled costs in virtual time, this transport executes them for real:
each :class:`~repro.sched.core.Assignment` is materialized into a
picklable task argument and run by a
:class:`~repro.runtime.supervisor.TaskSupervisor` worker pool.  The
policy stays in charge of *what runs next* — the transport feeds the
supervisor through its dynamic ``feed`` hook, maintaining ``n_workers``
logical *lanes* so chain affinity survives the trip through a thread or
process pool: a lane asks the policy for work, carries exactly one
assignment at a time, and is freed when that assignment's result is
accepted.  Dispatch order (``policy.log``) is therefore determined by
the policy alone, which is what makes a process run comparable
assignment-for-assignment with a simulated one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..buffers import attach_refs
from ..obs.trace import flight_span_id
from ..runtime.supervisor import SupervisorOutcome, TaskSupervisor
from ..telemetry import NULL
from .core import Assignment, SchedulingPolicy

__all__ = ["ProcessTransport", "SchedOutcome", "assignment_echo_task"]


def assignment_echo_task(args):
    """Picklable no-op task: returns its assignment tuple unchanged.

    Used by the equivalence tests and the bench-smoke transport diff,
    where only the *dispatch decisions* matter, not the pixels.
    """
    return args


@dataclass
class SchedOutcome:
    """What a policy-driven run produced, whatever the transport.

    ``results`` holds one entry per *accepted* result in completion
    order; ``assignments`` is the policy's dispatch log (including
    reassigned dispatches), so the two lists line up only on a loss-free
    run.  The network transport additionally fills ``workers`` (lane ->
    registration info from the handshake) and ``net`` (a
    :class:`~repro.net.master.NetStats` wire accounting record); both
    stay at their defaults for process runs.
    """

    results: list  # accepted results, completion order
    assignments: list[Assignment]  # dispatch order (== policy.log)
    supervisor: SupervisorOutcome
    n_chain_starts: int = 0
    n_steals: int = 0
    n_reassigned: int = 0
    lanes_of: dict = field(default_factory=dict)  # assignment seq -> lane
    workers: dict = field(default_factory=dict)  # lane -> handshake info (net only)
    net: object = None  # NetStats for tcp runs, None otherwise


class ProcessTransport:
    """Runs one policy through a :class:`TaskSupervisor`.

    Parameters
    ----------
    policy:
        The scheduling state machine; consumed (policies are single-use).
    fn:
        Picklable function of one materialized task argument.
    materialize:
        ``materialize(assignment, lane) -> task argument``.  The lane
        label rides along so renderer-continuation caches (thread/serial
        executors) and benchmarks that skew per-lane speed can key on it.
    n_workers:
        Number of logical lanes (and the supervisor's pool size).  A
        lane is *free* or carries exactly one in-flight assignment; it
        returns to the free queue only when that assignment's result is
        accepted, so the policy sees at most ``n_workers`` concurrent
        dispatches.  A lane the policy declines stays free and is asked
        again after the next completion — an all-lanes-idle decline with
        nothing in flight is a policy stall, which the supervisor's feed
        protocol turns into a loud ``RuntimeError`` rather than a hang.
    telemetry / trace_root:
        A :class:`~repro.telemetry.Telemetry` session to narrate into:
        one ``obs.flight`` span per assignment (dispatch -> accepted
        result), parented under ``trace_root`` — the same trace shape
        the TCP master emits, so the obs tooling reads either transport.
    frame_store:
        Optional :class:`~repro.buffers.SharedFrameStore` whose token the
        caller armed the pool workers with.  The transport takes over the
        run-end sweep: every accepted result's :class:`FrameRef` is
        attached on arrival (so a later unlink can never strand it), and
        ``run()`` unlinks whatever segments never came home — crashed
        attempts, discarded duplicates.  The caller still releases the
        refs it consumed.
    supervisor_kwargs:
        Passed through to :class:`TaskSupervisor` (executor, validate,
        timeouts, fault_plan, ...).
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        fn,
        materialize,
        *,
        n_workers: int = 2,
        on_result=None,
        telemetry=None,
        trace_root=None,
        frame_store=None,
        **supervisor_kwargs,
    ) -> None:
        self.policy = policy
        self.fn = fn
        self.materialize = materialize
        self.n_workers = max(1, int(n_workers))
        self._user_on_result = on_result
        self.telemetry = telemetry if telemetry is not None else NULL
        self.trace_root = trace_root
        self.frame_store = frame_store
        self.supervisor_kwargs = supervisor_kwargs
        self.lanes = [f"lane{i}" for i in range(self.n_workers)]
        self._free: deque[str] = deque(self.lanes)
        self._busy: dict[str, Assignment] = {}
        # task idx -> (lane, assignment, dispatch time)
        self._meta: dict[int, tuple[str, Assignment, float]] = {}
        self._next_idx = 0

    # -- supervisor feed ---------------------------------------------------
    def _feed(self):
        policy = self.policy
        out = []
        # Ask every free lane, not just the head of the queue: with chain
        # affinity one lane may have nothing while the lane behind it still
        # owns a chain to continue.  Lanes the policy declines stay free and
        # are asked again after the next completion.
        for lane in list(self._free):
            a = policy.next_assignment(lane)
            if a is None:
                continue
            self._free.remove(lane)
            self._busy[lane] = a
            self._meta[self._next_idx] = (lane, a, self.telemetry.now())
            out.append(self.materialize(a, lane))
            self._next_idx += 1
        if out:
            return out
        if self._busy:
            return []  # results in flight may unlock continuations/steals
        return None  # nothing running, nothing dispatchable: exhausted

    def _on_result(self, idx: int, result) -> None:
        lane, a, t0 = self._meta[idx]
        if self.frame_store is not None:
            attach_refs(result)
        # One flight per assignment, dispatch -> accepted result.  The
        # pool hides its internal retries behind acceptance, so attempt
        # stays 0 here (task.attempt events carry the retry story).
        self.telemetry.emit_span(
            "obs.flight",
            t0,
            self.telemetry.now() - t0,
            span=flight_span_id(a.seq),
            parent=self.trace_root,
            worker=lane,
            seq=a.seq,
            attempt=0,
            outcome="ok",
        )
        self.policy.on_result(lane, a)
        if self._busy.get(lane) is a:
            del self._busy[lane]
            self._free.append(lane)
        if self._user_on_result is not None:
            self._user_on_result(a, result)

    # -- entry -------------------------------------------------------------
    def run(self) -> SchedOutcome:
        sup = TaskSupervisor(
            self.fn,
            [],
            n_workers=self.n_workers,
            feed=self._feed,
            on_result=self._on_result,
            **self.supervisor_kwargs,
        )
        try:
            out = sup.run()
        finally:
            if self.frame_store is not None:
                # Accepted refs are already attached (see _on_result), so
                # unlinking stragglers by name can't strand a consumer.
                self.frame_store.cleanup()
        policy = self.policy
        if not policy.finished:
            missing = policy.total_units - policy.completed_units
            raise RuntimeError(f"scheduler finished with {missing} units incomplete")
        return SchedOutcome(
            results=out.results,
            assignments=list(policy.log),
            supervisor=out,
            n_chain_starts=policy.n_chain_starts,
            n_steals=policy.n_steals,
            n_reassigned=policy.n_reassigned,
            lanes_of={a.seq: lane for _i, (lane, a, _t) in self._meta.items()},
        )
