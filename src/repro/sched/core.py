"""Pure scheduling policies for the Table-1 partitioning schemes.

A policy is a transport-agnostic state machine.  The transport (simulator
or process farm) tells it about the world through three callbacks —

* ``next_assignment(worker)`` — a worker is hungry; hand it the next
  :class:`Assignment` (or ``None`` when nothing can be dispatched now);
* ``on_result(worker, assignment)`` — the worker finished an assignment;
* ``on_worker_lost(worker)`` — the worker died / timed out; its in-flight
  work is requeued fresh (a new chain start, as the paper's master must
  re-render from scratch when a slave disappears);

and reads its conclusions from ``log`` (every assignment in dispatch
order), ``n_chain_starts`` / ``n_steals`` / ``n_reassigned`` and
``finished``.  Policies never touch I/O, clocks, or numpy — region
indices are opaque integers; pricing an assignment is the cost model's
job (:mod:`repro.sched.cost`).

The chained policy reproduces the adaptive-subdivision master of the
original simulator exactly: per-worker chain affinity, a FIFO supply of
unstarted chains, and tail-stealing of the largest active chain (keep
``max(1, remaining // 2)`` frames, stolen half restarts fresh) when the
supply runs dry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Hashable, Sequence

__all__ = [
    "Assignment",
    "Chain",
    "SchedulingPolicy",
    "AdaptiveChainPolicy",
    "DemandDrivenPolicy",
    "ObjectSpacePolicy",
    "single_processor_policy",
    "make_policy",
    "STRATEGY_POLICIES",
]

Worker = Hashable


@dataclass(frozen=True)
class Assignment:
    """One unit of dispatched work: frames ``[frame0, frame1)`` of a region.

    ``region_index`` indexes the transport's region list; ``-1`` means the
    whole frame (sequence division / single processor).  ``fresh`` marks a
    chain start — the worker must render the first frame from scratch;
    subsequent frames of the same assignment (and later non-fresh
    assignments of the same chain) reuse frame coherence when ``coherent``.
    ``seq`` is the global dispatch ordinal: the equivalence artifact two
    transports are compared on.
    """

    seq: int
    worker: Worker
    region_index: int
    frame0: int
    frame1: int
    fresh: bool
    coherent: bool

    @property
    def n_frames(self) -> int:
        return self.frame1 - self.frame0

    def key(self) -> tuple:
        """Transport-independent identity (drops the worker binding)."""
        return (self.seq, self.region_index, self.frame0, self.frame1, self.fresh, self.coherent)


@dataclass
class Chain:
    """A coherence chain: frames ``[next, end)`` over one region."""

    region_index: int
    next_frame: int
    end_frame: int
    fresh: bool = True

    @property
    def remaining(self) -> int:
        return self.end_frame - self.next_frame


class SchedulingPolicy:
    """Shared bookkeeping: dispatch log, completion set, loss accounting."""

    #: number of (region, frame) units a frame needs before it is complete
    units_per_frame: int = 1
    use_coherence: bool = False

    def __init__(self) -> None:
        self.log: list[Assignment] = []
        self.n_chain_starts = 0
        self.n_steals = 0
        self.n_reassigned = 0
        self._completed: set[tuple[int, int]] = set()
        self._inflight: dict[Worker, Assignment] = {}
        self.total_units = 0

    # -- transport-facing protocol ---------------------------------------
    def on_worker_ready(self, worker: Worker) -> Assignment | None:
        """Alias: a newly available worker asks for work."""
        return self.next_assignment(worker)

    def next_assignment(self, worker: Worker) -> Assignment | None:
        raise NotImplementedError

    def on_result(self, worker: Worker, assignment: Assignment) -> None:
        """Mark the assignment's units done.  Idempotent: a duplicate result
        (e.g. from a presumed-dead worker that answered late) only frees the
        worker, it never double-counts."""
        self._inflight.pop(worker, None)
        for f in range(assignment.frame0, assignment.frame1):
            self._completed.add((assignment.region_index, f))

    def on_worker_lost(self, worker: Worker) -> Assignment | None:
        """Forget the worker; requeue its unfinished work as a fresh unit.

        Returns the in-flight assignment that was abandoned (if any) so the
        transport can account for it.
        """
        raise NotImplementedError

    def on_partial_result(self, worker: Worker, frame_done: int) -> Assignment | None:
        """Salvage a doomed worker's leading frames before declaring it lost.

        The distributed framebuffer lets the transport see exactly which
        frames of an in-flight assignment are already fully composited
        (streamed tile by tile).  Called right before ``on_worker_lost``
        with ``frame_done`` = first *incomplete* frame, it marks
        ``[frame0, frame_done)`` complete and narrows the in-flight
        assignment to the remainder, so the subsequent requeue re-renders
        only what is actually missing instead of the whole sub-area.
        Returns the narrowed assignment (or ``None`` if nothing was in
        flight).
        """
        a = self._inflight.get(worker)
        if a is None:
            return None
        fd = max(a.frame0, min(int(frame_done), a.frame1))
        for f in range(a.frame0, fd):
            self._completed.add((a.region_index, f))
        if fd > a.frame0:
            a = replace(a, frame0=fd)
            self._inflight[worker] = a
        return a

    # -- introspection ----------------------------------------------------
    @property
    def completed_units(self) -> int:
        return len(self._completed)

    @property
    def finished(self) -> bool:
        return self.completed_units >= self.total_units

    def unit_completed(self, region_index: int, frame: int) -> bool:
        return (region_index, frame) in self._completed

    # -- shared helpers ----------------------------------------------------
    def _emit(
        self, worker: Worker, region_index: int, frame0: int, frame1: int, fresh: bool
    ) -> Assignment:
        a = Assignment(
            seq=len(self.log),
            worker=worker,
            region_index=region_index,
            frame0=frame0,
            frame1=frame1,
            fresh=fresh,
            coherent=self.use_coherence,
        )
        self.log.append(a)
        self._inflight[worker] = a
        if self.use_coherence and fresh:
            self.n_chain_starts += 1
        return a


class DemandDrivenPolicy(SchedulingPolicy):
    """A flat FIFO queue of independent units, handed out on demand.

    Covers frame-division-without-coherence (one unit per (frame, block),
    frame-major — Table 1 columns 4/5) and the real farm's ``demand``
    schedule (block x frame-chunk units).  No worker affinity: any unit
    suits any worker, so a lost worker's unit simply goes back in the
    queue (fresh).
    """

    def __init__(
        self,
        units: Sequence[tuple[int, int, int]],
        *,
        use_coherence: bool = False,
        units_per_frame: int = 1,
    ) -> None:
        super().__init__()
        self.use_coherence = bool(use_coherence)
        self.units_per_frame = int(units_per_frame)
        self._queue: deque[tuple[int, int, int]] = deque(
            (int(ri), int(f0), int(f1)) for ri, f0, f1 in units
        )
        self.total_units = sum(f1 - f0 for _, f0, f1 in self._queue)

    def next_assignment(self, worker: Worker) -> Assignment | None:
        if worker in self._inflight:
            raise RuntimeError(f"worker {worker!r} asked for work with a unit in flight")
        if not self._queue:
            return None
        ri, f0, f1 = self._queue.popleft()
        return self._emit(worker, ri, f0, f1, fresh=True)

    def on_worker_lost(self, worker: Worker) -> Assignment | None:
        a = self._inflight.pop(worker, None)
        if a is not None and a.frame0 < a.frame1:
            self._queue.append((a.region_index, a.frame0, a.frame1))
            self.n_reassigned += 1
        return a


class AdaptiveChainPolicy(SchedulingPolicy):
    """Chain-structured scheduling with worker affinity and tail stealing.

    Covers single-processor (one chain, one worker), sequence division
    (one whole-frame chain per initial range), frame division with
    coherence (one chain per block) and the hybrid (block x frame-chunk
    chains).  A worker keeps stepping its own chain one segment at a time;
    when the chain ends it takes the next from the supply; when the supply
    is dry it steals the tail half of the largest active chain (if that
    chain still has at least ``min_steal_frames`` frames) — the stolen
    half restarts fresh, which is the coherence cost of adaptive
    subdivision the paper describes.

    ``segment_frames`` > 1 dispatches multi-frame steps (the real farm's
    process executor wants coarser tasks); ``continuation_fresh=True``
    makes every segment a fresh render (no cross-task renderer state — the
    process-pool case), while ``False`` relies on the transport to carry
    renderer state between consecutive segments of a chain.
    """

    def __init__(
        self,
        chains: Sequence[Chain],
        *,
        use_coherence: bool,
        units_per_frame: int = 1,
        min_steal_frames: int = 2,
        steal: bool = True,
        segment_frames: int = 1,
        continuation_fresh: bool = False,
    ) -> None:
        super().__init__()
        self.use_coherence = bool(use_coherence)
        self.units_per_frame = int(units_per_frame)
        self.min_steal_frames = int(min_steal_frames)
        self.steal = bool(steal)
        self.segment_frames = max(1, int(segment_frames))
        self.continuation_fresh = bool(continuation_fresh)
        self._supply: deque[Chain] = deque(chains)
        self._active: dict[Worker, Chain] = {}
        self._lost: set[Worker] = set()
        self.total_units = sum(c.remaining for c in self._supply)

    def next_assignment(self, worker: Worker) -> Assignment | None:
        if worker in self._inflight:
            raise RuntimeError(f"worker {worker!r} asked for work with a unit in flight")
        if worker in self._lost:
            return None
        c = self._active.get(worker)
        if c is None or c.remaining <= 0:
            c = None
            while self._supply:
                cand = self._supply.popleft()
                if cand.remaining > 0:
                    c = cand
                    break
            if c is None and self.steal:
                c = self._steal_tail(worker)
            if c is not None:
                self._active[worker] = c
        if c is None or c.remaining <= 0:
            return None
        f0 = c.next_frame
        f1 = min(c.end_frame, f0 + self.segment_frames)
        fresh = c.fresh or self.continuation_fresh
        c.next_frame = f1
        c.fresh = False
        return self._emit(worker, c.region_index, f0, f1, fresh)

    def _steal_tail(self, worker: Worker) -> Chain | None:
        victim: Chain | None = None
        for other, oc in self._active.items():
            if other == worker or oc.remaining < self.min_steal_frames:
                continue
            if victim is None or oc.remaining > victim.remaining:
                victim = oc
        if victim is None:
            return None
        keep = max(1, victim.remaining // 2)
        mid = victim.next_frame + keep
        stolen = Chain(victim.region_index, mid, victim.end_frame, fresh=True)
        victim.end_frame = mid
        self.n_steals += 1
        return stolen

    def on_worker_lost(self, worker: Worker) -> Assignment | None:
        a = self._inflight.pop(worker, None)
        c = self._active.pop(worker, None)
        self._lost.add(worker)
        if c is not None or a is not None:
            region = a.region_index if a is not None else c.region_index
            next_frame = a.frame0 if a is not None else c.next_frame
            end = c.end_frame if c is not None else a.frame1
            end = max(end, a.frame1 if a is not None else end)
            if next_frame < end:
                self._supply.append(Chain(region, next_frame, end, fresh=True))
                self.n_reassigned += 1
        return a


class ObjectSpacePolicy(SchedulingPolicy):
    """Object-space sharding: region indices are *scene shards*, not pixels.

    Units are ``(shard, frame-chunk)`` pairs in frame-major FIFO order.
    A unit binds its shard to the worker that pulls it — the policy is
    the shard-ownership authority the TCP session and the simulator
    share.  Pulls are shard-affine: a worker holding shard *s* gets
    *s*'s next chunk before an unbound one, so ownership is sticky; when
    every queued shard is bound elsewhere, the FIFO head migrates (an
    ownership handoff, same as the loss path).

    Unlike the pixel policies, a worker may hold **several** units in
    flight at once when the transport opts in (``allow_multi`` — the
    shard session sets it, because one TCP lane can own many shards
    while K exceeds the worker count).  A lost worker's in-flight units
    go back at the *front* of the queue so the reassigned shards resume
    before new work starts — that is what bounds the replay window.
    """

    def __init__(self, n_shards: int, n_frames: int, *, frames_per_chunk: int | None = None):
        super().__init__()
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = int(n_shards)
        self.n_frames = int(n_frames)
        fc = self.n_frames if frames_per_chunk is None else max(1, int(frames_per_chunk))
        self.frames_per_chunk = fc
        self._queue: deque[tuple[int, int, int]] = deque(
            (s, f0, min(f0 + fc, self.n_frames))
            for f0 in range(0, self.n_frames, fc)
            for s in range(self.n_shards)
        )
        self.total_units = self.n_shards * self.n_frames
        self.units_per_frame = self.n_shards
        self.allow_multi = False
        self.shard_owner: dict[int, Worker] = {}
        self._inflight_multi: dict[Worker, dict[int, Assignment]] = {}

    def next_assignment(self, worker: Worker) -> Assignment | None:
        if not self.allow_multi and worker in self._inflight:
            raise RuntimeError(f"worker {worker!r} asked for work with a unit in flight")
        if not self._queue:
            return None
        pick = 0
        unbound = None
        for i, (s, _, _) in enumerate(self._queue):
            owner = self.shard_owner.get(s)
            if owner == worker:
                pick = i
                unbound = None
                break
            if owner is None and unbound is None:
                unbound = i
        if unbound is not None:
            pick = unbound
        self._queue.rotate(-pick)
        s, f0, f1 = self._queue.popleft()
        self._queue.rotate(pick)
        prev_owner = self.shard_owner.get(s)
        if prev_owner is not None and prev_owner != worker:
            self.n_steals += 1  # ownership handoff
        self.shard_owner[s] = worker
        # fresh marks an ownership (re)bind: the new owner must build the
        # shard's intersection state from scratch.
        a = self._emit(worker, s, f0, f1, fresh=prev_owner != worker)
        self._inflight_multi.setdefault(worker, {})[a.seq] = a
        return a

    def on_result(self, worker: Worker, assignment: Assignment) -> None:
        super().on_result(worker, assignment)
        held = self._inflight_multi.get(worker)
        if held is not None:
            held.pop(assignment.seq, None)

    def on_worker_lost(self, worker: Worker) -> Assignment | None:
        last = self._inflight.pop(worker, None)
        held = self._inflight_multi.pop(worker, {})
        if last is not None and last.seq not in held:
            held[last.seq] = last
        for a in sorted(held.values(), key=lambda a: a.seq, reverse=True):
            if a.frame0 < a.frame1:
                self._queue.appendleft((a.region_index, a.frame0, a.frame1))
                self.n_reassigned += 1
        for s, owner in list(self.shard_owner.items()):
            if owner == worker:
                del self.shard_owner[s]
        return last


def single_processor_policy(n_frames: int, *, use_coherence: bool) -> AdaptiveChainPolicy:
    """Table 1 columns (1)/(2): one worker walking the whole sequence."""
    return AdaptiveChainPolicy(
        [Chain(-1, 0, n_frames, fresh=True)],
        use_coherence=use_coherence,
        units_per_frame=1,
        steal=False,
    )


#: Table-1 strategy name -> builder; see :func:`make_policy`.
STRATEGY_POLICIES = (
    "single",
    "single-fc",
    "frame-division-nofc",
    "sequence-division-nofc",
    "sequence-division-fc",
    "frame-division-fc",
    "hybrid-fc",
    "object-space",
)


def make_policy(
    strategy: str,
    n_frames: int,
    *,
    n_regions: int = 1,
    sequence_ranges: Sequence[tuple[int, int]] | None = None,
    frames_per_chunk: int = 10,
    min_steal_frames: int = 2,
    segment_frames: int = 1,
    continuation_fresh: bool = False,
) -> SchedulingPolicy:
    """Build the policy behind a Table-1 strategy name.

    ``sequence_ranges`` (for the sequence-division strategies) are the
    pre-weighted initial frame ranges; region-indexed strategies take
    ``n_regions`` blocks.  The caller owns the region geometry — policies
    only ever see indices.
    """
    if strategy in ("single", "single-fc"):
        return single_processor_policy(n_frames, use_coherence=strategy.endswith("-fc"))
    if strategy == "frame-division-nofc":
        units = [(ri, f, f + 1) for f in range(n_frames) for ri in range(n_regions)]
        return DemandDrivenPolicy(units, use_coherence=False, units_per_frame=n_regions)
    if strategy in ("sequence-division-fc", "sequence-division-nofc"):
        if sequence_ranges is None:
            raise ValueError(f"{strategy} needs sequence_ranges")
        chains = [Chain(-1, a, b, fresh=True) for a, b in sequence_ranges]
        return AdaptiveChainPolicy(
            chains,
            use_coherence=strategy.endswith("-fc"),
            units_per_frame=1,
            min_steal_frames=min_steal_frames,
            segment_frames=segment_frames,
            continuation_fresh=continuation_fresh,
        )
    if strategy == "frame-division-fc":
        chains = [Chain(ri, 0, n_frames, fresh=True) for ri in range(n_regions)]
        return AdaptiveChainPolicy(
            chains,
            use_coherence=True,
            units_per_frame=n_regions,
            min_steal_frames=min_steal_frames,
            segment_frames=segment_frames,
            continuation_fresh=continuation_fresh,
        )
    if strategy == "object-space":
        # Regions are scene shards; frames_per_chunk is the chunk size
        # (capped at the run length, so the default yields one whole-run
        # unit per shard: static ownership unless a worker is lost).
        return ObjectSpacePolicy(
            n_regions, n_frames, frames_per_chunk=min(frames_per_chunk, n_frames)
        )
    if strategy == "hybrid-fc":
        if frames_per_chunk < 1:
            raise ValueError("frames_per_chunk must be >= 1")
        chains = [
            Chain(ri, a, min(a + frames_per_chunk, n_frames), fresh=True)
            for ri in range(n_regions)
            for a in range(0, n_frames, frames_per_chunk)
        ]
        return AdaptiveChainPolicy(
            chains,
            use_coherence=True,
            units_per_frame=n_regions,
            min_steal_frames=min_steal_frames,
            segment_frames=segment_frames,
            continuation_fresh=continuation_fresh,
        )
    raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGY_POLICIES}")
