"""Price an :class:`~repro.sched.core.Assignment` against a measured oracle.

Policies know nothing about pixels or rays; this module is where an
abstract (region, frame-range) unit is turned into the numbers the
simulator computes with — ray counts, work units, working-set megabytes
and result-message bytes — using the same
:class:`~repro.parallel.oracle.AnimationCostOracle` +
:class:`~repro.parallel.config.RenderFarmConfig` model as before the
refactor.  The equivalence test also uses it to total the modelled rays
of a dispatch log, which is how "identical ray counts on both
transports" is checked without rendering anything twice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.config import RenderFarmConfig
from ..parallel.oracle import AnimationCostOracle
from ..parallel.partition import PixelRegion
from .core import Assignment

__all__ = ["FrameCost", "AssignmentCost", "OracleCostModel"]


@dataclass(frozen=True)
class FrameCost:
    """The modelled cost of one frame-step of an assignment."""

    frame: int
    rays: int
    n_computed: int
    units: float
    ws_mb: float
    chain_start: bool


@dataclass(frozen=True)
class AssignmentCost:
    """Aggregate cost of a whole assignment (one or more frame-steps)."""

    rays: int
    n_computed: int
    units: float
    ws_mb: float
    reply_bytes: int
    per_frame: tuple[FrameCost, ...]


class OracleCostModel:
    """Maps assignments onto the oracle's measured per-pixel ray costs.

    ``regions`` is the block list the policy's region indices refer to;
    region index ``-1`` (or a ``None`` region list) means the whole frame.
    """

    def __init__(
        self,
        oracle: AnimationCostOracle,
        cfg: RenderFarmConfig | None = None,
        regions: list[PixelRegion] | None = None,
    ) -> None:
        self.oracle = oracle
        self.cfg = cfg or RenderFarmConfig()
        self.regions = regions
        self._pixels = [r.pixels for r in regions] if regions is not None else None

    def region_pixels(self, region_index: int) -> np.ndarray | None:
        if self._pixels is None or region_index < 0:
            return None
        return self._pixels[region_index]

    def region_size(self, region_index: int) -> int:
        if self.regions is None or region_index < 0:
            return self.oracle.n_pixels
        return self.regions[region_index].n_pixels

    def frame_cost(
        self, region_index: int, frame: int, *, coherent: bool, chain_start: bool
    ) -> FrameCost:
        reg = self.region_pixels(region_index)
        size = self.region_size(region_index)
        if coherent:
            if chain_start:
                rays, n_computed = self.oracle.full_rays(frame, reg), size
            else:
                rays, n_computed = self.oracle.coherent_rays(frame, reg)
            units = self.cfg.task_units(rays, True, chain_start=chain_start, region_pixels=size)
            ws = self.cfg.fc_working_set_mb(size)
        else:
            rays, n_computed = self.oracle.full_rays(frame, reg), size
            units = self.cfg.task_units(rays, False)
            ws = self.cfg.nofc_working_set_mb(size)
        return FrameCost(
            frame=frame,
            rays=int(rays),
            n_computed=int(n_computed),
            units=float(units),
            ws_mb=float(ws),
            chain_start=bool(coherent and chain_start),
        )

    def assignment_cost(self, a: Assignment) -> AssignmentCost:
        """Total cost: frame0 fresh per ``a.fresh``, later frames coherent
        when the policy uses coherence (they continue the chain inside the
        same assignment)."""
        steps = tuple(
            self.frame_cost(
                a.region_index,
                f,
                coherent=a.coherent,
                chain_start=(f == a.frame0 and a.fresh),
            )
            for f in range(a.frame0, a.frame1)
        )
        rays = sum(s.rays for s in steps)
        n_computed = sum(s.n_computed for s in steps)
        units = sum(s.units for s in steps)
        ws = max((s.ws_mb for s in steps), default=0.0)
        return AssignmentCost(
            rays=int(rays),
            n_computed=int(n_computed),
            units=float(units),
            ws_mb=float(ws),
            reply_bytes=self.cfg.result_bytes(max(n_computed, 1)),
            per_frame=steps,
        )

    def total_rays_of_log(self, log) -> int:
        """Modelled ray total of a dispatch log — the cross-transport
        equivalence metric."""
        return sum(self.assignment_cost(a).rays for a in log)
