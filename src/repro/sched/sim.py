"""Drive a scheduling policy over the discrete-event VirtualPVM cluster.

This module owns the plumbing that used to live inside
``repro.parallel.strategies``: the generic slave program, the farm
spawner (workers first, master last, so the master's tid is
predictable), the telemetry bridge that replays a simulated run onto the
pinned event schema, and the outcome assembly.  What changed is the
master: instead of six hand-rolled scheduler generators, one
:class:`SimTransport` master drives any
:class:`~repro.sched.core.SchedulingPolicy` — priming every worker,
pricing each assignment through the
:class:`~repro.sched.cost.OracleCostModel`, completing frames when all
their (region, frame) units arrive, and (optionally) sweeping worker
deadlines so ``on_worker_lost`` can be exercised under injected machine
failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..cluster import Compute, Machine, Recv, Send, ThrashModel, VirtualPVM, WriteFile
from ..imageio import targa_nbytes
from ..telemetry import NULL as NULL_TELEMETRY
from ..telemetry import VirtualClock
from ..parallel.config import RenderFarmConfig
from ..parallel.oracle import AnimationCostOracle
from ..parallel.outcome import SimulationOutcome
from ..parallel.partition import PixelRegion
from .core import SchedulingPolicy
from .cost import AssignmentCost, OracleCostModel

__all__ = [
    "SimTelemetry",
    "RunAccounting",
    "worker_program",
    "spawn_farm",
    "outcome_from",
    "SimTransport",
]


class SimTelemetry:
    """Bridges a strategy replay onto the pinned telemetry schema.

    Spans and events carry *virtual* timestamps (the telemetry clock is
    rebound to ``pvm.sim.now`` once the farm exists), but their names and
    attribute keys are exactly those of a real farm run — the property the
    schema-equality acceptance test pins down.  Masters stamp dispatch
    metadata into the task payload (``_t0``/``_rays``/...): payload contents
    don't affect the modeled message size (``reply_bytes`` is explicit), and
    the echo-back of the payload is what lets the master close the span.
    """

    def __init__(self, telemetry, oracle: AnimationCostOracle, mode: str):
        self.tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self.enabled = self.tel.enabled
        self.oracle = oracle
        self.mode = mode
        self.names: dict[int, str] = {}  # worker tid -> machine name
        self.tasks_of: dict[str, int] = {}
        self.frame_rays: dict[int, int] = {}
        self.frame_computed: dict[int, int] = {}
        self.kind_totals = np.zeros(4, dtype=np.int64)
        self.rays_total = 0
        self.computed_pixels = 0
        self.copied_pixels = 0
        self.n_tasks = 0

    def bind(self, pvm: VirtualPVM, machines: list[Machine], worker_tids: list[int]) -> None:
        if not self.enabled:
            return
        self.tel.use_clock(VirtualClock(lambda: pvm.sim.now))
        self.names = {tid: m.name for tid, m in zip(worker_tids, machines)}
        self.tel.event(
            "run.start",
            engine="sim",
            workload="oracle",
            n_frames=self.oracle.n_frames,
            width=self.oracle.width,
            height=self.oracle.height,
            n_workers=len(machines) if machines else 1,
            mode=self.mode,
        )

    def on_dispatch(
        self, payload: dict, frame: int, region_px: int, rays: int, n_computed: int, now: float
    ) -> None:
        if not self.enabled:
            return
        self.frame_rays[frame] = self.frame_rays.get(frame, 0) + int(rays)
        self.frame_computed[frame] = self.frame_computed.get(frame, 0) + int(n_computed)
        payload["_t0"] = now
        payload["_region_px"] = int(region_px)
        payload["_rays"] = int(rays)
        payload["_n_computed"] = int(n_computed)

    def on_dispatch_cost(
        self, payload: dict, cost: AssignmentCost, region_px: int, now: float
    ) -> None:
        """Multi-frame variant: accumulate each frame-step, stamp totals."""
        if not self.enabled:
            return
        for s in cost.per_frame:
            self.frame_rays[s.frame] = self.frame_rays.get(s.frame, 0) + s.rays
            self.frame_computed[s.frame] = self.frame_computed.get(s.frame, 0) + s.n_computed
        payload["_t0"] = now
        payload["_region_px"] = int(region_px)
        payload["_rays"] = int(cost.rays)
        payload["_n_computed"] = int(cost.n_computed)

    def on_done(self, src: int, payload: dict, now: float) -> None:
        if not self.enabled:
            return
        worker = self.names.get(src, f"tid{src}")
        self.n_tasks += 1
        self.tasks_of[worker] = self.tasks_of.get(worker, 0) + 1
        t0 = payload.get("_t0", now)
        frame0 = int(payload["frame"])
        self.tel.emit_span(
            "task",
            t0,
            now - t0,
            worker=worker,
            mode=self.mode,
            frame0=frame0,
            frame1=int(payload.get("_frame1", frame0 + 1)),
            region=payload.get("_region_px", 0),
            rays=payload.get("_rays", 0),
            n_computed=payload.get("_n_computed", 0),
            attempt=0,
        )

    def frame_done(self, frame: int) -> None:
        if not self.enabled:
            return
        rays = self.frame_rays.get(frame, 0)
        computed = self.frame_computed.get(frame, 0)
        copied = max(0, self.oracle.n_pixels - computed)
        self.computed_pixels += computed
        self.copied_pixels += copied
        self.rays_total += rays
        kinds = self.oracle.kind_counts(frame, rays)
        if kinds is None:  # pre-kind-counts oracle: totals only
            kinds = np.zeros(4, dtype=np.int64)
        self.kind_totals += kinds
        self.tel.event(
            "frame",
            frame=frame,
            n_computed=computed,
            n_copied=copied,
            rays_camera=int(kinds[0]),
            rays_reflected=int(kinds[1]),
            rays_refracted=int(kinds[2]),
            rays_shadow=int(kinds[3]),
            rays_total=int(rays),
        )

    def recovery(self, kind: str, task: int, duration: float, worker: str = "?") -> None:
        if not self.enabled:
            return
        self.tel.event(
            "recovery", kind=kind, task=int(task), attempt=0, duration=duration, worker=worker
        )
        self.tel.counter("recovery.events", 1)

    def finish(self, pvm: VirtualPVM, total_time: float) -> None:
        if not self.enabled:
            return
        busy_by_machine = pvm.cpu_busy_seconds()
        for worker in sorted(self.tasks_of):
            busy = busy_by_machine.get(worker, 0.0)
            self.tel.event(
                "worker",
                worker=worker,
                busy=busy,
                n_tasks=self.tasks_of[worker],
                utilization=(busy / total_time) if total_time > 0 else 0.0,
            )
        self.tel.event(
            "run.end",
            wall_time=total_time,
            computed_pixels=self.computed_pixels,
            copied_pixels=self.copied_pixels,
            n_tasks=self.n_tasks,
            n_workers=len(self.names) if self.names else 1,
            rays_camera=int(self.kind_totals[0]),
            rays_reflected=int(self.kind_totals[1]),
            rays_refracted=int(self.kind_totals[2]),
            rays_shadow=int(self.kind_totals[3]),
            rays_total=int(self.rays_total),
        )


@dataclass
class RunAccounting:
    """Mutable counters the master updates while the simulation runs."""

    total_rays: int = 0
    total_units: float = 0.0
    n_chain_starts: int = 0
    n_steals: int = 0
    frame_done_at: dict[int, float] = field(default_factory=dict)


def worker_program(master_tid: int) -> Iterator:
    """The generic slave: receive a task, compute it, return the result.

    The payload carries precomputed ``units`` (from the oracle) and the
    modelled working-set size; the worker is strategy-agnostic, exactly like
    the paper's slaves ("the slaves themselves do not need to communicate
    with each other").
    """
    while True:
        msg = yield Recv()
        if msg.tag == "stop":
            return
        p = msg.payload
        yield Compute(units=p["units"], working_set_mb=p["ws_mb"])
        yield Send(master_tid, p["reply_bytes"], payload=p, tag="done")


def spawn_farm(
    machines: list[Machine],
    sec_per_work_unit: float,
    thrash: ThrashModel | None,
    master_factory,
    trace: bool = False,
    sim_tel: SimTelemetry | None = None,
    **ethernet_kwargs,
) -> tuple[VirtualPVM, RunAccounting]:
    """Wire up master + one worker per machine; master_factory(pvm, worker_tids, acct)."""
    pvm = VirtualPVM(
        machines, sec_per_work_unit=sec_per_work_unit, thrash=thrash, **ethernet_kwargs
    )
    pvm.tracing = bool(trace)
    acct = RunAccounting()
    worker_tids: list[int] = []

    def late_master():
        # Delegate to the strategy program once spawned.
        yield from master_factory(pvm, worker_tids, acct)

    # Workers address the master through its (future) tid; since tids are
    # assigned sequentially we can predict it: workers take 1..n, master n+1.
    predicted_master_tid = len(machines) + 1
    for m in machines:
        worker_tids.append(
            pvm.spawn(worker_program(predicted_master_tid), m.name, name=f"worker-{m.name}")
        )
    mtid = pvm.spawn(late_master(), machines[0].name, name="master")
    if mtid != predicted_master_tid:  # defensive: spawn order is the contract
        raise RuntimeError("tid allocation changed; master address is stale")
    if sim_tel is not None:
        sim_tel.bind(pvm, machines, worker_tids)
    return pvm, acct


def outcome_from(
    strategy: str,
    oracle: AnimationCostOracle,
    pvm: VirtualPVM,
    acct: RunAccounting,
    total_time: float,
    first_frame_time: float | None = None,
    sim_tel: SimTelemetry | None = None,
) -> SimulationOutcome:
    if sim_tel is not None:
        sim_tel.finish(pvm, total_time)
    timeline = None
    if pvm.tracing and pvm.events:
        from ..cluster import render_timeline

        timeline = render_timeline(pvm)
    return SimulationOutcome(
        strategy=strategy,
        n_frames=oracle.n_frames,
        total_time=total_time,
        first_frame_time=first_frame_time,
        frame_completion_times=dict(acct.frame_done_at),
        total_rays=acct.total_rays,
        total_units=acct.total_units,
        machine_busy_seconds=pvm.cpu_busy_seconds(),
        ethernet_busy_seconds=pvm.ethernet.busy_seconds,
        n_messages=pvm.ethernet.n_messages,
        bytes_on_wire=pvm.ethernet.bytes_carried,
        n_chain_starts=acct.n_chain_starts,
        n_steals=acct.n_steals,
        timeline=timeline,
    )


class SimTransport:
    """Runs one policy over a VirtualPVM farm and returns a SimulationOutcome.

    ``single=True`` replays the policy as one renderer process with no
    message passing (Table 1's single-processor columns); otherwise the
    master primes every worker, reprices each assignment at dispatch time
    and writes frames as their last (region, frame) unit completes —
    message for message what the hand-rolled strategy masters did.

    ``worker_timeout`` switches the master's blocking ``Recv`` to a
    deadline sweep: a worker whose assignment outlives the deadline is
    declared lost, the policy requeues its chain fresh, and idle live
    workers are re-fed — which is how the scheduler edge-case tests drive
    ``on_worker_lost`` against injected machine failures.
    """

    def __init__(
        self,
        policy: SchedulingPolicy,
        oracle: AnimationCostOracle,
        machines: list[Machine],
        cfg: RenderFarmConfig | None = None,
        *,
        regions: list[PixelRegion] | None = None,
        cost_model=None,
        label: str = "sched",
        sec_per_work_unit: float = 1e-4,
        thrash: ThrashModel | None = None,
        trace: bool = False,
        telemetry=None,
        single: bool = False,
        worker_timeout: float | None = None,
        failures: list[tuple[str, float]] | None = None,
        **ethernet_kwargs,
    ) -> None:
        self.policy = policy
        self.oracle = oracle
        self.machines = machines
        self.cfg = cfg or RenderFarmConfig()
        # cost_model overrides the pixel-region pricing (duck-typed
        # OracleCostModel surface) — the object-space ShardOracle uses it.
        self.cost = cost_model if cost_model is not None else OracleCostModel(oracle, self.cfg, regions)
        self.label = label
        self.sec_per_work_unit = sec_per_work_unit
        self.thrash = thrash
        self.trace = trace
        self.telemetry = telemetry
        self.single = single
        self.worker_timeout = worker_timeout
        self.failures = failures or []
        self.ethernet_kwargs = ethernet_kwargs
        self._frame_bytes = targa_nbytes(oracle.width, oracle.height)

    # -- shared dispatch plumbing -----------------------------------------
    def _build_payload(self, a, acct: RunAccounting, sim_tel: SimTelemetry, now: float) -> dict:
        cost = self.cost.assignment_cost(a)
        acct.total_rays += cost.rays
        acct.total_units += cost.units
        p = {
            "frame": a.frame0,
            "_frame1": a.frame1,
            "region": a.region_index,
            "units": cost.units,
            "ws_mb": cost.ws_mb,
            "reply_bytes": cost.reply_bytes,
            "_seq": a.seq,
        }
        sim_tel.on_dispatch_cost(p, cost, self.cost.region_size(a.region_index), now)
        return p

    def _sync_policy_counters(self, acct: RunAccounting) -> None:
        acct.n_chain_starts = self.policy.n_chain_starts
        acct.n_steals = self.policy.n_steals

    def run(self) -> SimulationOutcome:
        if self.single:
            return self._run_single()
        return self._run_farm()

    # -- single processor (no messages) ------------------------------------
    def _run_single(self) -> SimulationOutcome:
        policy, cfg, oracle = self.policy, self.cfg, self.oracle
        machine = self.machines[0]
        pvm = VirtualPVM(
            [machine], sec_per_work_unit=self.sec_per_work_unit, thrash=self.thrash
        )
        acct = RunAccounting()
        sim_tel = SimTelemetry(self.telemetry, oracle, self.label)
        sim_tel.bind(pvm, [machine], [])
        sim_tel.names = {0: machine.name}  # the lone renderer is tid-less

        def renderer():
            while True:
                a = policy.next_assignment(0)
                if a is None:
                    break
                p = self._build_payload(a, acct, sim_tel, pvm.sim.now)
                yield Compute(units=p["units"], working_set_mb=p["ws_mb"])
                if cfg.write_frames:
                    for _f in range(a.frame0, a.frame1):
                        yield WriteFile(self._frame_bytes)
                for f in range(a.frame0, a.frame1):
                    acct.frame_done_at[f] = pvm.sim.now
                sim_tel.on_done(0, p, pvm.sim.now)
                policy.on_result(0, a)
                for f in range(a.frame0, a.frame1):
                    sim_tel.frame_done(f)

        pvm.spawn(renderer(), machine.name, name="renderer")
        end = pvm.run()
        self._sync_policy_counters(acct)
        return outcome_from(
            self.label, oracle, pvm, acct, end,
            first_frame_time=acct.frame_done_at.get(0), sim_tel=sim_tel,
        )

    # -- message-passing farm ----------------------------------------------
    def _run_farm(self) -> SimulationOutcome:
        sim_tel = SimTelemetry(self.telemetry, self.oracle, self.label)
        factory = self._master_factory(sim_tel)
        pvm, acct = spawn_farm(
            self.machines, self.sec_per_work_unit, self.thrash, factory,
            trace=self.trace, sim_tel=sim_tel, **self.ethernet_kwargs,
        )
        for machine_name, at in self.failures:
            pvm.fail_machine(machine_name, at)
        end = pvm.run()
        self._sync_policy_counters(acct)
        return outcome_from(self.label, self.oracle, pvm, acct, end, sim_tel=sim_tel)

    def _master_factory(self, sim_tel: SimTelemetry):
        policy, cfg = self.policy, self.cfg

        def factory(pvm: VirtualPVM, worker_tids: list[int], acct: RunAccounting):
            frames_done: dict[int, int] = {f: 0 for f in range(self.oracle.n_frames)}
            inflight: dict[int, object] = {}  # tid -> Assignment
            deadlines: dict[int, float] = {}
            stopped: set[int] = set()
            dead: set[int] = set()
            timeout = self.worker_timeout

            def dispatch(tid, a):
                inflight[tid] = a
                if timeout is not None:
                    deadlines[tid] = pvm.sim.now + timeout
                return Send(tid, cfg.request_bytes, self._build_payload(
                    a, acct, sim_tel, pvm.sim.now), tag="task")

            def accept(src) -> list[int]:
                """Record a result; return frames newly completed by it."""
                a = inflight.pop(src)
                deadlines.pop(src, None)
                fresh_frames = [
                    f for f in range(a.frame0, a.frame1)
                    if not policy.unit_completed(a.region_index, f)
                ]
                policy.on_result(src, a)
                done = []
                for f in fresh_frames:
                    frames_done[f] += 1
                    if frames_done[f] == policy.units_per_frame:
                        done.append(f)
                return done

            # -- prime every worker ----------------------------------------
            for tid in worker_tids:
                a = policy.next_assignment(tid)
                if a is None:
                    if timeout is None:
                        stopped.add(tid)
                        yield Send(tid, cfg.msg_overhead_bytes, None, tag="stop")
                else:
                    yield dispatch(tid, a)

            while not policy.finished:
                msg = yield Recv(
                    tag="done", timeout=None if timeout is None else timeout / 2.0
                )
                now = pvm.sim.now
                if msg is not None and msg.src not in dead:
                    sim_tel.on_done(msg.src, msg.payload, now)
                    for f in accept(msg.src):
                        if cfg.write_frames:
                            yield WriteFile(self._frame_bytes)
                        acct.frame_done_at[f] = pvm.sim.now
                        sim_tel.frame_done(f)
                    a = policy.next_assignment(msg.src)
                    if a is None:
                        if timeout is None:
                            stopped.add(msg.src)
                            yield Send(msg.src, cfg.msg_overhead_bytes, None, tag="stop")
                    else:
                        yield dispatch(msg.src, a)
                if timeout is not None:
                    # Deadline sweep: presume silent workers dead, requeue
                    # their chains fresh, re-feed the idle survivors.
                    for tid in list(deadlines):
                        if tid in dead or now < deadlines[tid]:
                            continue
                        dead.add(tid)
                        deadlines.pop(tid, None)
                        lost = inflight.pop(tid, None)
                        policy.on_worker_lost(tid)
                        sim_tel.recovery(
                            "deadline",
                            lost.seq if lost is not None else -1,
                            timeout,
                            worker=sim_tel.names.get(tid, f"tid{tid}"),
                        )
                    for tid in worker_tids:
                        if tid in dead or tid in stopped or tid in inflight:
                            continue
                        a = policy.next_assignment(tid)
                        if a is not None:
                            yield dispatch(tid, a)
                    if not inflight and not policy.finished:
                        raise RuntimeError("all workers dead with work remaining")

            for tid in worker_tids:
                if tid not in stopped:
                    yield Send(tid, cfg.msg_overhead_bytes, None, tag="stop")

        return factory
