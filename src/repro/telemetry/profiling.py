"""Opt-in cProfile hooks (the ``--profile`` flag).

Per-worker profiling of a multiprocessing render farm cannot use one
global profiler — each worker process profiles its own task into a
``.prof`` file, and the master merges them afterwards with ``pstats``.
The same helpers serve the single-process pipeline (one profile for the
whole render).
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from pathlib import Path

__all__ = ["profile_into", "merge_profiles", "profile_summary"]


@contextmanager
def profile_into(path: str | Path | None):
    """Profile the enclosed block into ``path`` (no-op when ``path`` is None)."""
    if path is None:
        yield
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    prof = cProfile.Profile()
    prof.enable()
    try:
        yield
    finally:
        prof.disable()
        prof.dump_stats(str(path))


def merge_profiles(profile_dir: str | Path) -> pstats.Stats | None:
    """Merge every ``*.prof`` under ``profile_dir`` into one Stats object."""
    paths = sorted(Path(profile_dir).glob("*.prof"))
    if not paths:
        return None
    stats = pstats.Stats(str(paths[0]))
    for p in paths[1:]:
        stats.add(str(p))
    return stats


def profile_summary(profile_dir: str | Path, top: int = 15) -> str:
    """Human summary of the merged profiles (top functions by cumulative time)."""
    stats = merge_profiles(profile_dir)
    if stats is None:
        return f"no profiles found under {profile_dir}"
    buf = io.StringIO()
    stats.stream = buf
    stats.sort_stats("cumulative").print_stats(top)
    header = f"merged profile of {len(list(Path(profile_dir).glob('*.prof')))} task(s):"
    return header + "\n" + buf.getvalue()
