"""Render a telemetry event log into a Table-1-style report.

The paper's Table 1 is the template: total rays (by kind), how much work
frame coherence avoided (computed vs copied pixels), and how well the
machines were used (per-worker utilization).  This module reconstructs all
of it from the JSONL event log *alone* — no live objects — so a finished
(or crashed) run directory is fully analyzable after the fact:

``python -m repro telemetry <run_dir>``
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .schema import RAY_KEYS

__all__ = ["TelemetryReport", "read_events", "report_from_events", "format_report"]


def read_events(path: str | Path) -> list[dict]:
    """Load an events.jsonl file (a run directory is accepted directly)."""
    p = Path(path)
    if p.is_dir():
        p = p / "events.jsonl"
    if not p.exists():
        raise FileNotFoundError(f"no event log at {p}")
    events = []
    with open(p, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@dataclass
class TelemetryReport:
    """Aggregated view of one run's event log."""

    engine: str = "?"
    workload: str = "?"
    mode: str = "?"
    n_frames: int = 0
    width: int = 0
    height: int = 0
    n_workers: int = 0
    wall_time: float = 0.0
    rays: dict[str, int] = field(default_factory=dict)  # kind -> count
    computed_pixels: int = 0
    copied_pixels: int = 0
    n_tasks: int = 0
    per_frame: dict[int, dict[str, int]] = field(default_factory=dict)
    workers: list[dict] = field(default_factory=list)
    recovery: dict[str, int] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    losses: list[dict] = field(default_factory=list)  # net.worker.lost events
    attempts: dict[str, int] = field(default_factory=dict)  # outcome -> count

    @property
    def computed_fraction(self) -> float:
        total = self.computed_pixels + self.copied_pixels
        return self.computed_pixels / total if total else 0.0


_KINDS = ("camera", "reflected", "refracted", "shadow", "total")


def report_from_events(events: list[dict]) -> TelemetryReport:
    """Aggregate an event list (as loaded by :func:`read_events`)."""
    rep = TelemetryReport(rays={k: 0 for k in _KINDS})
    saw_run_end = False
    for rec in events:
        rtype, name = rec.get("type"), rec.get("name")
        attrs = rec.get("attrs") or {}
        if name == "run.start":
            rep.engine = str(attrs.get("engine", rep.engine))
            rep.workload = str(attrs.get("workload", rep.workload))
            rep.mode = str(attrs.get("mode", rep.mode))
            rep.n_frames = int(attrs.get("n_frames", rep.n_frames))
            rep.width = int(attrs.get("width", rep.width))
            rep.height = int(attrs.get("height", rep.height))
            rep.n_workers = int(attrs.get("n_workers", rep.n_workers))
        elif name == "frame":
            f = int(attrs.get("frame", -1))
            row = rep.per_frame.setdefault(
                f, {"n_computed": 0, "n_copied": 0, **{k: 0 for k in RAY_KEYS}}
            )
            row["n_computed"] += int(attrs.get("n_computed", 0))
            row["n_copied"] += int(attrs.get("n_copied", 0))
            for key in RAY_KEYS:
                row[key] += int(attrs.get(key, 0))
        elif name == "task":
            rep.n_tasks += 1
        elif name == "worker":
            rep.workers.append(
                {
                    "worker": str(attrs.get("worker", "?")),
                    "busy": float(attrs.get("busy", 0.0)),
                    "n_tasks": int(attrs.get("n_tasks", 0)),
                    "utilization": float(attrs.get("utilization", 0.0)),
                }
            )
        elif name == "recovery":
            kind = str(attrs.get("kind", "?"))
            rep.recovery[kind] = rep.recovery.get(kind, 0) + 1
        elif name == "net.worker.lost":
            rep.losses.append(
                {
                    "worker": str(attrs.get("worker", "?")),
                    "reason": str(attrs.get("reason", "?")),
                    "seq": int(attrs.get("seq", -1)),
                }
            )
        elif name == "task.attempt":
            outcome = str(attrs.get("outcome", "?"))
            rep.attempts[outcome] = rep.attempts.get(outcome, 0) + 1
        elif name == "run.end":
            saw_run_end = True
            rep.wall_time = float(attrs.get("wall_time", rep.wall_time))
            for kind in _KINDS:
                rep.rays[kind] = int(attrs.get(f"rays_{kind}", 0))
            rep.computed_pixels = int(attrs.get("computed_pixels", 0))
            rep.copied_pixels = int(attrs.get("copied_pixels", 0))
            if attrs.get("n_tasks"):
                rep.n_tasks = int(attrs["n_tasks"])
        elif rtype == "counter":
            rep.counters[name] = rep.counters.get(name, 0) + rec.get("value", 0)
    if not saw_run_end:
        # Crashed / partial run: rebuild totals from the per-frame rows.
        for row in rep.per_frame.values():
            rep.computed_pixels += row["n_computed"]
            rep.copied_pixels += row["n_copied"]
            for kind in _KINDS:
                rep.rays[kind] += row[f"rays_{kind}"]
    rep.workers.sort(key=lambda w: w["worker"])
    return rep


def _fmt_int(n: int) -> str:
    return f"{n:,}"


def format_report(rep: TelemetryReport, per_frame: bool = False) -> str:
    """The Table-1-style text rendering of a run report."""
    lines = []
    lines.append(
        f"== telemetry report: {rep.workload} "
        f"[{rep.engine}/{rep.mode}] "
        f"{rep.n_frames} frames @ {rep.width}x{rep.height}, {rep.n_workers} workers =="
    )
    lines.append("")
    lines.append("rays by kind")
    for kind in _KINDS:
        lines.append(f"  {kind:<10} {_fmt_int(rep.rays.get(kind, 0)):>14}")
    lines.append("")
    total_px = rep.computed_pixels + rep.copied_pixels
    pct = 100.0 * rep.computed_fraction
    lines.append("pixels")
    lines.append(f"  computed   {_fmt_int(rep.computed_pixels):>14}  ({pct:.1f}% of {_fmt_int(total_px)})")
    lines.append(f"  copied     {_fmt_int(rep.copied_pixels):>14}")
    lines.append("")
    if rep.workers:
        lines.append("per-worker utilization")
        lines.append(f"  {'worker':<18} {'busy(s)':>10} {'tasks':>6} {'util%':>7}")
        for w in rep.workers:
            lines.append(
                f"  {w['worker']:<18} {w['busy']:>10.3f} {w['n_tasks']:>6} "
                f"{100.0 * w['utilization']:>6.1f}%"
            )
        lines.append("")
    if rep.recovery:
        parts = [f"{rep.recovery[k]} {k}" for k in sorted(rep.recovery)]
        lines.append(f"recovery events: {', '.join(parts)}")
        lines.append("")
    if rep.losses:
        by: dict[tuple[str, str], int] = {}
        for loss in rep.losses:
            key = (loss["worker"], loss["reason"])
            by[key] = by.get(key, 0) + 1
        lines.append("worker losses")
        for (worker, reason), n in sorted(by.items()):
            count = f"  x{n}" if n > 1 else ""
            lines.append(f"  {worker:<18} {reason}{count}")
        lines.append("")
    n_bad = sum(n for k, n in rep.attempts.items() if k != "ok")
    if n_bad:
        parts = [f"{rep.attempts[k]} {k}" for k in sorted(rep.attempts)]
        lines.append(f"task attempts: {', '.join(parts)}")
        lines.append("")
    if rep.counters:
        lines.append("counters")
        for name in sorted(rep.counters):
            lines.append(f"  {name:<28} {_fmt_int(int(rep.counters[name])):>14}")
        lines.append("")
    if per_frame and rep.per_frame:
        lines.append("per-frame")
        lines.append(f"  {'frame':>5} {'computed':>10} {'copied':>10} {'rays':>12}")
        for f in sorted(rep.per_frame):
            row = rep.per_frame[f]
            lines.append(
                f"  {f:>5} {row['n_computed']:>10} {row['n_copied']:>10} "
                f"{row['rays_total']:>12}"
            )
        lines.append("")
    lines.append(f"tasks: {rep.n_tasks}    wall time: {rep.wall_time:.3f} s")
    return "\n".join(lines)
