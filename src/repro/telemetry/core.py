"""Tracing and metrics core: spans, counters, gauges, events, clocks.

One :class:`Telemetry` instance owns a clock and a list of sinks.  Every
emission is a plain dict (one JSONL line when logged to disk):

``{"v": 1, "type": ..., "name": ..., "t": ..., "attrs": {...}}``

with spans adding ``"dur"`` and ``"parent"``/``"span"`` ids, and
counter/gauge records adding ``"value"``.  The schema of the *named*
events (which names exist, which attr keys they carry) is pinned in
:mod:`repro.telemetry.schema` so the real farm and the cluster simulator
stay comparable record-for-record.

Two clock domains exist: real runs use ``time.perf_counter`` and the
discrete-event simulator plugs in a :class:`VirtualClock` reading
``sim.now`` — the emitted records are indistinguishable in shape, which is
what lets one report renderer serve both.

A disabled instance (``Telemetry(enabled=False)`` or the shared
:data:`NULL`) reduces every call to a single attribute test, so
instrumentation can stay unconditionally in hot paths.
"""

from __future__ import annotations

import json
import time
import weakref
from contextlib import contextmanager

from .hist import LogHistogram
from .schema import SCHEMA_VERSION

__all__ = ["Telemetry", "VirtualClock", "NULL", "set_flight_tap", "live_sessions"]

#: Process-global observer called with every record any enabled session
#: emits.  The flight recorder (:mod:`repro.obs.flight`) installs itself
#: here rather than as a per-instance sink because worker processes build
#: short-lived per-task sessions the daemon never sees — a tap on the one
#: shared emission path catches them all.
_FLIGHT_TAP = None

#: Weak registry of live *enabled* sessions, so a crash-time dump can walk
#: still-open span stacks and synthesize their close records.
_LIVE: "weakref.WeakSet[Telemetry]" = weakref.WeakSet()


def set_flight_tap(tap) -> None:
    """Install (or clear, with ``None``) the process-global record tap."""
    global _FLIGHT_TAP
    _FLIGHT_TAP = tap


def live_sessions() -> list["Telemetry"]:
    """Every enabled :class:`Telemetry` currently alive in this process."""
    return list(_LIVE)


class VirtualClock:
    """A clock that reads simulated seconds from a callable.

    The cluster simulator passes ``lambda: pvm.sim.now`` so spans measured
    inside a strategy replay carry *virtual* durations — the same fields,
    a different time base.
    """

    def __init__(self, now_fn):
        self._now_fn = now_fn

    def __call__(self) -> float:
        return float(self._now_fn())


class _SpanHandle:
    """Book-keeping for one open span (returned by ``Telemetry.span``)."""

    __slots__ = ("name", "attrs", "t0", "span_id", "parent_id")

    def __init__(self, name: str, attrs: dict, t0: float, span_id: int, parent_id: int | None):
        self.name = name
        self.attrs = attrs
        self.t0 = t0
        self.span_id = span_id
        self.parent_id = parent_id


class Telemetry:
    """A tracing + metrics session.

    Parameters
    ----------
    sinks:
        Objects with an ``emit(record: dict)`` method (and optionally
        ``close()``).  See :mod:`repro.telemetry.sinks`.
    clock:
        Zero-argument callable returning seconds.  Defaults to
        ``time.perf_counter``; the simulator passes a :class:`VirtualClock`.
    enabled:
        ``False`` turns every method into a near-free no-op.
    run_id:
        Optional tag copied onto every record (distinguishes merged logs).
    span_ns:
        Namespace prefix for span ids.  A bare session hands out integer
        ids (1, 2, ...); a namespaced one hands out strings
        (``"w0.3:1"``, ...), which is what keeps worker-side span ids
        collision-free when many worker sessions are merged into one
        master event stream (:mod:`repro.obs`).
    root_parent:
        Parent id stamped on spans opened with an *empty* local stack.
        A worker session carries the master-side flight span's id here,
        so its ``task`` span parents correctly in the merged trace.
    """

    def __init__(
        self,
        sinks=(),
        clock=None,
        enabled: bool = True,
        run_id: str = "",
        span_ns: str = "",
        root_parent=None,
    ):
        self.enabled = bool(enabled)
        self.sinks = list(sinks)
        self.clock = clock if clock is not None else time.perf_counter
        self.run_id = run_id
        self.span_ns = span_ns
        self.root_parent = root_parent
        self._counters: dict[str, float] = {}
        self._hists: dict[str, LogHistogram] = {}
        self._span_stack: list[_SpanHandle] = []
        self._next_span_id = 1
        self._closed = False
        if self.enabled:
            _LIVE.add(self)

    # -- clock ----------------------------------------------------------------
    def use_clock(self, clock) -> None:
        """Swap the time base (the simulator binds ``sim.now`` post-spawn)."""
        self.clock = clock

    def now(self) -> float:
        return self.clock()

    # -- emission -------------------------------------------------------------
    def emit(self, record: dict) -> None:
        if not self.enabled:
            return
        record.setdefault("v", SCHEMA_VERSION)
        if self.run_id:
            record.setdefault("run", self.run_id)
        for sink in self.sinks:
            sink.emit(record)
        if _FLIGHT_TAP is not None:
            _FLIGHT_TAP(record)

    def event(self, name: str, **attrs) -> None:
        """A point event at the current clock time."""
        if not self.enabled:
            return
        self.emit({"type": "event", "name": name, "t": self.now(), "attrs": attrs})

    # -- spans ----------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs):
        """Hierarchical timed region; emits one ``span`` record on exit.

        The handle is yielded so attrs discovered mid-span can be added:

        >>> with tel.span("frame", frame=3) as sp:      # doctest: +SKIP
        ...     sp.attrs["n_computed"] = work()
        """
        if not self.enabled:
            yield _SpanHandle(name, attrs, 0.0, 0, None)
            return
        handle = self._open_span(name, attrs)
        try:
            yield handle
        finally:
            self._close_span(handle)

    def new_span_id(self):
        """Allocate one span id without opening a span (transports emit
        externally-timed spans whose id must be known at dispatch time so
        it can ride to the worker inside the task envelope)."""
        sid = self._next_span_id
        self._next_span_id += 1
        return f"{self.span_ns}{sid}" if self.span_ns else sid

    def _open_span(self, name: str, attrs: dict) -> _SpanHandle:
        parent = self._span_stack[-1].span_id if self._span_stack else self.root_parent
        handle = _SpanHandle(name, attrs, self.now(), self.new_span_id(), parent)
        self._span_stack.append(handle)
        return handle

    def _close_span(self, handle: _SpanHandle) -> None:
        t1 = self.now()
        if self._span_stack and self._span_stack[-1] is handle:
            self._span_stack.pop()
        self.emit(
            {
                "type": "span",
                "name": handle.name,
                "t": handle.t0,
                "dur": max(0.0, t1 - handle.t0),
                "span": handle.span_id,
                "parent": handle.parent_id,
                "attrs": handle.attrs,
            }
        )

    def emit_span(self, name: str, t0: float, dur: float, *, span=None, parent=None, **attrs) -> None:
        """A span measured externally (simulator masters time their own
        dispatch/completion pairs across generator yields, where a context
        manager cannot live).  ``span``/``parent`` override the allocated
        id and root parent — the transports pre-allocate flight-span ids
        with :meth:`new_span_id` so workers can parent under them."""
        if not self.enabled:
            return
        self.emit(
            {
                "type": "span",
                "name": name,
                "t": t0,
                "dur": max(0.0, dur),
                "span": span if span is not None else self.new_span_id(),
                "parent": parent if parent is not None else self.root_parent,
                "attrs": attrs,
            }
        )

    # -- metrics ----------------------------------------------------------------
    def counter(self, name: str, value: float = 1) -> None:
        """Accumulate; totals are emitted once by :meth:`flush_counters`."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float, **attrs) -> None:
        """An instantaneous measurement (emitted immediately)."""
        if not self.enabled:
            return
        self.emit(
            {"type": "gauge", "name": name, "t": self.now(), "value": value, "attrs": attrs}
        )

    def histogram(self, name: str, value: float) -> None:
        """Record one observation into a mergeable log-bucketed sketch; a
        distribution summary (count/min/max/mean/p50/p95/p99 + the digest)
        is emitted by :meth:`flush_counters`."""
        if not self.enabled:
            return
        h = self._hists.get(name)
        if h is None:
            h = self._hists[name] = LogHistogram()
        h.add(value)

    @property
    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    def flush_counters(self) -> None:
        """Emit one record per accumulated counter/histogram and reset."""
        if not self.enabled:
            return
        t = self.now()
        for name in sorted(self._counters):
            self.emit(
                {"type": "counter", "name": name, "t": t, "value": self._counters[name], "attrs": {}}
            )
        self._counters.clear()
        for name in sorted(self._hists):
            h = self._hists[name]
            self.emit(
                {
                    "type": "histogram",
                    "name": name,
                    "t": t,
                    "value": h.count,
                    "attrs": h.summary(),
                }
            )
        self._hists.clear()

    # -- cross-process merge -------------------------------------------------------
    def serialize_events(self, events: list[dict]) -> str:
        """JSON-encode a worker-side event buffer for transport."""
        return json.dumps(events, separators=(",", ":"))

    def absorb(self, payload: str | list[dict] | None, t_offset: float = 0.0) -> int:
        """Re-emit events serialized by a worker process into this session's
        sinks (keeping the worker's timestamps).  Returns the event count.

        ``t_offset`` is added to each record's timestamp — the master's
        per-worker clock-skew correction (estimated from PING/PONG round
        trips), so remote spans land on the master's time axis.
        """
        if not payload:
            return 0
        events = json.loads(payload) if isinstance(payload, str) else payload
        for record in events:
            record = dict(record)
            if t_offset and "t" in record:
                record["t"] = record["t"] + t_offset
            self.emit(record)
        return len(events)

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Flush counters and close every sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.flush_counters()
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Shared disabled instance: pass-through default for every ``telemetry=``
#: parameter in the system, so call sites never need a None check.
NULL = Telemetry(enabled=False)
