"""Telemetry sinks: where emitted records go.

A sink is anything with ``emit(record: dict)``; ``close()`` is optional.
Three are provided: an in-memory buffer (tests, report generation in the
same process), an append-only JSONL file (the durable event log the
``repro telemetry`` subcommand replays), and a human stream summary.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

__all__ = ["InMemorySink", "JsonlSink", "StreamSink"]


class InMemorySink:
    """Buffers every record in a list (``sink.events``)."""

    def __init__(self):
        self.events: list[dict] = []

    def emit(self, record: dict) -> None:
        self.events.append(record)

    def clear(self) -> None:
        self.events.clear()


class JsonlSink:
    """Appends one compact JSON object per record to a file.

    The file handle is opened lazily on first emit (so constructing a
    telemetry config never litters the filesystem) and flushed per record
    — an interrupted render keeps every event that was reported before
    the crash, which is exactly when you want the log most.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None

    def emit(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, separators=(",", ":"), sort_keys=True))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class StreamSink:
    """Human-oriented one-line-per-record rendering (progress displays)."""

    def __init__(self, stream=None, types: tuple[str, ...] = ("event", "span")):
        self.stream = stream if stream is not None else sys.stderr
        self.types = types

    def emit(self, record: dict) -> None:
        if record.get("type") not in self.types:
            return
        attrs = record.get("attrs") or {}
        parts = [f"{k}={attrs[k]}" for k in sorted(attrs)]
        dur = f" dur={record['dur']:.4f}s" if "dur" in record else ""
        print(
            f"[telemetry] {record.get('type')}:{record.get('name')}"
            f" t={record.get('t', 0.0):.4f}{dur} {' '.join(parts)}",
            file=self.stream,
        )
