"""Mergeable log-bucketed streaming histograms (DDSketch-style).

The reset-on-flush summaries the spine used to emit (sort the list, pick
two order statistics) cannot be combined across processes: a worker's
``p95`` and the master's ``p95`` do not add.  :class:`LogHistogram` fixes
that with the standard log-bucketed sketch: values land in buckets whose
edges grow geometrically (``gamma = (1 + rel_err) / (1 - rel_err)``), so
any quantile read back from the buckets is within ``rel_err`` *relative*
error of the true order statistic, and two sketches merge by adding
bucket counts — an associative, commutative fold, which is what lets
worker-side digests ride a RESULT frame and fold into the master's plane.

Small samples stay exact: every observation is also kept verbatim until
``exact_cap`` is reached, so a four-value histogram reports the same
``p50`` the old sorted-list summary did.  The exactness degrades the same
way under ``merge`` as under ingesting the concatenation (both drop to
buckets as soon as the combined count exceeds the cap), preserving the
``merge(a, b) == ingest(a ++ b)`` property the tests pin.
"""

from __future__ import annotations

import math

__all__ = ["LogHistogram", "DEFAULT_REL_ERR"]

#: Default bounded relative error for quantile estimates.
DEFAULT_REL_ERR = 0.01

#: Observations kept verbatim before degrading to bucket-only quantiles.
_EXACT_CAP = 256


class LogHistogram:
    """A mergeable streaming histogram with bounded relative error.

    Non-positive observations are counted in a dedicated zero bucket
    (latencies are non-negative; a measured 0.0 is a real observation,
    not an error).  ``count``/``sum``/``min``/``max`` are tracked exactly
    regardless of bucketing.
    """

    __slots__ = ("rel_err", "gamma", "_log_gamma", "count", "total", "vmin", "vmax",
                 "zeros", "buckets", "_samples")

    def __init__(self, rel_err: float = DEFAULT_REL_ERR):
        if not 0.0 < rel_err < 1.0:
            raise ValueError(f"rel_err must be in (0, 1), got {rel_err}")
        self.rel_err = float(rel_err)
        self.gamma = (1.0 + rel_err) / (1.0 - rel_err)
        self._log_gamma = math.log(self.gamma)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.zeros = 0
        self.buckets: dict[int, int] = {}
        self._samples: list[float] | None = []  # None once degraded

    # -- ingestion -------------------------------------------------------------
    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        if value <= 0.0:
            self.zeros += 1
        else:
            key = math.ceil(math.log(value) / self._log_gamma)
            self.buckets[key] = self.buckets.get(key, 0) + 1
        if self._samples is not None:
            if self.count <= _EXACT_CAP:
                self._samples.append(value)
            else:
                self._samples = None

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into ``self`` (associative; returns ``self``)."""
        if not isinstance(other, LogHistogram):
            raise TypeError(f"cannot merge LogHistogram with {type(other).__name__}")
        if abs(other.gamma - self.gamma) > 1e-12:
            raise ValueError("cannot merge histograms with different rel_err")
        self.count += other.count
        self.total += other.total
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)
        self.zeros += other.zeros
        for key, n in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + n
        if self._samples is not None and other._samples is not None and self.count <= _EXACT_CAP:
            self._samples = self._samples + other._samples
        else:
            self._samples = None
        return self

    # -- reading ---------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], within ``rel_err`` relative
        error of the true rank-``floor(q * count)`` order statistic (exact
        while the sample buffer survives)."""
        if self.count == 0:
            return 0.0
        rank = min(self.count - 1, int(q * self.count))
        if self._samples is not None:
            return sorted(self._samples)[rank]
        if rank < self.zeros:
            return min(0.0, self.vmin)
        seen = self.zeros
        for key in sorted(self.buckets):
            seen += self.buckets[key]
            if seen > rank:
                # Bucket key k covers (gamma^(k-1), gamma^k]; the midpoint
                # 2*gamma^k/(gamma+1) is within rel_err of anything inside.
                est = 2.0 * self.gamma ** key / (self.gamma + 1.0)
                return min(self.vmax, max(self.vmin, est))
        return self.vmax

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """Flush-record attrs: the legacy summary keys plus p99 and the
        mergeable digest (so a worker's flushed histogram record can fold
        into a downstream :class:`repro.obs.metrics.MetricsPlane`)."""
        return {
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "rel_err": self.rel_err,
            "digest": self.to_dict(),
        }

    # -- wire form -------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe digest; bucket keys become strings for the wire."""
        d = {
            "rel_err": self.rel_err,
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "zeros": self.zeros,
            "buckets": {str(k): n for k, n in self.buckets.items()},
        }
        if self._samples is not None:
            d["samples"] = list(self._samples)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "LogHistogram":
        h = cls(rel_err=float(d.get("rel_err", DEFAULT_REL_ERR)))
        h.count = int(d.get("count", 0))
        h.total = float(d.get("sum", 0.0))
        h.vmin = float(d["min"]) if h.count else math.inf
        h.vmax = float(d["max"]) if h.count else -math.inf
        h.zeros = int(d.get("zeros", 0))
        h.buckets = {int(k): int(n) for k, n in (d.get("buckets") or {}).items()}
        samples = d.get("samples")
        h._samples = [float(v) for v in samples] if samples is not None else None
        return h
