"""The versioned telemetry event schema.

The acceptance contract of the telemetry spine is that a *real* farm run
and a *simulated* strategy replay of the same animation emit logs of the
same shape: every named span/event carries exactly the attribute keys
pinned here, so the report renderer (and any downstream tooling) can
consume either log without knowing which system produced it.

``validate_events`` is strict on purpose — an attr added or dropped at one
emission site without updating this table is a schema drift, and the CI
smoke job fails on it rather than letting the logs silently diverge.
"""

from __future__ import annotations

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_SCHEMA",
    "CORE_EVENTS",
    "SchemaError",
    "validate_events",
    "schema_of_events",
]

#: Bump when any EVENT_SCHEMA entry changes shape.
#: v2: ``recovery`` gained ``worker`` — the simulator always knew which
#: machine it declared dead but didn't say, and the farm said nothing; the
#: two systems now describe a worker-loss recovery with the same fields
#: (``worker`` is ``"?"`` where the transport can't attribute the loss).
#: v3: the ``net.*`` family — the TCP transport narrates its connection
#: lifecycle (listen/connect/join), per-message wire accounting
#: (assign/result with byte counts), heartbeat round-trips, and losses,
#: so a networked run's log is as auditable as a simulated one.
#: v4: the ``obs`` trace model — a ``run`` root span owned by whoever
#: drives the run, one ``obs.flight`` span per dispatched assignment
#: (master-side, dispatch -> accept/loss) that worker-side ``task`` spans
#: parent under, and ``obs.clock`` per-worker skew estimates so remote
#: timestamps can be folded onto the master's time axis.  With v4 a
#: merged master+worker event stream forms one connected trace: every
#: span's parent resolves (:func:`repro.obs.find_orphan_spans`).
#: v5: the ``job.*`` family — the persistent render service narrates its
#: job lifecycle (submit, state transitions through the
#: queued/running/done/dead-letter/rejected machine, per-attempt
#: outcomes), mirroring on the service level what ``task.attempt`` /
#: ``recovery`` record on the task level.
#: v6: the ``dfb.*`` family — the distributed framebuffer narrates tile
#: arrival (``dfb.tile`` per streamed wire tile, with byte counts so
#: time-to-first-tile and bytes-per-message are first-class metrics) and
#: partial-retry salvage (``dfb.salvage`` when a lost worker's already
#: composited frames are kept and only the remainder is re-dispatched).
#: v7: the ``shard.*`` family — object-space sharded runs narrate, per
#: (shard, frame), how many rays the owner traced for itself versus had
#: forwarded to it (``shard.rays``) and the ray-exchange wire traffic
#: (``shard.xfer`` with rays routed + request/reply payload bytes), so
#: ``repro top`` and the bench can show who owns what and what the ray
#: trade costs on the wire.
#: v8: the observability plane — ``net.worker.lost`` gains ``blackbox``
#: (path of the victim's flight-recorder dump, ``""`` when none landed),
#: ``obs.blackbox`` records a dump arriving at the master (written locally
#: or shipped over ``MSG_BLACKBOX`` by a reconnecting worker), and the
#: ``health.*`` pair narrates the online EWMA straggler detector
#: (``health.straggler`` when a worker's latency EWMA exceeds the
#: farm-wide EWMA by the detection ratio, ``health.recovered`` when it
#: drops back under the hysteresis ratio).
SCHEMA_VERSION = 8

#: Ray-kind attr keys shared by ``frame`` and ``run.end``.
RAY_KEYS = ("rays_camera", "rays_reflected", "rays_refracted", "rays_shadow", "rays_total")

#: name -> exact attribute key set.  Every span/event with one of these
#: names must carry exactly these attrs (values are unconstrained).
EVENT_SCHEMA: dict[str, frozenset[str]] = {
    # -- emitted by every engine (real farm, pipeline, simulators) ---------
    "run.start": frozenset(
        {"engine", "workload", "n_frames", "width", "height", "n_workers", "mode"}
    ),
    "task": frozenset(
        {"worker", "mode", "frame0", "frame1", "region", "rays", "n_computed", "attempt"}
    ),
    "frame": frozenset({"frame", "n_computed", "n_copied", *RAY_KEYS}),
    "worker": frozenset({"worker", "busy", "n_tasks", "utilization"}),
    "run.end": frozenset(
        {"wall_time", "computed_pixels", "copied_pixels", "n_tasks", "n_workers", *RAY_KEYS}
    ),
    # -- real-renderer detail events ---------------------------------------
    "sequence": frozenset({"first_frame", "last_frame"}),
    "coherence.frame": frozenset(
        {"frame", "n_changed_voxels", "map_entries", "n_intersection_tests"}
    ),
    "shadow.frame": frozenset({"frame", "n_shadow_reusable", "shadow_rays_saved"}),
    # -- supervision / robustness ------------------------------------------
    "task.attempt": frozenset({"task", "attempt", "outcome", "duration", "started"}),
    "recovery": frozenset({"kind", "task", "attempt", "duration", "worker"}),
    "checkpoint": frozenset({"task", "action"}),
    "profile": frozenset({"path"}),
    # -- network transport (repro.net) -------------------------------------
    "net.listen": frozenset({"host", "port"}),
    "net.connect": frozenset({"worker", "host", "port", "attempt"}),
    "net.worker.join": frozenset({"worker", "host", "cores", "score"}),
    "net.assign": frozenset({"worker", "seq", "frame0", "frame1", "region", "nbytes"}),
    "net.result": frozenset({"worker", "seq", "nbytes", "compressed", "duration"}),
    "net.pong": frozenset({"worker", "rtt"}),
    "net.worker.lost": frozenset({"worker", "reason", "seq", "blackbox"}),
    # -- distributed framebuffer (repro.dfb) --------------------------------
    "dfb.tile": frozenset({"worker", "seq", "frame", "x0", "y0", "x1", "y1", "nbytes"}),
    "dfb.salvage": frozenset({"worker", "seq", "frame0", "frame_done", "frame1"}),
    # -- object-space sharding (repro.shard) --------------------------------
    "shard.rays": frozenset({"worker", "shard", "frame", "n_local", "n_forwarded"}),
    "shard.xfer": frozenset({"worker", "shard", "frame", "n_rays", "nbytes"}),
    # -- distributed tracing (repro.obs) -----------------------------------
    "run": frozenset({"engine"}),
    "obs.flight": frozenset({"worker", "seq", "attempt", "outcome"}),
    "obs.clock": frozenset({"worker", "offset", "rtt"}),
    # -- observability plane (repro.obs.flight / repro.obs.metrics) ---------
    "obs.blackbox": frozenset({"role", "pid", "path", "records"}),
    "health.straggler": frozenset({"worker", "ewma", "farm", "ratio"}),
    "health.recovered": frozenset({"worker", "ewma", "farm", "ratio"}),
    # -- persistent render service (repro.service) --------------------------
    "job.submit": frozenset({"job", "workload", "priority", "owner", "n_frames"}),
    "job.state": frozenset({"job", "state", "detail"}),
    "job.attempt": frozenset({"job", "attempt", "outcome", "duration", "error"}),
}

#: The run-shape every engine must cover for two logs to be comparable.
CORE_EVENTS = ("run.start", "task", "frame", "worker", "run.end")


class SchemaError(ValueError):
    """An event log violates the pinned telemetry schema."""


def _problems(events) -> list[str]:
    problems: list[str] = []
    for i, rec in enumerate(events):
        if not isinstance(rec, dict):
            problems.append(f"record {i}: not a dict")
            continue
        rtype = rec.get("type")
        name = rec.get("name")
        if rtype not in ("span", "event", "counter", "gauge", "histogram"):
            problems.append(f"record {i}: unknown type {rtype!r}")
            continue
        if not isinstance(name, str) or not name:
            problems.append(f"record {i}: missing name")
            continue
        if "t" not in rec:
            problems.append(f"record {i} ({name}): missing timestamp 't'")
        if rtype == "span" and "dur" not in rec:
            problems.append(f"record {i} ({name}): span without 'dur'")
        if rtype in ("counter", "gauge", "histogram"):
            if "value" not in rec:
                problems.append(f"record {i} ({name}): {rtype} without 'value'")
            continue  # metric names are free-form
        expected = EVENT_SCHEMA.get(name)
        if expected is None:
            problems.append(f"record {i}: unregistered event name {name!r}")
            continue
        got = frozenset((rec.get("attrs") or {}).keys())
        if got != expected:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"extra {extra}")
            problems.append(f"record {i} ({name}): attr drift — {', '.join(detail)}")
    return problems


def validate_events(events) -> None:
    """Raise :class:`SchemaError` if any record drifts from the schema."""
    problems = _problems(events)
    if problems:
        shown = "\n  ".join(problems[:20])
        more = f"\n  ... and {len(problems) - 20} more" if len(problems) > 20 else ""
        raise SchemaError(f"telemetry schema violations:\n  {shown}{more}")


def schema_of_events(events) -> dict[str, tuple[str, ...]]:
    """Observed name -> sorted attr keys for span/event records.

    Two logs have "the same schema" when these maps agree on every shared
    name and both cover :data:`CORE_EVENTS` — the property the farm/simulator
    equivalence test asserts.
    """
    seen: dict[str, tuple[str, ...]] = {}
    for rec in events:
        if rec.get("type") in ("span", "event"):
            name = rec.get("name", "")
            keys = tuple(sorted((rec.get("attrs") or {}).keys()))
            prev = seen.setdefault(name, keys)
            if prev != keys:
                raise SchemaError(
                    f"event {name!r} emitted with inconsistent attrs: {prev} vs {keys}"
                )
    return seen
