"""``BENCH_*.json`` emission: the machine-readable benchmark trajectory.

Every benchmark (and the CI smoke job) reports through one payload shape,
so the numbers of successive PRs stay comparable:

``{"bench": ..., "schema_version": ..., "unit": "...", "metrics": {...}}``

``metrics`` must contain at least :data:`REQUIRED_BENCH_METRICS`;
``validate_bench`` fails loudly on drift, which is what the CI smoke job
gates on.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .schema import SCHEMA_VERSION

__all__ = [
    "REQUIRED_BENCH_METRICS",
    "bench_payload",
    "validate_bench",
    "write_bench_json",
    "metrics_from_events",
]

#: Every BENCH_*.json must report at least these metric keys.
REQUIRED_BENCH_METRICS = (
    "rays_total",
    "rays_camera",
    "rays_reflected",
    "rays_refracted",
    "rays_shadow",
    "computed_pixels",
    "copied_pixels",
    "wall_time",
    "n_frames",
    "n_workers",
)


def bench_payload(name: str, metrics: dict, extra: dict | None = None) -> dict:
    """Assemble (and validate) one benchmark result payload."""
    payload = {
        "bench": name,
        "schema_version": SCHEMA_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "metrics": dict(metrics),
    }
    if extra:
        payload["extra"] = dict(extra)
    validate_bench(payload)
    return payload


def validate_bench(payload: dict) -> None:
    """Raise ``ValueError`` when a payload drifts from the bench contract."""
    for key in ("bench", "schema_version", "metrics"):
        if key not in payload:
            raise ValueError(f"bench payload missing {key!r}")
    if payload["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"bench schema_version {payload['schema_version']!r} != {SCHEMA_VERSION} "
            "(regenerate the benchmark against the current telemetry schema)"
        )
    metrics = payload["metrics"]
    if not isinstance(metrics, dict):
        raise ValueError("bench metrics must be a dict")
    missing = [k for k in REQUIRED_BENCH_METRICS if k not in metrics]
    if missing:
        raise ValueError(f"bench metrics missing required keys: {missing}")
    bad = [k for k, v in metrics.items() if not isinstance(v, (int, float))]
    if bad:
        raise ValueError(f"bench metrics must be numeric; offending keys: {bad}")


def write_bench_json(
    results_dir: str | Path, name: str, metrics: dict, extra: dict | None = None
) -> Path:
    """Write ``BENCH_<name>.json`` into ``results_dir`` and return its path."""
    payload = bench_payload(name, metrics, extra)
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def metrics_from_events(events: list[dict]) -> dict:
    """Distill a telemetry event log into the required bench metrics."""
    from .report import report_from_events

    rep = report_from_events(events)
    return {
        "rays_total": rep.rays.get("total", 0),
        "rays_camera": rep.rays.get("camera", 0),
        "rays_reflected": rep.rays.get("reflected", 0),
        "rays_refracted": rep.rays.get("refracted", 0),
        "rays_shadow": rep.rays.get("shadow", 0),
        "computed_pixels": rep.computed_pixels,
        "copied_pixels": rep.copied_pixels,
        "wall_time": rep.wall_time,
        "n_frames": rep.n_frames,
        "n_workers": rep.n_workers,
    }
