"""repro.telemetry — the measurement spine of the reproduction.

The paper's whole argument is quantitative (Table 1's ray counts, recompute
fractions and per-machine timings); this package is the instrumentation
contract every layer reports through:

* :mod:`~repro.telemetry.core` — hierarchical spans, counters, gauges, and
  point events over a pluggable clock (wall time for real runs, virtual
  time for the cluster simulator), fanned out to pluggable sinks;
* :mod:`~repro.telemetry.sinks` — in-memory buffer, JSONL event log, and
  human-readable stream summary;
* :mod:`~repro.telemetry.schema` — the versioned event schema both the
  real farm and the simulators must emit, plus a validator;
* :mod:`~repro.telemetry.report` — renders an event log into a
  Table-1-style report (rays by kind, computed vs copied pixels,
  per-worker utilization);
* :mod:`~repro.telemetry.bench_io` — the ``BENCH_*.json`` emitter the CI
  smoke job and the benchmark harness write results through;
* :mod:`~repro.telemetry.profiling` — opt-in cProfile hooks with merged
  per-worker output.

Everything is stdlib-only; a disabled :class:`Telemetry` (or the shared
:data:`NULL` instance) costs one attribute check per instrumentation site.
"""

from .bench_io import (
    REQUIRED_BENCH_METRICS,
    bench_payload,
    metrics_from_events,
    validate_bench,
    write_bench_json,
)
from .core import NULL, Telemetry, VirtualClock, live_sessions, set_flight_tap
from .hist import DEFAULT_REL_ERR, LogHistogram
from .profiling import merge_profiles, profile_into, profile_summary
from .report import TelemetryReport, format_report, read_events, report_from_events
from .schema import (
    CORE_EVENTS,
    EVENT_SCHEMA,
    SCHEMA_VERSION,
    SchemaError,
    schema_of_events,
    validate_events,
)
from .sinks import InMemorySink, JsonlSink, StreamSink

__all__ = [
    "CORE_EVENTS",
    "DEFAULT_REL_ERR",
    "EVENT_SCHEMA",
    "InMemorySink",
    "JsonlSink",
    "LogHistogram",
    "NULL",
    "REQUIRED_BENCH_METRICS",
    "SCHEMA_VERSION",
    "SchemaError",
    "StreamSink",
    "Telemetry",
    "TelemetryReport",
    "VirtualClock",
    "bench_payload",
    "format_report",
    "live_sessions",
    "merge_profiles",
    "metrics_from_events",
    "profile_into",
    "profile_summary",
    "read_events",
    "report_from_events",
    "schema_of_events",
    "set_flight_tap",
    "validate_bench",
    "validate_events",
    "write_bench_json",
]
