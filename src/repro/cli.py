"""Command-line interface.

::

    python -m repro render scene.sdl -o out.tga
    python -m repro animate newton --frames 12 --out frames/
    python -m repro validate brick --frames 4
    python -m repro table1 --width 96 --height 72 --frames 10
    python -m repro farm newton --workers 4 --mode frame --telemetry run/
    python -m repro farm newton --transport tcp --status-port 8123 --trace-out run.trace.json
    python -m repro top 127.0.0.1:8123
    python -m repro simulate newton --strategy frame-division-fc
    python -m repro telemetry run/
    python -m repro serve --state-dir svc/ --port 7601
    python -m repro submit --connect 127.0.0.1:7601 newton --frames 8 --wait
    python -m repro jobs --connect 127.0.0.1:7601

The subcommands mirror the workflow of the paper's system: render scene
descriptions, render animations with frame coherence, check the algorithm's
exactness, regenerate the headline table, run the real master/worker farm or
a Table-1 simulator (both through :func:`repro.api.render`), and render a
Table-1-style report from a run's telemetry log alone.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

__all__ = ["main", "build_parser"]

_WORKLOADS = ("newton", "brick", "spheres", "orbit")


def _make_animation(name: str, frames: int, width: int, height: int):
    if name == "newton":
        from .scenes import newton_animation

        return newton_animation(n_frames=frames, width=width, height=height)
    if name == "orbit":
        from .scenes import orbit_animation

        return orbit_animation(n_frames=frames, width=width, height=height)
    if name == "brick":
        from .scenes import brick_room_animation

        return brick_room_animation(n_frames=frames, width=width, height=height)
    if name == "spheres":
        from .scenes import random_spheres_animation

        return random_spheres_animation(n_frames=frames, width=width, height=height)
    raise ValueError(f"unknown workload {name!r}")


def _add_size_args(p: argparse.ArgumentParser, frames: int = 8) -> None:
    p.add_argument("--frames", type=int, default=frames)
    p.add_argument("--width", type=int, default=160)
    p.add_argument("--height", type=int, default=120)
    p.add_argument("--grid", type=int, default=24, help="voxel grid resolution")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Frame-coherent ray tracing on a (simulated) network of workstations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_render = sub.add_parser("render", help="render a scene description file")
    p_render.add_argument("scene", type=Path)
    p_render.add_argument("-o", "--output", type=Path, default=Path("render.tga"))
    p_render.add_argument("--supersample", type=int, default=1, metavar="N", help="N x N samples per pixel")

    p_anim = sub.add_parser("animate", help="render a built-in animation with frame coherence")
    p_anim.add_argument("workload", choices=_WORKLOADS)
    _add_size_args(p_anim)
    p_anim.add_argument("--out", type=Path, default=Path("frames"))
    p_anim.add_argument("--shadow-coherence", action="store_true")
    p_anim.add_argument(
        "--telemetry", type=Path, default=None, metavar="DIR",
        help="write structured telemetry (events.jsonl) to DIR",
    )

    p_val = sub.add_parser("validate", help="check exactness/conservativeness of the algorithm")
    p_val.add_argument("workload", choices=_WORKLOADS)
    _add_size_args(p_val, frames=4)

    p_t1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    _add_size_args(p_t1, frames=45)

    p_farm = sub.add_parser("farm", help="real parallel rendering on this machine")
    p_farm.add_argument("workload", choices=("newton", "brick"))
    _add_size_args(p_farm)
    p_farm.add_argument("--workers", type=int, default=4)
    p_farm.add_argument("--mode", choices=("frame", "sequence", "hybrid"), default="frame")
    p_farm.add_argument(
        "--executor", choices=("process", "thread", "serial"), default="process"
    )
    p_farm.add_argument(
        "--schedule", choices=("static", "demand", "adaptive"), default=None,
        help="task scheduling: static upfront list, demand-driven block queue, "
             "or adaptive sequence chains with tail-stealing "
             "(default: static for --transport process, adaptive for tcp)",
    )
    p_farm.add_argument(
        "--transport", choices=("process", "tcp"), default="process",
        help="process: supervised pool on this host; tcp: loopback network farm "
             "(master on 127.0.0.1 + worker daemons over real sockets)",
    )
    p_farm.add_argument(
        "--segment-frames", type=int, default=None, metavar="N",
        help="frames per dispatched segment for --schedule adaptive "
             "(default: executor-dependent)",
    )
    p_farm.add_argument(
        "--tile-px", type=int, default=None, metavar="PX",
        help="distributed-framebuffer tile edge for --transport tcp "
             "(default: 32; workers stream finished tiles as they render)",
    )
    p_farm.add_argument(
        "--no-tiles", action="store_true",
        help="disable tile streaming: workers ship whole sub-areas in one "
             "RESULT frame (the pre-tile wire shape)",
    )
    p_farm.add_argument(
        "--max-attempts", type=int, default=3,
        help="pool attempts per task before degrading to in-process serial execution",
    )
    p_farm.add_argument(
        "--task-timeout", type=float, default=None, metavar="SEC",
        help="fixed per-task deadline (default: adapt to 3x the slowest observed task)",
    )
    p_farm.add_argument(
        "--run-dir", type=Path, default=None, metavar="DIR",
        help="spool finished tasks to DIR so an interrupted render can be resumed",
    )
    p_farm.add_argument(
        "--resume", type=Path, default=None, metavar="DIR",
        help="resume from a previous --run-dir, re-executing only unfinished tasks",
    )
    p_farm.add_argument(
        "--telemetry", type=Path, default=None, metavar="DIR",
        help="write structured telemetry (events.jsonl) to DIR "
             "(defaults to --run-dir when one is given)",
    )
    p_farm.add_argument(
        "--profile", type=Path, default=None, metavar="DIR",
        help="cProfile each worker task into DIR/*.prof (merge with "
             "repro.telemetry.merge_profiles)",
    )
    p_farm.add_argument(
        "--status-port", type=int, default=None, metavar="PORT",
        help="serve a live JSON status snapshot on 127.0.0.1:PORT while the "
             "run is in flight (watch it with: repro top 127.0.0.1:PORT)",
    )
    p_farm.add_argument(
        "--trace-out", type=Path, default=None, metavar="JSON",
        help="write a Chrome trace-event file (load in Perfetto / "
             "chrome://tracing) from the run's telemetry",
    )

    p_sim = sub.add_parser(
        "simulate", help="run one Table-1 strategy on the discrete-event NOW simulator"
    )
    p_sim.add_argument("workload", choices=_WORKLOADS)
    _add_size_args(p_sim)
    from .api import SIM_STRATEGIES

    p_sim.add_argument(
        "--strategy", choices=SIM_STRATEGIES, default="sequence-division-fc"
    )
    p_sim.add_argument(
        "--oracle", type=Path, default=None, metavar="NPZ",
        help="reuse a saved cost oracle instead of measuring one",
    )
    p_sim.add_argument(
        "--telemetry", type=Path, default=None, metavar="DIR",
        help="write structured telemetry (events.jsonl) to DIR",
    )
    p_sim.add_argument(
        "--trace-out", type=Path, default=None, metavar="JSON",
        help="write a Chrome trace-event file (load in Perfetto / "
             "chrome://tracing) from the run's telemetry",
    )

    p_top = sub.add_parser(
        "top", help="live terminal view of a farm started with --status-port"
    )
    p_top.add_argument("address", metavar="HOST:PORT", help="the farm's status endpoint")
    p_top.add_argument(
        "--interval", type=float, default=1.0, metavar="SEC",
        help="refresh period (default 1s)",
    )
    p_top.add_argument(
        "--once", action="store_true", help="print one snapshot and exit"
    )
    p_top.add_argument(
        "--jobs", action="store_true",
        help="watch a render service's job table (/jobs) instead of the farm view",
    )

    p_serve = sub.add_parser(
        "serve", help="run the persistent multi-job render service daemon"
    )
    p_serve.add_argument(
        "--state-dir", type=Path, required=True, metavar="DIR",
        help="home of the job ledger, per-job checkpoint spools, and frames",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="control socket port (default: pick a free one; see service.json)",
    )
    p_serve.add_argument(
        "--resume", action="store_true",
        help="replay the ledger in --state-dir and continue every unfinished job",
    )
    p_serve.add_argument(
        "--queue-capacity", type=int, default=16,
        help="admission bound: beyond this, the lowest-priority job is shed",
    )
    p_serve.add_argument("--workers", type=int, default=2, help="farm workers per job")
    p_serve.add_argument(
        "--executor", choices=("process", "thread", "serial"), default="process"
    )
    p_serve.add_argument(
        "--status-port", type=int, default=None, metavar="PORT",
        help="serve live JSON status (/status, /jobs) on 127.0.0.1:PORT",
    )
    p_serve.add_argument("--verbose", action="store_true", help="log to stdout")

    p_submit = sub.add_parser("submit", help="submit a render job to a running service")
    p_submit.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the service's control socket (printed by repro serve)",
    )
    p_submit.add_argument("workload", choices=_WORKLOADS)
    _add_size_args(p_submit)
    p_submit.add_argument("--priority", type=int, default=0, help="higher = more urgent")
    p_submit.add_argument("--owner", default="", help="who to bill the job to")
    p_submit.add_argument(
        "--max-attempts", type=int, default=3,
        help="service attempts before the job is dead-lettered",
    )
    p_submit.add_argument(
        "--wait", action="store_true", help="block until the job reaches a terminal state"
    )
    p_submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="SEC",
        help="deadline for --wait (default 600s)",
    )

    p_jobs = sub.add_parser("jobs", help="list, inspect, or cancel service jobs")
    p_jobs.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the service's control socket",
    )
    p_jobs.add_argument("--job", default=None, metavar="ID", help="show one job")
    p_jobs.add_argument(
        "--cancel", default=None, metavar="ID", help="cancel a queued job"
    )

    p_tel = sub.add_parser(
        "telemetry", help="render a Table-1-style report from a run's events.jsonl"
    )
    p_tel.add_argument(
        "run_dir", type=Path,
        help="a run directory containing events.jsonl, or the .jsonl file itself",
    )
    p_tel.add_argument(
        "--per-frame", action="store_true", help="include the per-frame table"
    )

    p_oracle = sub.add_parser(
        "oracle", help="measure per-pixel costs and print coherence analytics"
    )
    p_oracle.add_argument("workload", choices=_WORKLOADS)
    _add_size_args(p_oracle)
    p_oracle.add_argument("--save", type=Path, help="also save the oracle as .npz")

    p_shard = sub.add_parser(
        "shard",
        help="object-space sharded render: workers own scene shards and trade rays",
    )
    p_shard.add_argument("workload", choices=_WORKLOADS)
    _add_size_args(p_shard, frames=4)
    p_shard.add_argument("--shards", type=int, default=4, help="shard count K")
    p_shard.add_argument("--workers", type=int, default=2, help="worker daemons to spawn")
    p_shard.add_argument(
        "--supersample", type=int, default=1, metavar="N", help="N x N samples per pixel"
    )
    p_shard.add_argument(
        "--out", type=Path, default=None, metavar="DIR", help="write frames as .tga to DIR"
    )
    p_shard.add_argument(
        "--die-after-rays", type=int, default=None, metavar="N",
        help="fault drill: worker 0 crashes before serving shard request N+1",
    )
    p_shard.add_argument(
        "--telemetry", type=Path, default=None, metavar="DIR",
        help="write structured telemetry (events.jsonl) to DIR",
    )
    p_shard.add_argument(
        "--status-port", type=int, default=None, metavar="PORT",
        help="serve a live JSON status snapshot on 127.0.0.1:PORT "
             "(watch with: repro top 127.0.0.1:PORT)",
    )

    p_worker = sub.add_parser(
        "worker", help="join a repro.net farm as a rendering worker daemon"
    )
    p_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="address of the repro.net master",
    )
    p_worker.add_argument(
        "--score", type=float, default=None,
        help="calibration score override (default: measure a quick benchmark)",
    )
    p_worker.add_argument(
        "--max-retries", type=int, default=20,
        help="connection attempts (exponential backoff) before giving up",
    )
    p_worker.add_argument(
        "--die-after", type=int, default=None, metavar="N",
        help="fault drill: crash hard on receiving assignment N+1",
    )
    p_worker.add_argument(
        "--die-after-rays", type=int, default=None, metavar="N",
        help="fault drill: crash hard before serving shard request N+1",
    )
    p_worker.add_argument(
        "--die-after-frames", type=int, default=None, metavar="N",
        help="fault drill: crash hard (mid-task) on rendering frame N+1",
    )
    p_worker.add_argument(
        "--blackbox-dir", type=Path, default=None, metavar="DIR",
        help="flight-recorder dump directory (black boxes land here on a crash)",
    )
    p_worker.add_argument("--verbose", action="store_true", help="log to stdout")
    return parser


def _cmd_render(args) -> int:
    from .imageio import write_targa
    from .render import RayTracer
    from .scene import load_scene

    scene = load_scene(args.scene)
    print(f"parsed {len(scene.objects)} objects, {len(scene.lights)} lights")
    t0 = time.perf_counter()
    fb, res = RayTracer(scene).render(samples_per_axis=args.supersample)
    print(f"rendered in {time.perf_counter() - t0:.1f}s: {res.stats}")
    write_targa(args.output, fb.to_uint8())
    print(f"wrote {args.output}")
    return 0


def _cmd_animate(args) -> int:
    from .api import render
    from .imageio import write_targa

    args.out.mkdir(parents=True, exist_ok=True)

    def on_frame(ev):
        write_targa(args.out / f"{args.workload}{ev.frame:04d}.tga", ev.image)
        print(
            f"frame {ev.frame:4d}: {ev.report.n_computed:6d} px computed, "
            f"{ev.report.stats.total:8d} rays"
        )

    result = render(
        workload=args.workload,
        engine="animation",
        n_frames=args.frames,
        width=args.width,
        height=args.height,
        grid_resolution=args.grid,
        shadow_coherence=args.shadow_coherence,
        on_frame=on_frame,
        telemetry=args.telemetry is not None,
        events_path=args.telemetry,
    )
    print(
        f"\n{result.n_frames} frames in {result.wall_time:.1f}s, "
        f"{result.stats.total:,} rays, "
        f"{result.total_copied_pixels():,} pixel-renders avoided"
    )
    if args.shadow_coherence:
        print(f"shadow rays saved by the extension: {result.shadow_rays_saved:,}")
    if result.events_path is not None:
        print(f"telemetry in {result.events_path}")
    print(f"frames in {args.out}/")
    return 0


def _cmd_validate(args) -> int:
    from .coherence import validate_sequence

    anim = _make_animation(args.workload, args.frames, args.width, args.height)
    report = validate_sequence(anim, grid_resolution=args.grid)
    for fv in report.frames:
        print(
            f"frame {fv.frame:3d}: exact={fv.exact} actual_changed={fv.n_actual_changed:6d} "
            f"predicted={fv.n_predicted:6d} missed={fv.missed_pixels.size}"
        )
    ok = report.all_exact and report.all_conservative
    print(
        f"\nexact: {report.all_exact}  conservative: {report.all_conservative}  "
        f"mean overprediction: {report.mean_overprediction():.2f}x"
    )
    return 0 if ok else 1


def _cmd_table1(args) -> int:
    from .bench import Table1Settings, format_table1, run_table1
    from .parallel import build_oracle
    from .scenes import newton_animation

    print("measuring per-pixel costs (renders the animation twice)...")
    anim = newton_animation(n_frames=args.frames, width=args.width, height=args.height)
    oracle = build_oracle(anim, grid_resolution=args.grid, verbose=False)
    print(format_table1(run_table1(oracle, Table1Settings())))
    return 0


def _cmd_farm(args) -> int:
    from .api import render

    # The network master serves a scheduling policy, so tcp cannot run the
    # static upfront task list; default each transport to its natural mode.
    schedule = args.schedule
    if schedule is None:
        schedule = "adaptive" if args.transport == "tcp" else "static"
    if args.status_port is not None:
        print(
            f"live status on http://127.0.0.1:{args.status_port}/status "
            f"(watch with: repro top 127.0.0.1:{args.status_port})"
        )
        print(
            f"prometheus metrics on http://127.0.0.1:{args.status_port}/metrics"
        )
        if args.transport == "tcp" and not args.no_tiles:
            print(
                f"progressive preview on http://127.0.0.1:{args.status_port}"
                "/preview?fmt=png (also fmt=json, fmt=npz)"
            )
    result = render(
        workload=args.workload,
        engine="farm",
        n_frames=args.frames,
        width=args.width,
        height=args.height,
        grid_resolution=args.grid,
        n_workers=args.workers,
        mode=args.mode,
        executor=args.executor,
        schedule=schedule,
        transport=args.transport,
        segment_frames=args.segment_frames,
        tile_px=0 if args.no_tiles else args.tile_px,
        max_attempts=args.max_attempts,
        task_timeout=args.task_timeout,
        run_dir=args.run_dir,
        resume=args.resume,
        verify=True,
        telemetry=any(d is not None for d in (args.telemetry, args.run_dir, args.resume)),
        events_path=args.telemetry,
        profile_dir=args.profile,
        status_port=args.status_port,
        trace_out=args.trace_out,
    )
    rec = result.recovery
    print(
        f"{result.mode}: {result.n_tasks} tasks on {args.workers} workers "
        f"in {result.wall_time:.1f}s, {result.stats.total:,} rays"
    )
    if result.n_from_checkpoint:
        print(f"resumed: {result.n_from_checkpoint}/{result.n_tasks} tasks from checkpoint")
    if rec["retries"] or rec["timeouts"] or rec["degraded"]:
        print(
            f"recovery: {rec['retries']} retries, {rec['timeouts']} timeouts, "
            f"{rec['crashes']} crashes, {rec['invalid']} invalid results, "
            f"{rec['degraded']} degraded to serial"
        )
    if result.events_path is not None:
        print(f"telemetry in {result.events_path}")
    if result.trace_path is not None:
        print(f"chrome trace in {result.trace_path}")
    print(f"bit-identical to single-renderer reference: {result.bit_identical}")
    return 0 if result.bit_identical else 1


def _cmd_shard(args) -> int:
    from .api import _WORKLOAD_FACTORIES
    from .obs import RunLedger, StatusServer
    from .runtime.spec import AnimationSpec
    from .shard.net import render_sharded_tcp
    from .telemetry import JsonlSink, Telemetry

    spec = AnimationSpec(
        _WORKLOAD_FACTORIES[args.workload],
        {"n_frames": args.frames, "width": args.width, "height": args.height},
    )
    ledger = RunLedger()
    sinks = [ledger]
    events_path = None
    if args.telemetry is not None:
        args.telemetry.mkdir(parents=True, exist_ok=True)
        events_path = args.telemetry / "events.jsonl"
        sinks.append(JsonlSink(events_path))
    status = None
    if args.status_port is not None:
        status = StatusServer(ledger, port=args.status_port)
        status.start()
        print(
            f"live status on http://127.0.0.1:{status.port}/status "
            f"(watch with: repro top 127.0.0.1:{status.port})"
        )
    die = {0: args.die_after_rays} if args.die_after_rays is not None else None
    t0 = time.perf_counter()
    try:
        session, outcome = render_sharded_tcp(
            spec,
            frames=args.frames,
            shards=args.shards,
            n_workers=args.workers,
            samples_per_axis=args.supersample,
            die_after_rays=die,
            telemetry=Telemetry(sinks=tuple(sinks)),
        )
    finally:
        if status is not None:
            status.stop()
    wall = time.perf_counter() - t0
    rays_recv = sum(int(st.rays_recv.sum()) for st in session.stats)
    ray_kb = sum(st.total_ray_bytes for st in session.stats) / 1024.0
    print(
        f"object-space: {session.k} shards on {args.workers} workers, "
        f"{len(session.frames)} frames in {wall:.1f}s"
    )
    print(
        f"rays routed {rays_recv:,} · {ray_kb:.1f} KiB traded · "
        f"{session.n_replays} replayed · {outcome.net.n_losses} losses"
    )
    if args.out is not None:
        from .imageio import write_targa

        args.out.mkdir(parents=True, exist_ok=True)
        for f, fb in enumerate(session.frames):
            write_targa(args.out / f"{args.workload}{f:04d}.tga", fb.to_uint8())
        print(f"frames in {args.out}/")
    if events_path is not None:
        print(f"telemetry in {events_path}")
    return 0


def _cmd_worker(args) -> int:
    from .net.worker import WorkerClient

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"--connect wants HOST:PORT, got {args.connect!r}", file=sys.stderr)
        return 2
    client = WorkerClient(
        host,
        int(port),
        score=args.score,
        max_retries=args.max_retries,
        die_after=args.die_after,
        die_after_rays=args.die_after_rays,
        die_after_frames=args.die_after_frames,
        blackbox_dir=args.blackbox_dir,
        verbose=args.verbose,
    )
    return client.run()


def _cmd_simulate(args) -> int:
    from .api import render

    if args.oracle is None:
        print("measuring per-pixel costs (renders the animation twice)...")
    result = render(
        workload=args.workload,
        engine="simulate",
        n_frames=args.frames,
        width=args.width,
        height=args.height,
        grid_resolution=args.grid,
        strategy=args.strategy,
        oracle=args.oracle,
        telemetry=args.telemetry is not None,
        events_path=args.telemetry,
        trace_out=args.trace_out,
    )
    o = result.outcome
    print(
        f"{o.strategy}: {o.n_frames} frames on {result.n_workers} machines in "
        f"{o.total_time:,.1f} virtual seconds"
    )
    print(
        f"{o.total_rays:,} rays, {o.n_messages} messages, "
        f"{o.bytes_on_wire:,} bytes on the wire, {o.n_chain_starts} chain starts"
    )
    if result.events_path is not None:
        print(f"telemetry in {result.events_path}")
    if result.trace_path is not None:
        print(f"chrome trace in {result.trace_path}")
    return 0


def _cmd_top(args) -> int:
    from .obs import fetch_status, render_jobs, render_status

    path = "/jobs" if args.jobs else "/status"
    try:
        while True:
            try:
                snap = fetch_status(args.address, path=path)
            except (OSError, ValueError):
                print(f"no farm status at {args.address} (run finished, or no --status-port?)")
                return 1
            frame = render_jobs(snap) if args.jobs else render_status(snap)
            if args.once:
                print(frame)
                return 0
            # Clear screen + home, then the fresh frame.
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            if snap.get("done"):
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_serve(args) -> int:
    from .service import RenderService

    service = RenderService(
        args.state_dir,
        host=args.host,
        port=args.port,
        resume=args.resume,
        queue_capacity=args.queue_capacity,
        n_workers=args.workers,
        executor=args.executor,
        status_port=args.status_port,
        verbose=args.verbose,
    )
    host, port = service.start()
    print(f"repro service on {host}:{port} (state in {args.state_dir})")
    print(f"submit with: repro submit --connect {host}:{port} newton")
    if args.status_port is not None:
        print(
            f"live jobs on http://127.0.0.1:{service._status_server.port}/jobs "
            f"(watch with: repro top 127.0.0.1:{service._status_server.port} --jobs)"
        )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (ledger is durable; restart with --resume)")
    finally:
        service.stop()
    return 0


def _cmd_submit(args) -> int:
    from .api import RenderRequest
    from .service import ServiceError, submit, wait

    request = RenderRequest(
        workload=args.workload,
        n_frames=args.frames,
        width=args.width,
        height=args.height,
        grid_resolution=args.grid,
    )
    try:
        job = submit(
            args.connect,
            request,
            priority=args.priority,
            owner=args.owner,
            max_attempts=args.max_attempts,
        )
    except (OSError, ServiceError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(f"submitted {job['job_id']} (priority {job['priority']}, state {job['state']})")
    if not args.wait:
        return 0
    try:
        done = wait(args.connect, job["job_id"], timeout=args.timeout)
    except TimeoutError as exc:
        print(f"wait: {exc}", file=sys.stderr)
        return 1
    final = done[job["job_id"]]
    print(f"{final['job_id']}: {final['state']} ({final.get('detail', '')})")
    return 0 if final["state"] == "done" else 1


def _cmd_jobs(args) -> int:
    from .obs import render_jobs
    from .service import ServiceError, cancel, job_status, list_jobs

    try:
        if args.cancel is not None:
            job = cancel(args.connect, args.cancel)
            print(f"{job['job_id']}: {job['state']}")
            return 0
        if args.job is not None:
            job = job_status(args.connect, args.job)
            for key in (
                "job_id", "state", "detail", "priority", "owner",
                "n_attempts", "max_attempts", "tasks_done", "n_tasks",
                "n_from_checkpoint",
            ):
                print(f"{key:18s} {job.get(key)}")
            for attempt in job.get("attempts", []):
                print(
                    f"  attempt {attempt['attempt']}: {attempt['outcome']} "
                    f"in {attempt['duration']:.2f}s "
                    + (f"({attempt['error']})" if attempt.get("error") else "")
                )
            return 0
        print(render_jobs(list_jobs(args.connect)))
        return 0
    except (OSError, ServiceError) as exc:
        print(f"jobs: {exc}", file=sys.stderr)
        return 1


def _cmd_telemetry(args) -> int:
    from .telemetry import format_report, read_events, report_from_events

    events = read_events(args.run_dir)
    if not events:
        print(f"no telemetry events in {args.run_dir}")
        return 1
    print(format_report(report_from_events(events), per_frame=args.per_frame))
    return 0


def _cmd_oracle(args) -> int:
    from .analysis import summarize_oracle
    from .parallel import build_oracle

    anim = _make_animation(args.workload, args.frames, args.width, args.height)
    print("measuring per-pixel costs (renders the animation twice)...")
    oracle = build_oracle(anim, grid_resolution=args.grid)
    if args.save is not None:
        oracle.save(args.save)
        print(f"saved oracle to {args.save}")
    for key, value in summarize_oracle(oracle).items():
        print(f"{key:32s} {value:.4f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse ``argv`` (default ``sys.argv``) and dispatch."""
    args = build_parser().parse_args(argv)
    handlers = {
        "render": _cmd_render,
        "animate": _cmd_animate,
        "validate": _cmd_validate,
        "table1": _cmd_table1,
        "farm": _cmd_farm,
        "simulate": _cmd_simulate,
        "telemetry": _cmd_telemetry,
        "oracle": _cmd_oracle,
        "shard": _cmd_shard,
        "worker": _cmd_worker,
        "top": _cmd_top,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
