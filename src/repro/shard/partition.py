"""Spatial-median scene partitioning: K owned shards plus an owner map.

The partitioner recursively median-splits the scene's object-AABB
centroids along the longest axis, producing K shards of near-equal
object count.  The split is a pure function of ``(scene, k)`` built from
deterministic numpy ops (stable argsort, fixed tie rules), so *every*
node — master or worker, local or remote — evaluates the identical owner
map from the animation spec alone; no map is ever shipped on the wire.

Each shard also carries a *domain box*: the union of its members'
world AABBs (infinite members, like ground planes, make the domain
infinite).  Ray routing is a conservative slab test against the domain
boxes — a ray is sent to every shard whose domain it can enter within
its parametric range, which is a superset of the shards that can
actually intersect it, so the merged nearest-hit answer equals the
serial intersector's (DESIGN §16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rmath import ray_aabb_intersect

__all__ = ["ScenePartitioner", "ShardMap", "partition_scene"]


@dataclass(frozen=True)
class ShardMap:
    """The owner map: which shard owns each object, and the shard domains.

    Attributes
    ----------
    n_objects:
        Total objects in the scene.
    members:
        Per-shard tuples of owned object indices, each ascending.  The
        ascending order is load-bearing: within a shard the intersector
        resolves nearest-hit ties to the lowest index, so local ascending
        order must equal global ascending order for the cross-shard merge
        to reproduce the serial tie rule.
    owner_of:
        ``(n_objects,)`` int64 — shard index owning each object.
    domain_lo, domain_hi:
        ``(K, 3)`` shard domain boxes (``±inf`` for unbounded shards).
    """

    n_objects: int
    members: tuple[tuple[int, ...], ...]
    owner_of: np.ndarray
    domain_lo: np.ndarray
    domain_hi: np.ndarray

    @property
    def n_shards(self) -> int:
        return len(self.members)

    def route(self, origins: np.ndarray, dirs: np.ndarray, t_max=np.inf) -> np.ndarray:
        """``(N, K)`` bool: shards whose domain each ray can enter.

        Conservative: a True never lies about a miss, so every shard that
        could produce a hit (or an occlusion event) within ``t_max`` is
        included.  Shadow queries pass their segment length as ``t_max``
        to prune owners entirely beyond the light.
        """
        origins = np.asarray(origins, dtype=np.float64)
        dirs = np.asarray(dirs, dtype=np.float64)
        with np.errstate(divide="ignore"):
            inv = 1.0 / dirs
        out = np.zeros((origins.shape[0], self.n_shards), dtype=bool)
        for s in range(self.n_shards):
            hit, _, _ = ray_aabb_intersect(
                origins, inv, self.domain_lo[s], self.domain_hi[s], t_max=t_max
            )
            out[:, s] = hit
        return out

    def describe(self) -> list[dict]:
        """JSON-able per-shard summary (for ``repro top`` and the CLI)."""
        rows = []
        for s, mem in enumerate(self.members):
            rows.append(
                {
                    "shard": s,
                    "n_objects": len(mem),
                    "objects": list(mem),
                    "lo": [float(v) for v in self.domain_lo[s]],
                    "hi": [float(v) for v in self.domain_hi[s]],
                }
            )
        return rows


class ScenePartitioner:
    """Builds a :class:`ShardMap` by recursive spatial-median splitting."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("need at least one shard")
        self.k = int(k)

    def partition(self, scene) -> ShardMap:
        objects = scene.objects
        n = len(objects)
        if n == 0:
            raise ValueError("cannot shard an empty scene")
        k = min(self.k, n)

        boxes = [obj.bounds() for obj in objects]
        with np.errstate(invalid="ignore"):  # inf + -inf -> NaN for unbounded
            centers = np.stack([0.5 * (b.lo + b.hi) for b in boxes])
        # Unbounded objects (ground planes) have non-finite centroids;
        # anchor them at the finite scene's center so the split sees them.
        world = scene.finite_bounds()
        anchor = world.center if not world.is_empty() else np.zeros(3)
        anchor = np.where(np.isfinite(anchor), anchor, 0.0)
        centers = np.where(np.isfinite(centers), centers, anchor)

        groups = _median_split(np.arange(n, dtype=np.int64), centers, k)
        members = tuple(tuple(int(i) for i in g) for g in groups)

        owner_of = np.empty(n, dtype=np.int64)
        domain_lo = np.empty((k, 3), dtype=np.float64)
        domain_hi = np.empty((k, 3), dtype=np.float64)
        for s, mem in enumerate(members):
            owner_of[list(mem)] = s
            domain_lo[s] = np.min([boxes[i].lo for i in mem], axis=0)
            domain_hi[s] = np.max([boxes[i].hi for i in mem], axis=0)
        return ShardMap(
            n_objects=n,
            members=members,
            owner_of=owner_of,
            domain_lo=domain_lo,
            domain_hi=domain_hi,
        )


def _median_split(idx: np.ndarray, centers: np.ndarray, k: int) -> list[np.ndarray]:
    """Recursively split ``idx`` into ``k`` near-equal groups by centroid."""
    if k == 1:
        return [np.sort(idx)]
    pts = centers[idx]
    axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
    order = np.argsort(pts[:, axis], kind="stable")
    kl = k // 2
    kr = k - kl
    # Proportional cut, clamped so both halves can still seat their shards.
    nl = int(round(len(idx) * kl / k))
    nl = max(kl, min(len(idx) - kr, nl))
    left = idx[order[:nl]]
    right = idx[order[nl:]]
    return _median_split(left, centers, kl) + _median_split(right, centers, kr)


def partition_scene(scene, k: int) -> ShardMap:
    """Convenience wrapper: ``ScenePartitioner(k).partition(scene)``."""
    return ScenePartitioner(k).partition(scene)
