"""The sharded wavefront engine: owners answer ray queries, the master merges.

Execution model
---------------
A :class:`ShardWorker` is a *pure query server* over one shard's objects:
``nearest`` (closest hit among owned objects), ``occlude`` (per-object
shadow-blocking events), ``shade`` (pigment/finish evaluation at hit
points).  Every reply is a pure function of the request payload — that is
what makes loss replay trivial: a restarted owner given the same request
produces the bit-identical reply.

The master runs :func:`sharded_trace`, a *sans-io generator* that yields
rounds of :class:`ShardRequest` and receives the aligned replies via
``send()``.  The same generator is pumped by the in-process
:class:`LocalShardFarm` (tests, drills) and by the TCP
:class:`~repro.shard.net.ShardSession` inside the master's selectors loop.

Determinism contract (DESIGN §16)
---------------------------------
The sharded composite must be **bit-identical** to
:meth:`repro.render.raytracer.RayTracer.trace_pixels`.  Three rules make
the merge exact:

1. *Nearest merge* is a lexicographic minimum on ``(t, object index)``:
   the serial intersector scans objects in ascending index with a strict
   ``t < best`` update, so ties go to the lowest index — the merge
   reproduces that with ``(t < best) | ((t == best) & (obj < best_obj))``.
2. *Occlusion-event replay*: owners do not multiply shadow attenuations
   locally (cross-shard products could reassociate).  They report, per
   transmissive occluder, ``(object index, transmission, blocked mask)``
   plus an opaque mask; the master replays the multiplies in ascending
   object index and zeroes opaque rays afterwards — the exact value
   sequence of the serial ``shadow_attenuation`` loop.
3. *Accumulation order*: batches leave the queue in the serial FIFO
   order (refracted child appended before reflected), and all
   ``np.add.at`` accumulations use the same index arrays as the serial
   tracer, so floating-point addition order is unchanged.

Shading itself is not reimplemented: the master drives the *real*
:func:`~repro.render.shading.shade_local` with a replay intersector
(attenuations precomputed from the occlusion events, popped in call
order) and a proxy scene whose materials return owner-prefetched colors
and finish constants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..geometry import MISS, RayBatch, RayKind
from ..render.framebuffer import Framebuffer
from ..render.intersect import SceneIntersector
from ..render.raytracer import _ADC_BAILOUT, TraceResult
from ..render.shading import shade_local
from ..render.stats import RayStats
from ..rmath import dot, reflect, refract
from .partition import ShardMap, partition_scene

__all__ = [
    "LocalShardFarm",
    "ShardRequest",
    "ShardTraceStats",
    "ShardWorker",
    "payload_nbytes",
    "pump_local",
    "render_frame_sharded",
    "sharded_trace",
]

#: Self-intersection epsilon of the serial shadow pipeline.
_SHADOW_EPS = 1e-6


def payload_nbytes(payload: dict) -> int:
    """Wire-size estimate of a request/reply payload (array bytes + slack)."""
    total = 0
    for value in payload.values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
        else:
            total += 8
    return total


@dataclass
class ShardRequest:
    """One query addressed to a shard owner."""

    shard: int
    op: str  # "nearest" | "occlude" | "shade"
    payload: dict


class ShardTraceStats:
    """Per-shard traffic counters for one sharded trace.

    ``rays_recv[s]`` counts rays shard *s* served; ``rays_local[s]`` the
    subset whose *home* (the owner of the surface that spawned them;
    camera rays have no home) is *s* itself; ``rays_fwd_out[h]`` counts
    rays home shard *h* had to ship to a different owner.  Byte counters
    price the request/reply payloads as they would travel on the wire.
    """

    def __init__(self, n_shards: int):
        self.n_shards = int(n_shards)
        self.rays_recv = np.zeros(n_shards, dtype=np.int64)
        self.rays_local = np.zeros(n_shards, dtype=np.int64)
        self.rays_fwd_out = np.zeros(n_shards, dtype=np.int64)
        self.shade_points = np.zeros(n_shards, dtype=np.int64)
        self.n_requests = np.zeros(n_shards, dtype=np.int64)
        self.bytes_to = np.zeros(n_shards, dtype=np.int64)
        self.bytes_from = np.zeros(n_shards, dtype=np.int64)

    def note_request(self, shard: int, homes: np.ndarray, payload: dict) -> None:
        n = homes.shape[0]
        self.rays_recv[shard] += n
        self.n_requests[shard] += 1
        self.bytes_to[shard] += payload_nbytes(payload)
        self.rays_local[shard] += int(np.count_nonzero(homes == shard))
        fwd = homes[(homes >= 0) & (homes != shard)]
        if fwd.size:
            np.add.at(self.rays_fwd_out, fwd, 1)

    def note_shade(self, shard: int, n_points: int, payload: dict) -> None:
        self.shade_points[shard] += n_points
        self.n_requests[shard] += 1
        self.bytes_to[shard] += payload_nbytes(payload)

    def note_reply(self, shard: int, payload: dict) -> None:
        self.bytes_from[shard] += payload_nbytes(payload)

    @property
    def total_ray_bytes(self) -> int:
        return int(self.bytes_to.sum() + self.bytes_from.sum())

    def as_dict(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "rays_recv": self.rays_recv.tolist(),
            "rays_local": self.rays_local.tolist(),
            "rays_fwd_out": self.rays_fwd_out.tolist(),
            "shade_points": self.shade_points.tolist(),
            "n_requests": self.n_requests.tolist(),
            "bytes_to": self.bytes_to.tolist(),
            "bytes_from": self.bytes_from.tolist(),
            "total_ray_bytes": self.total_ray_bytes,
        }


class ShardWorker:
    """Owner of one shard: a stateless query server over its objects.

    Replies are pure functions of ``(scene, shard map, request)``, so a
    replacement owner rebuilt from the animation spec answers replayed
    requests bit-identically — the property the loss drill asserts.
    """

    def __init__(self, scene, smap: ShardMap, shard: int):
        self.shard = int(shard)
        self.gidx = np.asarray(smap.members[self.shard], dtype=np.int64)
        self.objects = [scene.objects[int(i)] for i in self.gidx]
        self.intersector = SceneIntersector(self.objects)
        self.n_rays_served = 0

    def serve(self, op: str, payload: dict) -> dict:
        if op == "nearest":
            return self._nearest(payload)
        if op == "occlude":
            return self._occlude(payload)
        if op == "shade":
            return self._shade(payload)
        raise ValueError(f"unknown shard op {op!r}")

    def _nearest(self, payload: dict) -> dict:
        origins = payload["origins"]
        dirs = payload["dirs"]
        n = origins.shape[0]
        self.n_rays_served += n
        before = self.intersector.n_primitive_tests
        batch = RayBatch(
            origins=origins,
            dirs=dirs,
            pixel=np.zeros(n, dtype=np.int64),
            weight=np.zeros((n, 3), dtype=np.float64),
        )
        rec = self.intersector.nearest(batch)
        obj_g = np.full(n, -1, dtype=np.int64)
        hit = rec.obj_index >= 0
        obj_g[hit] = self.gidx[rec.obj_index[hit]]
        return {
            "t": rec.t,
            "obj": obj_g,
            "normals": rec.normals,
            "n_tests": self.intersector.n_primitive_tests - before,
        }

    def _occlude(self, payload: dict) -> dict:
        """Shadow-blocking *events*, not attenuations.

        The opaque mask and the per-transmissive-occluder masks are
        value-identical to what the serial ``shadow_attenuation`` loop
        would observe: the blocking predicate is copied verbatim, and the
        serial loop's live/cull skips are value-neutral (a skipped ray is
        either already fully dark or provably unhittable).
        """
        origins = payload["origins"]
        dirs = payload["dirs"]
        max_dist = payload["max_dist"]
        n = origins.shape[0]
        self.n_rays_served += n
        n_tests = 0
        opaque = np.zeros(n, dtype=bool)
        ev_obj: list[int] = []
        ev_factor: list[float] = []
        ev_mask: list[np.ndarray] = []
        for li, obj in enumerate(self.objects):
            t, _ = obj.intersect(origins, dirs)
            n_tests += t.size
            blocking = np.isfinite(t) & (t > _SHADOW_EPS) & (t < max_dist - _SHADOW_EPS)
            if not np.any(blocking):
                continue
            mat = obj.material
            if mat is not None and mat.finish.is_transmissive:
                ev_obj.append(int(self.gidx[li]))
                ev_factor.append(float(mat.finish.transmission))
                ev_mask.append(blocking)
            else:
                opaque |= blocking
        return {
            "opaque": opaque,
            "ev_obj": np.asarray(ev_obj, dtype=np.int64),
            "ev_factor": np.asarray(ev_factor, dtype=np.float64),
            "ev_mask": np.stack(ev_mask) if ev_mask else np.zeros((0, n), dtype=bool),
            "n_tests": n_tests,
        }

    def _shade(self, payload: dict) -> dict:
        """Pigment colors and finish constants for owned-object hits."""
        obj = payload["obj"]
        points = payload["points"]
        m = obj.shape[0]
        colors = np.zeros((m, 3), dtype=np.float64)
        uobj = np.unique(obj)
        finishes = np.zeros((uobj.size, 7), dtype=np.float64)
        owned = set(int(i) for i in self.gidx)
        for j, gi in enumerate(uobj):
            if int(gi) not in owned:
                raise ValueError(f"shade request for object {int(gi)} not owned by shard {self.shard}")
            sel = obj == gi
            mat = self.objects[int(np.searchsorted(self.gidx, gi))].material
            if mat is None:
                raise ValueError(f"object {int(gi)} has no material")
            colors[sel] = mat.color_at(points[sel])
            fin = mat.finish
            finishes[j] = (
                fin.ambient,
                fin.diffuse,
                fin.specular,
                fin.phong_size,
                fin.reflection,
                fin.transmission,
                fin.ior,
            )
        return {"colors": colors, "uobj": uobj, "finishes": finishes}


# -- proxies that let the real shade_local run on prefetched data -----------
class _PrefetchedFinish:
    __slots__ = ("ambient", "diffuse", "specular", "phong_size", "reflection", "transmission", "ior")

    def __init__(self, row: np.ndarray):
        (
            self.ambient,
            self.diffuse,
            self.specular,
            self.phong_size,
            self.reflection,
            self.transmission,
            self.ior,
        ) = (float(v) for v in row)


class _PrefetchedMaterial:
    """Returns owner-computed pigment rows for exactly one gather."""

    __slots__ = ("_rows", "finish")

    def __init__(self, rows: np.ndarray, finish: _PrefetchedFinish):
        self._rows = rows
        self.finish = finish

    def color_at(self, points: np.ndarray) -> np.ndarray:
        if points.shape[0] != self._rows.shape[0]:
            raise RuntimeError("prefetched pigment rows do not match the gather")
        return self._rows


class _ProxyObj:
    __slots__ = ("material", "name")

    def __init__(self, material, name):
        self.material = material
        self.name = name


class _ProxyScene:
    """Quacks like a Scene for ``shade_local``: objects / lights / ambient."""

    def __init__(self, scene, obj_index: np.ndarray, colors: np.ndarray, finishes: dict):
        objects = {}
        for gi in np.unique(obj_index):
            sel = obj_index == gi
            mat = _PrefetchedMaterial(colors[sel], _PrefetchedFinish(finishes[int(gi)]))
            objects[int(gi)] = _ProxyObj(mat, f"shard-proxy-{int(gi)}")
        self.objects = objects
        self.ambient_light = scene.ambient_light
        self.lights = scene.lights


class _ReplayIntersector:
    """Answers ``shadow_attenuation`` from precomputed event replays.

    ``shade_local`` calls it once per shadow-ray volley, in a sequence
    that :func:`_shadow_plan` reproduces exactly, so popping in call
    order aligns every answer with its volley.
    """

    __slots__ = ("_attens",)

    def __init__(self, attens: list[np.ndarray]):
        self._attens = deque(attens)

    def shadow_attenuation(self, origins, dirs, max_dist, eps: float = 1e-6) -> np.ndarray:
        return self._attens.popleft()


@dataclass
class _ShadowCall:
    """One shadow-ray volley ``shade_local`` will fire."""

    origins: np.ndarray
    dirs: np.ndarray
    dists: np.ndarray
    fire: np.ndarray  # (K,) mask into the hit set


def _shadow_plan(scene, points: np.ndarray, normals: np.ndarray) -> list[_ShadowCall]:
    """The exact ``shadow_attenuation`` call sequence of ``shade_local``.

    Valid because the inputs of every volley (light geometry, lit masks)
    are independent of any attenuation *result* — so all volleys can be
    precomputed and their occlusion queries fanned out in one round.
    """
    shadow_origins = points + normals * _SHADOW_EPS
    calls: list[_ShadowCall] = []
    for light in scene.lights:
        l_dirs, l_dists = light.shadow_rays(shadow_origins)
        lit = dot(normals, l_dirs) > 0.0
        fire = lit  # no shadow cache in shard mode
        if not np.any(fire):
            continue
        origins_f = shadow_origins[fire]
        if light.is_soft:
            for target in light.sample_positions():
                s_dirs, s_dists = light.shadow_rays_to(origins_f, target)
                calls.append(_ShadowCall(origins_f, s_dirs, s_dists, fire))
        else:
            calls.append(_ShadowCall(origins_f, l_dirs[fire], l_dists[fire], fire))
    return calls


def _camera_batch(cam, pixel_ids: np.ndarray, samples_per_axis: int) -> RayBatch:
    """Replicates ``RayTracer._camera_batch`` (stratified supersampling)."""
    if samples_per_axis <= 1:
        return cam.rays_for_pixels(pixel_ids)
    n = samples_per_axis
    cell = (np.arange(n, dtype=np.float64) + 0.5) / n - 0.5
    ox, oy = np.meshgrid(cell, cell, indexing="ij")
    offsets = np.stack([ox.ravel(), oy.ravel()], axis=-1)
    rep_pixels = np.repeat(pixel_ids, n * n)
    rep_jitter = np.tile(offsets, (pixel_ids.size, 1))
    batch = cam.rays_for_pixels(rep_pixels, jitter=rep_jitter)
    batch.weight /= float(n * n)
    return batch


def sharded_trace(
    scene,
    smap: ShardMap,
    pixel_ids: np.ndarray,
    *,
    samples_per_axis: int = 1,
    chunk_size: int = 32768,
    shard_stats: ShardTraceStats | None = None,
):
    """Sans-io sharded tracing generator.

    Yields lists of :class:`ShardRequest`; each ``send()`` must supply
    the replies aligned 1:1 with the yielded requests.  Returns a
    :class:`~repro.render.raytracer.TraceResult` whose colors are
    bit-identical to the serial tracer's (path tracking excluded — shard
    mode does not build coherence maps).
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    pixel_ids = np.unique(np.asarray(pixel_ids, dtype=np.int64))
    cam = scene.camera
    n_pixels_total = cam.n_pixels

    acc = np.zeros((n_pixels_total, 3), dtype=np.float64)
    rays_pp = np.zeros(n_pixels_total, dtype=np.int64)
    stats = RayStats()
    sstats = shard_stats if shard_stats is not None else ShardTraceStats(smap.n_shards)
    n_tests = 0

    for start in range(0, pixel_ids.size, chunk_size):
        chunk = pixel_ids[start : start + chunk_size]
        batch = _camera_batch(cam, chunk, samples_per_axis)
        n_tests += yield from _wavefront(scene, smap, batch, acc, rays_pp, stats, sstats)

    empty = np.empty(0, dtype=np.int64)
    return TraceResult(
        pixel_ids=pixel_ids,
        colors=acc[pixel_ids],
        stats=stats,
        mark_voxels=empty,
        mark_pixels=empty,
        rays_per_pixel=rays_pp[pixel_ids],
        n_intersection_tests=n_tests,
    )


def _wavefront(scene, smap: ShardMap, first: RayBatch, acc, rays_pp, stats, sstats):
    """One wavefront to completion; mirrors ``RayTracer._trace_wavefront``."""
    no_home = np.full(len(first), -1, dtype=np.int64)
    queue: deque[tuple[RayBatch, np.ndarray]] = deque([(first, no_home)])
    max_depth = scene.max_depth
    background = scene.background
    n_shards = smap.n_shards
    n_tests = 0

    while queue:
        batch, home = queue.popleft()
        if len(batch) == 0:
            continue
        stats.record(batch.kind, len(batch))
        np.add.at(rays_pp, batch.pixel, 1)
        n = len(batch)

        # --- round A: nearest hit across owning shards ----------------
        route = smap.route(batch.origins, batch.dirs)
        reqs: list[ShardRequest] = []
        slots: list[tuple[int, np.ndarray]] = []
        for s in range(n_shards):
            rows = np.flatnonzero(route[:, s])
            if rows.size == 0:
                continue
            payload = {"origins": batch.origins[rows], "dirs": batch.dirs[rows]}
            reqs.append(ShardRequest(s, "nearest", payload))
            slots.append((s, rows))
            sstats.note_request(s, home[rows], payload)

        t = np.full(n, MISS)
        obj = np.full(n, -1, dtype=np.int64)
        normals = np.zeros((n, 3), dtype=np.float64)
        if reqs:
            replies = yield reqs
            for (s, rows), rep in zip(slots, replies):
                sstats.note_reply(s, rep)
                n_tests += int(rep["n_tests"])
                ct, cobj, cn = rep["t"], rep["obj"], rep["normals"]
                cur_t = t[rows]
                cur_obj = obj[rows]
                # Lexicographic (t, object index) minimum == serial tie rule.
                better = np.isfinite(ct) & ((ct < cur_t) | ((ct == cur_t) & (cobj < cur_obj)))
                if np.any(better):
                    upd = rows[better]
                    t[upd] = ct[better]
                    obj[upd] = cobj[better]
                    normals[upd] = cn[better]

        hit = np.isfinite(t)
        miss = ~hit
        if np.any(miss):
            np.add.at(acc, batch.pixel[miss], batch.weight[miss] * background)
        if not np.any(hit):
            continue

        hits = batch.select(hit)
        th = t[hit]
        obj_index = obj[hit]
        geo_n = normals[hit]
        points = hits.points_at(th)
        facing = dot(geo_n, hits.dirs) < 0.0
        nrm = np.where(facing[:, None], geo_n, -geo_n)
        owners = smap.owner_of[obj_index]

        # --- round B: material fetch + occlusion events ---------------
        kh = len(hits)
        reqs = []
        shade_slots: list[tuple[int, np.ndarray]] = []
        for s in np.unique(owners):
            rows = np.flatnonzero(owners == s)
            payload = {"obj": obj_index[rows], "points": points[rows]}
            reqs.append(ShardRequest(int(s), "shade", payload))
            shade_slots.append((int(s), rows))
            sstats.note_shade(int(s), rows.size, payload)

        plan = _shadow_plan(scene, points, nrm)
        occ_slots: list[tuple[int, int, np.ndarray]] = []
        for ci, call in enumerate(plan):
            occ_route = smap.route(call.origins, call.dirs, t_max=call.dists)
            shomes = owners[call.fire]  # a shadow ray's home = its surface's owner
            for s in range(n_shards):
                rows = np.flatnonzero(occ_route[:, s])
                if rows.size == 0:
                    continue
                payload = {
                    "origins": call.origins[rows],
                    "dirs": call.dirs[rows],
                    "max_dist": call.dists[rows],
                }
                reqs.append(ShardRequest(s, "occlude", payload))
                occ_slots.append((ci, s, rows))
                sstats.note_request(s, shomes[rows], payload)

        replies = yield reqs
        shade_replies = replies[: len(shade_slots)]
        occ_replies = replies[len(shade_slots) :]

        colors = np.zeros((kh, 3), dtype=np.float64)
        finishes: dict[int, np.ndarray] = {}
        for (s, rows), rep in zip(shade_slots, shade_replies):
            sstats.note_reply(s, rep)
            colors[rows] = rep["colors"]
            for gi, frow in zip(rep["uobj"], rep["finishes"]):
                finishes[int(gi)] = frow

        # Occlusion-event replay: transmissive multiplies in ascending
        # object index (the serial loop order), opaque zeroes afterwards
        # (zeros absorb under multiplication, so ordering is free).
        events: list[list[tuple[int, float, np.ndarray]]] = [[] for _ in plan]
        opaque = [np.zeros(call.origins.shape[0], dtype=bool) for call in plan]
        for (ci, s, rows), rep in zip(occ_slots, occ_replies):
            sstats.note_reply(s, rep)
            n_tests += int(rep["n_tests"])
            opaque[ci][rows] |= rep["opaque"]
            ev_mask = rep["ev_mask"]
            for j in range(rep["ev_obj"].size):
                events[ci].append(
                    (int(rep["ev_obj"][j]), float(rep["ev_factor"][j]), rows[ev_mask[j]])
                )
        attens: list[np.ndarray] = []
        for ci, call in enumerate(plan):
            atten = np.ones(call.origins.shape[0], dtype=np.float64)
            for _, factor, target in sorted(events[ci], key=lambda ev: ev[0]):
                atten[target] *= factor
            atten[opaque[ci]] = 0.0
            attens.append(atten)

        # --- I_local via the *real* shade_local ------------------------
        def shadow_hook(origins, dirs, dists, mask, _hits=hits):
            stats.record(RayKind.SHADOW, origins.shape[0])
            np.add.at(rays_pp, _hits.pixel[mask], 1)

        proxy = _ProxyScene(scene, obj_index, colors, finishes)
        local = shade_local(
            proxy,
            _ReplayIntersector(attens),
            points,
            nrm,
            hits.dirs,
            obj_index,
            shadow_hook=shadow_hook,
        )
        np.add.at(acc, hits.pixel, hits.weight * local)

        # --- children (verbatim serial logic on prefetched finishes) ---
        if batch.depth + 1 >= max_depth:
            continue

        reflection = np.zeros(kh, dtype=np.float64)
        transmission = np.zeros(kh, dtype=np.float64)
        ior = np.ones(kh, dtype=np.float64)
        for idx in np.unique(obj_index):
            sel = obj_index == idx
            frow = finishes[int(idx)]
            reflection[sel] = frow[4]
            transmission[sel] = frow[5]
            ior[sel] = frow[6]

        refl_weight = hits.weight * reflection[:, None]
        want_refl = refl_weight.max(axis=1) > _ADC_BAILOUT

        trans_weight = hits.weight * transmission[:, None]
        want_trans = trans_weight.max(axis=1) > _ADC_BAILOUT
        tir_mask = np.zeros(kh, dtype=bool)
        if np.any(want_trans):
            eta = np.where(hits.inside, ior, 1.0 / ior)
            refr_dirs, tir = refract(hits.dirs, nrm, eta)
            tir_mask = want_trans & tir
            ok = want_trans & ~tir
            if np.any(ok):
                queue.append(
                    (
                        RayBatch(
                            origins=points[ok] - nrm[ok] * 1e-6,
                            dirs=refr_dirs[ok],
                            pixel=hits.pixel[ok],
                            weight=trans_weight[ok],
                            kind=RayKind.REFRACTED,
                            depth=batch.depth + 1,
                            inside=~hits.inside[ok],
                        ),
                        owners[ok],
                    )
                )

        spawn_refl = want_refl | tir_mask
        if np.any(spawn_refl):
            w = np.where(tir_mask[:, None], refl_weight + trans_weight, refl_weight)[spawn_refl]
            refl_dirs = reflect(hits.dirs, nrm)[spawn_refl]
            queue.append(
                (
                    RayBatch(
                        origins=points[spawn_refl] + nrm[spawn_refl] * 1e-6,
                        dirs=refl_dirs,
                        pixel=hits.pixel[spawn_refl],
                        weight=w,
                        kind=RayKind.REFLECTED,
                        depth=batch.depth + 1,
                        inside=hits.inside[spawn_refl],
                    ),
                    owners[spawn_refl],
                )
            )
    return n_tests


def pump_local(gen, serve) -> TraceResult:
    """Drive a sharded-trace generator with a local ``serve(request)``."""
    try:
        reqs = next(gen)
        while True:
            reqs = gen.send([serve(req) for req in reqs])
    except StopIteration as stop:
        return stop.value


class LocalShardFarm:
    """In-process shard owners, with an optional mid-run owner-kill drill.

    ``kill_shard``/``kill_after_requests`` replace one owner with a fresh
    :class:`ShardWorker` right before the Nth request is served — the
    in-process analogue of a worker crash plus ledger replay.  Because
    replies are pure functions of the request, the drill must leave the
    composite bit-identical; ``n_restarts`` lets tests assert it fired.
    """

    def __init__(self, scene, smap: ShardMap, *, kill_shard=None, kill_after_requests=None):
        self.scene = scene
        self.smap = smap
        self.workers = {s: ShardWorker(scene, smap, s) for s in range(smap.n_shards)}
        self.kill_shard = kill_shard
        self.kill_after_requests = kill_after_requests
        self.n_requests = 0
        self.n_restarts = 0

    def serve(self, req: ShardRequest) -> dict:
        self.n_requests += 1
        if (
            self.kill_shard is not None
            and self.kill_after_requests is not None
            and self.n_requests == self.kill_after_requests
        ):
            self.workers[self.kill_shard] = ShardWorker(self.scene, self.smap, self.kill_shard)
            self.n_restarts += 1
        return self.workers[req.shard].serve(req.op, req.payload)


def render_frame_sharded(
    scene,
    shards: int | ShardMap = 4,
    *,
    samples_per_axis: int = 1,
    chunk_size: int = 32768,
    farm: LocalShardFarm | None = None,
):
    """Render one frame sharded, in process.

    Returns ``(framebuffer, trace_result, shard_stats)``; the framebuffer
    is bit-identical to ``RayTracer(scene).render()``'s.
    """
    smap = shards if isinstance(shards, ShardMap) else partition_scene(scene, shards)
    if farm is None:
        farm = LocalShardFarm(scene, smap)
    sstats = ShardTraceStats(smap.n_shards)
    gen = sharded_trace(
        scene,
        smap,
        scene.camera.pixel_grid(),
        samples_per_axis=samples_per_axis,
        chunk_size=chunk_size,
        shard_stats=sstats,
    )
    result = pump_local(gen, farm.serve)
    fb = Framebuffer(scene.camera.width, scene.camera.height)
    fb.scatter(result.pixel_ids, result.colors)
    return fb, result, sstats
