"""Object-space sharded rendering: workers own scene shards and trade rays.

Every other transport in this repository divides *pixels*; this package
implements the complementary decomposition for scenes too big for one
node.  The scene's objects are spatial-median-split into K *shards*, each
owned by one worker.  A wavefront ray batch is not traced where it was
spawned: rays are routed to every shard whose domain box they can enter,
the owners answer nearest-hit / occlusion / material queries, and the
master merges the answers deterministically so the composite is
bit-identical to the serial tracer (DESIGN §16).

Layout:

* :mod:`~repro.shard.partition` — :class:`ScenePartitioner` /
  :class:`ShardMap`: the owner map every node can evaluate.
* :mod:`~repro.shard.engine` — :class:`ShardWorker` (the pure query
  server an owner runs) and the sans-io :func:`sharded_trace` generator
  the master pumps, plus an in-process farm for tests and drills.
* :mod:`~repro.shard.net` — :class:`ShardSession`: the generator pumped
  through the TCP master's selectors loop with ``MSG_RAYS``/``MSG_SHADE``
  (protocol minor 4), including loss replay from the outbox ledger.
* :mod:`~repro.shard.oracle` — :class:`ShardOracle`: a cost model that
  lets the discrete-event simulator replay the object-space policy at
  100-1000 heterogeneous workers.
"""

from .engine import (
    LocalShardFarm,
    ShardRequest,
    ShardTraceStats,
    ShardWorker,
    payload_nbytes,
    pump_local,
    render_frame_sharded,
    sharded_trace,
)
from .oracle import ShardOracle, ShardProfile
from .partition import ScenePartitioner, ShardMap, partition_scene

__all__ = [
    "LocalShardFarm",
    "ScenePartitioner",
    "ShardMap",
    "ShardOracle",
    "ShardProfile",
    "ShardRequest",
    "ShardTraceStats",
    "ShardWorker",
    "partition_scene",
    "payload_nbytes",
    "pump_local",
    "render_frame_sharded",
    "sharded_trace",
]
