"""ShardOracle: price object-space assignments for the cluster simulator.

The discrete-event simulator (:class:`~repro.sched.sim.SimTransport`)
prices every assignment through a cost model with the
:class:`~repro.sched.cost.OracleCostModel` surface — ``region_size``,
``frame_cost``, ``assignment_cost``, ``total_rays_of_log``.  This module
provides that surface for the *object-space* policy, where a "region" is
a scene shard and the dominant network term is not the pixel reply but
the **ray exchange**: every wavefront round ships ray batches to the
shard owners and their answers back.

A :class:`ShardProfile` is measured from a real sharded trace
(:class:`~repro.shard.engine.ShardTraceStats`) at a small shard count and
extrapolated to the sweep's 100-1000 workers: total ray work is constant,
but the routing *fan-out* (how many owners each ray visits) grows as
domains shrink.  We model fan-out as ``1 + (q0 - 1) * sqrt(K / K0)``
(clamped to K), the surface-to-volume scaling of box overlap for a
median-split — documented here because BENCH_shard.json depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.config import RenderFarmConfig
from .engine import ShardTraceStats

__all__ = ["ShardOracle", "ShardProfile"]


@dataclass(frozen=True)
class ShardProfile:
    """Measured per-frame ray-exchange behaviour of a sharded trace.

    Attributes
    ----------
    n_shards:
        Shard count the profile was measured at.
    n_frames:
        Frames profiled.
    n_pixels:
        Frame resolution (pixels).
    rays_routed:
        ``(F,)`` total rays *received* across all shards per frame (each
        ray counted once per owner that served it).
    rays_traced:
        ``(F,)`` distinct rays fired per frame (the serial tracer's
        count; fan-out = rays_routed / rays_traced).
    xfer_bytes:
        ``(F,)`` request+reply payload bytes per frame.
    """

    n_shards: int
    n_frames: int
    n_pixels: int
    rays_routed: tuple[int, ...]
    rays_traced: tuple[int, ...]
    xfer_bytes: tuple[int, ...]

    @classmethod
    def from_stats(
        cls,
        per_frame: list[tuple[ShardTraceStats, int]],
        n_pixels: int,
    ) -> "ShardProfile":
        """Build from per-frame ``(shard_stats, rays_traced)`` pairs."""
        if not per_frame:
            raise ValueError("need at least one profiled frame")
        k = per_frame[0][0].n_shards
        return cls(
            n_shards=k,
            n_frames=len(per_frame),
            n_pixels=int(n_pixels),
            rays_routed=tuple(int(st.rays_recv.sum()) for st, _ in per_frame),
            rays_traced=tuple(int(r) for _, r in per_frame),
            xfer_bytes=tuple(int(st.total_ray_bytes) for st, _ in per_frame),
        )

    def fanout(self) -> float:
        """Average owners visited per ray at the measured shard count."""
        routed = sum(self.rays_routed)
        traced = max(1, sum(self.rays_traced))
        return routed / traced

    def bytes_per_routed_ray(self) -> float:
        routed = max(1, sum(self.rays_routed))
        return sum(self.xfer_bytes) / routed


class ShardOracle:
    """Cost model for object-space assignments (OracleCostModel surface).

    An assignment's region index is a *shard*; its cost for frame ``f``
    is that shard's slice of the routed-ray work at the target shard
    count, and its reply bytes include the shard's share of the ray
    exchange — which is what lets the simulator's shared-Ethernet model
    answer the saturation question.
    """

    def __init__(
        self,
        profile: ShardProfile,
        n_shards: int | None = None,
        cfg: RenderFarmConfig | None = None,
    ) -> None:
        self.profile = profile
        self.n_shards = int(n_shards) if n_shards is not None else profile.n_shards
        if self.n_shards < 1:
            raise ValueError("need at least one shard")
        self.cfg = cfg or RenderFarmConfig()
        q0 = profile.fanout()
        scale = np.sqrt(self.n_shards / max(1, profile.n_shards))
        self.fanout = float(min(self.n_shards, 1.0 + (q0 - 1.0) * scale))
        self._bytes_per_ray = profile.bytes_per_routed_ray()

    # -- OracleCostModel surface -------------------------------------------
    def region_pixels(self, region_index: int):
        return None  # shards are object sets, not pixel blocks

    def region_size(self, region_index: int) -> int:
        return max(1, self.profile.n_pixels // self.n_shards)

    def _frame_rays(self, frame: int) -> int:
        f = frame % self.profile.n_frames  # profiles tile over longer runs
        routed = self.profile.rays_traced[f] * self.fanout
        return max(1, int(round(routed / self.n_shards)))

    def frame_cost(self, region_index: int, frame: int, *, coherent: bool, chain_start: bool):
        from ..sched.cost import FrameCost

        rays = self._frame_rays(frame)
        size = self.region_size(region_index)
        return FrameCost(
            frame=frame,
            rays=rays,
            n_computed=size,
            units=float(self.cfg.task_units(rays, False)),
            ws_mb=float(self.cfg.nofc_working_set_mb(size)),
            chain_start=False,
        )

    def assignment_cost(self, a):
        from ..sched.cost import AssignmentCost

        steps = tuple(
            self.frame_cost(a.region_index, f, coherent=False, chain_start=False)
            for f in range(a.frame0, a.frame1)
        )
        rays = sum(s.rays for s in steps)
        n_computed = sum(s.n_computed for s in steps)
        ray_bytes = int(round(rays * self._bytes_per_ray))
        return AssignmentCost(
            rays=int(rays),
            n_computed=int(n_computed),
            units=float(sum(s.units for s in steps)),
            ws_mb=float(max((s.ws_mb for s in steps), default=0.0)),
            reply_bytes=self.cfg.result_bytes(max(n_computed, 1)) + ray_bytes,
            per_frame=steps,
        )

    def total_rays_of_log(self, log) -> int:
        return sum(self.assignment_cost(a).rays for a in log)

    def ray_bytes_of_log(self, log) -> int:
        """Modelled ray-exchange bytes of a dispatch log (BENCH metric)."""
        return int(round(sum(self.assignment_cost(a).rays for a in log) * self._bytes_per_ray))
