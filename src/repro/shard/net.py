"""ShardSession: drive the sharded wavefront trace over real TCP lanes.

This is the network half of object-space sharding (DESIGN §16).  The
master owns the camera, the framebuffer and the wavefront generator
(:func:`~repro.shard.engine.sharded_trace`); workers own scene shards
and answer intersection/occlusion/shading queries.  The session plugs
into :class:`~repro.net.master.MasterServer` as its ``session`` hook so
the star topology, heartbeat machinery and loss detection of the plain
farm survive unchanged — only the dispatch loop is replaced:

* the :class:`~repro.sched.core.ObjectSpacePolicy` stays the ownership
  authority: binding a shard to a lane *is* pulling that shard's unit
  from the policy (``allow_multi`` lets one lane own many shards while
  K exceeds the worker count);
* every outgoing RAYS/SHADE request is held in a **rid-keyed outbox
  ledger** until its reply lands.  When a lane dies, the policy requeues
  its shard units (front of queue), the session orphans the lane's
  outstanding requests, and the next pump re-binds the shards and
  replays the requests to the new owners.  Replies are pure functions of
  ``(spec, frame, k, shard, request)``, so the replayed run's composite
  is bit-identical — the property ``tools/shard_smoke.py`` drills;
* a round's replies are fed back to the generator only when *all* of
  them have landed (the wavefront barrier), so reply arrival order never
  affects the accumulation order that determinism rests on.
"""

from __future__ import annotations

from ..net import protocol as wire
from ..render.framebuffer import Framebuffer
from ..sched.core import ObjectSpacePolicy
from .engine import ShardTraceStats, sharded_trace
from .partition import partition_scene

__all__ = ["ShardSession", "render_sharded_tcp"]


class ShardSession:
    """One sharded render run, pumped by the master's selectors loop.

    Parameters
    ----------
    spec:
        The :class:`~repro.runtime.spec.AnimationSpec` workers rebuild
        the scene from (nothing heavier than the recipe crosses the
        wire, same as the paper's PVM slaves re-parsing the scene).
    animation:
        The master's own build of the same spec (camera + reference for
        per-frame shard maps).
    n_frames:
        Frames to render (``[0, n_frames)``).
    shards:
        Shard count K; must equal the policy's ``n_shards``.
    samples_per_axis / chunk_size:
        Forwarded to :func:`~repro.shard.engine.sharded_trace`.
    max_attempts:
        Ceiling on sends of one shard request before the run fails
        loudly (the replay loop's runaway guard).
    """

    def __init__(
        self,
        spec,
        animation,
        n_frames: int,
        shards: int,
        *,
        samples_per_axis: int = 1,
        chunk_size: int = 32768,
        max_attempts: int = 5,
        min_lanes: int = 1,
    ) -> None:
        self.spec_payload = {"factory": spec.factory, "kwargs": dict(spec.kwargs)}
        self.animation = animation
        self.n_frames = int(n_frames)
        self.k = int(shards)
        self.samples_per_axis = int(samples_per_axis)
        self.chunk_size = int(chunk_size)
        self.max_attempts = max(1, int(max_attempts))
        #: Lanes to wait for before the first shard binding.  Binding on
        #: the very first join would hand every shard to whichever worker
        #: won the connect race; waiting makes ownership (and the dispatch
        #: log) a function of the worker count, not of accept timing.
        self.min_lanes = max(1, int(min_lanes))
        #: Completed frames, in order: one Framebuffer per frame.
        self.frames: list[Framebuffer] = []
        self.results: list = []  # TraceResult per frame
        self.stats: list[ShardTraceStats] = []
        self.n_replays = 0  # requests re-sent after a lane loss
        self.done = False
        self.frame = 0
        self._scene = None
        self._gen = None
        self._round: dict | None = None
        self._outstanding: dict[int, dict] = {}  # rid -> ledger entry
        self._unsent: set[int] = set()
        self._next_rid = 0
        self._bound: dict[str, list] = {}  # lane -> policy assignments held

    # -- master hooks ------------------------------------------------------
    def pump(self, master, sel, now: float) -> None:
        """One scheduling beat: bind shards, start frames, flush sends."""
        if self.done:
            return
        lanes = {
            c.name: c
            for c in master._conns.values()
            if c.registered and not c.closed
        }
        if not lanes:
            if now - master._last_progress > master.accept_timeout:
                raise RuntimeError(
                    f"no shard owners connected within {master.accept_timeout:.1f}s "
                    "with frames still pending"
                )
            return
        if self._gen is None and len(lanes) < self.min_lanes:
            # Deterministic start: hold the first binding until the full
            # crew joins (or the startup window closes — a worker that
            # never comes must not hang the run).
            if now - master._t0 < (master.startup_timeout or 30.0):
                return
        self._bind(master, lanes, now)
        if self._gen is None:
            self._begin()
            self._step(master, None, first=True)
            if self.done:
                return
        self._flush(master, sel, lanes, now)

    def on_reply(self, master, conn, msg_type: int, payload, nbytes: int) -> None:
        """A RAYS/SHADE answer landed: settle its ledger entry; advance
        the generator when the round's last answer is in."""
        if not isinstance(payload, dict):
            return
        entry = self._outstanding.pop(payload.get("rid"), None)
        if entry is None:
            return  # duplicate after a replay, or a zombie lane's answer
        self._unsent.discard(entry["rid"])
        rnd = self._round
        rnd["replies"][entry["slot"]] = {
            k: v for k, v in payload.items() if k != "rid"
        }
        rnd["missing"] -= 1
        if rnd["missing"] == 0:
            replies, self._round = rnd["replies"], None
            self._step(master, replies)

    def on_worker_lost(self, master, worker: str) -> None:
        """Called after ``policy.on_worker_lost`` requeued the lane's
        shard units: orphan its ledger entries so the next pump replays
        them to the reassigned owners."""
        self._bound.pop(worker, None)
        for rid, entry in self._outstanding.items():
            if entry["lane"] == worker:
                entry["lane"] = None
                self._unsent.add(rid)
                self.n_replays += 1

    # -- internals ---------------------------------------------------------
    def _bind(self, master, lanes: dict, now: float) -> None:
        """Pull shard units from the policy onto the least-loaded lanes."""
        while True:
            name = min(lanes, key=lambda n: (len(self._bound.get(n, [])), n))
            a = master.policy.next_assignment(name)
            if a is None:
                return
            self._bound.setdefault(name, []).append(a)
            master._lanes_of[a.seq] = name
            master.net.n_assignments += 1
            master.telemetry.event(
                "net.assign",
                worker=name,
                seq=a.seq,
                frame0=a.frame0,
                frame1=a.frame1,
                region=a.region_index,
                nbytes=0,
            )
            master._last_progress = now

    def _begin(self) -> None:
        """Set up frame ``self.frame``'s scene, shard map and generator."""
        scene = self.animation.scene_at(self.frame)
        smap = partition_scene(scene, self.k)
        if smap.n_shards != self.k:
            raise RuntimeError(
                f"frame {self.frame} partitions into {smap.n_shards} shards, "
                f"but the policy owns {self.k}"
            )
        sstats = ShardTraceStats(self.k)
        self._scene = scene
        self._frame_stats = sstats
        self._gen = sharded_trace(
            scene,
            smap,
            scene.camera.pixel_grid(),
            samples_per_axis=self.samples_per_axis,
            chunk_size=self.chunk_size,
            shard_stats=sstats,
        )

    def _step(self, master, replies, *, first: bool = False) -> None:
        """Advance the generator to its next non-empty round (possibly
        crossing frame boundaries) and ledger the round's requests."""
        while True:
            try:
                reqs = next(self._gen) if first else self._gen.send(replies)
            except StopIteration as stop:
                self._finish_frame(master, stop.value)
                if self.done:
                    return
                self._begin()
                first, replies = True, None
                continue
            if not reqs:
                first, replies = False, []
                continue
            break
        self._round = {"replies": [None] * len(reqs), "missing": len(reqs)}
        for slot, req in enumerate(reqs):
            rid = self._next_rid
            self._next_rid += 1
            msg_type = wire.MSG_SHADE if req.op == "shade" else wire.MSG_RAYS
            self._outstanding[rid] = {
                "rid": rid,
                "slot": slot,
                "shard": int(req.shard),
                "msg_type": msg_type,
                "payload": {
                    "rid": rid,
                    "shard": int(req.shard),
                    "frame": self.frame,
                    "k": self.k,
                    "op": req.op,
                    "spec": self.spec_payload,
                    **req.payload,
                },
                "lane": None,
                "attempts": 0,
            }
            self._unsent.add(rid)

    def _flush(self, master, sel, lanes: dict, now: float) -> None:
        """Send every unsent/orphaned ledger entry whose shard has a live
        owner.  Entries whose shard is unbound (owner lost, not yet
        re-pulled) stay queued for the next pump."""
        for rid in sorted(self._unsent):
            entry = self._outstanding.get(rid)
            if entry is None or entry["lane"] is not None:
                self._unsent.discard(rid)
                continue
            owner = master.policy.shard_owner.get(entry["shard"])
            conn = lanes.get(owner) if owner is not None else None
            if conn is None or conn.closed:
                continue
            entry["attempts"] += 1
            if entry["attempts"] > self.max_attempts:
                raise RuntimeError(
                    f"shard request {rid} (shard {entry['shard']}, frame "
                    f"{self.frame}) failed after {self.max_attempts} attempts"
                )
            try:
                master._send(conn, entry["msg_type"], entry["payload"])
            except OSError:
                master._lose(sel, conn, "eof")  # orphans this entry too
                continue
            entry["lane"] = owner
            self._unsent.discard(rid)
            master._last_progress = now

    def _finish_frame(self, master, result) -> None:
        scene = self._scene
        fb = Framebuffer(scene.camera.width, scene.camera.height)
        fb.scatter(result.pixel_ids, result.colors)
        self.frames.append(fb)
        self.results.append(result)
        stats = self._frame_stats
        self.stats.append(stats)
        for s in range(self.k):
            owner = master.policy.shard_owner.get(s)
            master.telemetry.event(
                "shard.rays",
                worker=owner or "?",
                shard=s,
                frame=self.frame,
                n_local=int(stats.rays_local[s]),
                n_forwarded=int(stats.rays_fwd_out[s]),
            )
            master.telemetry.event(
                "shard.xfer",
                worker=owner or "?",
                shard=s,
                frame=self.frame,
                n_rays=int(stats.rays_recv[s]),
                nbytes=int(stats.bytes_to[s] + stats.bytes_from[s]),
            )
        self._gen = None
        self._scene = None
        self.frame += 1
        if self.frame >= self.n_frames:
            self._complete(master)

    def _complete(self, master) -> None:
        """All frames composited: retire every bound shard unit so the
        policy (and with it the master's serve loop) finishes."""
        for name, held in self._bound.items():
            for a in held:
                master.policy.on_result(name, a)
        self.done = True


def render_sharded_tcp(
    spec,
    *,
    frames: int | None = None,
    shards: int = 4,
    n_workers: int = 2,
    samples_per_axis: int = 1,
    chunk_size: int = 32768,
    die_after_rays: dict[int, int] | None = None,
    telemetry=None,
    blackbox_dir=None,
    worker_verbose: bool = False,
    **master_kwargs,
):
    """Render an animation object-space sharded over loopback TCP.

    Spawns ``n_workers`` real worker daemons, binds the K shards across
    them through an :class:`~repro.sched.core.ObjectSpacePolicy`, and
    drives the wavefront trace through a :class:`ShardSession`.  Returns
    ``(session, outcome)`` — ``session.frames`` holds one Framebuffer
    per frame, bit-identical to ``RayTracer(scene).render()``'s, even
    when ``die_after_rays`` kills a shard owner mid-run.

    ``blackbox_dir`` arms the flight recorder (DESIGN §17) on the master
    *and* every spawned daemon: a shard owner killed by ``die_after_rays``
    leaves ``blackbox_worker_<pid>.jsonl`` there, and the session's
    ``net.worker.lost`` event points at it.
    """
    from ..net.master import TcpTransport

    anim = spec.build()
    n_frames = anim.n_frames if frames is None else int(frames)
    if not 1 <= n_frames <= anim.n_frames:
        raise ValueError(f"frames must be in [1, {anim.n_frames}]")
    k = partition_scene(anim.scene_at(0), shards).n_shards  # clamped to n_objects
    policy = ObjectSpacePolicy(k, n_frames)
    policy.allow_multi = True  # one TCP lane may own many shards
    session = ShardSession(
        spec,
        anim,
        n_frames,
        k,
        samples_per_axis=samples_per_axis,
        chunk_size=chunk_size,
        min_lanes=n_workers,
    )
    transport = TcpTransport(
        policy,
        "shard.query",  # never dispatched: the session replaces ASSIGN
        lambda a, worker: None,
        n_workers=n_workers,
        die_after_rays=die_after_rays,
        blackbox_dir=blackbox_dir,
        worker_verbose=worker_verbose,
        session=session,
        minor_floor=4,  # shard lanes must speak RAYS/SHADE
        **({"telemetry": telemetry} if telemetry is not None else {}),
        **master_kwargs,
    )
    outcome = transport.run()
    return session, outcome
