"""The worker daemon: ``python -m repro.worker --connect HOST:PORT``.

One daemon is one rendering slave on the network of workstations.  It
connects to a :class:`~repro.net.master.MasterServer`, introduces itself
(hostname, core count, and a measured **calibration score** — relative
compute speed, the real-world stand-in for the simulator's
machine-speed table that :class:`~repro.sched.cost.OracleCostModel`
prices against), then serves assignments until the master says stop:

* a **reader thread** owns the socket's receive side: heartbeat PINGs
  are answered immediately (so the master can tell "dead" from "busy
  rendering"), assignments are queued for the render loop;
* the **render loop** executes one assignment at a time through the
  :mod:`~repro.net.tasks` registry and streams the framed result back,
  zlib-compressing framebuffer arrays when the master asked for it;
* a dropped connection triggers **reconnection with exponential
  backoff** (which also covers "worker started before the master"); a
  clean SHUTDOWN ends the daemon.

``die_after=N`` is the fault hook: the daemon hard-exits
(``os._exit``) on receiving its ``N+1``-th assignment — a deterministic
stand-in for a workstation crashing mid-sequence, used by the recovery
tests and the CI ``net-smoke`` drill.  ``die_after_frames=N`` is the
mid-task variant: the daemon dies the moment frame event ``N+1`` crosses
the telemetry spine, i.e. *inside* an assignment with the task span still
open — the scenario the flight-recorder black box (DESIGN §17) exists
for.  Every kill path dumps the ring first; on (re)connect the daemon
ships any black boxes a predecessor process left in ``--blackbox-dir``
to the master over ``MSG_BLACKBOX``, so post-mortems survive even when
the run directory is not shared storage.

In **object-space sharded** runs (protocol minor 4, DESIGN §16) the
worker additionally serves RAYS/SHADE queries against the scene shard it
owns: it rebuilds the scene from the animation spec named in the request
(the same no-live-data-on-the-wire rule the paper's PVM slaves followed),
partitions it with the deterministic :mod:`repro.shard` splitter, and
answers intersection/occlusion/shading queries for its members.  Because
replies are pure functions of ``(spec, frame, k, shard, request)``, a
replacement owner answers replayed requests bit-identically — which is
what makes the master's outbox-ledger replay after a crash exact.
``die_after_rays=N`` is the matching fault hook: hard-exit before
serving shard request ``N+1`` (the CI ``shard-smoke`` drill).
"""

from __future__ import annotations

import argparse
import os
import queue
import random
import socket
import threading
import time
import zlib

import numpy as np

from ..dfb import tile_rects
from ..obs.flight import FlightRecorder, blackbox_filename, read_blackbox
from ..telemetry import InMemorySink, Telemetry
from . import protocol as wire
from .tasks import REGISTRY

__all__ = ["WorkerClient", "calibrate", "main"]

#: Exit codes: clean shutdown / gave up reconnecting / injected crash.
EXIT_OK = 0
EXIT_GAVE_UP = 1
EXIT_INJECTED_CRASH = 17


def calibrate(n: int = 40, size: int = 64) -> float:
    """A quick relative-speed score: repetitions/second of a small fixed
    numpy workload (matmul + transcendental), normalized so ~1.0 is a
    mid-2020s laptop core.  Deliberately coarse — the master only needs
    an ordering, the way the paper's farm knew the 250 MHz machine from
    the 180 MHz ones."""
    a = np.linspace(0.0, 1.0, size * size).reshape(size, size)
    t0 = time.perf_counter()
    for _ in range(n):
        a = np.tanh(a @ a.T * 1e-3 + 0.1)
    elapsed = max(1e-9, time.perf_counter() - t0)
    return round(n / elapsed / 2000.0, 4)


class _ConnectionLost(Exception):
    """Reader thread saw EOF or a socket error."""


class _TileSink:
    """The worker half of the distributed framebuffer: cut each finished
    frame region into the master's tile grid and stream MSG_TILE frames.

    A streaming task calls ``sink(frame, x0, y0, image)`` once per
    finished frame, where ``image`` is the ``(h, w, 3)`` pixels of its
    region with absolute origin ``(x0, y0)``.  Tiles the master already
    holds (the ASSIGN's skip list — a lost predecessor streamed them)
    are rendered but not re-shipped.  Shares the socket's send lock with
    the heartbeat-responder thread.
    """

    __slots__ = ("sock", "seq", "tile_px", "skip", "lock", "compress", "compress_min", "n_sent")

    def __init__(self, sock, seq: int, directive: dict, lock, compress: bool, compress_min: int):
        self.sock = sock
        self.seq = int(seq)
        self.tile_px = int(directive.get("tile_px", 32) or 32)
        self.skip = {tuple(int(v) for v in key) for key in directive.get("skip", ())}
        self.lock = lock
        self.compress = compress
        self.compress_min = compress_min
        self.n_sent = 0

    def __call__(self, frame: int, x0: int, y0: int, image: np.ndarray) -> None:
        frame, x0, y0 = int(frame), int(x0), int(y0)
        h, w = image.shape[:2]
        for tx0, ty0, tx1, ty1 in tile_rects(x0, y0, x0 + w, y0 + h, self.tile_px):
            if (frame, tx0, ty0, tx1, ty1) in self.skip:
                continue
            wire.send_frame(
                self.sock,
                wire.MSG_TILE,
                {
                    "seq": self.seq,
                    "frame": frame,
                    "x0": tx0,
                    "y0": ty0,
                    "x1": tx1,
                    "y1": ty1,
                    "pixels": np.ascontiguousarray(
                        image[ty0 - y0 : ty1 - y0, tx0 - x0 : tx1 - x0]
                    ),
                },
                lock=self.lock,
                compress_arrays=self.compress,
                compress_min_bytes=self.compress_min,
            )
            self.n_sent += 1


class WorkerClient:
    """One connection lifecycle manager (plus its reconnect loop).

    Parameters
    ----------
    host, port:
        The master's address.
    registry:
        Task name -> callable (defaults to :data:`repro.net.tasks.REGISTRY`).
    max_retries:
        Connection attempts per (re)connect before giving up.
    backoff_base / backoff_cap:
        Exponential backoff between attempts, seconds.
    die_after:
        Crash hard on receiving assignment number ``die_after + 1``
        (``None`` = never); see the module docstring.
    die_after_rays:
        Crash hard before serving shard request number
        ``die_after_rays + 1`` (``None`` = never) — the object-space
        analogue of ``die_after``, used by the shard-loss replay drill.
    die_after_frames:
        Crash hard the instant frame event ``die_after_frames + 1``
        crosses the telemetry spine (``None`` = never) — a *mid-task*
        crash with the task span still open, the black-box drill.
    blackbox_dir:
        Where the flight recorder dumps ``blackbox_worker_<pid>.jsonl``
        on a kill path (``None`` = no file dumps).  Predecessor dumps
        found here are shipped to the master on (re)connect.
    score:
        Calibration score override (``None`` = measure one now).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        registry: dict | None = None,
        max_retries: int = 20,
        backoff_base: float = 0.2,
        backoff_cap: float = 3.0,
        die_after: int | None = None,
        die_after_rays: int | None = None,
        die_after_frames: int | None = None,
        blackbox_dir=None,
        score: float | None = None,
        label: str | None = None,
        verbose: bool = False,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.registry = registry if registry is not None else REGISTRY
        self.max_retries = max(1, int(max_retries))
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.die_after = die_after
        self.die_after_rays = die_after_rays
        self.die_after_frames = die_after_frames
        self.score = calibrate() if score is None else float(score)
        self.label = label or f"{socket.gethostname()}:{os.getpid()}"
        self.verbose = verbose
        self.worker_id = ""
        self.n_rendered = 0
        self._n_assigned = 0
        self._n_shard_served = 0
        # (factory, kwargs-repr, frame, k, shard) -> ShardWorker; scenes
        # are expensive to rebuild and one frame sees many requests.
        self._shard_workers: dict = {}
        self._send_lock = threading.Lock()
        self._compress = True
        self._compress_min = 4096
        self._tiles = False  # tile-streaming grant from WELCOME
        # Worker-side net telemetry rides to the master inside the next
        # RESULT/ERROR frame (a disconnected worker has no other channel).
        self._sink = InMemorySink()
        self._tel = Telemetry(sinks=(self._sink,))
        # The black box: taps every telemetry record this process emits
        # (including the short-lived per-task sessions) and dumps the
        # ring on any kill path.  The frame-counting hook is how
        # ``die_after_frames`` sees frames rendered *inside* a task.
        self.recorder = FlightRecorder("worker", blackbox_dir)
        self.recorder.hook = self._on_record
        self._n_frames_seen = 0
        self._shipped: set[str] = set()  # black boxes already sent upstream

    # -- logging ---------------------------------------------------------------
    def _log(self, msg: str) -> None:
        if self.verbose:
            print(f"[repro.worker {self.label}] {msg}", flush=True)

    def _drain_events(self) -> list:
        events, self._sink.events[:] = list(self._sink.events), []
        return events

    # -- flight recorder -------------------------------------------------------
    def _on_record(self, rec: dict) -> None:
        """Recorder hook: count frame events for the mid-task fault drill.

        Frame completions are point events emitted by the render engine
        from *inside* the task function, so this is the only place the
        daemon can observe them — and crashing here leaves the task span
        open, which is exactly what the black-box stitch test wants."""
        if rec.get("name") != "frame":
            return
        self._n_frames_seen += 1
        if (
            self.die_after_frames is not None
            and self._n_frames_seen > self.die_after_frames
        ):
            self._log(f"injected crash on frame {self._n_frames_seen} (mid-task)")
            self.recorder.dump("die-after-frames")
            os._exit(EXIT_INJECTED_CRASH)

    def _ship_blackboxes(self, sock: socket.socket) -> None:
        """Send any black boxes a *predecessor* worker process left in the
        dump directory to the master (MSG_BLACKBOX, protocol minor 5).

        This is how a post-mortem escapes a workstation whose disk the
        master cannot read: the replacement daemon finds the corpse's
        ring on its local disk and relays it over the fresh connection.
        Each file ships at most once per daemon lifetime; re-shipping by
        a later replacement is idempotent (the master rewrites the same
        role/pid-named file with the same records)."""
        if self.recorder.out_dir is None:
            return
        try:
            candidates = sorted(self.recorder.out_dir.glob("blackbox_worker_*.jsonl"))
        except OSError:
            return
        own = blackbox_filename("worker", self.recorder.pid)
        for path in candidates:
            if path.name == own or str(path) in self._shipped:
                continue
            try:
                records = read_blackbox(path)
            except OSError:
                continue
            if not records:
                continue
            meta = records[0].get("attrs") or {} if isinstance(records[0], dict) else {}
            wire.send_frame(
                sock,
                wire.MSG_BLACKBOX,
                {
                    "role": "worker",
                    "pid": int(meta.get("pid", 0) or 0),
                    "reason": str(meta.get("reason", "recovered")),
                    "records": records,
                },
                lock=self._send_lock,
            )
            self._shipped.add(str(path))
            self._log(f"shipped black box {path.name} ({len(records)} records)")

    # -- connection ------------------------------------------------------------
    def backoff_delays(self):
        """The reconnect schedule: capped exponential with deterministic
        per-worker jitter, ``max_retries`` long.

        When a master restarts, every surviving daemon notices the dropped
        connection at the same instant; a bare exponential would march
        them all back in lockstep — a thundering herd hammering the fresh
        listener on every rung of the schedule.  Each delay is therefore
        scaled by a jitter factor in ``[0.5, 1.5)`` drawn from a PRNG
        seeded by the worker's label, so the herd spreads out while any
        one worker's schedule stays exactly reproducible (the property the
        reconnect tests pin)."""
        rng = random.Random(zlib.crc32(self.label.encode("utf-8")))
        for attempt in range(self.max_retries):
            jitter = 0.5 + rng.random()
            yield min(self.backoff_cap, self.backoff_base * (2.0**attempt) * jitter)

    def _connect(self) -> socket.socket | None:
        """Dial the master, retrying with backoff; None when out of retries."""
        for attempt, delay in enumerate(self.backoff_delays()):
            try:
                sock = socket.create_connection((self.host, self.port), timeout=10.0)
            except OSError as exc:
                self._log(f"connect attempt {attempt} failed ({exc}); retry in {delay:.2f}s")
                time.sleep(delay)
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._tel.event(
                "net.connect",
                worker=self.label,
                host=self.host,
                port=self.port,
                attempt=attempt,
            )
            return sock
        return None

    def _handshake(self, sock: socket.socket) -> str:
        """Register with the master; returns ``"ok"``, ``"rejected"``
        (master answered SHUTDOWN — protocol revision mismatch; exit
        cleanly instead of reconnect-looping) or ``"lost"``."""
        wire.send_frame(
            sock,
            wire.MSG_HELLO,
            {
                "proto": wire.PROTO_VERSION,
                "minor": wire.PROTO_MINOR,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "cores": os.cpu_count() or 1,
                "score": self.score,
            },
            lock=self._send_lock,
        )
        got = wire.recv_frame(sock)
        if got is None:
            return "lost"
        if got[0] == wire.MSG_SHUTDOWN:
            self._log("master rejected the handshake (protocol revision); exiting")
            return "rejected"
        if got[0] != wire.MSG_WELCOME:
            return "lost"
        welcome = got[1]
        self.worker_id = str(welcome.get("worker", ""))
        self._compress = bool(welcome.get("compress", True))
        self._compress_min = int(welcome.get("compress_min_bytes", 4096))
        self._tiles = bool(welcome.get("tiles", False))
        self._log(f"registered as {self.worker_id!r}")
        return "ok"

    # -- receive side ----------------------------------------------------------
    def _reader(self, sock: socket.socket, inbox: queue.Queue) -> None:
        """Owns recv: answer pings inline, queue everything else."""
        try:
            while True:
                got = wire.recv_frame(sock)
                if got is None:
                    break
                msg_type, payload = got
                if msg_type == wire.MSG_PING:
                    # tw samples this worker's clock at the reply: with the
                    # echoed t and the measured rtt the master estimates
                    # per-worker skew (obs.clock) and folds remote span
                    # timestamps onto its own time axis.
                    wire.send_frame(
                        sock,
                        wire.MSG_PONG,
                        {"t": payload.get("t", 0.0), "tw": time.perf_counter()},
                        lock=self._send_lock,
                    )
                elif msg_type == wire.MSG_ASSIGN:
                    inbox.put(("assign", payload))
                elif msg_type in (wire.MSG_RAYS, wire.MSG_SHADE):
                    inbox.put(("shard", (msg_type, payload)))
                elif msg_type == wire.MSG_SHUTDOWN:
                    inbox.put(("shutdown", None))
                    return
                # anything else from the master is ignored, not fatal
        except (OSError, wire.ProtocolError):
            pass
        inbox.put(("lost", None))

    # -- work ------------------------------------------------------------------
    def _run_assignment(self, sock: socket.socket, payload: dict) -> None:
        self._n_assigned += 1
        if self.die_after is not None and self._n_assigned > self.die_after:
            self._log(f"injected crash on assignment {self._n_assigned}")
            self.recorder.dump("die-after")
            os._exit(EXIT_INJECTED_CRASH)
        seq = int(payload.get("seq", -1))
        name = str(payload.get("task", ""))
        fn = self.registry.get(name)
        t0 = time.perf_counter()
        try:
            if fn is None:
                raise wire.ProtocolError(f"unregistered task {name!r}")
            directive = payload.get("tiles")
            if (
                self._tiles
                and isinstance(directive, dict)
                and getattr(fn, "streaming", False)
            ):
                sink = _TileSink(
                    sock, seq, directive, self._send_lock,
                    self._compress, self._compress_min,
                )
                result = fn(payload.get("args"), emit_tile=sink)
            else:
                result = fn(payload.get("args"))
        except Exception as exc:  # reported, not fatal: the master decides
            wire.send_frame(
                sock,
                wire.MSG_ERROR,
                {"seq": seq, "error": repr(exc), "events": self._drain_events()},
                lock=self._send_lock,
            )
            return
        self.n_rendered += 1
        wire.send_frame(
            sock,
            wire.MSG_RESULT,
            {
                "seq": seq,
                "result": result,
                "duration": time.perf_counter() - t0,
                "events": self._drain_events(),
            },
            lock=self._send_lock,
            compress_arrays=self._compress,
            compress_min_bytes=self._compress_min,
        )

    # -- object-space sharding (protocol minor 4) ------------------------------
    def _shard_worker_for(self, spec: dict, frame: int, k: int, shard: int):
        """Build (or fetch) the ShardWorker owning ``shard`` of this frame.

        The scene is rebuilt from the animation spec and re-partitioned
        locally — the owner map is a pure function of ``(scene, k)``, so
        master and worker agree on membership without shipping it.
        """
        from ..runtime.spec import AnimationSpec
        from ..shard import ShardWorker, partition_scene

        kwargs = dict(spec.get("kwargs") or {})
        key = (str(spec["factory"]), repr(sorted(kwargs.items())), frame, k, shard)
        worker = self._shard_workers.get(key)
        if worker is None:
            scene = AnimationSpec(str(spec["factory"]), kwargs).build().scene_at(frame)
            worker = ShardWorker(scene, partition_scene(scene, k), shard)
            if len(self._shard_workers) >= 4:  # tiny LRU: evict the oldest
                self._shard_workers.pop(next(iter(self._shard_workers)))
            self._shard_workers[key] = worker
        return worker

    def _run_shard(self, sock: socket.socket, msg_type: int, payload: dict) -> None:
        self._n_shard_served += 1
        if self.die_after_rays is not None and self._n_shard_served > self.die_after_rays:
            self._log(f"injected crash on shard request {self._n_shard_served}")
            self.recorder.dump("die-after-rays")
            os._exit(EXIT_INJECTED_CRASH)
        rid = payload.get("rid")
        try:
            op = "shade" if msg_type == wire.MSG_SHADE else str(payload.get("op", "nearest"))
            worker = self._shard_worker_for(
                payload["spec"],
                int(payload.get("frame", 0)),
                int(payload["k"]),
                int(payload["shard"]),
            )
            result = worker.serve(op, payload)
        except Exception as exc:  # master drops the lane and replays elsewhere
            wire.send_frame(
                sock,
                wire.MSG_ERROR,
                {"seq": -1, "rid": rid, "error": repr(exc), "events": self._drain_events()},
                lock=self._send_lock,
            )
            return
        wire.send_frame(
            sock,
            msg_type,
            {"rid": rid, **result},
            lock=self._send_lock,
            compress_arrays=self._compress,
            compress_min_bytes=self._compress_min,
        )

    def _serve(self, sock: socket.socket) -> str:
        """Serve one connection to completion; returns why it ended."""
        hs = self._handshake(sock)
        if hs != "ok":
            return "shutdown" if hs == "rejected" else "lost"
        try:
            self._ship_blackboxes(sock)
        except OSError:
            return "lost"
        inbox: queue.Queue = queue.Queue()
        reader = threading.Thread(
            target=self._reader, args=(sock, inbox), name="repro-net-reader", daemon=True
        )
        reader.start()
        while True:
            kind, payload = inbox.get()
            if kind == "assign":
                try:
                    self._run_assignment(sock, payload)
                except OSError:
                    return "lost"
            elif kind == "shard":
                try:
                    self._run_shard(sock, *payload)
                except OSError:
                    return "lost"
            else:
                return kind  # "shutdown" | "lost"

    def run(self) -> int:
        """Connect (and reconnect) until shut down; returns an exit code."""
        self.recorder.install()  # record for the daemon's whole lifetime
        try:
            while True:
                sock = self._connect()
                if sock is None:
                    self._log("out of connection retries; giving up")
                    return EXIT_GAVE_UP
                try:
                    ended = self._serve(sock)
                finally:
                    try:
                        sock.close()
                    except OSError:
                        pass
                if ended == "shutdown":
                    self._log(f"clean shutdown after {self.n_rendered} assignments")
                    return EXIT_OK
                self._log("connection lost; reconnecting")
        finally:
            self.recorder.uninstall()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (both ``python -m repro.worker`` and ``repro worker``)."""
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Rendering worker daemon: connect to a repro.net master and serve "
        "assignments until shut down.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="address of the repro.net master",
    )
    parser.add_argument(
        "--score", type=float, default=None,
        help="calibration score override (default: measure a quick benchmark)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=20,
        help="connection attempts (exponential backoff) before giving up",
    )
    parser.add_argument(
        "--die-after", type=int, default=None, metavar="N",
        help="fault drill: crash hard on receiving assignment N+1",
    )
    parser.add_argument(
        "--die-after-rays", type=int, default=None, metavar="N",
        help="fault drill: crash hard before serving shard request N+1",
    )
    parser.add_argument(
        "--die-after-frames", type=int, default=None, metavar="N",
        help="fault drill: crash hard (mid-task) on rendering frame N+1",
    )
    parser.add_argument(
        "--blackbox-dir", default=None, metavar="DIR",
        help="flight-recorder dump directory (black boxes land here on a crash)",
    )
    parser.add_argument("--verbose", action="store_true", help="log to stdout")
    args = parser.parse_args(argv)

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect wants HOST:PORT, got {args.connect!r}")
    client = WorkerClient(
        host,
        int(port),
        score=args.score,
        max_retries=args.max_retries,
        die_after=args.die_after,
        die_after_rays=args.die_after_rays,
        die_after_frames=args.die_after_frames,
        blackbox_dir=args.blackbox_dir,
        verbose=args.verbose,
    )
    return client.run()
