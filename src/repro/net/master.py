"""The repro.net master: drive a scheduling policy over real TCP sockets.

This is the third transport for the :mod:`repro.sched` state machines.
Where :class:`~repro.sched.sim.SimTransport` replays assignments against
modelled costs and :class:`~repro.sched.process.ProcessTransport` runs
them through a single-host pool, :class:`MasterServer` plays the role of
the paper's PVM master: workers register over a socket (advertising
hostname, cores, and a calibration score), each live connection is one
scheduling *lane* with at most one assignment in flight — which is what
preserves chain affinity and keeps the worker-side
:class:`~repro.coherence.CoherentRenderer` continuation cache warm — and
results stream back as framed binary messages.

Robustness reuses the PR 1 vocabulary: per-assignment deadlines adapt to
observed durations exactly like :class:`~repro.runtime.supervisor.
TaskSupervisor` (``timeout_factor * max(seen) + margin``), heartbeat
PINGs distinguish *dead* from *busy rendering* (the worker's reader
thread answers pongs mid-render, so only a vanished peer goes silent),
and any loss — EOF, blown deadline, missed heartbeats, task error,
invalid result — feeds ``policy.on_worker_lost`` so the policy requeues
the lane's chain for the surviving workers.  A worker that reconnects is
a *new* lane (policies retire lost lanes permanently), which makes
reconnection indistinguishable from a fresh machine joining the farm.

:class:`TcpTransport` wraps all of this into the loopback form the tests
and benchmarks use: bind an ephemeral port on 127.0.0.1, spawn N
``python -m repro.worker`` subprocesses at it, serve to completion, and
return the same :class:`~repro.sched.process.SchedOutcome` shape the
process transport produces — so :class:`~repro.runtime.local.
LocalRenderFarm` consumes either transport identically.
"""

from __future__ import annotations

import os
import selectors
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..obs.flight import FlightRecorder, blackbox_filename
from ..obs.trace import flight_span_id
from ..runtime.supervisor import SupervisorOutcome, TaskAttempt
from ..telemetry import NULL
from . import protocol as wire

__all__ = ["MasterServer", "NetStats", "TcpTransport"]

#: Loss reason -> TaskAttempt outcome (the supervisor's vocabulary, so
#: ``LocalRenderFarm._emit_run_telemetry`` renders net losses in the same
#: recovery timeline as pool losses).
_LOSS_OUTCOMES = {
    "eof": "crash",
    "deadline": "timeout",
    "heartbeat": "timeout",
    "error": "error",
    "invalid": "invalid",
}


@dataclass
class NetStats:
    """Wire accounting for one master run (the bench's raw material)."""

    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    n_pings: int = 0
    n_pongs: int = 0
    n_workers_joined: int = 0
    n_losses: int = 0
    n_assignments: int = 0
    n_results: int = 0
    compress: bool = True
    #: Distributed-framebuffer accounting (zero when tiles are off).
    n_tiles: int = 0
    tile_bytes: int = 0
    t_first_tile: float | None = None  #: seconds from serve() to first TILE
    t_first_result: float | None = None  #: seconds from serve() to first RESULT
    n_frames_salvaged: int = 0  #: frames rescued from lost workers' tiles
    #: Largest received frame per message name — the payload-size bench.
    max_msg_bytes: dict = field(default_factory=dict)


class _Conn:
    """One accepted connection: a lane once registered, a stranger before."""

    __slots__ = (
        "sock",
        "assembler",
        "name",
        "host",
        "cores",
        "score",
        "registered",
        "joined",
        "assignment",
        "args",
        "dispatched",
        "deadline",
        "last_pong",
        "closed",
        "offset",
        "rtt_best",
        "minor",
        "tiles",
        "pid",
    )

    def __init__(self, sock: socket.socket, now: float) -> None:
        self.sock = sock
        self.assembler = wire.FrameAssembler()
        self.name = ""
        self.host = "?"
        self.cores = 0
        self.score = 0.0
        self.registered = False
        self.joined = now
        self.assignment = None
        self.args = None
        self.dispatched = 0.0
        self.deadline: float | None = None
        self.last_pong = now
        self.closed = False
        # Clock-skew estimate: worker_clock - master_clock, refined from
        # the lowest-rtt PONG seen (a symmetric-delay midpoint estimate;
        # on one host perf_counter is shared and this converges to ~0).
        self.offset = 0.0
        self.rtt_best = float("inf")
        self.minor = 0
        self.tiles = False  # tile streaming granted at HELLO
        self.pid = 0  # worker process id from HELLO (black-box lookup)


class MasterServer:
    """Accept workers and drive ``policy`` over their connections.

    Parameters
    ----------
    policy:
        The scheduling state machine; consumed (policies are single-use).
    task_name:
        Registry name (:mod:`repro.net.tasks`) the workers execute.
    materialize:
        ``materialize(assignment, lane) -> wire-encodable task args``.
    validate:
        Optional ``validate(args, result) -> bool`` corruption gate; an
        invalid result counts as a worker loss (reason ``invalid``).
    max_attempts:
        Ceiling on dispatches of one work unit (keyed by region +
        first frame) before the run fails loudly.
    task_timeout / timeout_factor / timeout_margin / startup_timeout:
        Per-assignment deadline policy, same semantics as
        :class:`~repro.runtime.supervisor.TaskSupervisor`.
    heartbeat_interval / heartbeat_misses:
        PING cadence, and how many silent intervals mark a peer dead.
    accept_timeout:
        How long the master waits with work pending but no workers
        connected before giving up.
    compress / compress_min_bytes:
        Result tile compression policy, announced to workers in WELCOME.
    assembler / tile_px / tile_box / on_tile:
        The distributed framebuffer.  ``assembler`` (a
        :class:`repro.dfb.FrameAssembler`) turns tile streaming on:
        minor-3 workers get a tile directive in every ASSIGN and their
        TILE frames are composited incrementally; whole-segment results
        from older workers are folded into the same assembler.
        ``tile_box(assignment)`` maps an assignment to its pixel box
        (``None`` = whole frame); ``on_tile(worker, frame, box, pixels,
        frame_complete)`` observes every composited tile.
    session / minor_floor:
        Object-space sharding (DESIGN §16).  A ``session`` (a
        :class:`repro.shard.net.ShardSession`) replaces the ASSIGN/RESULT
        dispatch loop: the master itself drives the wavefront trace,
        lanes serve RAYS/SHADE queries for the shards the policy binds to
        them, and losses route through ``session.on_worker_lost`` for
        outbox-ledger replay.  ``minor_floor`` lets such a run raise the
        HELLO admission floor to 4 (the revision that speaks RAYS/SHADE)
        without bumping the protocol-wide floor for plain farms.
    """

    def __init__(
        self,
        policy,
        task_name: str,
        materialize,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        validate=None,
        max_attempts: int = 5,
        task_timeout: float | None = None,
        timeout_factor: float = 3.0,
        timeout_margin: float = 1.0,
        startup_timeout: float | None = None,
        heartbeat_interval: float = 0.5,
        heartbeat_misses: int = 10,
        accept_timeout: float = 30.0,
        compress: bool = True,
        compress_min_bytes: int = 4096,
        telemetry=None,
        on_result=None,
        trace_root=None,
        assembler=None,
        tile_px: int | None = None,
        tile_box=None,
        on_tile=None,
        session=None,
        minor_floor: int | None = None,
        blackbox_dir=None,
    ) -> None:
        self.policy = policy
        self.task_name = task_name
        self.materialize = materialize
        self.host = host
        self.port = int(port)
        self.validate = validate
        self.max_attempts = max(1, int(max_attempts))
        self.task_timeout = task_timeout
        self.timeout_factor = float(timeout_factor)
        self.timeout_margin = float(timeout_margin)
        self.startup_timeout = startup_timeout
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_misses = max(1, int(heartbeat_misses))
        self.accept_timeout = float(accept_timeout)
        self.telemetry = telemetry if telemetry is not None else NULL
        self.on_result = on_result
        #: Parent span id for the per-assignment ``obs.flight`` spans
        #: (the run's root span when the farm drives us; None = flights
        #: are trace roots themselves).
        self.trace_root = trace_root
        self.assembler = assembler
        self.tile_px = int(tile_px) if tile_px else 32
        self.tile_box = tile_box or (lambda a: None)
        self.on_tile = on_tile
        self.session = session
        self.minor_floor = (
            int(minor_floor) if minor_floor is not None else wire.PROTO_MINOR_FLOOR
        )
        #: Flight-recorder plumbing: where black-box dumps land (ours on a
        #: worker loss, a victim's when shipped over MSG_BLACKBOX) and
        #: where ``net.worker.lost`` looks for the victim's own dump.
        self.blackbox_dir = Path(blackbox_dir) if blackbox_dir else None
        self.recorder = (
            FlightRecorder("master", self.blackbox_dir).install()
            if self.blackbox_dir is not None
            else None
        )
        self.net = NetStats(compress=bool(compress))
        self.compress_min_bytes = int(compress_min_bytes)
        self.workers: dict[str, dict] = {}  # lane -> {host, cores, score, n_done}
        self.address: tuple[str, int] | None = None
        self._listener: socket.socket | None = None
        self._conns: dict[int, _Conn] = {}  # fileno -> connection
        self._n_named = 0
        self._results: list = []
        self._attempt_log: list[TaskAttempt] = []
        self._attempts: dict[tuple, int] = {}  # (region, frame0) -> dispatch count
        self._lanes_of: dict[int, str] = {}
        self._durations: list[float] = []
        self._counts = {"retries": 0, "timeouts": 0, "crashes": 0, "invalid": 0}
        self._t0 = 0.0
        self._last_progress = 0.0

    # -- lifecycle ---------------------------------------------------------
    def listen(self) -> tuple[str, int]:
        """Bind and listen; returns (host, port) — port resolves 0 to real."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        self.port = self.address[1]
        self.telemetry.event("net.listen", host=self.address[0], port=self.port)
        return self.address

    def run(self):
        """``listen()`` + ``serve()`` for callers that don't need the port
        before serving (real deployments; the loopback transport does)."""
        if self._listener is None:
            self.listen()
        return self.serve()

    # -- deadline policy (mirrors TaskSupervisor) --------------------------
    def _deadline_for_now(self) -> float | None:
        if self.task_timeout is not None:
            return self.task_timeout
        if self._durations:
            return self.timeout_factor * max(self._durations) + self.timeout_margin
        return self.startup_timeout

    # -- main loop ---------------------------------------------------------
    def serve(self):
        """Serve until the policy is finished; returns a ``SchedOutcome``."""
        from ..sched.process import SchedOutcome

        if self._listener is None:
            raise RuntimeError("call listen() before serve()")
        sel = selectors.DefaultSelector()
        sel.register(self._listener, selectors.EVENT_READ, None)
        self._t0 = self._last_progress = time.perf_counter()
        next_ping = self._t0 + self.heartbeat_interval
        policy = self.policy
        try:
            while not policy.finished:
                now = time.perf_counter()
                if now >= next_ping:
                    self._ping_all(sel, now)
                    next_ping = now + self.heartbeat_interval
                self._sweep(sel, now)
                if self.session is not None:
                    self.session.pump(self, sel, now)
                else:
                    self._dispatch(sel, now)
                if policy.finished:
                    break
                for key, _mask in sel.select(timeout=0.05):
                    if key.data is None:
                        self._accept(sel)
                    else:
                        self._service(sel, key.data)
        finally:
            self._shutdown(sel)
        wall = time.perf_counter() - self._t0
        sup = SupervisorOutcome(
            results=self._results,
            attempts=self._attempt_log,
            n_retries=self._counts["retries"],
            n_timeouts=self._counts["timeouts"],
            n_crashes=self._counts["crashes"],
            n_invalid=self._counts["invalid"],
            wall_time=wall,
        )
        return SchedOutcome(
            results=self._results,
            assignments=list(policy.log),
            supervisor=sup,
            n_chain_starts=policy.n_chain_starts,
            n_steals=policy.n_steals,
            n_reassigned=policy.n_reassigned,
            lanes_of=dict(self._lanes_of),
            workers={k: dict(v) for k, v in self.workers.items()},
            net=self.net,
        )

    # -- socket events -----------------------------------------------------
    def _accept(self, sel) -> None:
        sock, _addr = self._listener.accept()
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _Conn(sock, time.perf_counter())
        self._conns[sock.fileno()] = conn
        sel.register(sock, selectors.EVENT_READ, conn)

    def _service(self, sel, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(1 << 18)
        except OSError:
            self._lose(sel, conn, "error")
            return
        if not data:
            self._lose(sel, conn, "eof")
            return
        self.net.bytes_received += len(data)
        conn.assembler.feed(data)
        try:
            for msg_type, payload, nbytes in conn.assembler:
                self.net.messages_received += 1
                self._handle(sel, conn, msg_type, payload, nbytes)
                if conn.closed:
                    return
        except wire.ProtocolError:
            self._lose(sel, conn, "error")

    def _handle(self, sel, conn: _Conn, msg_type: int, payload, nbytes: int) -> None:
        now = time.perf_counter()
        name = wire.MSG_NAMES.get(msg_type, str(msg_type))
        if nbytes > self.net.max_msg_bytes.get(name, 0):
            self.net.max_msg_bytes[name] = nbytes
        if msg_type == wire.MSG_HELLO:
            if not isinstance(payload, dict) or payload.get("proto") != wire.PROTO_VERSION:
                self._lose(sel, conn, "error")
                return
            minor = int(payload.get("minor", 0) or 0)
            if minor < self.minor_floor:
                self._reject(sel, conn, payload)
                return
            conn.name = f"w{self._n_named}"
            self._n_named += 1
            conn.host = str(payload.get("host", "?"))
            conn.cores = int(payload.get("cores", 1))
            conn.score = float(payload.get("score", 1.0))
            conn.minor = minor
            try:
                conn.pid = int(payload.get("pid", 0) or 0)
            except (TypeError, ValueError):
                conn.pid = 0
            # Tile streaming is per-connection: the run must want it (an
            # assembler is wired) and the worker must speak minor 3.
            conn.tiles = self.assembler is not None and minor >= 3
            conn.registered = True
            conn.last_pong = now
            self.workers[conn.name] = {
                "host": conn.host,
                "cores": conn.cores,
                "score": conn.score,
                "n_done": 0,
            }
            self._send(conn, wire.MSG_WELCOME, {
                "worker": conn.name,
                "proto": wire.PROTO_VERSION,
                "minor": wire.PROTO_MINOR,
                "heartbeat_interval": self.heartbeat_interval,
                "compress": self.net.compress,
                "compress_min_bytes": self.compress_min_bytes,
                "tiles": conn.tiles,
                "tile_px": self.tile_px,
            })
            self.net.n_workers_joined += 1
            self.telemetry.event(
                "net.worker.join",
                worker=conn.name,
                host=conn.host,
                cores=conn.cores,
                score=conn.score,
            )
            self._last_progress = now
        elif msg_type == wire.MSG_PONG:
            self.net.n_pongs += 1
            conn.last_pong = now
            try:
                rtt = max(0.0, now - float(payload.get("t", now)))
            except (TypeError, ValueError):
                rtt = 0.0
            self.telemetry.event("net.pong", worker=conn.name, rtt=rtt)
            # Minimum-rtt skew estimate: the pong with the least delay is
            # the one where "the worker's clock read tw at the midpoint"
            # is most nearly true.  Only a better sample updates (and
            # re-announces) the estimate.
            tw = payload.get("tw") if isinstance(payload, dict) else None
            if tw is not None and rtt < conn.rtt_best:
                try:
                    conn.offset = float(tw) - (float(payload["t"]) + rtt / 2.0)
                except (TypeError, ValueError, KeyError):
                    pass
                else:
                    conn.rtt_best = rtt
                    self.telemetry.event(
                        "obs.clock", worker=conn.name, offset=conn.offset, rtt=rtt
                    )
        elif msg_type in (wire.MSG_RAYS, wire.MSG_SHADE):
            if self.session is not None:
                self.session.on_reply(self, conn, msg_type, payload, nbytes)
                self._last_progress = now
            # RAYS/SHADE outside a shard session: valid type, ignored.
        elif msg_type == wire.MSG_BLACKBOX:
            self._on_blackbox_frame(conn, payload)
        elif msg_type == wire.MSG_TILE:
            self._on_tile_frame(sel, conn, payload, nbytes, now)
        elif msg_type == wire.MSG_RESULT:
            self._on_result_frame(sel, conn, payload, nbytes, now)
        elif msg_type == wire.MSG_ERROR:
            if isinstance(payload, dict):
                self.telemetry.absorb(payload.get("events") or [], t_offset=-conn.offset)
            detail = str(payload.get("error", "")) if isinstance(payload, dict) else ""
            self._lose(sel, conn, "error", detail=detail)
        # Unsolicited HELLO repeats or unknown-but-valid types: ignore.

    def _on_blackbox_frame(self, conn: _Conn, payload) -> None:
        """A reconnecting worker shipped the dump its dead predecessor
        wrote (or held in memory): persist it into the run's blackbox
        directory and announce it, so post-mortem tooling finds it next
        to the master's own."""
        if not isinstance(payload, dict):
            return
        records = payload.get("records")
        if not isinstance(records, list) or not records:
            return
        role = str(payload.get("role", "worker")) or "worker"
        try:
            pid = int(payload.get("pid", 0) or 0)
        except (TypeError, ValueError):
            pid = 0
        path = ""
        if self.blackbox_dir is not None:
            import json as _json

            try:
                self.blackbox_dir.mkdir(parents=True, exist_ok=True)
                target = self.blackbox_dir / blackbox_filename(role, pid)
                tmp = target.with_name(f".{target.name}.tmp")
                with open(tmp, "w", encoding="utf-8") as fh:
                    for rec in records:
                        fh.write(_json.dumps(rec, separators=(",", ":"), default=str))
                        fh.write("\n")
                os.replace(tmp, target)
                path = str(target)
            except OSError:
                path = ""
        self.telemetry.event(
            "obs.blackbox", role=role, pid=pid, path=path, records=len(records)
        )

    def _blackbox_of(self, conn: _Conn) -> str:
        """Path of the victim's dump, if it already landed in the run dir
        (loopback workers write it before ``os._exit``); ``""`` when
        unknown — a reconnecting daemon may still ship it later."""
        if self.blackbox_dir is None or not conn.pid:
            return ""
        path = self.blackbox_dir / blackbox_filename("worker", conn.pid)
        return str(path) if path.exists() else ""

    def _on_tile_frame(self, sel, conn: _Conn, payload, nbytes: int, now: float) -> None:
        """Composite one streamed tile into the distributed framebuffer."""
        a = conn.assignment
        if a is None or not isinstance(payload, dict) or payload.get("seq") != a.seq:
            return  # tile raced its assignment's loss; idempotency covers it
        if self.assembler is None or not conn.tiles:
            self._lose(sel, conn, "invalid", detail="unsolicited TILE")
            return
        try:
            frame = int(payload["frame"])
            x0, y0 = int(payload["x0"]), int(payload["y0"])
            x1, y1 = int(payload["x1"]), int(payload["y1"])
            _newly, frame_complete = self.assembler.add_tile(
                frame, x0, y0, x1, y1, payload["pixels"]
            )
        except (KeyError, TypeError, ValueError):
            self._lose(sel, conn, "invalid", detail="malformed TILE")
            return
        self.net.n_tiles += 1
        self.net.tile_bytes += nbytes
        if self.net.t_first_tile is None:
            self.net.t_first_tile = now - self._t0
        self.telemetry.event(
            "dfb.tile",
            worker=conn.name,
            seq=a.seq,
            frame=frame,
            x0=x0,
            y0=y0,
            x1=x1,
            y1=y1,
            nbytes=nbytes,
        )
        if self.on_tile is not None:
            self.on_tile(conn.name, frame, (x0, y0, x1, y1), payload["pixels"], frame_complete)
        self._last_progress = now

    def _fold_result(self, a, result) -> None:
        """Fold a whole-segment render result into the assembler (results
        from pre-tile workers, and the pixels a streaming worker would
        have tiled if it weren't).  By farm convention the result tuple is
        ``(box, frame0, frame1, frames, counts, events)``; a streaming
        result ships ``frames=None`` because its pixels already arrived
        tile by tile.  Non-farm shapes (echo tasks) are left alone."""
        if self.assembler is None or not isinstance(result, tuple) or len(result) < 4:
            return
        box, f0, f1, frames = result[0], result[1], result[2], result[3]
        if frames is None or not hasattr(frames, "shape"):
            return
        try:
            self.assembler.add_segment(box, int(f0), int(f1), frames)
        except (TypeError, ValueError):
            pass  # a tuple that merely looked like a render result

    def _on_result_frame(self, sel, conn: _Conn, payload, nbytes: int, now: float) -> None:
        a = conn.assignment
        if a is None or not isinstance(payload, dict) or payload.get("seq") != a.seq:
            return  # stale or spurious; one-in-flight makes this near-impossible
        self.telemetry.absorb(payload.get("events") or [], t_offset=-conn.offset)
        result = payload.get("result")
        duration = float(payload.get("duration", now - conn.dispatched))
        key = (a.region_index, a.frame0)
        if self.validate is not None and not self.validate(conn.args, result):
            self._lose(sel, conn, "invalid")
            return
        self._fold_result(a, result)
        if self.net.t_first_result is None:
            self.net.t_first_result = now - self._t0
        conn.assignment = None
        conn.args = None
        conn.deadline = None
        self._absorb_task_events(conn, result)
        self.telemetry.emit_span(
            "obs.flight",
            conn.dispatched,
            now - conn.dispatched,
            span=flight_span_id(a.seq),
            parent=self.trace_root,
            worker=conn.name,
            seq=a.seq,
            attempt=self._attempts.get(key, 1),
            outcome="ok",
        )
        self._results.append(result)
        self._durations.append(duration)
        self._attempt_log.append(TaskAttempt(
            task_index=a.seq,
            attempt=self._attempts.get(key, 1),
            outcome="ok",
            duration=duration,
            started=conn.dispatched - self._t0,
        ))
        self.workers[conn.name]["n_done"] += 1
        self.net.n_results += 1
        self.telemetry.event(
            "net.result",
            worker=conn.name,
            seq=a.seq,
            nbytes=nbytes,
            compressed=self.net.compress,
            duration=duration,
        )
        self.policy.on_result(conn.name, a)
        if self.on_result is not None:
            self.on_result(a, result)
        self._last_progress = now

    def _absorb_task_events(self, conn: _Conn, result) -> None:
        """Fold the *render-level* worker events into the live stream.

        By farm convention a task result tuple's last element is the
        worker task's serialized event buffer (task/frame/coherence
        spans).  Absorbing it here — with this lane's clock-offset
        correction — is what puts worker frame spans on the master's
        time axis *during* the run, so the ledger/status endpoint sees
        frames complete live instead of at teardown.  Non-farm results
        (echo tasks, junk) are left untouched.
        """
        if not isinstance(result, tuple) or not result:
            return
        blob = result[-1]
        if not isinstance(blob, str) or not blob.startswith("["):
            return
        try:
            self.telemetry.absorb(blob, t_offset=-conn.offset)
        except (TypeError, ValueError):
            pass  # a string that merely looked like an event buffer

    # -- dispatch / sweeps -------------------------------------------------
    def _dispatch(self, sel, now: float) -> None:
        registered = [c for c in self._conns.values() if c.registered]
        dispatched = False
        for conn in registered:
            if conn.assignment is not None:
                continue
            a = self.policy.next_assignment(conn.name)
            if a is None:
                continue
            args = self.materialize(a, conn.name)
            conn.assignment = a
            conn.args = args
            conn.dispatched = now
            limit = self._deadline_for_now()
            conn.deadline = None if limit is None else now + limit
            key = (a.region_index, a.frame0)
            self._attempts[key] = self._attempts.get(key, 0) + 1
            self._lanes_of[a.seq] = conn.name
            assign = {
                "seq": a.seq,
                "region": a.region_index,
                "frame0": a.frame0,
                "frame1": a.frame1,
                "fresh": a.fresh,
                "coherent": a.coherent,
                "task": self.task_name,
                "args": args,
            }
            if conn.tiles:
                # Tile directive: stream at this granularity, and skip
                # tiles a lost predecessor already delivered.
                assign["tiles"] = {
                    "tile_px": self.tile_px,
                    "skip": self.assembler.covered_tiles(
                        self.tile_box(a), a.frame0, a.frame1, self.tile_px
                    ),
                }
            try:
                nbytes = self._send(conn, wire.MSG_ASSIGN, assign)
            except OSError:
                self._lose(sel, conn, "eof")
                continue
            self.net.n_assignments += 1
            self.telemetry.event(
                "net.assign",
                worker=conn.name,
                seq=a.seq,
                frame0=a.frame0,
                frame1=a.frame1,
                region=a.region_index,
                nbytes=nbytes,
            )
            dispatched = True
        if dispatched:
            self._last_progress = now
            return
        busy = any(c.assignment is not None for c in self._conns.values())
        if busy or self.policy.finished:
            return
        strangers = any(not c.registered for c in self._conns.values())
        if not registered:
            if not strangers and now - self._last_progress > self.accept_timeout:
                raise RuntimeError(
                    f"no workers connected within {self.accept_timeout:.1f}s "
                    "with work still pending"
                )
            return
        # Every registered lane is idle, every one was just declined, and
        # nothing is in flight: the policy can never finish.  Same guard
        # (and failure mode) as the supervisor's feed stall.
        if not strangers:
            raise RuntimeError(
                "master stalled: policy returned no work with none in flight"
            )

    def _sweep(self, sel, now: float) -> None:
        silent_after = self.heartbeat_interval * self.heartbeat_misses
        for conn in list(self._conns.values()):
            if conn.closed or not conn.registered:
                continue
            if conn.assignment is not None and conn.deadline is not None and now > conn.deadline:
                self._lose(sel, conn, "deadline")
            elif now - conn.last_pong > silent_after:
                self._lose(sel, conn, "heartbeat")

    def _ping_all(self, sel, now: float) -> None:
        for conn in list(self._conns.values()):
            if conn.closed or not conn.registered:
                continue
            try:
                self._send(conn, wire.MSG_PING, {"t": now})
                self.net.n_pings += 1
            except OSError:
                self._lose(sel, conn, "eof")

    # -- loss --------------------------------------------------------------
    def _reject(self, sel, conn: _Conn, payload) -> None:
        """Turn away a worker speaking an older protocol minor: SHUTDOWN
        (vocabulary every revision understands, so the daemon exits
        cleanly instead of reconnect-looping) and close — never a lane,
        so the policy is not involved."""
        who = "?"
        if isinstance(payload, dict):
            who = f"{payload.get('host', '?')}:{payload.get('pid', 0)}"
        self.net.n_losses += 1
        self.telemetry.event(
            "net.worker.lost", worker=who, reason="proto", seq=-1, blackbox=""
        )
        try:
            self._send(conn, wire.MSG_SHUTDOWN, {})
        except OSError:
            pass
        conn.closed = True
        self._conns.pop(conn.sock.fileno(), None)
        try:
            sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _lose(self, sel, conn: _Conn, reason: str, detail: str = "") -> None:
        """Close a connection and route its lane into the policy's
        ``on_worker_lost`` so any in-flight assignment is requeued."""
        if conn.closed:
            return
        conn.closed = True
        now = time.perf_counter()
        self._conns.pop(conn.sock.fileno(), None)
        try:
            sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        if not conn.registered:
            return
        self.net.n_losses += 1
        a = conn.assignment
        self.telemetry.event(
            "net.worker.lost",
            worker=conn.name,
            reason=reason,
            seq=-1 if a is None else a.seq,
            blackbox=self._blackbox_of(conn),
        )
        if self.recorder is not None:
            # The master's own last seconds around the loss are part of
            # the autopsy: dump our ring beside the victim's.
            self.recorder.dump(f"worker-lost:{conn.name}:{reason}")
        if a is not None:
            outcome = _LOSS_OUTCOMES.get(reason, "crash")
            key = (a.region_index, a.frame0)
            n_tries = self._attempts.get(key, 1)
            # The flight closes with its failure outcome; the requeued
            # dispatch will open a fresh flight under a new seq.
            self.telemetry.emit_span(
                "obs.flight",
                conn.dispatched,
                now - conn.dispatched,
                span=flight_span_id(a.seq),
                parent=self.trace_root,
                worker=conn.name,
                seq=a.seq,
                attempt=n_tries,
                outcome=outcome,
            )
            self._attempt_log.append(TaskAttempt(
                task_index=a.seq,
                attempt=n_tries,
                outcome=outcome,
                duration=now - conn.dispatched,
                error=detail or reason,
                started=conn.dispatched - self._t0,
            ))
            if outcome == "timeout":
                self._counts["timeouts"] += 1
            elif outcome == "invalid":
                self._counts["invalid"] += 1
            else:
                self._counts["crashes"] += 1
            if n_tries >= self.max_attempts:
                raise RuntimeError(
                    f"assignment seq {a.seq} (region {a.region_index}, "
                    f"frame {a.frame0}) failed after {n_tries} attempts "
                    f"(last: {reason})"
                )
            self._counts["retries"] += 1
            if self.assembler is not None and reason != "invalid":
                # Partial salvage: frames this worker already streamed in
                # full stay done; only the remainder is requeued.  An
                # invalid loss forfeits the salvage — its tiles can't be
                # trusted either (idempotent overwrite re-covers them).
                frame_done = self.assembler.frames_done(
                    self.tile_box(a), a.frame0, a.frame1
                )
                if frame_done > a.frame0:
                    self.net.n_frames_salvaged += frame_done - a.frame0
                    self.telemetry.event(
                        "dfb.salvage",
                        worker=conn.name,
                        seq=a.seq,
                        frame0=a.frame0,
                        frame_done=frame_done,
                        frame1=a.frame1,
                    )
                    self.policy.on_partial_result(conn.name, frame_done)
        self.policy.on_worker_lost(conn.name)
        if self.session is not None:
            # After the policy requeued the lane's shard units: orphan the
            # lane's in-flight shard requests so the ledger replays them.
            self.session.on_worker_lost(self, conn.name)
        self._last_progress = now

    def _send(self, conn: _Conn, msg_type: int, obj) -> int:
        n = wire.send_frame(conn.sock, msg_type, obj)
        self.net.bytes_sent += n
        self.net.messages_sent += 1
        return n

    def _shutdown(self, sel) -> None:
        for conn in list(self._conns.values()):
            try:
                self._send(conn, wire.MSG_SHUTDOWN, {})
            except OSError:
                pass
            try:
                sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        self._conns.clear()
        if self.recorder is not None:
            self.recorder.uninstall()
        if self._listener is not None:
            try:
                sel.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            self._listener.close()
            self._listener = None
        sel.close()


class TcpTransport:
    """Loopback network farm: master + N worker subprocesses on 127.0.0.1.

    Mirrors the :class:`~repro.sched.process.ProcessTransport` calling
    convention (``policy``, task, ``materialize`` -> ``run()`` ->
    ``SchedOutcome``) so :class:`~repro.runtime.local.LocalRenderFarm`
    and the equivalence tests can swap transports freely.  The bytes
    really cross sockets; only the hosts are collapsed onto one machine.

    ``die_after`` maps a worker index to an assignment count after which
    that daemon hard-crashes (`--die-after`), the deterministic stand-in
    for a workstation dying mid-sequence.  ``die_after_rays`` is the
    object-space analogue: a shard-request count after which the daemon
    crashes (`--die-after-rays`), used by the shard-loss replay drill.
    """

    def __init__(
        self,
        policy,
        task_name: str,
        materialize,
        *,
        n_workers: int = 2,
        die_after: dict[int, int] | None = None,
        die_after_rays: dict[int, int] | None = None,
        die_after_frames: dict[int, int] | None = None,
        worker_verbose: bool = False,
        python: str | None = None,
        blackbox_dir=None,
        **master_kwargs,
    ) -> None:
        self.n_workers = max(1, int(n_workers))
        self.die_after = dict(die_after or {})
        self.die_after_rays = dict(die_after_rays or {})
        self.die_after_frames = dict(die_after_frames or {})
        self.worker_verbose = worker_verbose
        self.python = python or sys.executable
        self.blackbox_dir = blackbox_dir
        self.master = MasterServer(
            policy, task_name, materialize, host="127.0.0.1", port=0,
            blackbox_dir=blackbox_dir, **master_kwargs
        )

    def _spawn(self, port: int, index: int) -> subprocess.Popen:
        cmd = [
            self.python,
            "-m",
            "repro.worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--score",
            "1.0",  # skip calibration: loopback workers are homogeneous
        ]
        if index in self.die_after:
            cmd += ["--die-after", str(self.die_after[index])]
        if index in self.die_after_rays:
            cmd += ["--die-after-rays", str(self.die_after_rays[index])]
        if index in self.die_after_frames:
            cmd += ["--die-after-frames", str(self.die_after_frames[index])]
        if self.blackbox_dir is not None:
            cmd += ["--blackbox-dir", str(self.blackbox_dir)]
        if self.worker_verbose:
            cmd.append("--verbose")
        env = os.environ.copy()
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = None if self.worker_verbose else subprocess.DEVNULL
        return subprocess.Popen(cmd, env=env, stdout=out, stderr=out)

    def run(self):
        _host, port = self.master.listen()
        procs = [self._spawn(port, i) for i in range(self.n_workers)]
        try:
            return self.master.serve()
        finally:
            for proc in procs:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
