"""repro.net — the real TCP network-of-workstations transport.

The paper's farm ran PVM over shared Ethernet; this package is our
equivalent, built on nothing but the stdlib socket machinery and numpy:

* :mod:`~repro.net.protocol` — length-prefixed binary framing with
  optional per-array zlib tile compression (``float64`` framebuffers
  round-trip bit-identically);
* :mod:`~repro.net.master` — :class:`MasterServer` drives any
  :class:`~repro.sched.core.SchedulingPolicy` over worker connections
  (one lane per connection, heartbeats, per-assignment deadlines,
  loss -> ``on_worker_lost`` reassignment) and :class:`TcpTransport`
  packages the loopback master-plus-subprocess-workers form;
* :mod:`~repro.net.worker` — the ``python -m repro.worker`` daemon
  (reconnect with backoff, heartbeat responder thread, continuation
  cache reuse via the shared segment renderer);
* :mod:`~repro.net.tasks` — the name -> callable registry assignments
  dispatch through (code never crosses the wire).
"""

from .master import MasterServer, NetStats, TcpTransport
from .protocol import (
    MAGIC,
    PROTO_VERSION,
    FrameAssembler,
    ProtocolError,
    decode,
    encode,
    pack_frame,
    recv_frame,
    send_frame,
)
from .tasks import REGISTRY, spec_to_wire, task
from .worker import WorkerClient

__all__ = [
    "MAGIC",
    "MasterServer",
    "NetStats",
    "PROTO_VERSION",
    "FrameAssembler",
    "ProtocolError",
    "REGISTRY",
    "TcpTransport",
    "WorkerClient",
    "decode",
    "encode",
    "pack_frame",
    "recv_frame",
    "send_frame",
    "spec_to_wire",
    "task",
]
