"""The worker daemon's task registry: name -> callable.

Assignments cross the wire carrying a *task name*, never code — the same
stance :class:`~repro.runtime.spec.AnimationSpec` takes toward scenes
(the paper's slaves re-parsed the scene locally; ours rebuild it from a
factory recipe).  A worker only ever executes functions registered here,
so a master cannot inject arbitrary callables into a daemon.

Task arguments and results must be wire-encodable
(:mod:`repro.net.protocol` types); ``render_segment`` therefore receives
the :class:`AnimationSpec` as a plain ``{"factory", "kwargs"}`` dict and
rebuilds it before delegating to the farm's segment renderer — which
keeps the :class:`~repro.coherence.CoherentRenderer` continuation cache
(:data:`repro.runtime.local._SEGMENT_CACHE`) warm across the consecutive
segments of a chain, because a TCP lane pins a chain to one worker
process.
"""

from __future__ import annotations

__all__ = ["REGISTRY", "task", "echo", "render_segment", "spec_to_wire"]

REGISTRY: dict[str, object] = {}


def task(name: str, *, streaming: bool = False):
    """Register ``fn`` under ``name`` for dispatch-by-name over the wire.

    ``streaming=True`` marks a task that accepts an ``emit_tile`` keyword
    (a :class:`~repro.net.worker._TileSink`) and streams finished tiles
    while it runs — the worker only offers the sink to flagged tasks.
    """

    def register(fn):
        fn.streaming = streaming
        REGISTRY[name] = fn
        return fn

    return register


def spec_to_wire(spec) -> dict:
    """AnimationSpec -> the plain dict ``render_segment`` rebuilds it from."""
    return {"factory": spec.factory, "kwargs": dict(spec.kwargs)}


@task("echo")
def echo(args):
    """Return the arguments unchanged (dispatch-log equivalence tests and
    wire benchmarks, where only the scheduling decisions matter)."""
    return args


@task("sleep_echo")
def sleep_echo(args):
    """``(delay_seconds, payload) -> payload`` after sleeping — a stand-in
    workload for failure drills that need assignments to overlap in time
    (an instant echo run can finish before a second worker even joins)."""
    import time

    delay, payload = args
    time.sleep(float(delay))
    return payload


@task("render_segment", streaming=True)
def render_segment(args, emit_tile=None):
    """Render frames ``[f0, f1)`` of one region with the farm's segment
    renderer (continuation-cache aware); see ``_render_segment_task``.
    With ``emit_tile`` the finished frames stream out as tiles and the
    returned result carries ``frames=None``."""
    from ..runtime.local import _render_segment_task
    from ..runtime.spec import AnimationSpec

    spec_dict, box, f0, f1, fresh, label, grid, samples, tel_ctx, prof = args
    spec = AnimationSpec(str(spec_dict["factory"]), dict(spec_dict["kwargs"]))
    box = None if box is None else tuple(int(v) for v in box)
    # tel_ctx passes through untouched: a trace-context dict (run id,
    # parent flight span, namespace seed) or a legacy bool.
    return _render_segment_task(
        (spec, box, int(f0), int(f1), bool(fresh), str(label), int(grid), int(samples),
         tel_ctx, prof),
        emit_tile=emit_tile,
    )
