"""The ``repro.net`` wire protocol: length-prefixed binary frames over TCP.

The paper's farm spoke PVM; ours speaks a deliberately tiny protocol that
needs nothing beyond the stdlib and numpy.  Every message on the wire is
one **frame**::

    +--------+---------+----------+---------+-------------+----------------+
    | magic  | version | msg_type | flags   | payload_len | payload bytes  |
    | 4s     | u8      | u8       | u16     | u32         | payload_len    |
    +--------+---------+----------+---------+-------------+----------------+

followed by a self-describing binary **payload** encoding a restricted
value set (msgpack-free on purpose — no third-party codec): ``None``,
bools, 64-bit ints, doubles, UTF-8 strings, raw bytes, lists, tuples,
dicts and numpy arrays.  Tuples and lists round-trip as distinct types so
task results keep their exact Python shape across the hop, and numpy
arrays carry dtype + shape + raw buffer — ``float64`` framebuffers are
therefore **bit-identical** after transport.

Arrays above ``compress_min_bytes`` may be zlib-compressed individually
("tile compression": the framebuffer tiles are the only large values on
the wire, so compressing at the array level gets all of the win without
touching the cheap metadata around it).  Compression is recorded per
array and is transparent to the decoder.

Message types
-------------
==========  =========  ====================================================
name        direction  payload
==========  =========  ====================================================
HELLO       w -> m     {proto, minor, host, pid, cores, score}
WELCOME     m -> w     {worker, heartbeat_interval, compress, proto}
ASSIGN      m -> w     {seq, region, frame0, frame1, fresh, coherent,
                        task, args}
RESULT      w -> m     {seq, result, duration, events}
TILE        w -> m     {seq, frame, x0, y0, x1, y1, pixels}  (streamed
                       before the closing RESULT; minor 3 workers only)
PING        m -> w     {t}
PONG        w -> m     {t, tw}  (t echoes the ping; tw is the worker's
                       clock at the reply — rtt and skew for the master)
ERROR       w -> m     {seq, error, events}
SHUTDOWN    m -> w     {}
JOB_SUBMIT  c -> s     {spec, priority, owner, max_attempts}
JOB_STATUS  c <-> s    request {job} / reply {ok, job | jobs, service, error}
JOB_CANCEL  c -> s     {job}
==========  =========  ====================================================

The ``JOB_*`` types are the **control plane** of the persistent render
service (:mod:`repro.service`): clients (``c``) speak them to a
``repro serve`` daemon (``s``) on its control port, over the same framed
codec the workers use.  The service always answers with a JOB_STATUS
frame, so a client needs exactly one request/reply exchange per call.

Versioning: the frame header's ``version`` byte is the *framing* major —
a mismatch there is a different wire language and fails at the first
frame.  ``PROTO_MINOR`` rides in the HELLO payload instead: it gates
vocabulary both sides must speak (minor 1 added PONG's ``tw`` clock
sample and the trace context inside task args), and the master rejects a
worker older than ``PROTO_MINOR_FLOOR`` *cleanly* at HELLO — SHUTDOWN,
which every revision understands — rather than with a framing error
mid-run.  Capabilities above the floor degrade gracefully: a minor-2
worker never receives tile directives and ships whole sub-areas exactly
as before, while a minor-3 worker streams TILE frames.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

__all__ = [
    "PROTO_VERSION",
    "PROTO_MINOR",
    "PROTO_MINOR_FLOOR",
    "MAGIC",
    "MSG_HELLO",
    "MSG_WELCOME",
    "MSG_ASSIGN",
    "MSG_RESULT",
    "MSG_PING",
    "MSG_PONG",
    "MSG_ERROR",
    "MSG_SHUTDOWN",
    "MSG_JOB_SUBMIT",
    "MSG_JOB_STATUS",
    "MSG_JOB_CANCEL",
    "MSG_TILE",
    "MSG_NAMES",
    "ProtocolError",
    "encode",
    "decode",
    "pack_frame",
    "send_frame",
    "recv_frame",
    "FrameAssembler",
]

PROTO_VERSION = 1
#: Vocabulary revision negotiated at HELLO (see the module doc).  Minor 1:
#: PONG carries ``tw`` and task args carry the repro.obs trace context.
#: Minor 2: the JOB_SUBMIT/JOB_STATUS/JOB_CANCEL control-plane types for
#: the persistent render service (workers are unaffected, but both sides
#: of a farm must agree on the full message-type table).
#: Minor 3: TILE streaming — workers that advertise it receive a tile
#: directive in ASSIGN and ship finished tiles incrementally (the
#: distributed framebuffer); the closing RESULT then omits the pixels.
PROTO_MINOR = 3
#: Oldest worker vocabulary the master still serves.  Minor-2 workers
#: predate TILE and simply render whole sub-areas; anything older is
#: rejected at HELLO.
PROTO_MINOR_FLOOR = 2
MAGIC = b"RNW1"

MSG_HELLO = 1
MSG_WELCOME = 2
MSG_ASSIGN = 3
MSG_RESULT = 4
MSG_PING = 5
MSG_PONG = 6
MSG_ERROR = 7
MSG_SHUTDOWN = 8
MSG_JOB_SUBMIT = 9
MSG_JOB_STATUS = 10
MSG_JOB_CANCEL = 11
MSG_TILE = 12

MSG_NAMES = {
    MSG_HELLO: "hello",
    MSG_WELCOME: "welcome",
    MSG_ASSIGN: "assign",
    MSG_RESULT: "result",
    MSG_PING: "ping",
    MSG_PONG: "pong",
    MSG_ERROR: "error",
    MSG_SHUTDOWN: "shutdown",
    MSG_JOB_SUBMIT: "job_submit",
    MSG_JOB_STATUS: "job_status",
    MSG_JOB_CANCEL: "job_cancel",
    MSG_TILE: "tile",
}

_HEADER = struct.Struct("!4sBBHI")
HEADER_SIZE = _HEADER.size

#: Hard ceiling on one frame's payload — a corrupted length prefix must
#: fail fast, not trigger a multi-gigabyte allocation.
MAX_PAYLOAD = 1 << 30

_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")


class ProtocolError(RuntimeError):
    """Malformed frame or unencodable value on the repro.net wire."""


# -- value encoding ---------------------------------------------------------------
def _encode_into(out: list, obj, compress_arrays: bool, min_bytes: int) -> None:
    if obj is None:
        out.append(b"N")
    elif obj is True:
        out.append(b"T")
    elif obj is False:
        out.append(b"F")
    elif isinstance(obj, (int, np.integer)):
        v = int(obj)
        if not (-(1 << 63) <= v < (1 << 63)):
            raise ProtocolError(f"integer out of 64-bit range: {v}")
        out.append(b"i" + _I64.pack(v))
    elif isinstance(obj, (float, np.floating)):
        out.append(b"f" + _F64.pack(float(obj)))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(b"s" + _U32.pack(len(raw)) + raw)
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out.append(b"b" + _U32.pack(len(raw)) + raw)
    elif isinstance(obj, np.ndarray):
        _encode_array(out, obj, compress_arrays, min_bytes)
    elif isinstance(obj, (list, tuple)):
        tag = b"t" if isinstance(obj, tuple) else b"l"
        out.append(tag + _U32.pack(len(obj)))
        for item in obj:
            _encode_into(out, item, compress_arrays, min_bytes)
    elif isinstance(obj, dict):
        out.append(b"d" + _U32.pack(len(obj)))
        for key, value in obj.items():
            _encode_into(out, key, compress_arrays, min_bytes)
            _encode_into(out, value, compress_arrays, min_bytes)
    else:
        raise ProtocolError(f"unencodable type {type(obj).__name__!r} on the wire")


def _encode_array(out: list, a: np.ndarray, compress: bool, min_bytes: int) -> None:
    if a.ndim:  # ascontiguousarray would promote a 0-d array to 1-d
        a = np.ascontiguousarray(a)
    dtype = a.dtype.str.encode("ascii")
    raw = a.tobytes()
    packed = zlib.compress(raw) if compress and len(raw) >= min_bytes else None
    # Incompressible data (already-noisy framebuffers) can grow under zlib;
    # keep whichever representation is smaller.
    if packed is not None and len(packed) >= len(raw):
        packed = None
    data = raw if packed is None else packed
    out.append(b"a" + struct.pack("!B", len(dtype)) + dtype)
    out.append(struct.pack("!B", a.ndim))
    for dim in a.shape:
        out.append(_U64.pack(dim))
    out.append(struct.pack("!B", 0 if packed is None else 1))
    out.append(_U64.pack(len(data)))
    out.append(data)


def encode(obj, *, compress_arrays: bool = False, compress_min_bytes: int = 4096) -> bytes:
    """Serialize ``obj`` to payload bytes (see the module doc for types)."""
    out: list[bytes] = []
    _encode_into(out, obj, compress_arrays, compress_min_bytes)
    return b"".join(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise ProtocolError("truncated payload")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk


def _decode_one(r: _Reader):
    tag = r.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return _I64.unpack(r.take(8))[0]
    if tag == b"f":
        return _F64.unpack(r.take(8))[0]
    if tag == b"s":
        (n,) = _U32.unpack(r.take(4))
        return r.take(n).decode("utf-8")
    if tag == b"b":
        (n,) = _U32.unpack(r.take(4))
        return r.take(n)
    if tag in (b"l", b"t"):
        (n,) = _U32.unpack(r.take(4))
        items = [_decode_one(r) for _ in range(n)]
        return tuple(items) if tag == b"t" else items
    if tag == b"d":
        (n,) = _U32.unpack(r.take(4))
        return {_decode_one(r): _decode_one(r) for _ in range(n)}
    if tag == b"a":
        (dlen,) = struct.unpack("!B", r.take(1))
        dtype = np.dtype(r.take(dlen).decode("ascii"))
        (ndim,) = struct.unpack("!B", r.take(1))
        shape = tuple(_U64.unpack(r.take(8))[0] for _ in range(ndim))
        (compressed,) = struct.unpack("!B", r.take(1))
        (nbytes,) = _U64.unpack(r.take(8))
        data = r.take(nbytes)
        if compressed:
            data = zlib.decompress(data)
        return np.frombuffer(data, dtype=dtype).reshape(shape).copy()
    raise ProtocolError(f"unknown payload tag {tag!r}")


def decode(payload: bytes):
    """Inverse of :func:`encode`; raises :class:`ProtocolError` on junk."""
    r = _Reader(payload)
    obj = _decode_one(r)
    if r.pos != len(payload):
        raise ProtocolError(f"{len(payload) - r.pos} trailing bytes after payload")
    return obj


# -- framing ---------------------------------------------------------------------
def pack_frame(
    msg_type: int, obj, *, compress_arrays: bool = False, compress_min_bytes: int = 4096
) -> bytes:
    """One complete on-the-wire frame: header + encoded payload."""
    payload = encode(obj, compress_arrays=compress_arrays, compress_min_bytes=compress_min_bytes)
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD")
    return _HEADER.pack(MAGIC, PROTO_VERSION, msg_type, 0, len(payload)) + payload


def send_frame(
    sock,
    msg_type: int,
    obj,
    *,
    lock=None,
    compress_arrays: bool = False,
    compress_min_bytes: int = 4096,
) -> int:
    """Frame + sendall; returns the byte count put on the wire.

    ``lock`` (any context manager) serializes writers — the worker's
    heartbeat-responder thread and its render loop share one socket.
    """
    frame = pack_frame(
        msg_type, obj, compress_arrays=compress_arrays, compress_min_bytes=compress_min_bytes
    )
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)
    return len(frame)


def _parse_header(header: bytes) -> tuple[int, int]:
    magic, version, msg_type, _flags, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}; peer is not speaking repro.net")
    if version != PROTO_VERSION:
        raise ProtocolError(f"protocol version {version} != {PROTO_VERSION}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"frame announces {length} payload bytes (> MAX_PAYLOAD)")
    if msg_type not in MSG_NAMES:
        raise ProtocolError(f"unknown message type {msg_type}")
    return msg_type, length


def _recv_exact(sock, n: int) -> bytes | None:
    """Read exactly ``n`` bytes from a blocking socket; None on clean EOF
    at a frame boundary, ProtocolError on EOF mid-frame."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(65536, n - got))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> tuple[int, object] | None:
    """Blocking read of one frame; ``None`` on clean EOF."""
    header = _recv_exact(sock, HEADER_SIZE)
    if header is None:
        return None
    msg_type, length = _parse_header(header)
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    return msg_type, decode(payload)


class FrameAssembler:
    """Incremental frame parser for the master's readiness-driven loop.

    Feed it whatever ``recv`` returned; iterate to drain every frame that
    is now complete, as ``(msg_type, payload, frame_bytes)`` triples
    (``frame_bytes`` counts header + payload, for wire accounting).
    Partial frames stay buffered across feeds, so the master never blocks
    waiting for the rest of a message.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self.bytes_seen = 0

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)
        self.bytes_seen += len(data)

    def __iter__(self):
        while True:
            if len(self._buf) < HEADER_SIZE:
                return
            msg_type, length = _parse_header(bytes(self._buf[:HEADER_SIZE]))
            total = HEADER_SIZE + length
            if len(self._buf) < total:
                return
            payload = bytes(self._buf[HEADER_SIZE:total])
            del self._buf[:total]
            yield msg_type, decode(payload), total
