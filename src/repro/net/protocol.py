"""The ``repro.net`` wire protocol: length-prefixed binary frames over TCP.

The paper's farm spoke PVM; ours speaks a deliberately tiny protocol that
needs nothing beyond the stdlib and numpy.  Every message on the wire is
one **frame**::

    +--------+---------+----------+---------+-------------+----------------+
    | magic  | version | msg_type | flags   | payload_len | payload bytes  |
    | 4s     | u8      | u8       | u16     | u32         | payload_len    |
    +--------+---------+----------+---------+-------------+----------------+

followed by a self-describing binary **payload** encoding a restricted
value set (msgpack-free on purpose — no third-party codec): ``None``,
bools, 64-bit ints, doubles, UTF-8 strings, raw bytes, lists, tuples,
dicts and numpy arrays.  Tuples and lists round-trip as distinct types so
task results keep their exact Python shape across the hop, and numpy
arrays carry dtype + shape + raw buffer — ``float64`` framebuffers are
therefore **bit-identical** after transport.

Arrays above ``compress_min_bytes`` may be zlib-compressed individually
("tile compression": the framebuffer tiles are the only large values on
the wire, so compressing at the array level gets all of the win without
touching the cheap metadata around it).  Compression is recorded per
array and is transparent to the decoder.

Message types
-------------
==========  =========  ====================================================
name        direction  payload
==========  =========  ====================================================
HELLO       w -> m     {proto, minor, host, pid, cores, score}
WELCOME     m -> w     {worker, heartbeat_interval, compress, proto}
ASSIGN      m -> w     {seq, region, frame0, frame1, fresh, coherent,
                        task, args}
RESULT      w -> m     {seq, result, duration, events}
TILE        w -> m     {seq, frame, x0, y0, x1, y1, pixels}  (streamed
                       before the closing RESULT; minor 3 workers only)
RAYS        m <-> w    {rid, shard, frame, k, op, spec, arrays...} — a ray
                       batch routed to a shard owner (op nearest/occlude);
                       the owner answers with the same type + rid
                       (minor 4, object-space sharding)
SHADE       m <-> w    {rid, shard, frame, k, spec, obj, points} — pigment
                       and finish fetch for hits owned by a shard; answered
                       in kind (minor 4)
BLACKBOX    w -> m     {role, pid, reason, records} — a reconnecting
                       worker ships the flight-recorder dump its previous
                       incarnation left (minor 5, observability plane)
PING        m -> w     {t}
PONG        w -> m     {t, tw}  (t echoes the ping; tw is the worker's
                       clock at the reply — rtt and skew for the master)
ERROR       w -> m     {seq, error, events}
SHUTDOWN    m -> w     {}
JOB_SUBMIT  c -> s     {spec, priority, owner, max_attempts}
JOB_STATUS  c <-> s    request {job} / reply {ok, job | jobs, service, error}
JOB_CANCEL  c -> s     {job}
==========  =========  ====================================================

The ``JOB_*`` types are the **control plane** of the persistent render
service (:mod:`repro.service`): clients (``c``) speak them to a
``repro serve`` daemon (``s``) on its control port, over the same framed
codec the workers use.  The service always answers with a JOB_STATUS
frame, so a client needs exactly one request/reply exchange per call.

Versioning: the frame header's ``version`` byte is the *framing* major —
a mismatch there is a different wire language and fails at the first
frame.  ``PROTO_MINOR`` rides in the HELLO payload instead: it gates
vocabulary both sides must speak (minor 1 added PONG's ``tw`` clock
sample and the trace context inside task args), and the master rejects a
worker older than ``PROTO_MINOR_FLOOR`` *cleanly* at HELLO — SHUTDOWN,
which every revision understands — rather than with a framing error
mid-run.  Capabilities above the floor degrade gracefully: a minor-2
worker never receives tile directives and ships whole sub-areas exactly
as before, while a minor-3 worker streams TILE frames.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque

import numpy as np

from ..buffers import copystats

__all__ = [
    "PROTO_VERSION",
    "PROTO_MINOR",
    "PROTO_MINOR_FLOOR",
    "MAGIC",
    "MSG_HELLO",
    "MSG_WELCOME",
    "MSG_ASSIGN",
    "MSG_RESULT",
    "MSG_PING",
    "MSG_PONG",
    "MSG_ERROR",
    "MSG_SHUTDOWN",
    "MSG_JOB_SUBMIT",
    "MSG_JOB_STATUS",
    "MSG_JOB_CANCEL",
    "MSG_TILE",
    "MSG_RAYS",
    "MSG_SHADE",
    "MSG_BLACKBOX",
    "MSG_NAMES",
    "ProtocolError",
    "encode",
    "encode_parts",
    "decode",
    "pack_frame",
    "pack_frame_parts",
    "send_frame",
    "recv_frame",
    "FrameAssembler",
    "set_zero_copy",
    "zero_copy_enabled",
]

PROTO_VERSION = 1
#: Vocabulary revision negotiated at HELLO (see the module doc).  Minor 1:
#: PONG carries ``tw`` and task args carry the repro.obs trace context.
#: Minor 2: the JOB_SUBMIT/JOB_STATUS/JOB_CANCEL control-plane types for
#: the persistent render service (workers are unaffected, but both sides
#: of a farm must agree on the full message-type table).
#: Minor 3: TILE streaming — workers that advertise it receive a tile
#: directive in ASSIGN and ship finished tiles incrementally (the
#: distributed framebuffer); the closing RESULT then omits the pixels.
#: Minor 4: RAYS/SHADE — object-space sharding.  The master routes
#: wavefront ray batches to shard owners (``MSG_RAYS`` with op
#: ``nearest``/``occlude``) and fetches pigment/finish data for hits
#: (``MSG_SHADE``); owners answer with the same message type and a
#: request id.  Capability-negotiated like tiles: a sharded master
#: raises its HELLO floor to 4, plain farms keep serving older workers.
#: Minor 5: BLACKBOX — a reconnecting worker ships the flight-recorder
#: dump its dead predecessor wrote, so the master can stitch the victim's
#: last seconds into the merged trace.  Purely additive: masters ignore
#: the type from workers that never send it, older workers never do.
PROTO_MINOR = 5
#: Oldest worker vocabulary the master still serves.  Minor-2 workers
#: predate TILE and simply render whole sub-areas; anything older is
#: rejected at HELLO.
PROTO_MINOR_FLOOR = 2
MAGIC = b"RNW1"

MSG_HELLO = 1
MSG_WELCOME = 2
MSG_ASSIGN = 3
MSG_RESULT = 4
MSG_PING = 5
MSG_PONG = 6
MSG_ERROR = 7
MSG_SHUTDOWN = 8
MSG_JOB_SUBMIT = 9
MSG_JOB_STATUS = 10
MSG_JOB_CANCEL = 11
MSG_TILE = 12
MSG_RAYS = 13
MSG_SHADE = 14
MSG_BLACKBOX = 15

MSG_NAMES = {
    MSG_HELLO: "hello",
    MSG_WELCOME: "welcome",
    MSG_ASSIGN: "assign",
    MSG_RESULT: "result",
    MSG_PING: "ping",
    MSG_PONG: "pong",
    MSG_ERROR: "error",
    MSG_SHUTDOWN: "shutdown",
    MSG_JOB_SUBMIT: "job_submit",
    MSG_JOB_STATUS: "job_status",
    MSG_JOB_CANCEL: "job_cancel",
    MSG_TILE: "tile",
    MSG_RAYS: "rays",
    MSG_SHADE: "shade",
    MSG_BLACKBOX: "blackbox",
}

_HEADER = struct.Struct("!4sBBHI")
HEADER_SIZE = _HEADER.size

#: Hard ceiling on one frame's payload — a corrupted length prefix must
#: fail fast, not trigger a multi-gigabyte allocation.
MAX_PAYLOAD = 1 << 30

_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")


class ProtocolError(RuntimeError):
    """Malformed frame or unencodable value on the repro.net wire."""


#: Zero-copy data plane switch.  On (the default), encode ships array
#: buffers as memoryviews (scatter-gather on send), the assembler slices
#: views out of received chunks, and decode returns **read-only** views
#: over the payload — pixel bytes are copied at most once per hop (when
#: a payload spans recv chunks).  Off reproduces the legacy tobytes /
#: extend / slice / .copy() pipeline, with every one of those copies
#: charged to :data:`repro.buffers.copystats` so benchmarks can measure
#: the difference honestly.
_ZERO_COPY = True


def set_zero_copy(enabled: bool) -> bool:
    """Flip the zero-copy data plane; returns the previous setting."""
    global _ZERO_COPY
    prev = _ZERO_COPY
    _ZERO_COPY = bool(enabled)
    return prev


def zero_copy_enabled() -> bool:
    return _ZERO_COPY


# -- value encoding ---------------------------------------------------------------
def _encode_into(out: list, obj, compress_arrays: bool, min_bytes: int) -> None:
    if obj is None:
        out.append(b"N")
    elif obj is True:
        out.append(b"T")
    elif obj is False:
        out.append(b"F")
    elif isinstance(obj, (int, np.integer)):
        v = int(obj)
        if not (-(1 << 63) <= v < (1 << 63)):
            raise ProtocolError(f"integer out of 64-bit range: {v}")
        out.append(b"i" + _I64.pack(v))
    elif isinstance(obj, (float, np.floating)):
        out.append(b"f" + _F64.pack(float(obj)))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(b"s" + _U32.pack(len(raw)) + raw)
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out.append(b"b" + _U32.pack(len(raw)) + raw)
    elif isinstance(obj, np.ndarray):
        _encode_array(out, obj, compress_arrays, min_bytes)
    elif isinstance(obj, (list, tuple)):
        tag = b"t" if isinstance(obj, tuple) else b"l"
        out.append(tag + _U32.pack(len(obj)))
        for item in obj:
            _encode_into(out, item, compress_arrays, min_bytes)
    elif isinstance(obj, dict):
        out.append(b"d" + _U32.pack(len(obj)))
        for key, value in obj.items():
            _encode_into(out, key, compress_arrays, min_bytes)
            _encode_into(out, value, compress_arrays, min_bytes)
    else:
        raise ProtocolError(f"unencodable type {type(obj).__name__!r} on the wire")


def _encode_array(out: list, a: np.ndarray, compress: bool, min_bytes: int) -> None:
    if a.ndim:  # ascontiguousarray would promote a 0-d array to 1-d
        if not a.flags.c_contiguous:
            copystats.add(a.nbytes, "encode.contig")
        a = np.ascontiguousarray(a)
    dtype = a.dtype.str.encode("ascii")
    if _ZERO_COPY and a.ndim and a.size:
        # A byte-window over the array's own storage; sendmsg gathers it
        # straight off the frame buffer.
        raw = memoryview(a).cast("B")
    else:
        copystats.add(a.nbytes, "encode.tobytes")
        raw = a.tobytes()
    nbytes = a.nbytes
    packed = zlib.compress(raw) if compress and nbytes >= min_bytes else None
    # Incompressible data (already-noisy framebuffers) can grow under zlib;
    # keep whichever representation is smaller.
    if packed is not None and len(packed) >= nbytes:
        packed = None
    data = raw if packed is None else packed
    out.append(b"a" + struct.pack("!B", len(dtype)) + dtype)
    out.append(struct.pack("!B", a.ndim))
    for dim in a.shape:
        out.append(_U64.pack(dim))
    out.append(struct.pack("!B", 0 if packed is None else 1))
    out.append(_U64.pack(_nbytes(data)))
    out.append(data)


def _nbytes(part) -> int:
    return part.nbytes if isinstance(part, memoryview) else len(part)


#: Array views at or above this size stay their own scatter-gather part;
#: anything smaller is cheaper to memcpy into the neighboring metadata
#: run than to spend an iovec slot on.
_COALESCE_BELOW = 4096


def _coalesce(parts: list) -> list:
    """Merge runs of small fragments; keep large array views zero-copy."""
    merged: list = []
    acc = bytearray()
    for part in parts:
        if isinstance(part, memoryview) and part.nbytes >= _COALESCE_BELOW:
            if acc:
                merged.append(bytes(acc))
                acc = bytearray()
            merged.append(part)
        else:
            acc += part
    if acc:
        merged.append(bytes(acc))
    return merged


def encode_parts(
    obj, *, compress_arrays: bool = False, compress_min_bytes: int = 4096
) -> list:
    """Serialize ``obj`` to a list of buffers (bytes and memoryviews).

    Large array buffers come back as memoryviews over the arrays' own
    storage — the zero-copy send path hands them to ``sendmsg`` as-is.
    The caller must not mutate those arrays until the parts are sent.
    """
    out: list = []
    _encode_into(out, obj, compress_arrays, compress_min_bytes)
    return _coalesce(out)


def encode(obj, *, compress_arrays: bool = False, compress_min_bytes: int = 4096) -> bytes:
    """Serialize ``obj`` to payload bytes (see the module doc for types)."""
    return b"".join(
        encode_parts(obj, compress_arrays=compress_arrays, compress_min_bytes=compress_min_bytes)
    )


class _Reader:
    """Cursor over a payload buffer; ``take`` returns zero-copy windows."""

    __slots__ = ("data", "pos", "size")

    def __init__(self, data):
        mv = data if isinstance(data, memoryview) else memoryview(data)
        if mv.format != "B":
            mv = mv.cast("B")
        self.data = mv
        self.pos = 0
        self.size = mv.nbytes

    def take(self, n: int) -> memoryview:
        end = self.pos + n
        if end > self.size:
            raise ProtocolError("truncated payload")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def take_byte(self) -> int:
        if self.pos >= self.size:
            raise ProtocolError("truncated payload")
        value = self.data[self.pos]
        self.pos += 1
        return value


_T_NONE, _T_TRUE, _T_FALSE = ord("N"), ord("T"), ord("F")
_T_INT, _T_FLOAT, _T_STR, _T_BYTES = ord("i"), ord("f"), ord("s"), ord("b")
_T_LIST, _T_TUPLE, _T_DICT, _T_ARRAY = ord("l"), ord("t"), ord("d"), ord("a")


def _decode_one(r: _Reader):
    tag = r.take_byte()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _I64.unpack(r.take(8))[0]
    if tag == _T_FLOAT:
        return _F64.unpack(r.take(8))[0]
    if tag == _T_STR:
        (n,) = _U32.unpack(r.take(4))
        return str(r.take(n), "utf-8")
    if tag == _T_BYTES:
        (n,) = _U32.unpack(r.take(4))
        return bytes(r.take(n))
    if tag in (_T_LIST, _T_TUPLE):
        (n,) = _U32.unpack(r.take(4))
        items = [_decode_one(r) for _ in range(n)]
        return tuple(items) if tag == _T_TUPLE else items
    if tag == _T_DICT:
        (n,) = _U32.unpack(r.take(4))
        return {_decode_one(r): _decode_one(r) for _ in range(n)}
    if tag == _T_ARRAY:
        dlen = r.take_byte()
        dtype = np.dtype(str(r.take(dlen), "ascii"))
        ndim = r.take_byte()
        shape = tuple(_U64.unpack(r.take(8))[0] for _ in range(ndim))
        compressed = r.take_byte()
        (nbytes,) = _U64.unpack(r.take(8))
        data = r.take(nbytes)
        if compressed:
            data = zlib.decompress(data)
        if _ZERO_COPY:
            # Read-only view over the payload itself — the one rule of
            # the data plane: decoded arrays are borrowed, never owned.
            # Consumers that must mutate copy explicitly (DESIGN §15).
            arr = np.frombuffer(data, dtype=dtype).reshape(shape)
            if arr.flags.writeable:
                arr.setflags(write=False)
            return arr
        copystats.add(int(nbytes), "decode.copy")
        return np.frombuffer(data, dtype=dtype).reshape(shape).copy()
    raise ProtocolError(f"unknown payload tag {chr(tag)!r}")


def decode(payload):
    """Inverse of :func:`encode`; raises :class:`ProtocolError` on junk.

    Accepts bytes or a memoryview.  Arrays in the result are read-only
    views over ``payload`` (they keep it alive; copy to mutate) unless
    zero-copy is disabled.
    """
    r = _Reader(payload)
    obj = _decode_one(r)
    if r.pos != r.size:
        raise ProtocolError(f"{r.size - r.pos} trailing bytes after payload")
    return obj


# -- framing ---------------------------------------------------------------------
def pack_frame_parts(
    msg_type: int, obj, *, compress_arrays: bool = False, compress_min_bytes: int = 4096
) -> list:
    """One frame as a scatter-gather buffer list: [header, payload parts...]."""
    parts = encode_parts(
        obj, compress_arrays=compress_arrays, compress_min_bytes=compress_min_bytes
    )
    length = sum(_nbytes(p) for p in parts)
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {length} bytes exceeds MAX_PAYLOAD")
    return [_HEADER.pack(MAGIC, PROTO_VERSION, msg_type, 0, length), *parts]


def pack_frame(
    msg_type: int, obj, *, compress_arrays: bool = False, compress_min_bytes: int = 4096
) -> bytes:
    """One complete on-the-wire frame: header + encoded payload."""
    return b"".join(
        pack_frame_parts(
            msg_type, obj, compress_arrays=compress_arrays, compress_min_bytes=compress_min_bytes
        )
    )


def _send_parts(sock, parts: list) -> None:
    """Scatter-gather send: array buffers go to the kernel from their own
    storage (``sendmsg``), never joined into one outbound copy."""
    sendmsg = getattr(sock, "sendmsg", None)
    if sendmsg is None:  # test doubles / exotic sockets: one joined write
        sock.sendall(b"".join(parts))
        return
    views = [
        p if isinstance(p, memoryview) and p.format == "B" else memoryview(p).cast("B")
        for p in parts
    ]
    while views:
        sent = sendmsg(views)
        while sent:
            head = views[0]
            if head.nbytes <= sent:
                sent -= head.nbytes
                views.pop(0)
            else:
                views[0] = head[sent:]
                sent = 0


def send_frame(
    sock,
    msg_type: int,
    obj,
    *,
    lock=None,
    compress_arrays: bool = False,
    compress_min_bytes: int = 4096,
) -> int:
    """Frame + scatter-gather send; returns the byte count put on the wire.

    ``lock`` (any context manager) serializes writers — the worker's
    heartbeat-responder thread and its render loop share one socket.
    """
    if _ZERO_COPY:
        parts = pack_frame_parts(
            msg_type, obj, compress_arrays=compress_arrays, compress_min_bytes=compress_min_bytes
        )
        total = sum(_nbytes(p) for p in parts)
        if lock is not None:
            with lock:
                _send_parts(sock, parts)
        else:
            _send_parts(sock, parts)
        return total
    frame = pack_frame(
        msg_type, obj, compress_arrays=compress_arrays, compress_min_bytes=compress_min_bytes
    )
    copystats.add(len(frame) - HEADER_SIZE, "send.join")
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)
    return len(frame)


def _parse_header(header: bytes) -> tuple[int, int]:
    magic, version, msg_type, _flags, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}; peer is not speaking repro.net")
    if version != PROTO_VERSION:
        raise ProtocolError(f"protocol version {version} != {PROTO_VERSION}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"frame announces {length} payload bytes (> MAX_PAYLOAD)")
    if msg_type not in MSG_NAMES:
        raise ProtocolError(f"unknown message type {msg_type}")
    return msg_type, length


def _recv_exact(sock, n: int) -> bytes | None:
    """Read exactly ``n`` bytes from a blocking socket; None on clean EOF
    at a frame boundary, ProtocolError on EOF mid-frame."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(65536, n - got))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> tuple[int, object] | None:
    """Blocking read of one frame; ``None`` on clean EOF."""
    header = _recv_exact(sock, HEADER_SIZE)
    if header is None:
        return None
    msg_type, length = _parse_header(header)
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    return msg_type, decode(payload)


class FrameAssembler:
    """Incremental frame parser for the master's readiness-driven loop.

    Feed it whatever ``recv`` returned; iterate to drain every frame that
    is now complete, as ``(msg_type, payload, frame_bytes)`` triples
    (``frame_bytes`` counts header + payload, for wire accounting).
    Partial frames stay buffered across feeds, so the master never blocks
    waiting for the rest of a message.

    Fed chunks are kept whole in a deque and *sliced as views*: a payload
    that fits inside one recv chunk is decoded zero-copy in place (the
    decoded arrays alias the chunk and keep it alive), and a payload
    spanning chunks is joined exactly once.  The legacy mode
    (:func:`set_zero_copy`\\ ``(False)``) reproduces the old
    extend-then-slice bytearray pipeline, with its copies charged to
    :data:`repro.buffers.copystats`.
    """

    def __init__(self) -> None:
        self._chunks: deque[memoryview] = deque()
        self._avail = 0
        self.bytes_seen = 0

    def feed(self, data) -> None:
        if not data:
            return
        if not isinstance(data, bytes):
            # Only immutable buffers may be aliased by decoded views.
            data = bytes(data)
        if not _ZERO_COPY:
            copystats.add(len(data), "assembler.extend")
        self._chunks.append(memoryview(data))
        self._avail += len(data)
        self.bytes_seen += len(data)

    def _peek_header(self) -> memoryview | bytes:
        head = self._chunks[0]
        if head.nbytes >= HEADER_SIZE:
            return head[:HEADER_SIZE]
        buf = bytearray()
        for chunk in self._chunks:
            buf += chunk[: HEADER_SIZE - len(buf)]
            if len(buf) == HEADER_SIZE:
                break
        return bytes(buf)

    def _take(self, n: int) -> memoryview:
        """Consume ``n`` buffered bytes as one contiguous view — zero-copy
        off the front chunk when it covers them, one counted join if not."""
        head = self._chunks[0]
        if head.nbytes >= n:
            out = head[:n]
            if head.nbytes == n:
                self._chunks.popleft()
            else:
                self._chunks[0] = head[n:]
            self._avail -= n
            return out
        copystats.add(n, "assembler.join")
        buf = bytearray(n)
        pos = 0
        while pos < n:
            head = self._chunks[0]
            take = min(head.nbytes, n - pos)
            buf[pos : pos + take] = head[:take]
            if take == head.nbytes:
                self._chunks.popleft()
            else:
                self._chunks[0] = head[take:]
            pos += take
        self._avail -= n
        return memoryview(buf)  # we own buf; decode marks array views read-only

    def __iter__(self):
        while True:
            if self._avail < HEADER_SIZE:
                return
            msg_type, length = _parse_header(self._peek_header())
            total = HEADER_SIZE + length
            if self._avail < total:
                return
            self._take(HEADER_SIZE)
            payload = self._take(length) if length else memoryview(b"")
            if not _ZERO_COPY:
                copystats.add(length, "assembler.slice")
                payload = bytes(payload)
            yield msg_type, decode(payload), total
