"""Flight recorder: always-on ring buffers dumped as crash black boxes.

Every process in a farm — master, worker daemon, service daemon, shard
session — keeps a bounded ring of its most recent telemetry records and
protocol-frame notes.  The ring costs one deque append per record and is
invisible until something dies; then it is dumped atomically as
``blackbox_<role>_<pid>.jsonl`` into the run directory, preserving the
victim's last seconds for post-mortem stitching
(:func:`repro.obs.analysis.stitch_blackbox`).

Dump triggers:

* **fault injection** — the worker's ``--die-after`` / ``--die-after-frames``
  kill paths dump before ``os._exit``;
* **SIGTERM** — :meth:`FlightRecorder.install` hooks the signal (main
  thread only) and dumps before the process honours it;
* **unhandled exception** — ``sys.excepthook`` is chained the same way;
* **master-observed worker loss** — the master dumps its own ring and
  points the ``net.worker.lost`` event at whichever dump the victim left.

Because worker processes build short-lived per-task telemetry sessions
the daemon never sees, the recorder taps the process-global emission path
(:func:`repro.telemetry.set_flight_tap`) instead of registering as a
per-instance sink — every record from every session in the process lands
in the one ring.  At dump time, spans still *open* (a task killed
mid-frame has emitted nothing for itself yet) are synthesized from the
live sessions' span stacks (:func:`repro.telemetry.live_sessions`) with
the duration measured to the moment of death and an ``"open": true``
marker, which is what lets the stitched trace show the victim's final
in-flight work with zero orphan spans.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from collections import deque
from pathlib import Path

from ..telemetry import SCHEMA_VERSION, live_sessions, set_flight_tap

__all__ = [
    "FlightRecorder",
    "blackbox_filename",
    "open_span_records",
    "read_blackbox",
]

#: Default ring capacity (records). ~2k JSONL lines is a few hundred KiB —
#: enough for several seconds of a busy worker's telemetry.
DEFAULT_CAPACITY = 2048

#: Recorders currently tapped into the spine.  More than one can coexist
#: in a process (a render service running an in-process farm master has a
#: "service" and a "master" box); each sees every record, each dumps to
#: its own role-named file.
_RECORDERS: list["FlightRecorder"] = []


def _tap_dispatch(rec: dict) -> None:
    for recorder in _RECORDERS:
        recorder.record(rec)


def blackbox_filename(role: str, pid: int) -> str:
    return f"blackbox_{role}_{int(pid)}.jsonl"


def open_span_records(t_now: float | None = None) -> list[dict]:
    """Synthesize close records for every span still open in this process.

    Span attrs are populated at open time at every emission site (mid-span
    refinements like ray counts keep their placeholder values), so the
    synthesized records stay schema-valid.  Each carries ``"open": true``
    so the analysis can tell a crash-truncated span from a real close.
    """
    out: list[dict] = []
    for tel in live_sessions():
        try:
            now = tel.now() if t_now is None else t_now
            for h in list(tel._span_stack):
                rec = {
                    "v": SCHEMA_VERSION,
                    "type": "span",
                    "name": h.name,
                    "t": h.t0,
                    "dur": max(0.0, now - h.t0),
                    "span": h.span_id,
                    "parent": h.parent_id,
                    "attrs": dict(h.attrs),
                    "open": True,
                }
                if tel.run_id:
                    rec["run"] = tel.run_id
                out.append(rec)
        except Exception:
            continue  # a half-torn session must not block the dump
    return out


def read_blackbox(path) -> list[dict]:
    """Parse a dump back into records (tolerates a torn final line)."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                break  # the process died mid-write; keep what parsed
    return records


class FlightRecorder:
    """One process's black box.

    Parameters
    ----------
    role:
        Short process label baked into the dump filename
        (``master`` / ``worker`` / ``service`` / ``shard``).
    out_dir:
        Where dumps land.  ``None`` disables file dumps (the records are
        still collected and can ship over the wire via :meth:`records`).
    capacity:
        Ring size in records; the oldest fall off.
    """

    def __init__(self, role: str, out_dir=None, capacity: int = DEFAULT_CAPACITY):
        self.role = str(role)
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.pid = os.getpid()
        self._ring: deque = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._dumped_path: Path | None = None
        self._installed = False
        self._prev_excepthook = None
        self._prev_sigterm = None
        #: Optional callable invoked with every tapped record (the worker
        #: daemon hangs its ``--die-after-frames`` counter here).
        self.hook = None

    # -- ingestion -------------------------------------------------------------
    def record(self, rec: dict) -> None:
        """Tap target: remember one telemetry record."""
        with self._lock:
            self._ring.append(rec)
        hook = self.hook
        if hook is not None:
            hook(rec)

    def note_frame(self, direction: str, msg: str, nbytes: int) -> None:
        """Remember one protocol frame (sent or received) as a wire note."""
        with self._lock:
            self._ring.append(
                {
                    "type": "wire",
                    "name": f"wire.{direction}",
                    "t": time.perf_counter(),
                    "attrs": {"msg": str(msg), "nbytes": int(nbytes)},
                }
            )

    # -- installation ----------------------------------------------------------
    def install(self, signals: bool = True) -> "FlightRecorder":
        """Start recording: tap the telemetry spine and (optionally) hook
        SIGTERM + ``sys.excepthook`` to dump before dying."""
        if self._installed:
            return self
        self._installed = True
        _RECORDERS.append(self)
        set_flight_tap(_tap_dispatch)
        if signals:
            try:
                self._prev_sigterm = signal.signal(signal.SIGTERM, self._on_sigterm)
            except ValueError:
                self._prev_sigterm = None  # not the main thread
            self._prev_excepthook = sys.excepthook
            sys.excepthook = self._on_excepthook
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        self._installed = False
        if self in _RECORDERS:
            _RECORDERS.remove(self)
        if not _RECORDERS:
            set_flight_tap(None)
        if self._prev_excepthook is not None:
            sys.excepthook = self._prev_excepthook
            self._prev_excepthook = None
        if self._prev_sigterm is not None:
            try:
                signal.signal(signal.SIGTERM, self._prev_sigterm)
            except ValueError:
                pass
            self._prev_sigterm = None

    def _on_sigterm(self, signum, frame) -> None:
        self.dump("sigterm")
        prev = self._prev_sigterm
        if callable(prev):
            prev(signum, frame)
        else:
            os._exit(128 + int(signum))

    def _on_excepthook(self, exc_type, exc, tb) -> None:
        if not issubclass(exc_type, (KeyboardInterrupt, SystemExit)):
            self.dump(f"unhandled:{exc_type.__name__}")
        (self._prev_excepthook or sys.__excepthook__)(exc_type, exc, tb)

    # -- dumping ---------------------------------------------------------------
    def records(self, reason: str = "manual") -> list[dict]:
        """The dump payload: a meta header, the ring, then synthesized
        closes for spans still open at this instant."""
        with self._lock:
            ring = list(self._ring)
        meta = {
            "type": "blackbox",
            "name": "meta",
            "t": time.perf_counter(),
            "attrs": {
                "role": self.role,
                "pid": self.pid,
                "reason": str(reason),
                "n_ring": len(ring),
            },
        }
        return [meta, *ring, *open_span_records()]

    def dump(self, reason: str = "manual", out_dir=None) -> Path | None:
        """Write the black box atomically; returns the path (``None`` when
        no directory is configured).  Re-dumping overwrites — the latest
        seconds before death are the ones that matter."""
        target_dir = Path(out_dir) if out_dir is not None else self.out_dir
        if target_dir is None:
            return None
        records = self.records(reason)
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            path = target_dir / blackbox_filename(self.role, self.pid)
            tmp = path.with_name(f".{path.name}.tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                for rec in records:
                    fh.write(json.dumps(rec, separators=(",", ":"), default=str))
                    fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            return None  # a dying process must not die harder over its dump
        self._dumped_path = path
        return path

    @property
    def dumped_path(self) -> Path | None:
        return self._dumped_path
