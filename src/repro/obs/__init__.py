"""repro.obs — distributed tracing and live monitoring for the render farm.

The paper's results are claims about *where time goes* on a network of
workstations: idle lanes under static sequence division, demand-driven
load balance, stragglers.  This package turns the telemetry spine
(:mod:`repro.telemetry`) plus the wire protocol (:mod:`repro.net`) into
an end-to-end observability layer that can reproduce that analysis from
event data alone:

* :mod:`~repro.obs.trace` — run/trace identity, the task-envelope trace
  context workers parent their spans under, and the orphan-span check;
* :mod:`~repro.obs.ledger` — :class:`RunLedger`, a telemetry sink that
  folds the unified event stream into per-worker live state (in-flight
  assignments, heartbeat ages, throughput, ETA);
* :mod:`~repro.obs.analysis` — per-worker busy/idle timelines, the
  paper-style utilization/Gantt report, straggler z-scores, and the
  sequence-vs-frame-division load-balance contrast;
* :mod:`~repro.obs.chrometrace` — Chrome trace-event JSON export, one
  track per worker lane, loadable in Perfetto / ``chrome://tracing``;
* :mod:`~repro.obs.live` — a read-only JSON status endpoint over
  stdlib ``http.server`` plus the ``repro top`` terminal view.

Everything consumes the pinned event schema (v4), so the same tooling
works on a real TCP farm run, a process-pool run, and a virtual-clock
simulator replay.
"""

from .analysis import (
    UtilizationReport,
    WorkerTimeline,
    compare_division,
    format_utilization,
    stitch_blackbox,
    utilization_report,
    worker_timelines,
)
from .chrometrace import chrome_trace, write_chrome_trace
from .flight import FlightRecorder, blackbox_filename, open_span_records, read_blackbox
from .ledger import RunLedger
from .live import StatusServer, fetch_status, render_jobs, render_status
from .metrics import (
    EXPOSITION_CONTENT_TYPE,
    MetricsPlane,
    StragglerDetector,
    prometheus_name,
)
from .trace import (
    FLIGHT_PREFIX,
    TraceContext,
    find_orphan_spans,
    flight_span_id,
    new_run_id,
    worker_session,
)

__all__ = [
    "EXPOSITION_CONTENT_TYPE",
    "FLIGHT_PREFIX",
    "FlightRecorder",
    "MetricsPlane",
    "RunLedger",
    "StatusServer",
    "StragglerDetector",
    "TraceContext",
    "UtilizationReport",
    "WorkerTimeline",
    "blackbox_filename",
    "chrome_trace",
    "compare_division",
    "fetch_status",
    "find_orphan_spans",
    "flight_span_id",
    "format_utilization",
    "new_run_id",
    "open_span_records",
    "prometheus_name",
    "read_blackbox",
    "render_jobs",
    "render_status",
    "stitch_blackbox",
    "utilization_report",
    "worker_session",
    "worker_timelines",
    "write_chrome_trace",
]
