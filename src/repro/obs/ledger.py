"""RunLedger: fold the live event stream into farm state.

The ledger is an ordinary telemetry sink — it rides in the same
``sinks=`` list as the in-memory and JSONL sinks, so attaching it costs
one extra ``emit`` fan-out per record.  It folds the unified stream
(master bookkeeping + absorbed worker events) into the state a farm
operator wants to watch: who has joined, what is in flight where, how
stale each heartbeat is, attempt outcomes, throughput and an ETA.

Concurrency model: the emitting thread (the master's event loop) mutates
the fold under a small mutex; :meth:`snapshot` builds a plain-dict copy
under the same mutex and caches it, atomically swapping the reference.
The HTTP status thread calls :meth:`snapshot` too, but between rebuilds
it serves the cached immutable dict — readers never see a half-updated
fold, and the emit path never blocks on a slow reader (JSON encoding
happens outside the lock, in the server thread).
"""

from __future__ import annotations

import threading
import time

__all__ = ["RunLedger"]

#: Rebuild the cached snapshot at most this often (seconds).
_SNAPSHOT_TTL = 0.25


class RunLedger:
    """Live farm state folded from the telemetry stream (a sink)."""

    def __init__(self, clock=None):
        self._lock = threading.Lock()
        self._clock = clock if clock is not None else time.time
        self._t_start: float | None = None  # wall clock at first record
        self._meta: dict = {}
        self._done = False
        self._wall_time: float | None = None
        self._workers: dict[str, dict] = {}
        self._in_flight: dict[int, dict] = {}  # seq -> assignment info
        self._frames_done: set[int] = set()
        self._tasks_done = 0
        self._tasks_failed = 0
        # Attempt outcomes arrive on two channels describing the same
        # dispatches: live obs.flight spans (traced transports) and the
        # run-end task.attempt summary.  Fold them separately and prefer
        # the live channel, so traced runs don't double-count.
        self._attempts_flight: dict[str, int] = {}
        self._attempts_sup: dict[str, int] = {}
        self._losses: list[dict] = []
        self._tiles_done = 0
        self._tile_bytes = 0
        self._frames_salvaged = 0
        self._shard_owner: dict[int, str] = {}  # shard -> current owner
        self._shard_bytes = 0  # ray-exchange wire bytes (requests + replies)
        self._n_events = 0
        self._snapshot: dict | None = None
        self._snapshot_t = 0.0

    # -- sink protocol -------------------------------------------------------
    def emit(self, record: dict) -> None:
        name = record.get("name")
        handler = self._HANDLERS.get(name)
        with self._lock:
            if self._t_start is None:
                self._t_start = self._clock()
            self._n_events += 1
            if handler is not None:
                handler(self, record.get("attrs") or {}, record)

    def close(self) -> None:
        with self._lock:
            self._done = True

    # -- fold handlers (called under the lock) -------------------------------
    def _worker(self, name: str) -> dict:
        return self._workers.setdefault(
            str(name),
            {
                "worker": str(name),
                "host": "",
                "cores": 0,
                "score": 0.0,
                "n_done": 0,
                "busy": 0.0,
                "rtt": None,
                "offset": 0.0,
                "health": "ok",  # ok | straggler | lost (health.* + loss events)
                "last_heartbeat": None,  # wall-clock time of last sign of life
                # Object-space sharding counters (zero outside shard runs).
                "rays_local": 0,  # rays this worker's shards traced for themselves
                "rays_forwarded": 0,  # rays its shards shipped to other owners
                "rays_received": 0,  # rays routed to it (local + from others)
            },
        )

    def _on_run_start(self, attrs, record) -> None:
        self._meta = {
            "run": record.get("run", ""),
            "engine": attrs.get("engine", ""),
            "workload": attrs.get("workload", ""),
            "mode": attrs.get("mode", ""),
            "n_frames": int(attrs.get("n_frames", 0)),
            "n_workers": int(attrs.get("n_workers", 0)),
        }

    def _on_run_end(self, attrs, record) -> None:
        self._done = True
        self._wall_time = float(attrs.get("wall_time", 0.0))

    def _on_join(self, attrs, record) -> None:
        w = self._worker(attrs.get("worker", "?"))
        w["host"] = str(attrs.get("host", ""))
        w["cores"] = int(attrs.get("cores", 0))
        w["score"] = float(attrs.get("score", 0.0))
        w["health"] = "ok"  # a (re)join clears lost/straggler state
        w["last_heartbeat"] = self._clock()

    def _on_assign(self, attrs, record) -> None:
        seq = int(attrs.get("seq", -1))
        self._in_flight[seq] = {
            "worker": str(attrs.get("worker", "?")),
            "seq": seq,
            "frame0": int(attrs.get("frame0", 0)),
            "frame1": int(attrs.get("frame1", 0)),
            "since": self._clock(),
        }
        self._worker(attrs.get("worker", "?"))["last_heartbeat"] = self._clock()

    def _on_pong(self, attrs, record) -> None:
        w = self._worker(attrs.get("worker", "?"))
        w["rtt"] = float(attrs.get("rtt", 0.0))
        w["last_heartbeat"] = self._clock()

    def _on_clock(self, attrs, record) -> None:
        w = self._worker(attrs.get("worker", "?"))
        w["offset"] = float(attrs.get("offset", 0.0))
        w["rtt"] = float(attrs.get("rtt", 0.0))

    def _on_result(self, attrs, record) -> None:
        self._in_flight.pop(int(attrs.get("seq", -1)), None)
        self._worker(attrs.get("worker", "?"))["last_heartbeat"] = self._clock()

    def _on_flight(self, attrs, record) -> None:
        outcome = str(attrs.get("outcome", "ok"))
        self._attempts_flight[outcome] = self._attempts_flight.get(outcome, 0) + 1
        self._in_flight.pop(int(attrs.get("seq", -1)), None)
        if outcome == "ok":
            self._tasks_done += 1
            self._worker(attrs.get("worker", "?"))["n_done"] += 1
        else:
            self._tasks_failed += 1

    def _on_task_attempt(self, attrs, record) -> None:
        outcome = str(attrs.get("outcome", "ok"))
        self._attempts_sup[outcome] = self._attempts_sup.get(outcome, 0) + 1

    def _on_task_span(self, attrs, record) -> None:
        if record.get("type") != "span":
            return
        w = self._worker(attrs.get("worker", "?"))
        w["busy"] += float(record.get("dur", 0.0))

    def _on_frame(self, attrs, record) -> None:
        self._frames_done.add(int(attrs.get("frame", -1)))

    def _on_lost(self, attrs, record) -> None:
        self._losses.append(
            {
                "worker": str(attrs.get("worker", "?")),
                "reason": str(attrs.get("reason", "?")),
                "blackbox": str(attrs.get("blackbox", "") or ""),
            }
        )
        self._worker(attrs.get("worker", "?"))["health"] = "lost"
        seq = attrs.get("seq")
        if seq is not None and int(seq) >= 0:
            self._in_flight.pop(int(seq), None)

    def _on_straggler(self, attrs, record) -> None:
        self._worker(attrs.get("worker", "?"))["health"] = "straggler"

    def _on_recovered(self, attrs, record) -> None:
        w = self._worker(attrs.get("worker", "?"))
        if w["health"] == "straggler":
            w["health"] = "ok"

    def _on_tile(self, attrs, record) -> None:
        self._tiles_done += 1
        self._tile_bytes += int(attrs.get("nbytes", 0))
        self._worker(attrs.get("worker", "?"))["last_heartbeat"] = self._clock()

    def _on_salvage(self, attrs, record) -> None:
        self._frames_salvaged += int(attrs.get("frame_done", 0)) - int(
            attrs.get("frame0", 0)
        )

    def _on_shard_rays(self, attrs, record) -> None:
        w = self._worker(attrs.get("worker", "?"))
        self._shard_owner[int(attrs.get("shard", -1))] = w["worker"]
        w["rays_local"] += int(attrs.get("n_local", 0))
        w["rays_forwarded"] += int(attrs.get("n_forwarded", 0))
        w["last_heartbeat"] = self._clock()

    def _on_shard_xfer(self, attrs, record) -> None:
        w = self._worker(attrs.get("worker", "?"))
        w["rays_received"] += int(attrs.get("n_rays", 0))
        self._shard_bytes += int(attrs.get("nbytes", 0))

    _HANDLERS = {
        "run.start": _on_run_start,
        "run.end": _on_run_end,
        "net.worker.join": _on_join,
        "net.assign": _on_assign,
        "net.pong": _on_pong,
        "net.result": _on_result,
        "net.worker.lost": _on_lost,
        "health.straggler": _on_straggler,
        "health.recovered": _on_recovered,
        "obs.clock": _on_clock,
        "obs.flight": _on_flight,
        "task.attempt": _on_task_attempt,
        "task": _on_task_span,
        "frame": _on_frame,
        "dfb.tile": _on_tile,
        "dfb.salvage": _on_salvage,
        "shard.rays": _on_shard_rays,
        "shard.xfer": _on_shard_xfer,
    }

    # -- read side -------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-able copy of the current farm state (cached ~250 ms)."""
        now = self._clock()
        snap = self._snapshot
        if snap is not None and now - self._snapshot_t < _SNAPSHOT_TTL and not self._done:
            return snap
        with self._lock:
            snap = self._build_snapshot(now)
        self._snapshot = snap
        self._snapshot_t = now
        return snap

    def _build_snapshot(self, now: float) -> dict:
        elapsed = (now - self._t_start) if self._t_start is not None else 0.0
        if self._done and self._wall_time is not None:
            elapsed = self._wall_time
        n_frames = int(self._meta.get("n_frames", 0))
        frames_done = len(self._frames_done)
        rate = (self._tasks_done / elapsed) if elapsed > 0 else 0.0
        eta = None
        if not self._done and frames_done > 0 and elapsed > 0 and n_frames > frames_done:
            eta = (n_frames - frames_done) * (elapsed / frames_done)
        owned: dict[str, list[int]] = {}
        for shard, owner in sorted(self._shard_owner.items()):
            owned.setdefault(owner, []).append(shard)
        workers = []
        for w in sorted(self._workers.values(), key=lambda w: w["worker"]):
            hb = w["last_heartbeat"]
            workers.append(
                {
                    "worker": w["worker"],
                    "host": w["host"],
                    "cores": w["cores"],
                    "score": w["score"],
                    "n_done": w["n_done"],
                    "busy": round(w["busy"], 6),
                    "rtt": w["rtt"],
                    "offset": w["offset"],
                    "health": w["health"],
                    "heartbeat_age": (round(now - hb, 3) if hb is not None else None),
                    "shards": owned.get(w["worker"], []),
                    "rays_local": w["rays_local"],
                    "rays_forwarded": w["rays_forwarded"],
                    "rays_received": w["rays_received"],
                }
            )
        return {
            **self._meta,
            "done": self._done,
            "elapsed": round(elapsed, 3),
            "n_events": self._n_events,
            "frames_done": frames_done,
            "tasks_done": self._tasks_done,
            "tasks_failed": self._tasks_failed,
            "tasks_per_sec": round(rate, 3),
            "eta_seconds": (round(eta, 1) if eta is not None else None),
            "attempts": dict(self._attempts_flight or self._attempts_sup),
            "losses": list(self._losses),
            "tiles_done": self._tiles_done,
            "tile_bytes": self._tile_bytes,
            "frames_salvaged": self._frames_salvaged,
            "n_shards": len(self._shard_owner),
            "shard_bytes": self._shard_bytes,
            "workers": workers,
            "in_flight": [
                {**a, "age": round(now - a.pop("since"), 3)}
                for a in (dict(v) for v in self._in_flight.values())
            ],
        }
