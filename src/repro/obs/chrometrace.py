"""Chrome trace-event export: open a run in Perfetto / ``chrome://tracing``.

Maps the telemetry stream onto the trace-event JSON format (the
"JSON Array with metadata" flavor): one process, one track (tid) per
worker lane plus a ``master`` track for records without a worker attr.
Spans become complete events (``ph: "X"``), point events become instants
(``ph: "i"``), counter/gauge records become counter samples (``ph: "C"``)
so ray totals and queue depths plot as graphs under the tracks.

Timestamps are microseconds relative to the earliest record, so virtual-
clock simulator runs and real runs are equally loadable.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["chrome_trace", "write_chrome_trace"]

_PID = 1
_MASTER_LANE = "master"


def _lane_of(record: dict) -> str:
    attrs = record.get("attrs") or {}
    worker = attrs.get("worker")
    return _MASTER_LANE if worker in (None, "") else str(worker)


def chrome_trace(events, run_id: str = "") -> dict:
    """Event stream -> trace-event JSON object (``{"traceEvents": [...]}``)."""
    records = [rec for rec in events if "t" in rec]
    t_base = min((float(rec["t"]) for rec in records), default=0.0)

    def us(t: float) -> float:
        return (float(t) - t_base) * 1e6

    lanes: dict[str, int] = {_MASTER_LANE: 0}
    trace_events: list[dict] = []
    for rec in records:
        lane = _lane_of(rec)
        tid = lanes.setdefault(lane, len(lanes))
        rtype = rec.get("type")
        name = str(rec.get("name", "?"))
        attrs = rec.get("attrs") or {}
        base = {"name": name, "pid": _PID, "tid": tid, "ts": us(rec["t"])}
        if rtype == "span":
            trace_events.append(
                {
                    **base,
                    "ph": "X",
                    "dur": max(0.0, float(rec.get("dur", 0.0))) * 1e6,
                    "cat": "span",
                    "args": dict(attrs),
                }
            )
        elif rtype == "event":
            trace_events.append(
                {**base, "ph": "i", "s": "t", "cat": "event", "args": dict(attrs)}
            )
        elif rtype in ("counter", "gauge"):
            trace_events.append(
                {
                    **base,
                    "tid": 0,
                    "ph": "C",
                    "cat": rtype,
                    "args": {"value": float(rec.get("value", 0.0))},
                }
            )
        elif rtype == "histogram":
            # A flushed distribution summary plots as one counter track
            # per quantile series (name/p50, name/p95), so task-latency
            # percentiles graph under the lanes in Perfetto.
            for q in ("p50", "p95"):
                if q not in attrs:
                    continue
                trace_events.append(
                    {
                        **base,
                        "name": f"{name}/{q}",
                        "tid": 0,
                        "ph": "C",
                        "cat": "histogram",
                        "args": {"value": float(attrs[q])},
                    }
                )
    for lane, tid in lanes.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    meta = {"n_records": len(records)}
    if run_id:
        meta["run_id"] = run_id
    return {"traceEvents": trace_events, "displayTimeUnit": "ms", "otherData": meta}


def write_chrome_trace(events, path: str | Path, run_id: str = "") -> int:
    """Write the trace JSON to ``path``; returns the trace-event count."""
    trace = chrome_trace(events, run_id=run_id)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, separators=(",", ":")))
    return len(trace["traceEvents"])
