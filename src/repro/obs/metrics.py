"""The metrics plane: streaming percentiles, health, and /metrics text.

:class:`MetricsPlane` is a telemetry *sink*: attach it to the master's
session and it folds the record stream into mergeable
:class:`~repro.telemetry.hist.LogHistogram` sketches —

* ``task`` latency from worker-side ``task`` spans (absorbed into the
  master stream at RESULT time),
* per-attempt wall time from ``task.attempt`` events,
* wire round trips from ``net.pong`` (``rtt``) and ``net.result``
  (``duration``),
* tile payload sizes from ``dfb.tile``,
* plus any flushed ``histogram`` record carrying a digest: a worker's
  own sketch folds in associatively, which is the point of the
  log-bucketed representation.

The same stream drives an online EWMA straggler detector: each worker's
task-latency EWMA is compared against the farm-wide EWMA; a worker whose
ratio exceeds ``ratio`` (with ``min_samples`` observations on both sides)
is declared a straggler via a ``health.straggler`` event, and recovers —
with hysteresis, at ``recover_ratio`` — via ``health.recovered``.  The
ledger folds those into the per-worker health column ``repro top`` shows.

:meth:`MetricsPlane.exposition` renders everything as Prometheus text
exposition (version 0.0.4) for the ``/metrics`` route on
:class:`repro.obs.live.StatusServer`.
"""

from __future__ import annotations

import re
import threading

from ..telemetry import LogHistogram

__all__ = [
    "MetricsPlane",
    "StragglerDetector",
    "EXPOSITION_CONTENT_TYPE",
    "prometheus_name",
]

EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4"

#: Numeric health states for the gauge (and the order of severity).
HEALTH_STATES = {"ok": 0, "straggler": 1, "lost": 2}

_NAME_RX = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str) -> str:
    """``task.duration`` -> ``repro_task_duration`` (exposition-safe)."""
    clean = _NAME_RX.sub("_", str(name)).strip("_")
    if not clean or not (clean[0].isalpha() or clean[0] == "_"):
        clean = f"m_{clean}"
    return f"repro_{clean}"


class StragglerDetector:
    """Online straggler detection over per-worker task latencies.

    Exponentially-weighted moving averages, one per worker plus one
    farm-wide; worker ``w`` is a straggler while
    ``ewma[w] / ewma[farm] >= ratio`` and recovers once the ratio drops
    under ``recover_ratio`` (hysteresis, so a worker hovering at the
    threshold doesn't flap).  Nothing is emitted until both the worker
    and the farm have seen ``min_samples`` observations.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        ratio: float = 2.0,
        recover_ratio: float = 1.5,
        min_samples: int = 4,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if recover_ratio > ratio:
            raise ValueError("recover_ratio must not exceed ratio (hysteresis)")
        self.alpha = float(alpha)
        self.ratio = float(ratio)
        self.recover_ratio = float(recover_ratio)
        self.min_samples = int(min_samples)
        self._ewma: dict[str, float] = {}
        self._n: dict[str, int] = {}
        self._farm_ewma = 0.0
        self._farm_n = 0
        self._flagged: set[str] = set()

    def observe(self, worker: str, duration: float, telemetry=None) -> str | None:
        """Fold one observation; returns ``"straggler"`` / ``"recovered"``
        when the worker's state flips (emitting the matching ``health.*``
        event into ``telemetry`` if one is given), else ``None``."""
        worker = str(worker)
        duration = float(duration)
        a = self.alpha
        prev = self._ewma.get(worker)
        self._ewma[worker] = duration if prev is None else (1 - a) * prev + a * duration
        self._n[worker] = self._n.get(worker, 0) + 1
        self._farm_ewma = (
            duration if self._farm_n == 0 else (1 - a) * self._farm_ewma + a * duration
        )
        self._farm_n += 1
        if self._n[worker] < self.min_samples or self._farm_n < self.min_samples:
            return None
        if self._farm_ewma <= 0.0:
            return None
        r = self._ewma[worker] / self._farm_ewma
        flipped = None
        if worker not in self._flagged and r >= self.ratio:
            self._flagged.add(worker)
            flipped = "straggler"
        elif worker in self._flagged and r < self.recover_ratio:
            self._flagged.discard(worker)
            flipped = "recovered"
        if flipped is not None and telemetry is not None:
            telemetry.event(
                f"health.{flipped}",
                worker=worker,
                ewma=round(self._ewma[worker], 6),
                farm=round(self._farm_ewma, 6),
                ratio=round(r, 4),
            )
        return flipped

    def state(self, worker: str) -> str:
        return "straggler" if str(worker) in self._flagged else "ok"

    @property
    def stragglers(self) -> set[str]:
        return set(self._flagged)


class MetricsPlane:
    """Sink that folds a telemetry stream into sketches + health state.

    Thread-safe: the master's selector thread, absorbed worker buffers,
    and the StatusServer's request threads all touch it.

    Parameters
    ----------
    telemetry:
        Session the detector emits ``health.*`` events into.  Bind it
        *after* construction with :meth:`bind` when the plane is itself
        one of that session's sinks (the usual arrangement).
    detector:
        Override the default :class:`StragglerDetector` (``None`` keeps
        the defaults; pass ``False`` to disable detection).
    """

    #: record name/attr -> histogram name routed into the plane.
    _LATENCY_ROUTES = {
        "net.result": ("duration", "net.result.duration"),
        "net.pong": ("rtt", "net.rtt"),
        "task.attempt": ("duration", "task.attempt.duration"),
        "dfb.tile": ("nbytes", "dfb.tile.nbytes"),
    }

    #: Series built live from raw records; flushed digests with these
    #: names describe observations the plane has already folded.
    _OWNED = frozenset(
        {"task.duration", "net.result.duration", "net.rtt",
         "task.attempt.duration", "dfb.tile.nbytes"}
    )

    def __init__(self, telemetry=None, detector=None, rel_err: float = 0.01):
        self.rel_err = float(rel_err)
        self._tel = telemetry
        self.detector = StragglerDetector() if detector is None else (detector or None)
        self._lock = threading.Lock()
        self._hists: dict[str, LogHistogram] = {}
        self._health: dict[str, str] = {}
        self._counters: dict[str, float] = {}
        self._n_records = 0

    def bind(self, telemetry) -> "MetricsPlane":
        """Set the session ``health.*`` events are emitted into."""
        self._tel = telemetry
        return self

    # -- sink protocol ---------------------------------------------------------
    def emit(self, record: dict) -> None:
        rtype = record.get("type")
        name = record.get("name")
        attrs = record.get("attrs") or {}
        with self._lock:
            self._n_records += 1
        if rtype == "span" and name == "task":
            dur = float(record.get("dur", 0.0))
            worker = str(attrs.get("worker", "?"))
            with self._lock:
                self._hist("task.duration").add(dur)
                self._health.setdefault(worker, "ok")
            det = self.detector
            if det is not None:
                flip = det.observe(worker, dur, telemetry=self._tel)
                if flip is not None:
                    with self._lock:
                        self._health[worker] = (
                            "straggler" if flip == "straggler" else "ok"
                        )
        elif rtype == "event":
            route = self._LATENCY_ROUTES.get(name)
            if route is not None and route[0] in attrs:
                with self._lock:
                    self._hist(route[1]).add(float(attrs[route[0]]))
            elif name == "net.worker.join":
                with self._lock:
                    self._health[str(attrs.get("worker", "?"))] = "ok"
            elif name == "net.worker.lost":
                with self._lock:
                    self._health[str(attrs.get("worker", "?"))] = "lost"
            elif name == "health.straggler":
                with self._lock:
                    self._health[str(attrs.get("worker", "?"))] = "straggler"
            elif name == "health.recovered":
                with self._lock:
                    w = str(attrs.get("worker", "?"))
                    if self._health.get(w) == "straggler":
                        self._health[w] = "ok"
        elif rtype == "histogram":
            # Fold a flushed worker-side digest — but not for series the
            # plane already builds live from the raw records (the master's
            # own end-of-run flush would double-count those).
            digest = attrs.get("digest")
            if name in self._OWNED:
                return
            if isinstance(digest, dict):
                try:
                    folded = LogHistogram.from_dict(digest)
                except (TypeError, ValueError, KeyError):
                    return
                with self._lock:
                    base = self._hists.get(name)
                    if base is None:
                        self._hists[name] = folded
                    elif abs(base.gamma - folded.gamma) <= 1e-12:
                        base.merge(folded)
                    # else: incompatible rel_err — keep ours, drop theirs
        elif rtype == "counter":
            with self._lock:
                self._counters[name] = self._counters.get(name, 0.0) + float(
                    record.get("value", 0.0)
                )

    def _hist(self, name: str) -> LogHistogram:
        h = self._hists.get(name)
        if h is None:
            h = self._hists[name] = LogHistogram(rel_err=self.rel_err)
        return h

    # -- reading ---------------------------------------------------------------
    def health(self) -> dict[str, str]:
        with self._lock:
            return dict(self._health)

    def histograms(self) -> dict[str, LogHistogram]:
        with self._lock:
            return dict(self._hists)

    def exposition(self) -> tuple[bytes, str]:
        """Prometheus text exposition of everything the plane holds;
        returns ``(body, content_type)`` — the raw-reply shape
        :class:`~repro.obs.live.StatusServer` routes serve directly."""
        with self._lock:
            hists = {k: (v.count, v.total, v.quantile(0.5), v.quantile(0.95),
                         v.quantile(0.99)) for k, v in self._hists.items()}
            health = dict(self._health)
            counters = dict(self._counters)
            n_records = self._n_records
        lines: list[str] = []
        for name in sorted(hists):
            count, total, p50, p95, p99 = hists[name]
            mname = prometheus_name(name)
            lines.append(f"# HELP {mname} Streaming quantiles of {name} (log-bucketed).")
            lines.append(f"# TYPE {mname} summary")
            lines.append(f'{mname}{{quantile="0.5"}} {p50:.9g}')
            lines.append(f'{mname}{{quantile="0.95"}} {p95:.9g}')
            lines.append(f'{mname}{{quantile="0.99"}} {p99:.9g}')
            lines.append(f"{mname}_sum {total:.9g}")
            lines.append(f"{mname}_count {count}")
        if health:
            mname = "repro_worker_health"
            lines.append(
                f"# HELP {mname} Worker health state (0=ok, 1=straggler, 2=lost)."
            )
            lines.append(f"# TYPE {mname} gauge")
            for worker in sorted(health):
                state = HEALTH_STATES.get(health[worker], 0)
                lines.append(f'{mname}{{worker="{worker}"}} {state}')
        for name in sorted(counters):
            mname = prometheus_name(name) + "_total"
            lines.append(f"# HELP {mname} Accumulated counter {name}.")
            lines.append(f"# TYPE {mname} counter")
            lines.append(f"{mname} {counters[name]:.9g}")
        lines.append("# HELP repro_telemetry_records_total Records folded into the plane.")
        lines.append("# TYPE repro_telemetry_records_total counter")
        lines.append(f"repro_telemetry_records_total {n_records}")
        return ("\n".join(lines) + "\n").encode("utf-8"), EXPOSITION_CONTENT_TYPE

    #: Route callable for ``StatusServer(routes={"/metrics": plane.route})``.
    def route(self):
        return self.exposition()
