"""Post-hoc utilization analysis: where did the time go on the NOW?

The paper's load-balance story (Table 1, Figs. 4-5) is a claim about
idle lanes: static sequence division strands fast workers while the
slowest finishes its range, frame/demand-driven division keeps every
lane busy until the tail.  These functions reproduce that analysis from
the telemetry event stream alone — the same records whether the run was
a real TCP farm, a local process pool, or a virtual-clock simulation.

* :func:`worker_timelines` — per-worker busy segments from ``task``
  spans, plus comms/overhead inferred from the enclosing ``obs.flight``
  spans when the run was traced end-to-end.
* :func:`utilization_report` — busy/idle/utilization per worker over the
  run window, straggler z-score flags, recompute fraction, ray totals.
* :func:`format_utilization` — the human-readable report with one Gantt
  lane per worker.
* :func:`compare_division` — the sequence-vs-frame(-or-demand) division
  contrast: aggregate idle %, lane balance, and which scheme won.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "WorkerTimeline",
    "UtilizationReport",
    "stitch_blackbox",
    "worker_timelines",
    "utilization_report",
    "format_utilization",
    "compare_division",
]

#: Record types a black-box dump can contribute to a merged trace (wire
#: notes and the dump's own meta header are post-mortem-only detail).
_TELEMETRY_TYPES = frozenset({"span", "event", "counter", "gauge", "histogram"})


def stitch_blackbox(events, dump_records, t_offset: float = 0.0):
    """Merge a victim's flight-recorder dump into a run's event stream.

    A worker's ring holds both records it already shipped in RESULT
    buffers (absorbed into ``events`` long ago) and its final seconds —
    unshipped records plus spans synthesized open at the moment of death.
    Only the latter are new: spans are deduplicated by span id (globally
    unique by construction — worker sessions namespace their ids), other
    records by ``(type, name, t)`` after the clock correction.

    ``t_offset`` is the same per-worker skew the master applied when
    absorbing the victim's live buffers (``-conn.offset``), so the
    stitched records land on the master's time axis and the victim's last
    spans line up with the loss that ended them.

    Returns ``(merged, n_added)`` — a new list; ``events`` is untouched.
    """
    merged = list(events)
    have_spans = {rec.get("span") for rec in merged if rec.get("type") == "span"}
    have_points = {
        (rec.get("type"), rec.get("name"), rec.get("t"))
        for rec in merged
        if rec.get("type") != "span"
    }
    n_added = 0
    for rec in dump_records:
        if rec.get("type") not in _TELEMETRY_TYPES:
            continue
        rec = dict(rec)
        if t_offset and "t" in rec:
            rec["t"] = rec["t"] + t_offset
        if rec.get("type") == "span":
            sid = rec.get("span")
            if sid in have_spans:
                continue
            have_spans.add(sid)
        else:
            key = (rec.get("type"), rec.get("name"), rec.get("t"))
            if key in have_points:
                continue
            have_points.add(key)
        merged.append(rec)
        n_added += 1
    return merged, n_added


@dataclass
class WorkerTimeline:
    """One worker lane: busy intervals on the run's time axis."""

    worker: str
    segments: list = field(default_factory=list)  # (t0, t1) busy intervals
    n_tasks: int = 0
    rays: int = 0
    flight_time: float = 0.0  # enclosing flight-span seconds (dispatch->accept)

    @property
    def busy(self) -> float:
        return sum(t1 - t0 for t0, t1 in self.segments)

    @property
    def finish(self) -> float:
        return max((t1 for _t0, t1 in self.segments), default=0.0)

    @property
    def start(self) -> float:
        return min((t0 for t0, _t1 in self.segments), default=0.0)

    @property
    def comms(self) -> float:
        """Dispatch/result overhead: flight time not spent rendering.
        Zero when the run wasn't traced with flight spans."""
        return max(0.0, self.flight_time - self.busy)


def worker_timelines(events) -> dict[str, WorkerTimeline]:
    """Fold ``task`` + ``obs.flight`` spans into per-worker timelines."""
    lanes: dict[str, WorkerTimeline] = {}

    def lane(name) -> WorkerTimeline:
        key = str(name)
        if key not in lanes:
            lanes[key] = WorkerTimeline(worker=key)
        return lanes[key]

    for rec in events:
        if rec.get("type") != "span":
            continue
        attrs = rec.get("attrs") or {}
        name = rec.get("name")
        if name == "task":
            tl = lane(attrs.get("worker", "?"))
            t0 = float(rec.get("t", 0.0))
            tl.segments.append((t0, t0 + float(rec.get("dur", 0.0))))
            tl.n_tasks += 1
            tl.rays += int(attrs.get("rays", 0))
        elif name == "obs.flight" and attrs.get("outcome") == "ok":
            lane(attrs.get("worker", "?")).flight_time += float(rec.get("dur", 0.0))
    return lanes


@dataclass
class UtilizationReport:
    """The load-balance analysis of one run, derived from events alone."""

    engine: str = ""
    mode: str = ""
    workload: str = ""
    n_frames: int = 0
    n_workers: int = 0
    t0: float = 0.0
    t1: float = 0.0
    workers: list = field(default_factory=list)  # per-worker row dicts
    recompute_frac: float | None = None
    rays_total: int = 0
    n_lost: int = 0
    straggler_z: float = 2.0

    @property
    def wall(self) -> float:
        return max(0.0, self.t1 - self.t0)

    @property
    def idle_frac(self) -> float:
        """Aggregate idle fraction: 1 - sum(busy) / (n_lanes * wall) —
        the paper's "processors standing idle" number."""
        if not self.workers or self.wall <= 0:
            return 0.0
        busy = sum(w["busy"] for w in self.workers)
        return max(0.0, 1.0 - busy / (len(self.workers) * self.wall))

    @property
    def balance(self) -> float:
        """min(busy)/max(busy) across lanes: 1.0 = perfectly balanced."""
        if not self.workers:
            return 1.0
        top = max(w["busy"] for w in self.workers)
        return (min(w["busy"] for w in self.workers) / top) if top > 0 else 1.0

    @property
    def stragglers(self) -> list[str]:
        return [w["worker"] for w in self.workers if w["straggler"]]


def _mean_std(values) -> tuple[float, float]:
    vals = list(values)
    n = len(vals)
    if n == 0:
        return 0.0, 0.0
    mean = sum(vals) / n
    var = sum((v - mean) ** 2 for v in vals) / n
    return mean, var**0.5


def utilization_report(events, straggler_z: float = 2.0) -> UtilizationReport:
    """Fold an event stream into a :class:`UtilizationReport`.

    The run window is ``run.start`` -> ``run.end`` when present, else the
    span hull.  A lane's straggler flag is set when its *finish time*
    sits more than ``straggler_z`` standard deviations past the mean lane
    finish — the worker everyone else waited for.
    """
    rep = UtilizationReport(straggler_z=straggler_z)
    lanes = worker_timelines(events)
    t0 = t1 = None
    computed = copied = 0
    for rec in events:
        name, attrs = rec.get("name"), rec.get("attrs") or {}
        if name == "run.start":
            t0 = float(rec.get("t", 0.0))
            rep.engine = str(attrs.get("engine", ""))
            rep.mode = str(attrs.get("mode", ""))
            rep.workload = str(attrs.get("workload", ""))
            rep.n_frames = int(attrs.get("n_frames", 0))
            rep.n_workers = int(attrs.get("n_workers", 0))
        elif name == "run.end":
            t1 = float(rec.get("t", 0.0))
            rep.rays_total = int(attrs.get("rays_total", 0))
        elif name == "frame":
            computed += int(attrs.get("n_computed", 0))
            copied += int(attrs.get("n_copied", 0))
        elif name == "net.worker.lost":
            rep.n_lost += 1
    if t0 is None:
        t0 = min((tl.start for tl in lanes.values()), default=0.0)
    if t1 is None:
        t1 = max((tl.finish for tl in lanes.values()), default=t0)
    rep.t0, rep.t1 = t0, max(t0, t1)
    if computed + copied > 0:
        rep.recompute_frac = computed / (computed + copied)
    if not rep.n_workers:
        rep.n_workers = len(lanes)

    wall = rep.wall
    finish_mean, finish_std = _mean_std(tl.finish for tl in lanes.values())
    for name in sorted(lanes):
        tl = lanes[name]
        z = ((tl.finish - finish_mean) / finish_std) if finish_std > 1e-12 else 0.0
        rep.workers.append(
            {
                "worker": tl.worker,
                "busy": tl.busy,
                "idle": max(0.0, wall - tl.busy),
                "util": (tl.busy / wall) if wall > 0 else 0.0,
                "n_tasks": tl.n_tasks,
                "rays": tl.rays,
                "comms": tl.comms,
                "finish": tl.finish,
                "z": z,
                "straggler": z >= straggler_z,
                "segments": list(tl.segments),
            }
        )
    return rep


def _gantt_lane(segments, t0: float, wall: float, width: int = 60) -> str:
    """One text Gantt lane: ``#`` busy, ``.`` idle, scaled to ``width``."""
    if wall <= 0:
        return "." * width
    cells = [False] * width
    for s0, s1 in segments:
        a = int((s0 - t0) / wall * width)
        b = int((s1 - t0) / wall * width)
        for i in range(max(0, a), min(width, max(b, a + 1))):
            cells[i] = True
    return "".join("#" if c else "." for c in cells)


def format_utilization(rep: UtilizationReport, gantt_width: int = 60) -> str:
    """Render the report: summary, per-lane table, Gantt chart."""
    lines = [
        f"Utilization report — engine={rep.engine or '?'} mode={rep.mode or '?'} "
        f"workload={rep.workload or '?'}",
        f"  window {rep.wall:.3f}s · {rep.n_workers} workers · {rep.n_frames} frames"
        + (f" · {rep.n_lost} worker losses" if rep.n_lost else ""),
        f"  aggregate idle {100 * rep.idle_frac:.1f}% · lane balance {rep.balance:.2f}"
        + (
            f" · recompute fraction {100 * rep.recompute_frac:.1f}%"
            if rep.recompute_frac is not None
            else ""
        ),
        "",
        f"  {'worker':<16} {'busy s':>8} {'idle s':>8} {'util %':>7} "
        f"{'tasks':>5} {'comms s':>8} {'z':>6}",
    ]
    for w in rep.workers:
        flag = "  << straggler" if w["straggler"] else ""
        lines.append(
            f"  {w['worker']:<16} {w['busy']:>8.3f} {w['idle']:>8.3f} "
            f"{100 * w['util']:>6.1f}% {w['n_tasks']:>5} {w['comms']:>8.3f} "
            f"{w['z']:>+6.2f}{flag}"
        )
    lines.append("")
    for w in rep.workers:
        lane = _gantt_lane(w["segments"], rep.t0, rep.wall, gantt_width)
        lines.append(f"  {w['worker']:<16} |{lane}|")
    return "\n".join(lines)


def compare_division(reports: dict[str, UtilizationReport]) -> str:
    """The paper's division comparison over >= 2 runs of the same scene.

    Pass ``{"sequence": rep_a, "frame": rep_b, ...}``; returns a table of
    aggregate idle % / balance per scheme and names the one that keeps
    the lanes busiest — the event-data-only reproduction of the paper's
    sequence-vs-frame-division contrast.
    """
    if len(reports) < 2:
        raise ValueError("compare_division needs at least two runs to contrast")
    lines = [
        f"Division comparison ({len(reports)} runs)",
        f"  {'scheme':<12} {'wall s':>8} {'idle %':>7} {'balance':>8} {'stragglers':>10}",
    ]
    for label in sorted(reports):
        rep = reports[label]
        lines.append(
            f"  {label:<12} {rep.wall:>8.3f} {100 * rep.idle_frac:>6.1f}% "
            f"{rep.balance:>8.2f} {len(rep.stragglers):>10}"
        )
    best = min(reports, key=lambda k: reports[k].idle_frac)
    worst = max(reports, key=lambda k: reports[k].idle_frac)
    gap = reports[worst].idle_frac - reports[best].idle_frac
    lines.append(
        f"  -> '{best}' keeps lanes busiest "
        f"({100 * gap:.1f} pp less idle than '{worst}')"
    )
    return "\n".join(lines)
