"""The live surface: a status endpoint on the master, a `top` for the farm.

:class:`StatusServer` wraps stdlib ``http.server`` in a daemon thread and
serves ``GET /status`` (also ``/``) as a read-only JSON snapshot of a
:class:`~repro.obs.ledger.RunLedger`.  It binds before the run starts and
answers throughout, fed by the cached ledger snapshot — a slow or absent
poller never touches the master's event loop.

:func:`fetch_status` / :func:`render_status` are the client half:
``repro top host:port`` polls the endpoint and redraws a terminal view
(jbadson/render_controller's farm-watching loop, reduced to stdlib).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["StatusServer", "fetch_status", "render_status", "render_jobs"]


class StatusServer:
    """Read-only JSON status endpoint over a ledger (daemon thread).

    ``ledger`` is anything with a ``snapshot() -> dict`` (a
    :class:`~repro.obs.ledger.RunLedger`, or the render service itself);
    it backs ``/`` and ``/status``.  Extra ``routes`` map a path to
    another zero-arg snapshot callable — the render service mounts its
    job table at ``/jobs`` this way.  A route whose callable sets
    ``takes_query = True`` receives the parsed query string (a flat
    ``{key: value}`` dict) instead — the distributed framebuffer mounts
    its ``/preview`` endpoint that way so pollers can pick a frame and
    format.  Responses are JSON unless the callable returns
    ``(bytes, content_type)``, which is served raw (``/preview?fmt=png``
    streams an actual image); error responses stay JSON so a poller
    never has to parse stdlib HTML error pages.
    """

    def __init__(self, ledger, host: str = "127.0.0.1", port: int = 0, routes=None):
        self.ledger = ledger
        self.host = host
        self.port = int(port)
        self.routes = {"/": ledger.snapshot, "/status": ledger.snapshot}
        if routes:
            self.routes.update(routes)
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> int:
        """Bind and serve in the background; returns the bound port."""
        routes = self.routes

        class Handler(BaseHTTPRequestHandler):
            def _reply(self, code: int, payload, content_type: str = "application/json"):
                body = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802 (http.server API)
                path, _, query_str = self.path.partition("?")
                snapshot = routes.get(path)
                if snapshot is None:
                    self._reply(
                        404,
                        {
                            "error": f"unknown path {path!r}",
                            "paths": sorted(routes),
                        },
                    )
                    return
                if getattr(snapshot, "takes_query", False):
                    query = {
                        k: vs[-1]
                        for k, vs in urllib.parse.parse_qs(query_str).items()
                    }
                    out = snapshot(query)
                else:
                    out = snapshot()
                if isinstance(out, tuple):
                    body, content_type = out
                    self._reply(200, body, content_type)
                else:
                    self._reply(200, out)

            def log_message(self, *args):  # keep the master's stderr clean
                pass

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-status", daemon=True
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "StatusServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def fetch_status(
    addr: str,
    timeout: float = 2.0,
    path: str = "/status",
    retries: int = 3,
    retry_delay: float = 0.1,
) -> dict:
    """GET a snapshot from ``host:port`` (or a full http URL).

    ``path`` picks the endpoint — ``/status`` for the farm view,
    ``/jobs`` for the render service's job table.

    A connection-refused is retried ``retries`` times with a short
    doubling delay: pollers (``repro top``, the smoke drills) race daemon
    startup, and the socket existing a beat later is the common case.
    Anything else — timeouts, HTTP errors, bad JSON — raises immediately.
    """
    url = addr if addr.startswith("http") else f"http://{addr}{path}"
    delay = retry_delay
    for attempt in range(int(retries) + 1):
        try:
            with urllib.request.urlopen(url, timeout=timeout) as resp:  # noqa: S310
                return json.loads(resp.read().decode())
        except urllib.error.URLError as exc:
            refused = isinstance(exc.reason, ConnectionRefusedError)
            if not refused or attempt >= retries:
                raise
            time.sleep(delay)
            delay *= 2


def _age_str(age) -> str:
    if age is None:
        return "-"
    return f"{age:.1f}s"


def render_status(snap: dict) -> str:
    """One terminal frame of the `repro top` view."""
    n_frames = int(snap.get("n_frames", 0) or 0)
    frames_done = int(snap.get("frames_done", 0))
    pct = (100.0 * frames_done / n_frames) if n_frames else 0.0
    state = "done" if snap.get("done") else "running"
    eta = snap.get("eta_seconds")
    lines = [
        f"repro farm — run {snap.get('run') or '?'} [{state}]",
        f"  {snap.get('workload') or '?'} · mode {snap.get('mode') or '?'} · "
        f"{frames_done}/{n_frames} frames ({pct:.0f}%) · "
        f"{snap.get('tasks_done', 0)} tasks · {snap.get('tasks_per_sec', 0.0)} tasks/s"
        + (f" · ETA {eta:.0f}s" if isinstance(eta, (int, float)) else ""),
        f"  elapsed {snap.get('elapsed', 0.0)}s · events {snap.get('n_events', 0)}",
    ]
    tiles_done = int(snap.get("tiles_done", 0) or 0)
    if tiles_done:
        tile_kb = float(snap.get("tile_bytes", 0) or 0) / 1024.0
        salvaged = int(snap.get("frames_salvaged", 0) or 0)
        lines.append(
            f"  tiles {tiles_done} · {tile_kb:.1f} KiB streamed"
            + (f" · {salvaged} frames salvaged" if salvaged else "")
        )
    n_shards = int(snap.get("n_shards", 0) or 0)
    if n_shards:
        shard_kb = float(snap.get("shard_bytes", 0) or 0) / 1024.0
        lines.append(f"  object-space: {n_shards} shards · {shard_kb:.1f} KiB rays traded")
        for w in snap.get("workers", []):
            shards = w.get("shards") or []
            if not shards and not w.get("rays_received"):
                continue
            owned = ",".join(str(s) for s in shards) or "-"
            lines.append(
                f"    {w['worker']:<14} shards [{owned}] · "
                f"rays recv {w.get('rays_received', 0)} · "
                f"fwd {w.get('rays_forwarded', 0)} · "
                f"local {w.get('rays_local', 0)}"
            )
    lines += [
        "",
        f"  {'worker':<14} {'host':<12} {'health':<10} {'done':>5} {'busy s':>8} "
        f"{'rtt ms':>7} {'hb age':>7}  in flight",
    ]
    in_flight = {a["worker"]: a for a in snap.get("in_flight", [])}
    for w in snap.get("workers", []):
        rtt = w.get("rtt")
        rtt_str = f"{rtt * 1e3:.1f}" if rtt is not None else "-"
        a = in_flight.get(w["worker"])
        flight = (
            f"seq {a['seq']} frames [{a['frame0']},{a['frame1']}) {_age_str(a.get('age'))}"
            if a
            else "idle"
        )
        health = str(w.get("health") or "ok")
        lines.append(
            f"  {w['worker']:<14} {w.get('host') or '-':<12} {health:<10} "
            f"{w.get('n_done', 0):>5} {w.get('busy', 0.0):>8.2f} {rtt_str:>7} "
            f"{_age_str(w.get('heartbeat_age')):>7}  {flight}"
        )
    attempts = snap.get("attempts") or {}
    if attempts:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(attempts.items()))
        lines.append(f"\n  attempts: {parts}")
    losses = snap.get("losses") or []
    for loss in losses:
        lines.append(f"  lost: {loss['worker']} ({loss['reason']})")
    return "\n".join(lines)


def render_jobs(snap: dict) -> str:
    """One terminal frame of the `repro top --jobs` view (the render
    service's ``/jobs`` snapshot)."""
    states = snap.get("states") or {}
    summary = ", ".join(f"{k}={v}" for k, v in sorted(states.items())) or "no jobs"
    lines = [
        "repro service — jobs [" + summary + "]",
        f"  {'job':<7} {'state':<12} {'prio':>4} {'att':>3} {'tasks':>9} "
        f"{'owner':<10} detail",
    ]
    for job in snap.get("jobs", []):
        tasks = f"{job.get('tasks_done', 0)}/{job.get('n_tasks', 0) or '?'}"
        lines.append(
            f"  {job.get('job_id', '?'):<7} {job.get('state', '?'):<12} "
            f"{job.get('priority', 0):>4} {job.get('n_attempts', 0):>3} "
            f"{tasks:>9} {(job.get('owner') or '-'):<10} "
            f"{job.get('detail', '')}"
        )
    return "\n".join(lines)
