"""Trace identity and context propagation.

A *run* is one render driven by one master; everything it emits — master
bookkeeping, per-dispatch flight spans, worker-side task/frame spans that
crossed a process or socket boundary — is stamped with the same
``run_id`` and forms one connected trace:

.. code-block:: text

    run (root span, master)
    └── obs.flight A<seq>        one per dispatched assignment (master)
        └── task s<seq>a<n>:1    worker-side root (remote process)
            ├── frame ...        worker-side detail events
            └── coherence.frame ...

The pieces that make the merge sound:

* **Span namespaces.**  Every worker session allocates ids under a prefix
  derived from the assignment's dispatch sequence number (unique per
  dispatch — a requeued assignment gets a fresh ``seq``) and the local
  attempt counter, so ids from any number of worker processes can never
  collide with each other or with the master's bare integers.
* **Flight ids are derivable, not negotiated.**  The master names the
  flight span for assignment ``seq`` as ``"A<seq>"`` *before* dispatch,
  so the id can ride to the worker inside the task envelope and the span
  itself is emitted later, when the outcome is known.
* **The envelope slot is backward compatible.**  The context travels in
  the task-args slot that used to carry a plain ``tel_on`` bool; ``True``
  still means "telemetry on, no trace context" for old callers.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass

from ..telemetry import NULL as NULL_TELEMETRY
from ..telemetry import InMemorySink, Telemetry

__all__ = [
    "FLIGHT_PREFIX",
    "TraceContext",
    "find_orphan_spans",
    "flight_span_id",
    "new_run_id",
    "worker_session",
]

#: Span-id prefix for master-side flight spans (``"A12"`` = assignment
#: with dispatch seq 12).  Workers parent their task span under this id.
FLIGHT_PREFIX = "A"


def new_run_id() -> str:
    """A fresh run/trace id (short uuid4 hex — unique, grep-friendly)."""
    return uuid.uuid4().hex[:12]


def flight_span_id(seq: int) -> str:
    """The flight-span id for dispatch sequence number ``seq``.

    Derivable on both sides of the wire: the master stamps it into the
    trace context at dispatch and emits the span under the same id when
    the assignment completes or is lost.
    """
    return f"{FLIGHT_PREFIX}{int(seq)}"


@dataclass(frozen=True)
class TraceContext:
    """The span context a task envelope carries across a process/socket
    boundary: which run this is, which master-side span to parent under,
    the namespace seed worker-local span ids are minted from, and the
    scheduling-lane name the remote spans should report as ``worker`` —
    so master-side flight spans and worker-side task spans agree on lane
    identity in the merged stream (a daemon's pid/thread id means
    nothing to the analysis; its lane does)."""

    run: str = ""
    parent: object = None  # master-side span id (int or str)
    seed: str = ""
    worker: str = ""  # scheduling lane ("lane0", "w1"); "" = use local label

    def to_arg(self) -> dict:
        """Encode for the task-args telemetry slot (wire-safe plain dict)."""
        return {
            "run": self.run,
            "parent": self.parent,
            "seed": self.seed,
            "worker": self.worker,
        }

    @classmethod
    def from_arg(cls, arg) -> "TraceContext | None":
        """Decode the telemetry slot: dict -> context, truthy non-dict ->
        empty context (legacy ``tel_on=True``), falsy -> None (disabled)."""
        if isinstance(arg, dict):
            return cls(
                run=str(arg.get("run", "")),
                parent=arg.get("parent"),
                seed=str(arg.get("seed", "")),
                worker=str(arg.get("worker", "")),
            )
        if arg:
            return cls()
        return None


def worker_session(ctx_arg, attempt: int = 0, index: int = 0):
    """Build the per-task worker :class:`Telemetry` from the envelope slot.

    Returns ``(telemetry, sink)``; ``(NULL, None)`` when telemetry is off.
    The span namespace combines the context's seed (``s<seq>`` for
    scheduled dispatches; falls back to ``t<index>`` for static task
    lists, whose envelopes share one context) with ``attempt``, the local
    retry counter — the supervised pool re-runs a failed task with
    identical args, so the namespace must include it to keep retried
    span ids distinct.
    """
    ctx = TraceContext.from_arg(ctx_arg)
    if ctx is None:
        return NULL_TELEMETRY, None
    sink = InMemorySink()
    if not (ctx.run or ctx.seed or ctx.parent is not None):
        return Telemetry(sinks=(sink,)), sink
    ns = f"{ctx.seed or f't{int(index)}'}a{int(attempt)}:"
    return (
        Telemetry(sinks=(sink,), run_id=ctx.run, span_ns=ns, root_parent=ctx.parent),
        sink,
    )


def find_orphan_spans(events) -> list[dict]:
    """Spans whose ``parent`` id resolves to no span in the stream.

    The v4 acceptance property: a merged master+worker event stream has
    zero orphans — every worker-side span hangs off a flight span that
    actually landed, every flight hangs off the run root.  Returns the
    offending records (empty list = connected trace).
    """
    spans = [rec for rec in events if rec.get("type") == "span"]
    known = {rec.get("span") for rec in spans}
    return [
        rec
        for rec in spans
        if rec.get("parent") is not None and rec.get("parent") not in known
    ]
