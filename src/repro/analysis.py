"""Coherence analytics over a measured cost oracle.

Given an :class:`~repro.parallel.AnimationCostOracle`, these helpers answer
the questions the paper's Section 4 discussion raises quantitatively:

* how much of each frame changes (:func:`dirty_fraction_series`);
* where the expensive pixels live (:func:`cost_image` — the paper's
  observation that "those pixels that did not change were not easily
  calculated to begin with" is this image, compared to the dirty mask);
* how expensive dirty pixels are relative to the average
  (:func:`dirty_cost_bias`);
* at what dirty fraction frame coherence stops paying
  (:func:`coherence_breakeven`).
"""

from __future__ import annotations

import numpy as np

from .parallel import AnimationCostOracle

__all__ = [
    "dirty_fraction_series",
    "dirty_ray_fraction_series",
    "cost_image",
    "dirty_cost_bias",
    "coherence_breakeven",
    "summarize_oracle",
]


def dirty_fraction_series(oracle: AnimationCostOracle) -> np.ndarray:
    """Fraction of pixels recomputed per frame (frame 0 is 1.0 by definition)."""
    out = np.empty(oracle.n_frames)
    out[0] = 1.0
    for f in range(1, oracle.n_frames):
        out[f] = oracle.dirty_sets[f].size / oracle.n_pixels
    return out


def dirty_ray_fraction_series(oracle: AnimationCostOracle) -> np.ndarray:
    """Fraction of each frame's full-render *rays* spent on dirty pixels."""
    out = np.empty(oracle.n_frames)
    out[0] = 1.0
    for f in range(1, oracle.n_frames):
        full = oracle.full_rays(f)
        out[f] = (oracle.coherent_rays(f)[0] / full) if full else 0.0
    return out


def cost_image(oracle: AnimationCostOracle, frame: int) -> np.ndarray:
    """Per-pixel ray cost of one frame as an ``(H, W)`` array."""
    if not (0 <= frame < oracle.n_frames):
        raise IndexError("frame out of range")
    return oracle.full_cost[frame].reshape(oracle.height, oracle.width).astype(np.float64)


def dirty_cost_bias(oracle: AnimationCostOracle, frame: int) -> float:
    """Mean ray cost of dirty pixels over the frame-wide mean cost.

    > 1 means the changing region is *more* expensive than average; < 1
    matches the paper's Newton observation that the static pixels (chrome
    reflections, layered shadows) carry the expensive ray trees.
    """
    if frame < 1:
        raise ValueError("bias is defined for incremental frames (>= 1)")
    d = oracle.dirty_sets[frame]
    if d.size == 0:
        return 0.0
    row = oracle.full_cost[frame]
    overall = row.mean()
    return float(row[d].mean() / overall) if overall else 0.0


def coherence_breakeven(fc_overhead: float = 0.12) -> float:
    """The dirty-ray fraction above which frame coherence stops paying.

    With marking overhead ``o`` charged on every traced ray, a coherent
    step costs ``(1 + o) * q`` of a full frame, where ``q`` is the dirty
    ray fraction; it beats re-rendering while ``q < 1 / (1 + o)``.
    """
    if fc_overhead < 0:
        raise ValueError("fc_overhead must be >= 0")
    return 1.0 / (1.0 + fc_overhead)


def summarize_oracle(oracle: AnimationCostOracle, fc_overhead: float = 0.12) -> dict[str, float]:
    """Headline coherence statistics of one workload."""
    dirty = dirty_fraction_series(oracle)[1:]
    dirty_rays = dirty_ray_fraction_series(oracle)[1:]
    biases = [dirty_cost_bias(oracle, f) for f in range(1, oracle.n_frames)]
    breakeven = coherence_breakeven(fc_overhead)
    return {
        "n_frames": float(oracle.n_frames),
        "n_pixels": float(oracle.n_pixels),
        "mean_dirty_fraction": float(dirty.mean()) if dirty.size else 0.0,
        "max_dirty_fraction": float(dirty.max()) if dirty.size else 0.0,
        "mean_dirty_ray_fraction": float(np.mean(dirty_rays)) if dirty_rays.size else 0.0,
        "mean_dirty_cost_bias": float(np.mean(biases)) if biases else 0.0,
        "ray_reduction": oracle.total_full_rays() / oracle.total_coherent_rays(),
        "breakeven_dirty_ray_fraction": breakeven,
        "frames_beyond_breakeven": float(np.sum(dirty_rays > breakeven)),
    }
