"""Checkpoint/restore for coherent render state.

A long animation render on a farm should survive interruption without
paying the full-frame chain restart the paper's adaptive subdivision pays:
the coherence state (framebuffer + voxel pixel lists + position in the
sequence) is exactly serializable.  Restoring a checkpoint continues the
chain bit-exactly — verified by tests against an uninterrupted run.

The animation itself is *not* serialized (scenes hold closures); the
caller re-supplies it, the same way the paper's PVM slaves re-parsed the
scene description.  The grid geometry is stored and validated on restore
so voxel ids keep their meaning.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..accel import UniformGrid
from ..render import Framebuffer
from ..rmath import AABB
from ..scene import Animation
from .engine import CoherentRenderer
from .voxel_pixel_map import VoxelPixelMap

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def save_checkpoint(renderer: CoherentRenderer, path: str | Path) -> None:
    """Serialize a renderer's sequence state to an ``.npz`` file."""
    state = renderer._state
    prev_frame = state.next_frame - 1 if state.prev_scene is not None else -1
    np.savez_compressed(
        path,
        version=_FORMAT_VERSION,
        width=renderer.width,
        height=renderer.height,
        region=renderer.region,
        first_frame=renderer.first_frame,
        last_frame=renderer.last_frame,
        next_frame=state.next_frame,
        prev_frame=prev_frame,
        samples_per_axis=renderer.samples_per_axis,
        framebuffer=state.framebuffer.data,
        map_keys=state.pixel_map._keys,
        grid_lo=renderer.grid.bounds.lo,
        grid_hi=renderer.grid.bounds.hi,
        grid_res=renderer.grid.res,
    )


def load_checkpoint(
    animation: Animation, path: str | Path, chunk_size: int = 32768
) -> CoherentRenderer:
    """Rebuild a :class:`CoherentRenderer` mid-sequence from a checkpoint.

    ``animation`` must be the same animation the checkpoint was taken from
    (same resolution and same per-frame scenes); resolution and grid
    geometry are validated, scene content is trusted — exactly the contract
    of shipping a scene description to a render node.
    """
    with np.load(path) as z:
        if int(z["version"]) != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {int(z['version'])}")
        width, height = int(z["width"]), int(z["height"])
        cam = animation.camera_at(int(z["first_frame"]))
        if (cam.width, cam.height) != (width, height):
            raise ValueError(
                f"animation resolution {cam.width}x{cam.height} does not match "
                f"checkpoint {width}x{height}"
            )
        grid = UniformGrid(AABB(z["grid_lo"], z["grid_hi"]), tuple(int(r) for r in z["grid_res"]))
        renderer = CoherentRenderer(
            animation,
            region=z["region"],
            grid=grid,
            samples_per_axis=int(z["samples_per_axis"]),
            chunk_size=chunk_size,
            first_frame=int(z["first_frame"]),
            last_frame=int(z["last_frame"]),
        )
        state = renderer._state
        fb = Framebuffer(width, height)
        fb.data[:] = z["framebuffer"]
        state.framebuffer = fb
        pm = VoxelPixelMap(grid.n_voxels, cam.n_pixels)
        pm._keys = z["map_keys"].astype(np.int64)
        state.pixel_map = pm
        state.next_frame = int(z["next_frame"])
        prev_frame = int(z["prev_frame"])
        state.prev_scene = animation.scene_at(prev_frame) if prev_frame >= 0 else None
    return renderer
