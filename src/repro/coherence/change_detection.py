"""Inter-frame change detection: which voxels change between two frames.

"If a particular voxel experiences some sort of change (e.g., an object
moving into it) in the next frame, all of the pixels whose rays pass through
that voxel must be updated."

A voxel *changes* when:

* an object present in both frames moved (transform differs) — every voxel
  its bounds overlap in **either** frame changes (the region it vacates and
  the region it enters);
* an object appears or disappears — its voxels change;
* a light moved or changed color — shading everywhere can change, so every
  voxel changes (full invalidation; the paper's camera-cut rule, applied to
  lights).

Object identity across frames is ``Primitive.prim_id``, which animation
copies preserve.
"""

from __future__ import annotations

import numpy as np

from ..accel import UniformGrid
from ..rmath import AABB
from ..scene import Scene

__all__ = ["changed_voxels", "scene_signature", "objects_changed"]

#: Safety margin (in fractions of a voxel edge) added around moved-object
#: bounds, covering shading-epsilon offsets at surfaces on voxel boundaries.
_MARGIN_CELLS = 0.01


def _clip_box(grid: UniformGrid, box: AABB) -> AABB:
    """Replace infinite extents with the grid bounds (planes etc.)."""
    lo = np.where(np.isfinite(box.lo), box.lo, grid.bounds.lo)
    hi = np.where(np.isfinite(box.hi), box.hi, grid.bounds.hi)
    return AABB(lo, hi)


def _lights_equal(a, b) -> bool:
    return (
        np.allclose(a.position, b.position)
        and np.allclose(a.color, b.color)
        and a.fade_distance == b.fade_distance
        and a.fade_power == b.fade_power
    )


def objects_changed(prev: Scene, curr: Scene) -> list[tuple]:
    """Objects that differ between frames, as ``(prev_obj|None, curr_obj|None)``.

    Pairs are matched by ``prim_id``; a pair with ``None`` on one side is an
    appearance/disappearance.
    """
    prev_by_id = {o.prim_id: o for o in prev.objects}
    curr_by_id = {o.prim_id: o for o in curr.objects}
    changed: list[tuple] = []
    for pid, po in prev_by_id.items():
        co = curr_by_id.get(pid)
        if co is None:
            changed.append((po, None))
        elif not np.array_equal(po.transform.m, co.transform.m):
            changed.append((po, co))
    for pid, co in curr_by_id.items():
        if pid not in prev_by_id:
            changed.append((None, co))
    return changed


def changed_voxels(grid: UniformGrid, prev: Scene, curr: Scene) -> np.ndarray:
    """Flat ids of voxels that change between ``prev`` and ``curr``.

    Returns *all* voxel ids when a global change (light edit) forces full
    invalidation.
    """
    for la, lb in zip(prev.lights, curr.lights):
        if not _lights_equal(la, lb):
            return np.arange(grid.n_voxels, dtype=np.int64)
    if len(prev.lights) != len(curr.lights):
        return np.arange(grid.n_voxels, dtype=np.int64)
    if not np.array_equal(prev.background, curr.background) or not np.array_equal(
        prev.ambient_light, curr.ambient_light
    ):
        return np.arange(grid.n_voxels, dtype=np.int64)

    margin = float(np.min(grid.cell_size)) * _MARGIN_CELLS
    vox: list[np.ndarray] = []
    for po, co in objects_changed(prev, curr):
        for obj in (po, co):
            if obj is None:
                continue
            b = obj.bounds()
            if not (np.all(np.isfinite(b.lo)) and np.all(np.isfinite(b.hi))):
                # A moving *infinite* primitive (plane) can affect rays that
                # never enter the voxelized region, which the pixel lists
                # cannot see.  The only safe answer is full invalidation.
                return np.arange(grid.n_voxels, dtype=np.int64)
            for piece in obj.bounds_pieces():
                box = _clip_box(grid, piece).expanded(margin)
                vox.append(grid.voxels_overlapping(box))
    if not vox:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(vox))


def scene_signature(scene: Scene) -> tuple:
    """A cheap hashable summary used to assert scenes really are identical."""
    return (
        tuple(sorted((o.prim_id, o.transform.m.tobytes()) for o in scene.objects)),
        tuple((light.position.tobytes(), light.color.tobytes()) for light in scene.lights),
        scene.background.tobytes(),
        scene.ambient_light.tobytes(),
    )
