"""The voxel -> pixel-list data structure.

This is the paper's central bookkeeping: "as rays are fired during the
rendering process, the frame coherence algorithm tracks their paths and
marks all of the voxels that they pass through ... add the pixel to the
voxel's pixel list".  Coherence is tracked at *individual pixel*
granularity (the paper's stated improvement over Jevans's pixel blocks).

Implementation: all (voxel, pixel) pairs are stored as a single sorted
``int64`` key array ``voxel * n_pixels + pixel``.  Queries ("all pixels of
these voxels") are range lookups via ``searchsorted``; updates replace the
marks of recomputed pixels wholesale.  Everything is O(E) or O(E log E) in
the number of pairs with pure numpy — no per-pixel Python objects.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VoxelPixelMap"]


class VoxelPixelMap:
    """A many-to-many map from voxel ids to pixel ids."""

    def __init__(self, n_voxels: int, n_pixels: int):
        if n_voxels < 1 or n_pixels < 1:
            raise ValueError("n_voxels and n_pixels must be positive")
        self.n_voxels = int(n_voxels)
        self.n_pixels = int(n_pixels)
        self._keys = np.empty(0, dtype=np.int64)

    # -- construction / update ----------------------------------------------
    def _encode(self, voxels: np.ndarray, pixels: np.ndarray) -> np.ndarray:
        voxels = np.asarray(voxels, dtype=np.int64)
        pixels = np.asarray(pixels, dtype=np.int64)
        if voxels.size and (voxels.min() < 0 or voxels.max() >= self.n_voxels):
            raise IndexError("voxel id out of range")
        if pixels.size and (pixels.min() < 0 or pixels.max() >= self.n_pixels):
            raise IndexError("pixel id out of range")
        return voxels * np.int64(self.n_pixels) + pixels

    def add_marks(self, voxels: np.ndarray, pixels: np.ndarray) -> None:
        """Insert (voxel, pixel) visits; duplicates are coalesced.

        Implementation note: ``self._keys`` is kept sorted, so insertion is
        a sort of the *new* batch plus a searchsorted merge and a linear
        dedup pass — all branch-free numpy, avoiding ``np.unique``'s hashing
        on the full (multi-million-entry) key set every frame.
        """
        new = self._encode(voxels, pixels)
        if new.size == 0:
            return
        new = np.sort(new)
        if self._keys.size:
            merged = np.insert(self._keys, np.searchsorted(self._keys, new), new)
        else:
            merged = new
        keep = np.empty(merged.size, dtype=bool)
        keep[0] = True
        np.not_equal(merged[1:], merged[:-1], out=keep[1:])
        self._keys = merged[keep]

    def remove_pixels(self, pixels: np.ndarray) -> None:
        """Drop every mark belonging to the given pixels.

        Called right before a set of pixels is re-rendered: their old ray
        paths are obsolete and will be replaced by fresh marks.
        """
        pixels = np.asarray(pixels, dtype=np.int64)
        if pixels.size == 0 or self._keys.size == 0:
            return
        pix_of_key = self._keys % self.n_pixels
        keep = ~np.isin(pix_of_key, pixels)
        self._keys = self._keys[keep]

    def replace_pixel_marks(self, pixels: np.ndarray, mark_voxels: np.ndarray, mark_pixels: np.ndarray) -> None:
        """Atomic remove-then-add for a re-rendered pixel set."""
        self.remove_pixels(pixels)
        self.add_marks(mark_voxels, mark_pixels)

    # -- queries -----------------------------------------------------------
    def pixels_for_voxels(self, voxels: np.ndarray) -> np.ndarray:
        """Unique pixel ids recorded against any of the given voxels.

        This is the paper's "mark those pixels on the pixel list of the
        changed voxels for recomputation".
        """
        voxels = np.unique(np.asarray(voxels, dtype=np.int64))
        if voxels.size == 0 or self._keys.size == 0:
            return np.empty(0, dtype=np.int64)
        lo = np.searchsorted(self._keys, voxels * np.int64(self.n_pixels), side="left")
        hi = np.searchsorted(self._keys, (voxels + 1) * np.int64(self.n_pixels), side="left")
        lengths = hi - lo
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Gather all ranges without a Python loop over voxels.
        starts = np.repeat(lo, lengths)
        offsets = np.arange(total) - np.repeat(np.cumsum(lengths) - lengths, lengths)
        keys = self._keys[starts + offsets]
        return np.unique(keys % self.n_pixels)

    def pixels_of_voxel(self, voxel: int) -> np.ndarray:
        """Pixel list of a single voxel."""
        return self.pixels_for_voxels(np.asarray([voxel]))

    def voxels_of_pixel(self, pixel: int) -> np.ndarray:
        """All voxels that rays of ``pixel`` traverse (O(E) scan; test aid)."""
        if self._keys.size == 0:
            return np.empty(0, dtype=np.int64)
        mask = (self._keys % self.n_pixels) == int(pixel)
        return self._keys[mask] // self.n_pixels

    @property
    def n_entries(self) -> int:
        return int(self._keys.size)

    def memory_bytes(self) -> int:
        """Approximate resident size — the paper's per-node memory argument
        (frame division needs memory proportional to the subarea) is modeled
        from this."""
        return int(self._keys.nbytes)

    def copy(self) -> "VoxelPixelMap":
        """An independent deep copy of the map."""
        m = VoxelPixelMap(self.n_voxels, self.n_pixels)
        m._keys = self._keys.copy()
        return m

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VoxelPixelMap(entries={self.n_entries})"
