"""The frame-coherence rendering engine (Figure 3 of the paper).

::

    parse the user input parameters
    initialize frame coherence data structures
    for each frame of the animation
        for each pixel that needs to be computed
            for each voxel that a ray associated with this pixel intersects
                add the pixel to the voxel's pixel list
        find the voxels in which change occurs in the next frame
        mark those pixels on the pixel list of the changed voxels
        for recomputation in the next frame

:class:`CoherentRenderer` renders a stationary-camera sequence
incrementally: the first frame is rendered in full with ray-path tracking;
for every following frame the changed voxels are detected, the union of
their pixel lists becomes the recompute set, only those pixels are
re-traced (updating their marks), and every other pixel is copied forward.

A ``region`` restricts the renderer to a pixel subset — this is how frame
division workers own an 80x80 block while the algorithm stays unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..accel import UniformGrid
from ..render import Framebuffer, RayStats, RayTracer
from ..rmath import AABB, union
from ..scene import Animation
from ..telemetry import NULL as NULL_TELEMETRY
from .change_detection import changed_voxels
from .voxel_pixel_map import VoxelPixelMap

__all__ = ["CoherentRenderer", "FrameReport", "grid_for_animation", "emit_frame_telemetry"]


def grid_for_animation(animation: Animation, resolution: int | tuple[int, int, int] = 16) -> UniformGrid:
    """A uniform grid whose bounds cover every frame of the animation.

    The voxel lattice must be identical across frames, otherwise voxel ids
    from frame *f* would be meaningless at frame *f+1*.
    """
    box = AABB.empty()
    for _, scene in animation.frames():
        box = union(box, scene.world_bounds())
    return UniformGrid(box, resolution)


@dataclass
class FrameReport:
    """Per-frame accounting of the coherent renderer."""

    frame: int
    n_computed: int
    n_copied: int
    stats: RayStats
    computed_pixels: np.ndarray
    rays_per_pixel: np.ndarray
    n_changed_voxels: int
    wall_time: float
    map_entries: int = 0
    n_intersection_tests: int = 0

    @property
    def computed_fraction(self) -> float:
        total = self.n_computed + self.n_copied
        return self.n_computed / total if total else 0.0


def emit_frame_telemetry(telemetry, report: FrameReport) -> None:
    """Emit the canonical ``frame`` event (plus the coherence detail event)
    for one completed frame — the shape is pinned by
    :mod:`repro.telemetry.schema` so real and simulated runs stay
    comparable."""
    if not telemetry.enabled:
        return
    s = report.stats
    telemetry.event(
        "frame",
        frame=report.frame,
        n_computed=report.n_computed,
        n_copied=report.n_copied,
        rays_camera=s.camera,
        rays_reflected=s.reflected,
        rays_refracted=s.refracted,
        rays_shadow=s.shadow,
        rays_total=s.total,
    )
    telemetry.event(
        "coherence.frame",
        frame=report.frame,
        n_changed_voxels=report.n_changed_voxels,
        map_entries=report.map_entries,
        n_intersection_tests=report.n_intersection_tests,
    )
    telemetry.counter("intersect.tests", report.n_intersection_tests)


@dataclass
class _SequenceState:
    framebuffer: Framebuffer
    pixel_map: VoxelPixelMap
    prev_scene: object
    next_frame: int
    reports: list[FrameReport] = field(default_factory=list)


class CoherentRenderer:
    """Incremental renderer for one stationary-camera sequence.

    Parameters
    ----------
    animation:
        Source of per-frame scenes (object identity via ``prim_id``).
    region:
        Optional flat pixel indices this renderer owns; defaults to the full
        frame.  Pixels outside the region are never touched.
    grid:
        Shared uniform grid; defaults to :func:`grid_for_animation`.
    grid_resolution:
        Used when ``grid`` is omitted.
    samples_per_axis:
        Supersampling factor forwarded to the tracer.
    first_frame, last_frame:
        Half-open frame range rendered by this instance (sequence division
        gives each worker such a range).  Defaults to the whole animation.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; each completed frame
        emits the canonical ``frame`` event plus a ``coherence.frame``
        detail event (changed voxels, pixel-list entries, intersection
        tests).  Defaults to the shared disabled instance.
    """

    def __init__(
        self,
        animation: Animation,
        region: np.ndarray | None = None,
        grid: UniformGrid | None = None,
        grid_resolution: int | tuple[int, int, int] = 16,
        samples_per_axis: int = 1,
        chunk_size: int = 32768,
        first_frame: int = 0,
        last_frame: int | None = None,
        telemetry=None,
    ):
        self.animation = animation
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.grid = grid if grid is not None else grid_for_animation(animation, grid_resolution)
        self.samples_per_axis = int(samples_per_axis)
        self.chunk_size = int(chunk_size)
        self.first_frame = int(first_frame)
        self.last_frame = animation.n_frames if last_frame is None else int(last_frame)
        if not (0 <= self.first_frame < self.last_frame <= animation.n_frames):
            raise ValueError("invalid frame range")

        cam0 = animation.camera_at(self.first_frame)
        self.width, self.height = cam0.width, cam0.height
        n_pixels = cam0.n_pixels
        if region is None:
            region = np.arange(n_pixels, dtype=np.int64)
        self.region = np.unique(np.asarray(region, dtype=np.int64))
        if self.region.size and (self.region.min() < 0 or self.region.max() >= n_pixels):
            raise ValueError("region pixel index out of range")

        self._state = _SequenceState(
            framebuffer=Framebuffer(self.width, self.height),
            pixel_map=VoxelPixelMap(self.grid.n_voxels, n_pixels),
            prev_scene=None,
            next_frame=self.first_frame,
        )

    # -- accessors ----------------------------------------------------------
    @property
    def framebuffer(self) -> Framebuffer:
        return self._state.framebuffer

    @property
    def pixel_map(self) -> VoxelPixelMap:
        return self._state.pixel_map

    @property
    def reports(self) -> list[FrameReport]:
        return self._state.reports

    @property
    def frames_remaining(self) -> int:
        return self.last_frame - self._state.next_frame

    # -- the algorithm --------------------------------------------------------
    def predict_dirty_pixels(self, prev_scene, curr_scene) -> tuple[np.ndarray, int]:
        """Recompute set for the transition prev -> curr, within the region."""
        vox = changed_voxels(self.grid, prev_scene, curr_scene)
        if vox.size == self.grid.n_voxels:
            # Full invalidation (light/background edit, moving plane): every
            # pixel of the region must recompute — including pixels whose
            # rays never enter the grid and therefore carry no marks.
            return self.region, int(vox.size)
        dirty = self._state.pixel_map.pixels_for_voxels(vox)
        if dirty.size:
            dirty = dirty[np.isin(dirty, self.region, assume_unique=True)]
        return dirty, int(vox.size)

    def render_next(self) -> FrameReport:
        """Render the next frame of the owned range incrementally."""
        state = self._state
        frame = state.next_frame
        if frame >= self.last_frame:
            raise StopIteration("sequence exhausted")
        scene = self.animation.scene_at(frame)
        cam = scene.camera
        if (cam.width, cam.height) != (self.width, self.height):
            raise ValueError("camera resolution changed mid-sequence")
        if state.prev_scene is not None and not np.allclose(
            cam.position, state.prev_scene.camera.position
        ):
            raise ValueError(
                "camera moved mid-sequence: frame coherence requires a stationary "
                "camera; split the animation with split_coherent_sequences()"
            )

        t0 = time.perf_counter()
        if state.prev_scene is None:
            to_compute = self.region
            n_changed_vox = self.grid.n_voxels
        else:
            to_compute, n_changed_vox = self.predict_dirty_pixels(state.prev_scene, scene)

        if to_compute.size:
            tracer = RayTracer(
                scene, grid=self.grid, track_paths=True, chunk_size=self.chunk_size
            )
            result = tracer.trace_pixels(to_compute, samples_per_axis=self.samples_per_axis)
            state.framebuffer.scatter(result.pixel_ids, result.colors)
            state.pixel_map.replace_pixel_marks(
                result.pixel_ids, result.mark_voxels, result.mark_pixels
            )
            stats = result.stats
            rays_pp = result.rays_per_pixel
            computed = result.pixel_ids
            n_tests = result.n_intersection_tests
        else:
            stats = RayStats()
            rays_pp = np.empty(0, dtype=np.int64)
            computed = np.empty(0, dtype=np.int64)
            n_tests = 0

        report = FrameReport(
            frame=frame,
            n_computed=int(computed.size),
            n_copied=int(self.region.size - computed.size),
            stats=stats,
            computed_pixels=computed,
            rays_per_pixel=rays_pp,
            n_changed_voxels=n_changed_vox,
            wall_time=time.perf_counter() - t0,
            map_entries=state.pixel_map.n_entries,
            n_intersection_tests=n_tests,
        )
        state.reports.append(report)
        state.prev_scene = scene
        state.next_frame = frame + 1
        emit_frame_telemetry(self.telemetry, report)
        return report

    def run(self) -> list[FrameReport]:
        """Render every remaining frame of the owned range."""
        while self.frames_remaining:
            self.render_next()
        return self._state.reports

    def frame_image(self) -> np.ndarray:
        """Current framebuffer as ``(H, W, 3)`` float."""
        return self._state.framebuffer.as_image()
