"""Frame coherence: the paper's core contribution.

Voxel pixel-lists, inter-frame change detection, the incremental renderer
and the exactness/conservativeness validator.
"""

from .change_detection import changed_voxels, objects_changed, scene_signature
from .checkpoint import load_checkpoint, save_checkpoint
from .engine import CoherentRenderer, FrameReport, grid_for_animation
from .shadow_coherence import ShadowCoherentRenderer, ShadowFrameReport
from .validate import FrameValidation, ValidationReport, diff_mask, validate_sequence
from .voxel_pixel_map import VoxelPixelMap

__all__ = [
    "CoherentRenderer",
    "FrameReport",
    "FrameValidation",
    "ShadowCoherentRenderer",
    "ShadowFrameReport",
    "ValidationReport",
    "VoxelPixelMap",
    "changed_voxels",
    "diff_mask",
    "grid_for_animation",
    "load_checkpoint",
    "objects_changed",
    "save_checkpoint",
    "scene_signature",
    "validate_sequence",
]
