"""Correctness validation of the coherence algorithm (Figure 2 of the paper).

The paper's Figure 2 juxtaposes (a) the *actual* pixel differences between
two frames with (b) the differences *as computed by the frame coherence
algorithm*.  The algorithm's prediction must be a superset of the truth —
the rendered animation must be exact, "without compromising on image
content" — while staying as tight as possible (over-prediction is wasted
work).

:func:`validate_sequence` renders an animation both ways and checks, frame
by frame:

* **exactness** — the incremental framebuffer is bit-identical to a full
  re-render;
* **conservativeness** — every pixel whose color actually changed was in
  the predicted recompute set;

and reports the over-prediction ratio (predicted / actual), the quantity
Figure 2 visualizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..render import RayTracer
from ..scene import Animation
from .engine import CoherentRenderer, grid_for_animation

__all__ = ["FrameValidation", "ValidationReport", "validate_sequence", "diff_mask"]


def diff_mask(image_a: np.ndarray, image_b: np.ndarray, tol: float = 0.0) -> np.ndarray:
    """Boolean (H, W) mask of pixels that differ between two (H, W, 3) images."""
    a = np.asarray(image_a, dtype=np.float64)
    b = np.asarray(image_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("image shapes differ")
    return np.any(np.abs(a - b) > tol, axis=-1)


@dataclass
class FrameValidation:
    """Per-frame comparison of coherent vs full rendering."""

    frame: int
    exact: bool
    n_actual_changed: int
    n_predicted: int
    missed_pixels: np.ndarray  # actually-changed pixels NOT predicted (must be empty)
    max_error: float

    @property
    def conservative(self) -> bool:
        return self.missed_pixels.size == 0

    @property
    def overprediction(self) -> float:
        """predicted / actual (>= 1 when conservative; inf when actual == 0)."""
        if self.n_actual_changed == 0:
            return float("inf") if self.n_predicted else 1.0
        return self.n_predicted / self.n_actual_changed


@dataclass
class ValidationReport:
    frames: list[FrameValidation]

    @property
    def all_exact(self) -> bool:
        return all(f.exact for f in self.frames)

    @property
    def all_conservative(self) -> bool:
        return all(f.conservative for f in self.frames)

    def mean_overprediction(self) -> float:
        vals = [f.overprediction for f in self.frames if np.isfinite(f.overprediction)]
        return float(np.mean(vals)) if vals else 1.0


def validate_sequence(
    animation: Animation,
    grid_resolution: int | tuple[int, int, int] = 16,
    samples_per_axis: int = 1,
    tol: float = 0.0,
) -> ValidationReport:
    """Render an animation coherently and fully; compare frame by frame.

    ``tol == 0`` demands bit-identical framebuffers, which the tracer's
    deterministic batching guarantees.
    """
    grid = grid_for_animation(animation, grid_resolution)
    coherent = CoherentRenderer(
        animation, grid=grid, samples_per_axis=samples_per_axis
    )

    results: list[FrameValidation] = []
    prev_full = None
    for f in range(animation.n_frames):
        report = coherent.render_next()
        scene = animation.scene_at(f)
        fb, _ = RayTracer(scene).render(samples_per_axis=samples_per_axis)
        full_img = fb.as_image()
        inc_img = coherent.frame_image()

        err = np.abs(full_img - inc_img)
        exact = bool(np.all(err <= tol))

        if prev_full is None:
            actual_changed = np.empty(0, dtype=np.int64)
        else:
            mask = diff_mask(prev_full, full_img, tol=tol)
            actual_changed = np.flatnonzero(mask.ravel())

        predicted = report.computed_pixels
        missed = np.setdiff1d(actual_changed, predicted, assume_unique=False)

        results.append(
            FrameValidation(
                frame=f,
                exact=exact,
                n_actual_changed=int(actual_changed.size),
                n_predicted=int(predicted.size) if f > 0 else 0,
                missed_pixels=missed if f > 0 else np.empty(0, dtype=np.int64),
                max_error=float(err.max()) if err.size else 0.0,
            )
        )
        prev_full = full_img
    return ValidationReport(results)
