"""Frame coherence for shadow generation (the paper's extension).

"Second, we are also exploring the use of frame coherence in the
generation of shadows." / future work: "development of frame coherence
algorithms with shadow generation".

:class:`ShadowCoherentRenderer` extends the base incremental renderer with
primary-shadow reuse.  It keeps *three* voxel->pixel maps instead of one,
segregated by ray class (camera segments, primary shadow segments, and all
secondary paths), and a per-(pixel, light) attenuation cache:

* a pixel is **dirty** when changed voxels intersect *any* of its marks
  (exactly the base algorithm);
* a dirty pixel is additionally **shadow-reusable** when neither its
  camera segment nor its primary shadow segments crossed a changed voxel —
  it is dirty purely through reflection/refraction paths.  Its primary hit
  point is provably unchanged, so the cached shadow attenuation toward
  every light is still exact and those shadow rays are skipped.

On the Newton workload this triggers constantly: pixels on *static* chrome
marbles that mirror the swinging end marble are dirty (their reflected
path crosses the moving region) but keep their own hit point and shadows.

Images remain bit-identical to full re-rendering; only the number of
shadow rays drops.
"""

from __future__ import annotations

import time

import numpy as np

from ..accel import UniformGrid
from ..render import Framebuffer, RayStats, RayTracer, ShadowCache
from ..scene import Animation
from ..telemetry import NULL as NULL_TELEMETRY
from .change_detection import changed_voxels
from .engine import FrameReport, emit_frame_telemetry, grid_for_animation
from .voxel_pixel_map import VoxelPixelMap

__all__ = ["ShadowCoherentRenderer", "ShadowFrameReport"]


class ShadowFrameReport(FrameReport):
    """FrameReport plus shadow-reuse accounting."""

    def __init__(self, *args, n_shadow_reusable: int = 0, shadow_rays_saved: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.n_shadow_reusable = n_shadow_reusable
        self.shadow_rays_saved = shadow_rays_saved


class ShadowCoherentRenderer:
    """Incremental renderer with primary-shadow coherence.

    Parameters mirror :class:`~repro.coherence.CoherentRenderer`; see the
    module docstring for the algorithm.
    """

    def __init__(
        self,
        animation: Animation,
        region: np.ndarray | None = None,
        grid: UniformGrid | None = None,
        grid_resolution: int | tuple[int, int, int] = 16,
        chunk_size: int = 32768,
        first_frame: int = 0,
        last_frame: int | None = None,
        telemetry=None,
    ):
        self.animation = animation
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.grid = grid if grid is not None else grid_for_animation(animation, grid_resolution)
        self.chunk_size = int(chunk_size)
        self.first_frame = int(first_frame)
        self.last_frame = animation.n_frames if last_frame is None else int(last_frame)
        if not (0 <= self.first_frame < self.last_frame <= animation.n_frames):
            raise ValueError("invalid frame range")

        cam0 = animation.camera_at(self.first_frame)
        self.width, self.height = cam0.width, cam0.height
        n_pixels = cam0.n_pixels
        if region is None:
            region = np.arange(n_pixels, dtype=np.int64)
        self.region = np.unique(np.asarray(region, dtype=np.int64))
        if self.region.size and (self.region.min() < 0 or self.region.max() >= n_pixels):
            raise ValueError("region pixel index out of range")

        n_lights = len(animation.scene_at(self.first_frame).lights)
        self.framebuffer = Framebuffer(self.width, self.height)
        self.map_camera = VoxelPixelMap(self.grid.n_voxels, n_pixels)
        self.map_pshadow = VoxelPixelMap(self.grid.n_voxels, n_pixels)
        self.map_secondary = VoxelPixelMap(self.grid.n_voxels, n_pixels)
        self.shadow_cache = ShadowCache(n_pixels, n_lights)
        self.reports: list[ShadowFrameReport] = []
        self._prev_scene = None
        self._next_frame = self.first_frame

    @property
    def frames_remaining(self) -> int:
        return self.last_frame - self._next_frame

    # -- prediction ------------------------------------------------------------
    def predict(self, prev_scene, curr_scene) -> tuple[np.ndarray, np.ndarray, int]:
        """(dirty, shadow_reusable, n_changed_voxels) for prev -> curr."""
        vox = changed_voxels(self.grid, prev_scene, curr_scene)
        if vox.size == self.grid.n_voxels:
            # Full invalidation: everything recomputes, nothing is reusable
            # (a light may have moved, so cached attenuations are dead).
            return self.region, np.empty(0, dtype=np.int64), int(vox.size)
        primary_dirty = np.union1d(
            self.map_camera.pixels_for_voxels(vox),
            self.map_pshadow.pixels_for_voxels(vox),
        )
        dirty = np.union1d(primary_dirty, self.map_secondary.pixels_for_voxels(vox))
        if dirty.size:
            dirty = dirty[np.isin(dirty, self.region, assume_unique=True)]
        reusable = np.setdiff1d(dirty, primary_dirty, assume_unique=True)
        return dirty, reusable, int(vox.size)

    # -- the algorithm ------------------------------------------------------------
    def render_next(self) -> ShadowFrameReport:
        frame = self._next_frame
        if frame >= self.last_frame:
            raise StopIteration("sequence exhausted")
        scene = self.animation.scene_at(frame)
        cam = scene.camera
        if (cam.width, cam.height) != (self.width, self.height):
            raise ValueError("camera resolution changed mid-sequence")
        if self._prev_scene is not None and not np.allclose(
            cam.position, self._prev_scene.camera.position
        ):
            raise ValueError(
                "camera moved mid-sequence: frame coherence requires a stationary camera"
            )
        if len(scene.lights) != self.shadow_cache.n_lights:
            raise ValueError("light count changed mid-sequence")

        t0 = time.perf_counter()
        if self._prev_scene is None:
            to_compute = self.region
            reusable = np.empty(0, dtype=np.int64)
            n_changed_vox = self.grid.n_voxels
        else:
            to_compute, reusable, n_changed_vox = self.predict(self._prev_scene, scene)

        saved_before = self.shadow_cache.rays_saved
        if to_compute.size:
            self.shadow_cache.set_reusable(reusable)
            tracer = RayTracer(
                scene,
                grid=self.grid,
                track_paths=True,
                chunk_size=self.chunk_size,
                shadow_cache=self.shadow_cache,
            )
            result = tracer.trace_pixels(to_compute)
            self.framebuffer.scatter(result.pixel_ids, result.colors)

            cam_v, cam_p = result.marks_by_class["camera"]
            sec_v, sec_p = result.marks_by_class["secondary"]
            psh_v, psh_p = result.marks_by_class["pshadow"]
            self.map_camera.replace_pixel_marks(result.pixel_ids, cam_v, cam_p)
            self.map_secondary.replace_pixel_marks(result.pixel_ids, sec_v, sec_p)
            # Primary-shadow marks: pixels that reused the cache did not
            # re-fire their shadow rays — their old marks are still the
            # truth and must survive; only re-fired pixels are replaced.
            fired = np.setdiff1d(result.pixel_ids, reusable, assume_unique=True)
            self.map_pshadow.remove_pixels(fired)
            self.map_pshadow.add_marks(psh_v, psh_p)

            stats = result.stats
            rays_pp = result.rays_per_pixel
            computed = result.pixel_ids
            n_tests = result.n_intersection_tests
        else:
            stats = RayStats()
            rays_pp = np.empty(0, dtype=np.int64)
            computed = np.empty(0, dtype=np.int64)
            n_tests = 0

        report = ShadowFrameReport(
            frame=frame,
            n_computed=int(computed.size),
            n_copied=int(self.region.size - computed.size),
            stats=stats,
            computed_pixels=computed,
            rays_per_pixel=rays_pp,
            n_changed_voxels=n_changed_vox,
            wall_time=time.perf_counter() - t0,
            map_entries=self.map_camera.n_entries
            + self.map_pshadow.n_entries
            + self.map_secondary.n_entries,
            n_intersection_tests=n_tests,
            n_shadow_reusable=int(reusable.size),
            shadow_rays_saved=self.shadow_cache.rays_saved - saved_before,
        )
        self.reports.append(report)
        self._prev_scene = scene
        self._next_frame = frame + 1
        emit_frame_telemetry(self.telemetry, report)
        if self.telemetry.enabled:
            self.telemetry.event(
                "shadow.frame",
                frame=frame,
                n_shadow_reusable=report.n_shadow_reusable,
                shadow_rays_saved=report.shadow_rays_saved,
            )
            self.telemetry.counter("shadowcache.rays_saved", report.shadow_rays_saved)
        return report

    def run(self) -> list[ShadowFrameReport]:
        while self.frames_remaining:
            self.render_next()
        return self.reports

    def frame_image(self) -> np.ndarray:
        return self.framebuffer.as_image()

    @property
    def total_shadow_rays_saved(self) -> int:
        return self.shadow_cache.rays_saved
