"""Axis-aligned box primitive (POV-Ray ``box``)."""

from __future__ import annotations

import numpy as np

from ..rmath import AABB, Transform, vec3
from .base import MISS, Primitive

__all__ = ["Box"]


class Box(Primitive):
    """Canonical box: the unit cube ``[0, 1]^3``.

    Use :meth:`from_corners` for POV's ``box { lo, hi }`` form.  Under a
    rotating transform the world-space shape is an arbitrary parallelepiped.
    """

    def local_intersect(self, origins: np.ndarray, dirs: np.ndarray):
        eps = 1e-9
        with np.errstate(divide="ignore"):
            inv = 1.0 / dirs
        t0 = (0.0 - origins) * inv
        t1 = (1.0 - origins) * inv
        t_small = np.fmin(t0, t1)
        t_big = np.fmax(t0, t1)
        t_enter = np.max(t_small, axis=-1)
        t_exit = np.min(t_big, axis=-1)
        hit = (t_enter <= t_exit) & (t_exit > eps)
        t = np.where(hit, np.where(t_enter > eps, t_enter, t_exit), MISS)

        # Normal: the axis whose slab bounded the chosen t.
        n = np.zeros(origins.shape, dtype=np.float64)
        entering = hit & (t_enter > eps)
        # For entering hits the active axis maximizes t_small; for exiting
        # hits (ray started inside) it minimizes t_big.
        axis_in = np.argmax(t_small, axis=-1)
        axis_out = np.argmin(t_big, axis=-1)
        axis = np.where(entering, axis_in, axis_out)
        rows = np.arange(origins.shape[0])
        sign = np.where(
            entering,
            -np.sign(dirs[rows, axis]),
            np.sign(dirs[rows, axis]),
        )
        n[rows, axis] = np.where(hit, np.where(sign == 0.0, 1.0, sign), 0.0)
        return t, n

    def local_bounds(self) -> AABB:
        return AABB(vec3(0, 0, 0), vec3(1, 1, 1))

    @staticmethod
    def from_corners(lo, hi, material=None, name: str | None = None) -> "Box":
        """A box spanning ``[lo, hi]`` (corners may be given in any order)."""
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        a = np.minimum(lo, hi)
        b = np.maximum(lo, hi)
        size = b - a
        if np.any(size <= 0):
            raise ValueError("box must have positive extent on every axis")
        tf = Transform.translate(*a) @ Transform.scale(*size)
        return Box(material=material, transform=tf, name=name)
