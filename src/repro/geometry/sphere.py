"""Unit sphere primitive (POV-Ray ``sphere``)."""

from __future__ import annotations

import numpy as np

from ..rmath import AABB, Transform, dot, vec3
from .base import MISS, Primitive, solve_quadratic

__all__ = ["Sphere"]


class Sphere(Primitive):
    """Canonical sphere: center at the origin, radius 1.

    Use :meth:`at` for the familiar center/radius construction; animation
    moves spheres by replacing the transform (see ``Primitive.with_transform``).
    """

    def local_intersect(self, origins: np.ndarray, dirs: np.ndarray):
        a = dot(dirs, dirs)
        b = 2.0 * dot(origins, dirs)
        c = dot(origins, origins) - 1.0
        _, t0, t1 = solve_quadratic(a, b, c)
        eps = 1e-9
        t = np.where(t0 > eps, t0, np.where(t1 > eps, t1, MISS))
        with np.errstate(invalid="ignore"):  # inf * 0 on miss rows
            pts = origins + t[..., None] * dirs
        # The local normal of a unit sphere is the hit point itself.
        n = np.where(np.isfinite(t)[..., None], pts, 0.0)
        return t, n

    def local_bounds(self) -> AABB:
        return AABB(vec3(-1, -1, -1), vec3(1, 1, 1))

    @staticmethod
    def at(center, radius: float, material=None, name: str | None = None) -> "Sphere":
        """A sphere with explicit world-space center and radius."""
        if radius <= 0:
            raise ValueError("sphere radius must be positive")
        cx, cy, cz = np.asarray(center, dtype=np.float64)
        tf = Transform.translate(cx, cy, cz) @ Transform.scale(radius)
        return Sphere(material=material, transform=tf, name=name)
