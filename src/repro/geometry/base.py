"""Primitive base class and shared intersection helpers.

Primitives are defined in a canonical local frame and placed in the world by
a :class:`~repro.rmath.Transform`.  Rays are intersected by mapping them into
local space *without renormalizing* the local direction, so the parametric
``t`` is identical in both frames and hit points can be reconstructed on the
world-space ray directly.

Intersection routines are batched: they take ``(N, 3)`` origin/direction
arrays and return ``(t, normal)`` where ``t`` is ``inf`` for misses.  The
returned normal is geometric (not oriented toward the ray); the shader
orients it.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod

import numpy as np

from ..rmath import AABB, Transform, normalize

__all__ = ["Primitive", "solve_quadratic", "MISS"]

#: Parametric value used to signal "no intersection".
MISS = np.inf

_id_counter = itertools.count()


def solve_quadratic(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized roots of ``a t^2 + b t + c = 0``.

    Returns ``(valid, t0, t1)`` with ``t0 <= t1``; rows with no real root (or
    a degenerate ``a == 0``) have ``valid`` False and ``t`` values of +inf.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    disc = b * b - 4.0 * a * c
    valid = (disc >= 0.0) & (np.abs(a) > 1e-300)
    sq = np.sqrt(np.where(valid, disc, 0.0))
    # Numerically stable form: q = -(b + sign(b)*sqrt(disc)) / 2
    q = -0.5 * (b + np.copysign(sq, b))
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        r0 = q / a
        r1 = c / q
    t0 = np.where(valid, np.minimum(r0, r1), MISS)
    t1 = np.where(valid, np.maximum(r0, r1), MISS)
    # q == 0 happens when b == 0 and disc == 0: double root at t = 0.
    degenerate_q = valid & (q == 0.0)
    t0 = np.where(degenerate_q, 0.0, t0)
    t1 = np.where(degenerate_q, 0.0, t1)
    return valid, t0, t1


class Primitive(ABC):
    """A renderable object: canonical shape + placement + material.

    Parameters
    ----------
    material:
        A :class:`repro.materials.Material`; may be None for substrate-only
        use (e.g. occlusion tests), in which case shading raises.
    transform:
        Local-to-world placement.  Defaults to identity.
    name:
        Optional identifier used in scene files, logs and tests.
    """

    def __init__(self, material=None, transform: Transform | None = None, name: str | None = None):
        self.material = material
        self.transform = transform if transform is not None else Transform.identity()
        self.prim_id = next(_id_counter)
        self.name = name if name is not None else f"{type(self).__name__.lower()}#{self.prim_id}"

    # -- canonical-frame interface (implemented by subclasses) -------------
    @abstractmethod
    def local_intersect(self, origins: np.ndarray, dirs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Nearest positive hit in local space: ``(t (N,), normal (N, 3))``.

        ``dirs`` is *not* necessarily unit length.  Misses get ``t = inf``
        (normal rows for misses are arbitrary).
        """

    @abstractmethod
    def local_bounds(self) -> AABB:
        """Canonical-frame bounding box (may have infinite extents)."""

    # -- world-frame interface ----------------------------------------------
    def intersect(self, origins: np.ndarray, dirs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """World-space batched intersection: ``(t (N,), world normal (N, 3))``."""
        tf = self.transform
        if tf.is_identity():
            t, n = self.local_intersect(origins, dirs)
            return t, normalize(n)
        lo = tf.inv_points(origins)
        ld = tf.inv_vectors(dirs)
        t, n = self.local_intersect(lo, ld)
        return t, normalize(tf.apply_normals(n))

    def bounds(self) -> AABB:
        """World-space bounding box."""
        return self.transform.apply_aabb(self.local_bounds())

    @property
    def intersect_cost_hint(self) -> float:
        """Relative cost of one batched intersection test, in sphere units.

        The intersector uses this to decide whether an AABB pre-test pays
        for itself: a slab test costs about one sphere test, so culling
        only helps primitives that are meaningfully more expensive (meshes,
        mostly).
        """
        return 1.0

    def bounds_pieces(self, n: int = 8) -> list[AABB]:
        """World-space bounds as a set of sub-boxes covering the primitive.

        Change detection voxelizes moved objects through this: for long thin
        shapes (the cradle's suspension strings) a single AABB of a diagonal
        primitive is enormously loose, dirtying voxels the object never
        touches.  Subclasses with a natural axis override this to return a
        tighter piecewise cover; the default is the single bounding box.
        """
        return [self.bounds()]

    def with_transform(self, transform: Transform) -> "Primitive":
        """A shallow copy placed by ``transform`` (shares shape + material).

        Used by the animation system: per-frame instances are cheap because
        canonical geometry arrays are shared.
        """
        import copy

        clone = copy.copy(self)
        clone.transform = transform
        # Keep the prim_id: the coherence engine identifies "the same object
        # across frames" by id, which is how motion is detected.
        return clone

    def moved_by(self, extra: Transform) -> "Primitive":
        """A copy with ``extra`` applied after the current placement."""
        return self.with_transform(extra @ self.transform)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
