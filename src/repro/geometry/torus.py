"""Torus primitive (POV-Ray ``torus``).

The canonical torus is centered at the origin with its axis along +Y,
major radius 1 and minor radius ``minor`` (< 1): the set of points with

    (x^2 + y^2 + z^2 + 1 - minor^2)^2 = 4 (x^2 + z^2).

Ray intersection is a true quartic.  We solve it *batched* by building the
4x4 companion matrix of each ray's (monic) quartic and taking eigenvalues
with numpy's batched ``eigvals`` — no per-ray Python — then polish the real
roots with two Newton steps for the accuracy eigenvalue solvers of
ill-conditioned quartics can lose near tangencies.
"""

from __future__ import annotations

import numpy as np

from ..rmath import AABB, Transform, vec3
from .base import MISS, Primitive

__all__ = ["Torus"]


def solve_quartic_batch(coeffs: np.ndarray) -> np.ndarray:
    """Real roots of monic quartics ``t^4 + a t^3 + b t^2 + c t + d``.

    Parameters
    ----------
    coeffs : (N, 4) array of ``[a, b, c, d]`` rows.

    Returns
    -------
    (N, 4) array of real roots, NaN where a root is complex.
    """
    coeffs = np.asarray(coeffs, dtype=np.float64)
    n = coeffs.shape[0]
    if n == 0:
        return np.empty((0, 4))
    companion = np.zeros((n, 4, 4), dtype=np.float64)
    companion[:, 1, 0] = 1.0
    companion[:, 2, 1] = 1.0
    companion[:, 3, 2] = 1.0
    companion[:, 0, 3] = -coeffs[:, 3]
    companion[:, 1, 3] = -coeffs[:, 2]
    companion[:, 2, 3] = -coeffs[:, 1]
    companion[:, 3, 3] = -coeffs[:, 0]
    eig = np.linalg.eigvals(companion)  # (N, 4) complex
    real = np.abs(eig.imag) < 1e-6 * (1.0 + np.abs(eig.real))
    roots = np.where(real, eig.real, np.nan)

    # Two Newton polish steps on the real roots.
    a, b, c, d = coeffs[:, 0:1], coeffs[:, 1:2], coeffs[:, 2:3], coeffs[:, 3:4]
    t = roots
    for _ in range(2):
        f = (((t + a) * t + b) * t + c) * t + d
        fp = ((4.0 * t + 3.0 * a) * t + 2.0 * b) * t + c
        with np.errstate(divide="ignore", invalid="ignore"):
            step = f / fp
        t = np.where(np.isfinite(step) & ~np.isnan(t), t - step, t)
    return t


class Torus(Primitive):
    """Canonical torus: axis +Y, major radius 1, minor radius ``minor``."""

    def __init__(self, minor: float, material=None, transform=None, name=None):
        if not (0.0 < minor < 1.0):
            raise ValueError("minor radius must be in (0, 1) (major radius is 1)")
        super().__init__(material=material, transform=transform, name=name)
        self.minor = float(minor)

    @property
    def intersect_cost_hint(self) -> float:
        return 12.0  # eigen-decomposition per ray: cull aggressively

    def local_intersect(self, origins: np.ndarray, dirs: np.ndarray):
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(dirs, dtype=np.float64)
        n = o.shape[0]
        eps = 1e-7

        # Quartic coefficients: with e = |d|^2, f = o.d, g = |o|^2 + 1 - r^2,
        # (e t^2 + 2 f t + g)^2 = 4 ((ox + t dx)^2 + (oz + t dz)^2).
        e = np.einsum("ni,ni->n", d, d)
        f = np.einsum("ni,ni->n", o, d)
        g = np.einsum("ni,ni->n", o, o) + 1.0 - self.minor**2
        dxz2 = d[:, 0] ** 2 + d[:, 2] ** 2
        oxz_dxz = o[:, 0] * d[:, 0] + o[:, 2] * d[:, 2]
        oxz2 = o[:, 0] ** 2 + o[:, 2] ** 2

        c4 = e * e
        c3 = 4.0 * e * f
        c2 = 2.0 * e * g + 4.0 * f * f - 4.0 * dxz2
        c1 = 4.0 * f * g - 8.0 * oxz_dxz
        c0 = g * g - 4.0 * oxz2

        with np.errstate(divide="ignore", invalid="ignore"):
            monic = np.stack([c3 / c4, c2 / c4, c1 / c4, c0 / c4], axis=-1)
        roots = solve_quartic_batch(monic)

        # Keep the smallest positive real root whose point verifies the
        # implicit equation (rejects polishing escapes and spurious reals).
        roots = np.where(np.isnan(roots), MISS, roots)
        roots = np.where(roots > eps, roots, MISS)
        # Verify each candidate on the surface (MISS rows produce inf/NaN
        # that the comparison rejects).
        with np.errstate(invalid="ignore", over="ignore"):
            pts = o[:, None, :] + roots[:, :, None] * d[:, None, :]
            lhs = (np.einsum("nki,nki->nk", pts, pts) + 1.0 - self.minor**2) ** 2
            rhs = 4.0 * (pts[:, :, 0] ** 2 + pts[:, :, 2] ** 2)
            ok = np.abs(lhs - rhs) < 1e-4 * (1.0 + np.abs(rhs))
        roots = np.where(ok, roots, MISS)
        t = roots.min(axis=1)

        # Gradient normal: grad = 4 p (|p|^2 + 1 - r^2) - 8 (px, 0, pz).
        hit = np.isfinite(t)
        nrm = np.zeros((n, 3), dtype=np.float64)
        if np.any(hit):
            p = o[hit] + t[hit, None] * d[hit]
            k = np.einsum("ni,ni->n", p, p) + 1.0 - self.minor**2
            grad = 4.0 * p * k[:, None]
            grad[:, 0] -= 8.0 * p[:, 0]
            grad[:, 2] -= 8.0 * p[:, 2]
            nrm[hit] = grad
        return t, nrm

    def local_bounds(self) -> AABB:
        r = self.minor
        return AABB(vec3(-(1 + r), -r, -(1 + r)), vec3(1 + r, r, 1 + r))

    @staticmethod
    def at(center, axis, major: float, minor: float, material=None, name=None) -> "Torus":
        """A torus with explicit center, axis, and radii (POV convention)."""
        if major <= 0 or minor <= 0:
            raise ValueError("radii must be positive")
        if minor >= major:
            raise ValueError("minor radius must be smaller than major radius")
        from ..rmath import normalize

        ax = normalize(np.asarray(axis, dtype=np.float64))
        y = vec3(0.0, 1.0, 0.0)
        c = float(np.dot(y, ax))
        if c > 1.0 - 1e-12:
            rot = Transform.identity()
        elif c < -1.0 + 1e-12:
            rot = Transform.rotate_x(np.pi)
        else:
            rot = Transform.rotate_axis(np.cross(y, ax), np.arccos(np.clip(c, -1.0, 1.0)))
        tf = (
            Transform.translate(*np.asarray(center, dtype=np.float64))
            @ rot
            @ Transform.scale(major)
        )
        return Torus(minor / major, material=material, transform=tf, name=name)
