"""Capped cylinder primitive (POV-Ray ``cylinder``).

The Newton's-cradle scene uses sixteen of these (the frame holding the
marbles), so cylinder intersection is a hot path in the reproduction
workload.
"""

from __future__ import annotations

import numpy as np

from ..rmath import AABB, Transform, vec3
from .base import MISS, Primitive, solve_quadratic

__all__ = ["Cylinder"]


class Cylinder(Primitive):
    """Canonical capped cylinder: radius 1, axis +Y from ``y=0`` to ``y=1``.

    Use :meth:`from_endpoints` for POV's ``cylinder { p0, p1, r }`` form.
    """

    def local_intersect(self, origins: np.ndarray, dirs: np.ndarray):
        n_rays = origins.shape[0]
        eps = 1e-9

        ox, oy, oz = origins[..., 0], origins[..., 1], origins[..., 2]
        dx, dy, dz = dirs[..., 0], dirs[..., 1], dirs[..., 2]

        # --- lateral surface: x^2 + z^2 = 1, 0 <= y <= 1
        a = dx * dx + dz * dz
        b = 2.0 * (ox * dx + oz * dz)
        c = ox * ox + oz * oz - 1.0
        _, t0, t1 = solve_quadratic(a, b, c)

        def side_valid(t: np.ndarray) -> np.ndarray:
            y = oy + t * dy
            return np.isfinite(t) & (t > eps) & (y >= 0.0) & (y <= 1.0)

        t_side = np.where(side_valid(t0), t0, np.where(side_valid(t1), t1, MISS))

        # --- caps: y = 0 and y = 1 discs of radius 1
        with np.errstate(divide="ignore", invalid="ignore"):
            t_cap0 = (0.0 - oy) / dy
            t_cap1 = (1.0 - oy) / dy

            def cap_valid(t: np.ndarray) -> np.ndarray:
                # inf * 0 -> nan rows are rejected by the isfinite guard.
                x = ox + t * dx
                z = oz + t * dz
                r2 = np.where(np.isfinite(t), x * x + z * z, np.inf)
                return np.isfinite(t) & (t > eps) & (np.abs(dy) > 1e-300) & (r2 <= 1.0)

            t_cap0 = np.where(cap_valid(t_cap0), t_cap0, MISS)
            t_cap1 = np.where(cap_valid(t_cap1), t_cap1, MISS)
        t_cap = np.minimum(t_cap0, t_cap1)

        t = np.minimum(t_side, t_cap)

        # --- normals
        n = np.zeros((n_rays, 3), dtype=np.float64)
        hit_side = np.isfinite(t) & (t == t_side) & (t < t_cap)
        hit_cap = np.isfinite(t) & ~hit_side
        if np.any(hit_side):
            pts = origins[hit_side] + t[hit_side, None] * dirs[hit_side]
            ns = pts.copy()
            ns[:, 1] = 0.0
            n[hit_side] = ns
        if np.any(hit_cap):
            cap_is_top = t[hit_cap] == t_cap1[hit_cap]
            n[hit_cap, 1] = np.where(cap_is_top, 1.0, -1.0)
        return t, n

    def local_bounds(self) -> AABB:
        return AABB(vec3(-1, 0, -1), vec3(1, 1, 1))

    def bounds_pieces(self, n: int = 8) -> list[AABB]:
        """Piecewise cover: ``n`` slabs along the canonical axis.

        A thin diagonal cylinder (e.g. a swinging suspension string) has a
        world AABB vastly larger than the cylinder itself; slab-wise boxes
        stay tight under rotation.
        """
        if n < 1:
            raise ValueError("need at least one piece")
        edges = np.linspace(0.0, 1.0, n + 1)
        return [
            self.transform.apply_aabb(AABB(vec3(-1, lo, -1), vec3(1, hi, 1)))
            for lo, hi in zip(edges[:-1], edges[1:])
        ]

    @staticmethod
    def from_endpoints(p0, p1, radius: float, material=None, name: str | None = None) -> "Cylinder":
        """A capped cylinder from ``p0`` to ``p1`` with the given radius."""
        if radius <= 0:
            raise ValueError("cylinder radius must be positive")
        p0 = np.asarray(p0, dtype=np.float64)
        p1 = np.asarray(p1, dtype=np.float64)
        axis = p1 - p0
        height = float(np.linalg.norm(axis))
        if height == 0:
            raise ValueError("cylinder endpoints must differ")
        axis_n = axis / height
        y = vec3(0.0, 1.0, 0.0)
        c = float(np.dot(y, axis_n))
        if c > 1.0 - 1e-12:
            rot = Transform.identity()
        elif c < -1.0 + 1e-12:
            rot = Transform.rotate_x(np.pi)
        else:
            rot = Transform.rotate_axis(np.cross(y, axis_n), np.arccos(np.clip(c, -1.0, 1.0)))
        tf = Transform.translate(*p0) @ rot @ Transform.scale(radius, height, radius)
        return Cylinder(material=material, transform=tf, name=name)
