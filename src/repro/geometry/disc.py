"""Flat disc/annulus primitive (POV-Ray ``disc``)."""

from __future__ import annotations

import numpy as np

from ..rmath import AABB, Transform, normalize, vec3
from .base import MISS, Primitive

__all__ = ["Disc"]


class Disc(Primitive):
    """Canonical disc: the unit circle in the ``y = 0`` plane, normal ``+Y``.

    An optional ``inner_radius`` (canonical units) makes it an annulus, like
    POV's fourth disc argument.
    """

    def __init__(self, inner_radius: float = 0.0, material=None, transform=None, name=None):
        if not (0.0 <= inner_radius < 1.0):
            raise ValueError("inner_radius must be in [0, 1)")
        super().__init__(material=material, transform=transform, name=name)
        self.inner_radius = float(inner_radius)

    def local_intersect(self, origins: np.ndarray, dirs: np.ndarray):
        eps = 1e-9
        oy = origins[..., 1]
        dy = dirs[..., 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            t = -oy / dy
            x = origins[..., 0] + t * dirs[..., 0]
            z = origins[..., 2] + t * dirs[..., 2]
            r2 = np.where(np.isfinite(t), x * x + z * z, np.inf)
        hit = (
            np.isfinite(t)
            & (t > eps)
            & (np.abs(dy) > 1e-300)
            & (r2 <= 1.0)
            & (r2 >= self.inner_radius * self.inner_radius)
        )
        t = np.where(hit, t, MISS)
        n = np.zeros(origins.shape, dtype=np.float64)
        n[..., 1] = 1.0
        return t, n

    def local_bounds(self) -> AABB:
        return AABB(vec3(-1, -1e-6, -1), vec3(1, 1e-6, 1))

    @staticmethod
    def at(center, normal, radius: float, inner_radius: float = 0.0, material=None, name=None) -> "Disc":
        """A disc with explicit center, normal and radii (POV convention)."""
        if radius <= 0:
            raise ValueError("disc radius must be positive")
        if not (0.0 <= inner_radius < radius):
            raise ValueError("inner radius must be in [0, radius)")
        n = normalize(np.asarray(normal, dtype=np.float64))
        y = vec3(0.0, 1.0, 0.0)
        c = float(np.dot(y, n))
        if c > 1.0 - 1e-12:
            rot = Transform.identity()
        elif c < -1.0 + 1e-12:
            rot = Transform.rotate_x(np.pi)
        else:
            rot = Transform.rotate_axis(np.cross(y, n), np.arccos(np.clip(c, -1.0, 1.0)))
        tf = Transform.translate(*np.asarray(center, dtype=np.float64)) @ rot @ Transform.scale(radius)
        return Disc(
            inner_radius=inner_radius / radius, material=material, transform=tf, name=name
        )
