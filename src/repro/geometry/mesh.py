"""Triangle and triangle-mesh primitives.

Meshes intersect with a fully vectorized Möller–Trumbore evaluated as an
``N_rays x N_tris`` broadcast, which is the right trade-off for the small
meshes in this reproduction's scenes (the paper's scenes are built from
quadrics; meshes are provided for generality and for stress workloads).
"""

from __future__ import annotations

import numpy as np

from ..rmath import AABB
from .base import MISS, Primitive

__all__ = ["TriangleMesh", "Triangle"]


class TriangleMesh(Primitive):
    """An indexed triangle set in its local frame.

    Parameters
    ----------
    vertices : (V, 3) float array
    faces : (F, 3) int array of vertex indices
    """

    def __init__(self, vertices, faces, material=None, transform=None, name=None):
        super().__init__(material=material, transform=transform, name=name)
        self.vertices = np.ascontiguousarray(vertices, dtype=np.float64)
        self.faces = np.ascontiguousarray(faces, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise ValueError("vertices must be (V, 3)")
        if self.faces.ndim != 2 or self.faces.shape[1] != 3:
            raise ValueError("faces must be (F, 3)")
        if self.faces.size and (self.faces.min() < 0 or self.faces.max() >= len(self.vertices)):
            raise ValueError("face indices out of range")
        v0 = self.vertices[self.faces[:, 0]]
        self._v0 = v0
        self._e1 = self.vertices[self.faces[:, 1]] - v0
        self._e2 = self.vertices[self.faces[:, 2]] - v0
        fn = np.cross(self._e1, self._e2)
        lens = np.linalg.norm(fn, axis=1)
        if np.any(lens == 0.0):
            raise ValueError("mesh contains degenerate (zero-area) triangles")
        self._face_normals = fn / lens[:, None]

    @property
    def n_faces(self) -> int:
        return self.faces.shape[0]

    @property
    def intersect_cost_hint(self) -> float:
        # Möller–Trumbore against every face: cost scales with face count.
        return max(1.0, self.n_faces / 2.0)

    def local_intersect(self, origins: np.ndarray, dirs: np.ndarray):
        eps = 1e-9
        n_rays = origins.shape[0]
        if self.n_faces == 0:
            return np.full(n_rays, MISS), np.zeros((n_rays, 3))

        # Broadcast rays against all faces: shapes (N, F, 3).
        o = origins[:, None, :]
        d = dirs[:, None, :]
        v0 = self._v0[None, :, :]
        e1 = self._e1[None, :, :]
        e2 = self._e2[None, :, :]

        pvec = np.cross(d, e2)
        det = np.einsum("nfi,nfi->nf", e1, pvec)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_det = 1.0 / det
        tvec = o - v0
        u = np.einsum("nfi,nfi->nf", tvec, pvec) * inv_det
        qvec = np.cross(tvec, e1)
        v = np.einsum("nfi,nfi->nf", d, qvec) * inv_det
        t = np.einsum("nfi,nfi->nf", e2, qvec) * inv_det

        hit = (
            (np.abs(det) > 1e-300)
            & (u >= -1e-12)
            & (v >= -1e-12)
            & (u + v <= 1.0 + 1e-12)
            & (t > eps)
            & np.isfinite(t)
        )
        t = np.where(hit, t, MISS)
        face = np.argmin(t, axis=1)
        t_best = t[np.arange(n_rays), face]
        normals = self._face_normals[face]
        normals = np.where(np.isfinite(t_best)[:, None], normals, 0.0)
        return t_best, normals

    def local_bounds(self) -> AABB:
        return AABB.from_points(self.vertices)


class Triangle(TriangleMesh):
    """A single triangle, as a one-face mesh."""

    def __init__(self, a, b, c, material=None, transform=None, name=None):
        vertices = np.asarray([a, b, c], dtype=np.float64)
        super().__init__(
            vertices, np.array([[0, 1, 2]]), material=material, transform=transform, name=name
        )
