"""Ray batches: the structure-of-arrays unit of work in the tracer.

A :class:`RayBatch` carries N rays together with per-ray bookkeeping the
renderer and the coherence engine need:

* ``pixel`` — flat framebuffer index of the pixel each ray contributes to
  (secondary rays inherit it from their parent, which is exactly what the
  paper's voxel pixel-lists require: *every* ray fired for a pixel marks the
  voxels it traverses against that pixel).
* ``weight`` — per-ray RGB throughput accumulated through the recursion
  (``k_rg`` / ``k_tg`` products), so child contributions can be summed into
  the framebuffer without an explicit recursion tree.
* ``kind`` — ray taxonomy (camera / reflected / refracted / shadow) for the
  statistics that reproduce Table 1's ray-count columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..rmath import normalize

__all__ = ["RayKind", "RayBatch"]


class RayKind(IntEnum):
    """Classification of rays, matching the paper's enumeration."""

    CAMERA = 0
    REFLECTED = 1
    REFRACTED = 2
    SHADOW = 3


@dataclass
class RayBatch:
    """N rays stored as parallel arrays.

    Attributes
    ----------
    origins : (N, 3) float64
    dirs : (N, 3) float64, unit length
    pixel : (N,) int64 — flat pixel index each ray belongs to
    weight : (N, 3) float64 — RGB throughput toward the framebuffer
    kind : RayKind — all rays in a batch share a kind
    depth : int — recursion depth (camera rays are depth 0)
    inside : (N,) bool — ray currently travelling inside a refractive medium
    """

    origins: np.ndarray
    dirs: np.ndarray
    pixel: np.ndarray
    weight: np.ndarray
    kind: RayKind = RayKind.CAMERA
    depth: int = 0
    inside: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.origins = np.ascontiguousarray(self.origins, dtype=np.float64)
        self.dirs = np.ascontiguousarray(self.dirs, dtype=np.float64)
        self.pixel = np.ascontiguousarray(self.pixel, dtype=np.int64)
        self.weight = np.ascontiguousarray(self.weight, dtype=np.float64)
        n = self.origins.shape[0]
        if self.dirs.shape != (n, 3) or self.origins.shape != (n, 3):
            raise ValueError("origins/dirs must both be (N, 3)")
        if self.pixel.shape != (n,):
            raise ValueError("pixel must be (N,)")
        if self.weight.shape != (n, 3):
            raise ValueError("weight must be (N, 3)")
        if self.inside is None:
            self.inside = np.zeros(n, dtype=bool)
        else:
            self.inside = np.ascontiguousarray(self.inside, dtype=bool)
            if self.inside.shape != (n,):
                raise ValueError("inside must be (N,)")

    def __len__(self) -> int:
        return self.origins.shape[0]

    @property
    def inv_dirs(self) -> np.ndarray:
        """Reciprocal directions for slab tests (inf where a component is 0)."""
        with np.errstate(divide="ignore"):
            return 1.0 / self.dirs

    def select(self, mask_or_index: np.ndarray) -> "RayBatch":
        """A new batch containing the rays selected by a mask or index array."""
        return RayBatch(
            origins=self.origins[mask_or_index],
            dirs=self.dirs[mask_or_index],
            pixel=self.pixel[mask_or_index],
            weight=self.weight[mask_or_index],
            kind=self.kind,
            depth=self.depth,
            inside=self.inside[mask_or_index],
        )

    def points_at(self, t: np.ndarray) -> np.ndarray:
        """Points ``origin + t * dir`` for per-ray parameters ``t``."""
        return self.origins + np.asarray(t)[..., None] * self.dirs

    @staticmethod
    def normalized(
        origins: np.ndarray,
        dirs: np.ndarray,
        pixel: np.ndarray,
        weight: np.ndarray,
        kind: RayKind = RayKind.CAMERA,
        depth: int = 0,
        inside: np.ndarray | None = None,
    ) -> "RayBatch":
        """Build a batch, normalizing directions."""
        return RayBatch(
            origins=origins,
            dirs=normalize(np.asarray(dirs, dtype=np.float64)),
            pixel=pixel,
            weight=weight,
            kind=kind,
            depth=depth,
            inside=inside,
        )
