"""Constructive solid geometry for convex primitives.

POV-Ray scenes lean heavily on ``intersection { }`` and ``difference { }``
of quadrics.  For *convex* operands the ray/solid intersection is a single
parametric interval, which keeps CSG fully vectorizable:

* intersection of convex solids — the intersection of their intervals
  (still one interval);
* difference ``A - B`` with convex ``B`` — at most two intervals, of which
  the nearest positive boundary is the hit.

Supported operands: :class:`Sphere`, :class:`Box`, :class:`Cylinder`
(each convex), and nested :class:`CSGIntersection` (an intersection of
convex solids is convex).  :class:`CSGDifference` is not convex and can be
an operand of nothing — a documented limitation.

Operands are built with their own world placements and combined under a
CSG node with identity transform (the usual POV authoring style); the node
itself can also carry a transform.
"""

from __future__ import annotations

import numpy as np

from ..rmath import AABB, vec3
from .base import MISS, Primitive, solve_quadratic
from .box import Box
from .cylinder import Cylinder
from .sphere import Sphere

__all__ = ["CSGIntersection", "CSGDifference", "convex_interval", "local_normal_at"]

_EPS = 1e-9


# -- per-primitive interval + boundary-normal helpers ---------------------------
def _sphere_interval(origins, dirs):
    a = np.einsum("ni,ni->n", dirs, dirs)
    b = 2.0 * np.einsum("ni,ni->n", origins, dirs)
    c = np.einsum("ni,ni->n", origins, origins) - 1.0
    valid, t0, t1 = solve_quadratic(a, b, c)
    return np.where(valid, t0, np.inf), np.where(valid, t1, -np.inf), valid


def _box_interval(origins, dirs):
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = 1.0 / dirs
        t0 = (0.0 - origins) * inv
        t1 = (1.0 - origins) * inv
    lo = np.fmin(t0, t1)
    hi = np.fmax(t0, t1)
    # Rays parallel to a slab: inside -> +-inf from division, fmin/fmax keep
    # the finite bounds; outside -> empty via the NaN/inf comparisons below.
    parallel = dirs == 0.0
    outside = parallel & ((origins < 0.0) | (origins > 1.0))
    enter = np.max(np.where(np.isnan(lo), -np.inf, lo), axis=1)
    exit_ = np.min(np.where(np.isnan(hi), np.inf, hi), axis=1)
    valid = (enter <= exit_) & ~np.any(outside, axis=1)
    return np.where(valid, enter, np.inf), np.where(valid, exit_, -np.inf), valid


def _cylinder_interval(origins, dirs):
    # Infinite lateral surface interval intersected with the 0<=y<=1 slab.
    ox, oy, oz = origins[:, 0], origins[:, 1], origins[:, 2]
    dx, dy, dz = dirs[:, 0], dirs[:, 1], dirs[:, 2]
    a = dx * dx + dz * dz
    b = 2.0 * (ox * dx + oz * dz)
    c = ox * ox + oz * oz - 1.0
    q_valid, q0, q1 = solve_quadratic(a, b, c)
    # Rays parallel to the axis (a == 0): inside the circle -> infinite
    # lateral interval; outside -> miss.
    axis_parallel = np.abs(a) <= 1e-300
    inside_circle = c <= 0.0
    lat_enter = np.where(q_valid, q0, np.where(axis_parallel & inside_circle, -np.inf, np.inf))
    lat_exit = np.where(q_valid, q1, np.where(axis_parallel & inside_circle, np.inf, -np.inf))

    with np.errstate(divide="ignore", invalid="ignore"):
        s0 = (0.0 - oy) / dy
        s1 = (1.0 - oy) / dy
    slab_enter = np.fmin(s0, s1)
    slab_exit = np.fmax(s0, s1)
    flat = dy == 0.0
    slab_enter = np.where(flat, np.where((oy >= 0.0) & (oy <= 1.0), -np.inf, np.inf), slab_enter)
    slab_exit = np.where(flat, np.where((oy >= 0.0) & (oy <= 1.0), np.inf, -np.inf), slab_exit)

    enter = np.maximum(lat_enter, slab_enter)
    exit_ = np.minimum(lat_exit, slab_exit)
    valid = enter <= exit_
    return np.where(valid, enter, np.inf), np.where(valid, exit_, -np.inf), valid


def local_normal_at(prim: Primitive, points: np.ndarray) -> np.ndarray:
    """Outward local-frame normals of a convex primitive at surface points."""
    p = np.asarray(points, dtype=np.float64)
    if isinstance(prim, Sphere):
        return p.copy()
    if isinstance(prim, Box):
        # The face whose coordinate is nearest 0 or 1 wins.
        d_lo = np.abs(p)
        d_hi = np.abs(p - 1.0)
        nearest = np.minimum(d_lo, d_hi)
        axis = np.argmin(nearest, axis=1)
        rows = np.arange(p.shape[0])
        sign = np.where(d_lo[rows, axis] < d_hi[rows, axis], -1.0, 1.0)
        n = np.zeros_like(p)
        n[rows, axis] = sign
        return n
    if isinstance(prim, Cylinder):
        n = np.zeros_like(p)
        d_bottom = np.abs(p[:, 1])
        d_top = np.abs(p[:, 1] - 1.0)
        r = np.sqrt(p[:, 0] ** 2 + p[:, 2] ** 2)
        d_side = np.abs(r - 1.0)
        on_cap = (np.minimum(d_bottom, d_top) < d_side)
        n[on_cap, 1] = np.where(d_top[on_cap] < d_bottom[on_cap], 1.0, -1.0)
        side = ~on_cap
        n[side, 0] = p[side, 0]
        n[side, 2] = p[side, 2]
        return n
    raise TypeError(f"{type(prim).__name__} has no convex normal rule")


def convex_interval(prim: Primitive, origins: np.ndarray, dirs: np.ndarray):
    """World-frame ray/solid interval of a convex primitive.

    Returns ``(t_enter, t_exit, valid)``; invalid rows carry
    ``(+inf, -inf)`` so min/max interval algebra degrades gracefully.
    """
    if isinstance(prim, CSGIntersection):
        return prim.interval(origins, dirs)
    tf = prim.transform
    lo = tf.inv_points(origins)
    ld = tf.inv_vectors(dirs)
    if isinstance(prim, Sphere):
        return _sphere_interval(lo, ld)
    if isinstance(prim, Box):
        return _box_interval(lo, ld)
    if isinstance(prim, Cylinder):
        return _cylinder_interval(lo, ld)
    raise TypeError(
        f"{type(prim).__name__} is not a supported convex CSG operand "
        "(use Sphere, Box, Cylinder or CSGIntersection)"
    )


def _boundary_normal(prim: Primitive, origins: np.ndarray, dirs: np.ndarray, t: np.ndarray) -> np.ndarray:
    """World normals on ``prim``'s surface at parametric ``t`` along the rays."""
    if isinstance(prim, CSGIntersection):
        return prim.boundary_normal(origins, dirs, t)
    tf = prim.transform
    lo = tf.inv_points(origins)
    ld = tf.inv_vectors(dirs)
    pts = lo + t[:, None] * ld
    n_local = local_normal_at(prim, pts)
    return tf.apply_normals(n_local)


def _check_operand(prim: Primitive) -> None:
    if not isinstance(prim, (Sphere, Box, Cylinder, CSGIntersection)):
        raise TypeError(
            f"CSG operand must be convex (Sphere/Box/Cylinder/CSGIntersection), "
            f"got {type(prim).__name__}"
        )


class CSGIntersection(Primitive):
    """The solid common to all (convex) children — itself convex."""

    def __init__(self, children: list[Primitive], material=None, transform=None, name=None):
        if len(children) < 2:
            raise ValueError("intersection needs at least two children")
        for c in children:
            _check_operand(c)
        super().__init__(material=material, transform=transform, name=name)
        self.children = list(children)

    # Interval algebra runs in the node's LOCAL frame (children are placed
    # within it); Primitive.intersect handles the node's own transform.
    def interval(self, origins: np.ndarray, dirs: np.ndarray):
        n = origins.shape[0]
        enter = np.full(n, -np.inf)
        exit_ = np.full(n, np.inf)
        valid = np.ones(n, dtype=bool)
        for child in self.children:
            c0, c1, cv = convex_interval(child, origins, dirs)
            enter = np.maximum(enter, c0)
            exit_ = np.minimum(exit_, c1)
            valid &= cv
        valid &= enter <= exit_
        return np.where(valid, enter, np.inf), np.where(valid, exit_, -np.inf), valid

    def boundary_normal(self, origins: np.ndarray, dirs: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Normal at points known to lie on this solid's surface: the child
        surface passing through each point provides it."""
        n_rays = origins.shape[0]
        out = np.zeros((n_rays, 3))
        pts = origins + t[:, None] * dirs
        best = np.full(n_rays, np.inf)
        for child in self.children:
            c0, c1, cv = convex_interval(child, origins, dirs)
            for tc in (c0, c1):
                d = np.abs(tc - t)
                closer = cv & (d < best)
                if np.any(closer):
                    nrm = _boundary_normal(child, origins[closer], dirs[closer], t[closer])
                    out[closer] = nrm
                    best = np.where(closer, d, best)
        return out

    def local_intersect(self, origins: np.ndarray, dirs: np.ndarray):
        enter, exit_, valid = self.interval(origins, dirs)
        t = np.where(
            valid & (enter > _EPS),
            enter,
            np.where(valid & (exit_ > _EPS), exit_, MISS),
        )
        n = np.zeros_like(origins)
        hit = np.isfinite(t)
        if np.any(hit):
            n[hit] = self.boundary_normal(origins[hit], dirs[hit], t[hit])
        return t, n

    def local_bounds(self) -> AABB:
        lo = np.full(3, -np.inf)
        hi = np.full(3, np.inf)
        for child in self.children:
            b = child.bounds()
            lo = np.maximum(lo, b.lo)
            hi = np.minimum(hi, b.hi)
        if np.any(lo > hi):
            # Disjoint children: an empty solid.  Use a degenerate point box.
            return AABB(vec3(0, 0, 0), vec3(0, 0, 0)).expanded(1e-9)
        return AABB(lo, hi)

    @property
    def intersect_cost_hint(self) -> float:
        return 2.0 * len(self.children)


class CSGDifference(Primitive):
    """``minuend - subtrahend`` with a convex subtrahend.

    The result is generally *not* convex, so a difference cannot itself be
    a CSG operand (at most two disjoint intervals along any line, which is
    exactly what this class handles).
    """

    def __init__(self, minuend: Primitive, subtrahend: Primitive, material=None, transform=None, name=None):
        _check_operand(minuend)
        _check_operand(subtrahend)
        super().__init__(material=material, transform=transform, name=name)
        self.minuend = minuend
        self.subtrahend = subtrahend

    def local_intersect(self, origins: np.ndarray, dirs: np.ndarray):
        a0, a1, av = convex_interval(self.minuend, origins, dirs)
        b0, b1, bv = convex_interval(self.subtrahend, origins, dirs)
        # A \ B along a line: [a0, min(a1, b0)] and [max(a0, b1), a1].
        no_b = ~bv
        b0 = np.where(no_b, np.inf, b0)
        b1 = np.where(no_b, -np.inf, b1)

        i1_lo, i1_hi = a0, np.minimum(a1, b0)
        i2_lo, i2_hi = np.maximum(a0, b1), a1

        def first_positive(lo, hi):
            ok = av & (lo <= hi) & (hi > _EPS)
            return np.where(ok, np.where(lo > _EPS, lo, np.where(lo >= -1e30, hi, MISS)), MISS), ok

        # Candidate boundary from each interval: its entry if positive, else
        # its exit (ray starts inside that piece).
        c1, ok1 = first_positive(i1_lo, i1_hi)
        c2, ok2 = first_positive(i2_lo, i2_hi)
        t = np.minimum(np.where(ok1, c1, MISS), np.where(ok2, c2, MISS))

        n = np.zeros_like(origins)
        hit = np.isfinite(t)
        if np.any(hit):
            oh, dh, th = origins[hit], dirs[hit], t[hit]
            # Which solid's surface bounds the chosen t?
            from_a = (
                np.minimum(np.abs(a0[hit] - th), np.abs(a1[hit] - th))
                <= np.minimum(np.abs(b0[hit] - th), np.abs(b1[hit] - th))
            )
            nrm = np.zeros((th.size, 3))
            if np.any(from_a):
                nrm[from_a] = _boundary_normal(self.minuend, oh[from_a], dh[from_a], th[from_a])
            inv = ~from_a
            if np.any(inv):
                # Carved surface: the subtrahend's normal, flipped outward.
                nrm[inv] = -_boundary_normal(self.subtrahend, oh[inv], dh[inv], th[inv])
            n[hit] = nrm
        return t, n

    def local_bounds(self) -> AABB:
        return self.minuend.bounds()

    @property
    def intersect_cost_hint(self) -> float:
        return 4.0
