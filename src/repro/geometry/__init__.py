"""Geometry layer: ray batches and vectorized primitives."""

from .base import MISS, Primitive, solve_quadratic
from .box import Box
from .csg import CSGDifference, CSGIntersection, convex_interval
from .cylinder import Cylinder
from .disc import Disc
from .mesh import Triangle, TriangleMesh
from .plane import Plane
from .rays import RayBatch, RayKind
from .sphere import Sphere
from .torus import Torus, solve_quartic_batch

__all__ = [
    "MISS",
    "Box",
    "CSGDifference",
    "CSGIntersection",
    "Cylinder",
    "Disc",
    "Plane",
    "Primitive",
    "RayBatch",
    "RayKind",
    "Sphere",
    "Torus",
    "Triangle",
    "TriangleMesh",
    "convex_interval",
    "solve_quadratic",
    "solve_quartic_batch",
]
