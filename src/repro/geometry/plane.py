"""Infinite plane primitive (POV-Ray ``plane``)."""

from __future__ import annotations

import numpy as np

from ..rmath import AABB, Transform, normalize, vec3
from .base import MISS, Primitive

__all__ = ["Plane"]


class Plane(Primitive):
    """Canonical plane: ``y = 0`` with normal ``+Y``.

    Use :meth:`from_normal` for POV's ``plane { <n>, d }`` form (points ``p``
    with ``n . p = d``).  Bounds are infinite; the uniform grid clips infinite
    primitives to the scene's voxelized region.
    """

    def local_intersect(self, origins: np.ndarray, dirs: np.ndarray):
        oy = origins[..., 1]
        dy = dirs[..., 1]
        with np.errstate(divide="ignore", invalid="ignore"):
            t = -oy / dy
        eps = 1e-9
        hit = np.isfinite(t) & (t > eps) & (np.abs(dy) > 1e-300)
        t = np.where(hit, t, MISS)
        n = np.zeros(origins.shape, dtype=np.float64)
        n[..., 1] = 1.0
        return t, n

    def local_bounds(self) -> AABB:
        # Infinite in the plane; consumers (grid builder, change detection)
        # clip infinite extents to the voxelized region.
        return AABB(vec3(-np.inf, -1e-6, -np.inf), vec3(np.inf, 1e-6, np.inf))

    @staticmethod
    def from_normal(normal, d: float = 0.0, material=None, name: str | None = None) -> "Plane":
        """The plane of points ``p`` with ``normal . p == d`` (POV convention).

        ``normal`` need not be unit length; ``d`` is measured against the
        *normalized* normal, matching POV-Ray when the normal is unit.
        """
        n = normalize(np.asarray(normal, dtype=np.float64))
        if not np.all(np.isfinite(n)) or np.allclose(n, 0.0):
            raise ValueError("plane normal must be a non-zero vector")
        # Rotate +Y onto n, then translate by d along n.
        y = vec3(0.0, 1.0, 0.0)
        c = float(np.dot(y, n))
        if c > 1.0 - 1e-12:
            rot = Transform.identity()
        elif c < -1.0 + 1e-12:
            rot = Transform.rotate_x(np.pi)
        else:
            axis = np.cross(y, n)
            rot = Transform.rotate_axis(axis, np.arccos(np.clip(c, -1.0, 1.0)))
        tf = Transform.translate(*(d * n)) @ rot
        return Plane(material=material, transform=tf, name=name)
