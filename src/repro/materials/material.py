"""Surface materials: pigment + finish, following POV-Ray's model.

The shading equation is the paper's:

    I = I_local + k_rg * I_reflected + k_tg * I_transmitted

where ``I_local`` is ambient + diffuse + Phong specular over the visible
lights, ``k_rg`` (``reflection``) and ``k_tg`` (``transmission``) are
wavelength-independent constants, and refraction follows Snell's law with
the finish's index of refraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .texture import SolidColor, Texture

__all__ = ["Finish", "Material"]


@dataclass(frozen=True)
class Finish:
    """POV-style finish parameters.

    Attributes
    ----------
    ambient, diffuse:
        Coefficients of the local illumination term.
    specular, phong_size:
        Phong highlight amplitude and exponent.
    reflection:
        ``k_rg`` — fraction of the reflected ray's color added.
    transmission:
        ``k_tg`` — fraction of the transmitted (refracted) ray's color added.
    ior:
        Index of refraction used when ``transmission > 0``.
    """

    ambient: float = 0.1
    diffuse: float = 0.7
    specular: float = 0.0
    phong_size: float = 40.0
    reflection: float = 0.0
    transmission: float = 0.0
    ior: float = 1.5

    def __post_init__(self) -> None:
        for name in ("ambient", "diffuse", "specular", "reflection", "transmission"):
            v = getattr(self, name)
            if v < 0.0:
                raise ValueError(f"finish.{name} must be non-negative")
        if self.reflection > 1.0 or self.transmission > 1.0:
            raise ValueError("reflection/transmission must be <= 1")
        if self.phong_size <= 0.0:
            raise ValueError("phong_size must be positive")
        if self.ior <= 0.0:
            raise ValueError("ior must be positive")

    @property
    def is_reflective(self) -> bool:
        return self.reflection > 0.0

    @property
    def is_transmissive(self) -> bool:
        return self.transmission > 0.0


@dataclass
class Material:
    """Pigment (texture) + finish."""

    pigment: Texture = field(default_factory=lambda: SolidColor((1.0, 1.0, 1.0)))
    finish: Finish = field(default_factory=Finish)
    name: str | None = None

    def color_at(self, points: np.ndarray) -> np.ndarray:
        """Surface base color at world points ``(N, 3)``."""
        return self.pigment.color_at(points)

    # -- convenience factories (the looks used by the reproduction scenes) --
    @staticmethod
    def matte(color, ambient: float = 0.1, diffuse: float = 0.8, name: str | None = None) -> "Material":
        return Material(SolidColor(color), Finish(ambient=ambient, diffuse=diffuse), name=name)

    @staticmethod
    def chrome(tint=(0.9, 0.9, 0.9), reflection: float = 0.75, name: str | None = None) -> "Material":
        """Polished metal: low diffuse, strong highlight, high reflection."""
        return Material(
            SolidColor(tint),
            Finish(ambient=0.05, diffuse=0.2, specular=0.8, phong_size=120.0, reflection=reflection),
            name=name,
        )

    @staticmethod
    def glass(tint=(0.95, 0.95, 0.95), ior: float = 1.5, name: str | None = None) -> "Material":
        """Transparent dielectric: reflection + transmission."""
        return Material(
            SolidColor(tint),
            Finish(
                ambient=0.02,
                diffuse=0.05,
                specular=0.9,
                phong_size=200.0,
                reflection=0.12,
                transmission=0.85,
                ior=ior,
            ),
            name=name,
        )

    @staticmethod
    def mirror(name: str | None = None) -> "Material":
        return Material(
            SolidColor((1.0, 1.0, 1.0)),
            Finish(ambient=0.0, diffuse=0.02, specular=0.5, phong_size=300.0, reflection=0.95),
            name=name,
        )

    @staticmethod
    def textured(texture: Texture, finish: Finish | None = None, name: str | None = None) -> "Material":
        return Material(texture, finish if finish is not None else Finish(), name=name)
