"""Materials: POV-style pigments (textures) and finishes."""

from .material import Finish, Material
from .texture import Agate, Brick, Checker, Gradient, Marble, SolidColor, Texture

__all__ = [
    "Agate",
    "Brick",
    "Checker",
    "Finish",
    "Gradient",
    "Marble",
    "Material",
    "SolidColor",
    "Texture",
]
