"""Procedural 3-D textures (POV-Ray pigment patterns).

Textures map world-space points (``(N, 3)``) to RGB colors (``(N, 3)``,
components in [0, 1]).  They are pure functions of position, so coherent
re-rendering of an unchanged pixel is guaranteed to reproduce the same
color — the exactness invariant the paper relies on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..rmath import Transform, fbm, turbulence

__all__ = [
    "Texture",
    "SolidColor",
    "Checker",
    "Brick",
    "Marble",
    "Gradient",
    "Agate",
]


class Texture(ABC):
    """Maps batches of world points to RGB colors."""

    def __init__(self, transform: Transform | None = None):
        #: Optional pattern-space transform (POV's ``scale``/``rotate`` on pigments).
        self.transform = transform

    @abstractmethod
    def color_local(self, p: np.ndarray) -> np.ndarray:
        """Color at pattern-space points ``p`` of shape ``(N, 3)``."""

    def color_at(self, p: np.ndarray) -> np.ndarray:
        """Color at world points, honoring the pattern transform."""
        p = np.asarray(p, dtype=np.float64)
        if self.transform is not None:
            p = self.transform.inv_points(p)
        return self.color_local(p)

    def scaled(self, s: float) -> "Texture":
        """Convenience: return self with an additional uniform pattern scale."""
        extra = Transform.scale(s)
        self.transform = extra if self.transform is None else extra @ self.transform
        return self


def _as_rgb(c) -> np.ndarray:
    rgb = np.asarray(c, dtype=np.float64).reshape(3)
    if np.any(rgb < 0.0):
        raise ValueError("color components must be non-negative")
    return rgb


class SolidColor(Texture):
    """A constant color."""

    def __init__(self, color, transform: Transform | None = None):
        super().__init__(transform)
        self.color = _as_rgb(color)

    def color_local(self, p: np.ndarray) -> np.ndarray:
        return np.broadcast_to(self.color, (p.shape[0], 3)).copy()


class Checker(Texture):
    """POV ``checker``: unit cubes alternating between two colors."""

    def __init__(self, color_a, color_b, transform: Transform | None = None):
        super().__init__(transform)
        self.color_a = _as_rgb(color_a)
        self.color_b = _as_rgb(color_b)

    def color_local(self, p: np.ndarray) -> np.ndarray:
        # POV floors each coordinate with a tiny bias so surfaces lying on
        # integer planes (e.g. a floor at y=0) are stable.
        cells = np.floor(p + 1e-7).astype(np.int64)
        parity = (cells.sum(axis=-1) & 1).astype(bool)
        return np.where(parity[:, None], self.color_b, self.color_a)


class Brick(Texture):
    """POV ``brick``: staggered courses of bricks separated by mortar.

    Canonical brick size matches POV's default ``<8, 3, 4.5>`` with mortar
    thickness 0.5; scale the pattern transform for other sizes.
    """

    def __init__(
        self,
        brick_color=(0.6, 0.25, 0.2),
        mortar_color=(0.75, 0.72, 0.7),
        brick_size=(8.0, 3.0, 4.5),
        mortar: float = 0.5,
        transform: Transform | None = None,
    ):
        super().__init__(transform)
        self.brick_color = _as_rgb(brick_color)
        self.mortar_color = _as_rgb(mortar_color)
        self.brick_size = np.asarray(brick_size, dtype=np.float64)
        if np.any(self.brick_size <= 0):
            raise ValueError("brick_size components must be positive")
        self.mortar = float(mortar)
        if not (0 < self.mortar < self.brick_size.min()):
            raise ValueError("mortar must be positive and thinner than a brick")

    def color_local(self, p: np.ndarray) -> np.ndarray:
        bx, by, bz = self.brick_size
        x = p[..., 0] + 1e-7
        y = p[..., 1] + 1e-7
        z = p[..., 2] + 1e-7
        course = np.floor(y / by)
        # Alternate courses shift half a brick in x and z (running bond).
        offset = np.where((course.astype(np.int64) & 1).astype(bool), 0.5, 0.0)
        fx = np.mod(x / bx + offset, 1.0)
        fy = np.mod(y / by, 1.0)
        fz = np.mod(z / bz + offset, 1.0)
        mx = self.mortar / bx
        my = self.mortar / by
        mz = self.mortar / bz
        in_mortar = (fx < mx) | (fy < my) | (fz < mz)
        return np.where(in_mortar[:, None], self.mortar_color, self.brick_color)


class Marble(Texture):
    """Classic marble: turbulence-perturbed sine bands between two colors."""

    def __init__(
        self,
        color_a=(1.0, 1.0, 1.0),
        color_b=(0.2, 0.2, 0.25),
        turbulence_amount: float = 1.0,
        octaves: int = 4,
        transform: Transform | None = None,
    ):
        super().__init__(transform)
        self.color_a = _as_rgb(color_a)
        self.color_b = _as_rgb(color_b)
        self.turbulence_amount = float(turbulence_amount)
        self.octaves = int(octaves)

    def color_local(self, p: np.ndarray) -> np.ndarray:
        t = turbulence(p, octaves=self.octaves)
        phase = p[..., 0] + self.turbulence_amount * t
        band = 0.5 * (1.0 + np.sin(np.pi * phase))
        return self.color_a + band[:, None] * (self.color_b - self.color_a)


class Agate(Texture):
    """POV ``agate``-style banding driven by fBm noise."""

    def __init__(
        self,
        color_a=(0.8, 0.5, 0.3),
        color_b=(0.3, 0.1, 0.05),
        frequency: float = 4.0,
        octaves: int = 4,
        transform: Transform | None = None,
    ):
        super().__init__(transform)
        self.color_a = _as_rgb(color_a)
        self.color_b = _as_rgb(color_b)
        self.frequency = float(frequency)
        self.octaves = int(octaves)

    def color_local(self, p: np.ndarray) -> np.ndarray:
        v = fbm(p, octaves=self.octaves)
        band = 0.5 * (1.0 + np.sin(self.frequency * 2.0 * np.pi * v))
        return self.color_a + band[:, None] * (self.color_b - self.color_a)


class Gradient(Texture):
    """Linear blend between two colors along an axis, with unit period."""

    def __init__(self, axis, color_a, color_b, transform: Transform | None = None):
        super().__init__(transform)
        a = np.asarray(axis, dtype=np.float64).reshape(3)
        n = np.linalg.norm(a)
        if n == 0:
            raise ValueError("gradient axis must be non-zero")
        self.axis = a / n
        self.color_a = _as_rgb(color_a)
        self.color_b = _as_rgb(color_b)

    def color_local(self, p: np.ndarray) -> np.ndarray:
        t = np.mod(p @ self.axis, 1.0)
        return self.color_a + t[:, None] * (self.color_b - self.color_a)
