"""JobQueue: the service's bounded admission queue.

A render service on a network of workstations is a shared resource: many
owners submit, one farm renders.  The queue is where the service says
*no* — a bounded buffer with priority-aware shedding instead of the two
failure modes an unbounded queue invites (memory growth without limit,
and a latecomer's high-priority job starving behind a wall of bulk work).

Policy:

* higher ``priority`` number = more urgent; FIFO within a priority level
  (two equal-priority jobs render in submission order);
* :meth:`JobQueue.push` over capacity **sheds the least defensible
  entry**: the lowest-priority job in the queue, newest first among ties
  — and if the incoming job *is* the least defensible, it is shed
  itself.  The shed job is returned so the service can write an explicit
  ``rejected`` record to the ledger; admission control is an auditable
  decision, never a silent drop.

The queue is a plain data structure — no locks.  The service serializes
access under its own mutex, which also covers the ledger append that
must pair with every shed.
"""

from __future__ import annotations

from .ledger import Job

__all__ = ["JobQueue"]


class JobQueue:
    """Bounded priority queue of :class:`~repro.service.ledger.Job`."""

    def __init__(self, capacity: int = 16):
        self.capacity = max(1, int(capacity))
        self._items: list[Job] = []  # insertion order == submission order

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def push(self, job: Job) -> Job | None:
        """Admit ``job``; returns the job shed to make room (possibly
        ``job`` itself), or ``None`` when the queue had capacity."""
        self._items.append(job)
        if len(self._items) <= self.capacity:
            return None
        # Least defensible: lowest priority; newest among ties.  The
        # candidate just appended is the newest of all, so a full queue
        # of strictly higher-priority work sheds the candidate itself.
        victim = min(
            enumerate(self._items), key=lambda iv: (iv[1].priority, -iv[0])
        )
        self._items.pop(victim[0])
        return victim[1]

    def requeue(self, job: Job) -> None:
        """Admit without the capacity check — for retries and ledger-replay
        re-admission.  A job that already survived admission control keeps
        its seat; shedding it on a retry (or on ``--resume``) would turn a
        transient failure into a rejection."""
        self._items.append(job)

    def pop(self, now: float | None = None) -> Job | None:
        """Remove and return the most urgent runnable job.

        ``now`` gates retry backoff: a job whose ``not_before`` is still
        in the future is skipped (it stays queued), so one crashing job
        in its backoff window never blocks the rest of the queue.
        """
        best_i = -1
        for i, job in enumerate(self._items):
            if now is not None and job.not_before > now:
                continue
            if best_i < 0 or job.priority > self._items[best_i].priority:
                best_i = i
        if best_i < 0:
            return None
        return self._items.pop(best_i)

    def remove(self, job_id: str) -> Job | None:
        """Remove a queued job by id (cancellation); None if not queued."""
        for i, job in enumerate(self._items):
            if job.job_id == job_id:
                return self._items.pop(i)
        return None

    def snapshot(self) -> list[Job]:
        """The queued jobs, most urgent first (for status surfaces)."""
        return sorted(
            self._items, key=lambda j: (-j.priority, j.submitted_at, j.job_id)
        )
