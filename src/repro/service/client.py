"""Client half of the render service: submit, poll, wait, cancel.

Small synchronous RPCs over the same RNW1 framing the workers speak —
one connection per call, one ``JOB_*`` frame out, one ``JOB_STATUS``
frame back.  The service is the single writer of job state; these
helpers never hold state of their own, so a client crashing or retrying
is always safe.

These are what ``repro submit`` / ``repro jobs`` wrap, and they are
re-exported from :mod:`repro.api` as the programmatic surface::

    from repro.api import submit, wait

    job = submit("127.0.0.1:7601", {"workload": "newton", "n_frames": 8})
    done = wait("127.0.0.1:7601", [job["job_id"]])
"""

from __future__ import annotations

import socket
import time

from ..net import protocol as wire

__all__ = ["ServiceError", "submit", "job_status", "list_jobs", "cancel", "wait"]

#: Job states the service never leaves (mirrors repro.service.ledger).
_TERMINAL = frozenset({"done", "dead-letter", "rejected", "cancelled"})


class ServiceError(RuntimeError):
    """The service answered ``ok: False`` (or not at all)."""


def _parse_addr(addr: str) -> tuple[str, int]:
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"service address wants HOST:PORT, got {addr!r}")
    return host, int(port)


def _rpc(addr: str, msg_type: int, payload: dict, timeout: float = 10.0) -> dict:
    host, port = _parse_addr(addr)
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        wire.send_frame(sock, msg_type, payload)
        got = wire.recv_frame(sock)
    if got is None:
        raise ServiceError(f"service at {addr} closed the connection without replying")
    msg, reply = got
    if msg != wire.MSG_JOB_STATUS or not isinstance(reply, dict):
        raise ServiceError(
            f"unexpected reply {wire.MSG_NAMES.get(msg, msg)!r} from {addr}"
        )
    return reply


def submit(
    addr: str,
    spec: dict,
    *,
    priority: int = 0,
    owner: str = "",
    max_attempts: int = 3,
    timeout: float = 10.0,
) -> dict:
    """Submit a render spec; returns the admitted job's status dict.

    Raises :class:`ServiceError` when admission control rejects the job
    (queue full of higher-priority work) — an explicit refusal, never a
    silent drop.
    """
    reply = _rpc(
        addr,
        wire.MSG_JOB_SUBMIT,
        {
            "spec": dict(spec),
            "priority": int(priority),
            "owner": str(owner),
            "max_attempts": int(max_attempts),
        },
        timeout=timeout,
    )
    if not reply.get("ok"):
        raise ServiceError(reply.get("error") or "submit failed")
    return reply["job"]


def job_status(addr: str, job_id: str, *, timeout: float = 10.0) -> dict:
    """One job's status dict; raises :class:`ServiceError` if unknown."""
    reply = _rpc(addr, wire.MSG_JOB_STATUS, {"job": job_id}, timeout=timeout)
    if not reply.get("ok"):
        raise ServiceError(reply.get("error") or f"no status for {job_id!r}")
    return reply["job"]


def list_jobs(addr: str, *, timeout: float = 10.0) -> dict:
    """The full service snapshot (``jobs`` list plus summary)."""
    reply = _rpc(addr, wire.MSG_JOB_STATUS, {}, timeout=timeout)
    if not reply.get("ok"):
        raise ServiceError(reply.get("error") or "status failed")
    return reply["service"]


def cancel(addr: str, job_id: str, *, timeout: float = 10.0) -> dict:
    """Cancel a queued job; raises :class:`ServiceError` otherwise."""
    reply = _rpc(addr, wire.MSG_JOB_CANCEL, {"job": job_id}, timeout=timeout)
    if not reply.get("ok"):
        raise ServiceError(reply.get("error") or f"cancel of {job_id!r} failed")
    return reply["job"]


def wait(
    addr: str,
    job_ids,
    *,
    timeout: float = 300.0,
    poll: float = 0.25,
) -> dict[str, dict]:
    """Block until every job reaches a terminal state; returns id -> status.

    Polls ``JOB_STATUS`` (the service stays single-writer); raises
    :class:`TimeoutError` with the stragglers listed when the deadline
    passes.  A service restart mid-wait is survived by construction —
    each poll is a fresh connection.
    """
    if isinstance(job_ids, str):
        job_ids = [job_ids]
    pending = {str(j) for j in job_ids}
    done: dict[str, dict] = {}
    deadline = time.monotonic() + timeout
    while pending:
        for job_id in sorted(pending):
            try:
                status = job_status(addr, job_id)
            except (OSError, ServiceError):
                continue  # service restarting, or job not replayed yet
            if status.get("state") in _TERMINAL:
                done[job_id] = status
        pending -= set(done)
        if pending and time.monotonic() > deadline:
            raise TimeoutError(
                f"jobs still not terminal after {timeout}s: {sorted(pending)}"
            )
        if pending:
            time.sleep(poll)
    return done
