"""Client half of the render service: submit, poll, wait, cancel.

Small synchronous RPCs over the same RNW1 framing the workers speak —
one connection per call, one ``JOB_*`` frame out, one ``JOB_STATUS``
frame back.  The service is the single writer of job state; these
helpers never hold state of their own, so a client crashing or retrying
is always safe.

These are what ``repro submit`` / ``repro jobs`` wrap, and they are
re-exported from :mod:`repro.api` as the programmatic surface::

    from repro.api import RenderRequest, submit, wait

    job = submit("127.0.0.1:7601", RenderRequest(workload="newton", n_frames=8))
    done = wait("127.0.0.1:7601", [job["job_id"]])

``submit`` takes the same :class:`~repro.api.RenderRequest` that
:func:`~repro.api.render` runs locally — one request type for both "run
it here" and "hand it to the daemon".
"""

from __future__ import annotations

import dataclasses
import socket
import time

from ..net import protocol as wire

__all__ = ["ServiceError", "submit", "job_status", "list_jobs", "cancel", "wait"]

#: Job states the service never leaves (mirrors repro.service.ledger).
_TERMINAL = frozenset({"done", "dead-letter", "rejected", "cancelled"})


class ServiceError(RuntimeError):
    """The service answered ``ok: False`` (or not at all)."""


def _parse_addr(addr: str) -> tuple[str, int]:
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"service address wants HOST:PORT, got {addr!r}")
    return host, int(port)


def _rpc(addr: str, msg_type: int, payload: dict, timeout: float = 10.0) -> dict:
    host, port = _parse_addr(addr)
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        wire.send_frame(sock, msg_type, payload)
        got = wire.recv_frame(sock)
    if got is None:
        raise ServiceError(f"service at {addr} closed the connection without replying")
    msg, reply = got
    if msg != wire.MSG_JOB_STATUS or not isinstance(reply, dict):
        raise ServiceError(
            f"unexpected reply {wire.MSG_NAMES.get(msg, msg)!r} from {addr}"
        )
    return reply


#: RenderRequest fields the service accepts (mirrors daemon.SPEC_FIELDS;
#: duck-typed here so this module never imports repro.api — api imports us).
_SPEC_ATTRS = (
    "workload",
    "n_frames",
    "width",
    "height",
    "grid_resolution",
    "samples_per_axis",
    "shadow_coherence",
    "mode",
    "n_workers",
    "executor",
    "transport",
    "segment_frames",
    "task_timeout",
)


def _spec_from_request(request) -> dict:
    """Project a RenderRequest onto the wire-encodable job spec.

    Fields left at their RenderRequest default are *not* sent: the
    service owns the defaults for anything the caller didn't touch
    (worker count, executor, transport come from the daemon's own
    configuration, not from the client's dataclass).
    """
    defaults = {}
    if dataclasses.is_dataclass(request):
        defaults = {
            f.name: f.default
            for f in dataclasses.fields(request)
            if f.default is not dataclasses.MISSING
        }
    workload = getattr(request, "workload", None)
    if not isinstance(workload, str):
        raise TypeError(
            "submit() needs a workload *name* (the daemon rebuilds the scene "
            f"from its own recipe), not {type(workload).__name__}"
        )
    spec = {"workload": workload}
    for key in _SPEC_ATTRS[1:]:
        value = getattr(request, key, None)
        if value is None or (key in defaults and value == defaults[key]):
            continue
        spec[key] = value
    return spec


def submit(
    addr: str,
    request,
    *,
    priority: int = 0,
    owner: str = "",
    max_attempts: int = 3,
    timeout: float = 10.0,
) -> dict:
    """Submit a :class:`~repro.api.RenderRequest`; returns the admitted
    job's status dict.

    The same request object :func:`repro.api.render` executes locally is
    handed to the daemon (only the service-relevant fields travel; the
    service owns engine/schedule/telemetry).

    Raises :class:`ServiceError` when admission control rejects the job
    (queue full of higher-priority work) — an explicit refusal, never a
    silent drop.
    """
    if isinstance(request, dict):
        raise TypeError(
            "submit(addr, {...}) with a spec dict was removed; pass a "
            "repro.api.RenderRequest instead"
        )
    spec = _spec_from_request(request)
    reply = _rpc(
        addr,
        wire.MSG_JOB_SUBMIT,
        {
            "spec": spec,
            "priority": int(priority),
            "owner": str(owner),
            "max_attempts": int(max_attempts),
        },
        timeout=timeout,
    )
    if not reply.get("ok"):
        raise ServiceError(reply.get("error") or "submit failed")
    return reply["job"]


def job_status(addr: str, job_id: str, *, timeout: float = 10.0) -> dict:
    """One job's status dict; raises :class:`ServiceError` if unknown."""
    reply = _rpc(addr, wire.MSG_JOB_STATUS, {"job": job_id}, timeout=timeout)
    if not reply.get("ok"):
        raise ServiceError(reply.get("error") or f"no status for {job_id!r}")
    return reply["job"]


def list_jobs(addr: str, *, timeout: float = 10.0) -> dict:
    """The full service snapshot (``jobs`` list plus summary)."""
    reply = _rpc(addr, wire.MSG_JOB_STATUS, {}, timeout=timeout)
    if not reply.get("ok"):
        raise ServiceError(reply.get("error") or "status failed")
    return reply["service"]


def cancel(addr: str, job_id: str, *, timeout: float = 10.0) -> dict:
    """Cancel a queued job; raises :class:`ServiceError` otherwise."""
    reply = _rpc(addr, wire.MSG_JOB_CANCEL, {"job": job_id}, timeout=timeout)
    if not reply.get("ok"):
        raise ServiceError(reply.get("error") or f"cancel of {job_id!r} failed")
    return reply["job"]


def wait(
    addr: str,
    job_ids,
    *,
    timeout: float = 300.0,
    poll: float = 0.25,
) -> dict[str, dict]:
    """Block until every job reaches a terminal state; returns id -> status.

    Polls ``JOB_STATUS`` (the service stays single-writer); raises
    :class:`TimeoutError` with the stragglers listed when the deadline
    passes.  A service restart mid-wait is survived by construction —
    each poll is a fresh connection.
    """
    if isinstance(job_ids, str):
        job_ids = [job_ids]
    pending = {str(j) for j in job_ids}
    done: dict[str, dict] = {}
    deadline = time.monotonic() + timeout
    while pending:
        for job_id in sorted(pending):
            try:
                status = job_status(addr, job_id)
            except (OSError, ServiceError):
                continue  # service restarting, or job not replayed yet
            if status.get("state") in _TERMINAL:
                done[job_id] = status
        pending -= set(done)
        if pending and time.monotonic() > deadline:
            raise TimeoutError(
                f"jobs still not terminal after {timeout}s: {sorted(pending)}"
            )
        if pending:
            time.sleep(poll)
    return done
