"""RenderService: the long-lived ``repro serve`` daemon.

The earlier engines render one request and exit.  The paper's farm was a
*service*: a master that outlived any single animation, accepting work
from many owners and surviving the workstations (and itself) going down.
This module is that master:

* a **control socket** speaking the RNW1 framing of :mod:`repro.net`
  (``JOB_SUBMIT`` / ``JOB_STATUS`` / ``JOB_CANCEL``, protocol minor 2) —
  clients submit a render spec and poll for completion;
* a **scheduler loop** that pops the most urgent admitted job and runs
  it through :func:`repro.api.render` on the ``farm`` engine with a
  static schedule, so every completed task spools to the job's
  checkpoint directory exactly as PR 1's crash drills exercise;
* the **JobLedger** write-ahead discipline: every transition is durable
  *before* the service acts on it, so ``kill -9`` plus
  ``repro serve --resume`` reconstructs the job table and continues
  every in-flight job from its last spooled task — the final frames are
  bit-identical to a crash-free run (the ``service-smoke`` CI drill
  asserts this);
* **retry with capped exponential backoff**: a failed attempt re-queues
  the job gated by ``not_before``; the *final* attempt degrades to the
  serial in-process executor (a collapsed worker pool can fail a pooled
  attempt, it should never dead-letter a job the master could render
  alone), and ``max_attempts`` exhausted parks the job in
  ``dead-letter`` with its full attempt history in the ledger;
* **admission control**: the bounded :class:`~repro.service.queue.JobQueue`
  sheds the lowest-priority job with an explicit ``rejected`` ledger
  record — never a silent drop.

Synchronous :meth:`RenderService.step` runs exactly one job (what the
tests drive); :meth:`RenderService.serve_forever` is the daemon loop.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path

import numpy as np

from ..net import protocol as wire
from ..telemetry import InMemorySink, JsonlSink, Telemetry
from .ledger import TERMINAL_STATES, Job, JobLedger, fold_jobs, replay_records
from .queue import JobQueue

__all__ = ["RenderService", "SPEC_FIELDS"]

#: Render-spec keys a submitted job may set; everything else is dropped
#: (the service, not the client, owns engine/schedule/run_dir/telemetry).
SPEC_FIELDS = frozenset(
    {
        "workload",
        "n_frames",
        "width",
        "height",
        "grid_resolution",
        "samples_per_axis",
        "shadow_coherence",
        "mode",
        "n_workers",
        "executor",
        "transport",
        "segment_frames",
        "task_timeout",
    }
)


class _TaskRecordSink:
    """Telemetry sink that mirrors a job's checkpoint saves into the ledger.

    The farm emits a ``checkpoint {task, action: "saved"}`` event the
    moment a task's ``.npz`` lands (atomic rename).  Journaling that fact
    gives the resumed service its per-task progress without ever putting
    pixels in the WAL — on restart the fold's ``tasks_done`` agrees with
    the spool directory the farm will re-validate.
    """

    def __init__(self, service: "RenderService", job_id: str):
        self._service = service
        self._job_id = job_id

    def emit(self, record: dict) -> None:
        if record.get("name") != "checkpoint":
            return
        attrs = record.get("attrs") or {}
        if attrs.get("action") != "saved":
            return
        self._service._journal_task(self._job_id, int(attrs.get("task", -1)))


class RenderService:
    """A persistent multi-job render service over one state directory.

    Parameters
    ----------
    state_dir:
        Home of the ledger (``ledger.wal``), the service event log, and
        one ``jobs/<id>/`` directory per job (checkpoint spool, per-job
        ``events.jsonl``, final ``frames.npz``).
    resume:
        Replay the ledger and re-admit every non-terminal job before
        serving.  ``False`` requires a fresh state directory — refusing
        to silently ignore an existing ledger is part of the crash-safety
        contract.
    queue_capacity:
        Admission bound; see :class:`~repro.service.queue.JobQueue`.
    n_workers / executor / transport:
        Farm defaults for jobs whose spec doesn't choose its own.
    retry_base / retry_cap:
        Capped exponential backoff between attempts, seconds.
    """

    def __init__(
        self,
        state_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        resume: bool = False,
        queue_capacity: int = 16,
        n_workers: int | None = 2,
        executor: str = "process",
        transport: str = "process",
        retry_base: float = 0.5,
        retry_cap: float = 30.0,
        status_port: int | None = None,
        verbose: bool = False,
    ):
        self.state_dir = Path(state_dir)
        self.host = host
        self.port = int(port)
        self.queue_capacity = int(queue_capacity)
        self.n_workers = n_workers
        self.executor = executor
        self.transport = transport
        self.retry_base = float(retry_base)
        self.retry_cap = float(retry_cap)
        self.status_port = status_port
        self.verbose = verbose

        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._status_server = None
        self._started_at = time.time()
        self.n_recovered = 0
        self.n_dropped_records = 0

        ledger_path = self.state_dir / "ledger.wal"
        if not resume and ledger_path.exists():
            raise FileExistsError(
                f"{ledger_path} already exists; pass resume=True "
                "(repro serve --resume) to continue it, or point --state-dir "
                "at a fresh directory"
            )
        self.state_dir.mkdir(parents=True, exist_ok=True)

        self.jobs: dict[str, Job] = {}
        self.queue = JobQueue(capacity=self.queue_capacity)
        if resume:
            records, self.n_dropped_records = replay_records(ledger_path)
            self.jobs = fold_jobs(records)
            for job in sorted(self.jobs.values(), key=lambda j: j.submitted_at):
                if job.state == "queued":
                    self.queue.requeue(job)
                    if job.recovered:
                        self.n_recovered += 1
        self.ledger = JobLedger(ledger_path)

        self._mem = InMemorySink()
        self.telemetry = Telemetry(
            sinks=[self._mem, JsonlSink(self.state_dir / "service.events.jsonl")]
        )
        # The service's own black box: records everything this process
        # emits (including in-process farm masters run for jobs) and
        # dumps into the state dir on SIGTERM or an unhandled exception.
        from ..obs.flight import FlightRecorder
        from ..obs.metrics import MetricsPlane

        self.recorder = FlightRecorder("service", self.state_dir)
        # Streaming percentiles over everything the service's jobs emit,
        # served as Prometheus text at /metrics on the status endpoint.
        self.metrics = MetricsPlane().bind(self.telemetry)
        self.telemetry.sinks.append(self.metrics)
        if resume and self.n_recovered:
            self._log(
                f"resume: {len(self.jobs)} jobs replayed, "
                f"{self.n_recovered} re-queued, "
                f"{self.n_dropped_records} torn/corrupt records dropped"
            )

    # -- logging ---------------------------------------------------------------
    def _log(self, msg: str) -> None:
        if self.verbose:
            print(f"[repro.serve] {msg}", flush=True)

    # -- id allocation ---------------------------------------------------------
    def _next_job_id(self) -> str:
        n = 0
        for job_id in self.jobs:
            tail = job_id.lstrip("j")
            if tail.isdigit():
                n = max(n, int(tail))
        return f"j{n + 1:04d}"

    # -- ledger helpers (callers hold the lock or are the sink path) -----------
    def _journal_task(self, job_id: str, task: int) -> None:
        with self._lock:
            self.ledger.append("task", job=job_id, task=task)
            job = self.jobs.get(job_id)
            if job is not None:
                job.tasks_done.add(task)

    def _set_state(self, job: Job, state: str, detail: str = "", **extra) -> None:
        """Journal then apply a state transition (lock held by caller)."""
        self.ledger.append("state", job=job.job_id, state=state, detail=detail, **extra)
        job.state = state
        job.detail = detail
        if state in TERMINAL_STATES:
            job.finished_at = time.time()
        self.telemetry.event("job.state", job=job.job_id, state=state, detail=detail)
        self._log(f"{job.job_id}: {state}" + (f" ({detail})" if detail else ""))

    # -- submission / control --------------------------------------------------
    def submit(
        self,
        spec: dict,
        *,
        priority: int = 0,
        owner: str = "",
        max_attempts: int = 3,
    ) -> tuple[Job, Job | None]:
        """Admit one job; returns ``(job, shed)`` where ``shed`` is the
        job rejected by admission control (possibly the new job itself)."""
        clean = {k: spec[k] for k in SPEC_FIELDS if k in spec}
        with self._lock:
            job = Job(
                job_id=self._next_job_id(),
                spec=clean,
                priority=int(priority),
                owner=str(owner),
                max_attempts=max(1, int(max_attempts)),
                submitted_at=time.time(),
            )
            self.jobs[job.job_id] = job
            self.ledger.append(
                "submit",
                job=job.job_id,
                spec=clean,
                priority=job.priority,
                owner=job.owner,
                max_attempts=job.max_attempts,
            )
            self.telemetry.event(
                "job.submit",
                job=job.job_id,
                workload=str(clean.get("workload", "newton")),
                priority=job.priority,
                owner=job.owner,
                n_frames=int(clean.get("n_frames", 8)),
            )
            shed = self.queue.push(job)
            if shed is not None:
                self._set_state(
                    shed, "rejected", "shed by admission control (queue full)"
                )
            return job, shed

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job (running/terminal jobs raise ValueError)."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise ValueError(f"unknown job {job_id!r}")
            if job.state != "queued":
                raise ValueError(f"job {job_id} is {job.state}; only queued jobs cancel")
            self.queue.remove(job_id)
            self._set_state(job, "cancelled", "cancelled by request")
            return job

    # -- status surfaces -------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``/status`` JSON body: service summary plus the job table."""
        with self._lock:
            jobs = [j.to_dict() for j in self.jobs.values()]
        counts: dict[str, int] = {}
        for j in jobs:
            counts[j["state"]] = counts.get(j["state"], 0) + 1
        return {
            "service": "repro.serve",
            "state_dir": str(self.state_dir),
            "addr": f"{self.host}:{self.port}",
            "uptime": round(time.time() - self._started_at, 3),
            "queue_capacity": self.queue_capacity,
            "n_jobs": len(jobs),
            "states": counts,
            "n_recovered": self.n_recovered,
            "n_dropped_records": self.n_dropped_records,
            "jobs": sorted(jobs, key=lambda j: j["job_id"]),
        }

    def _jobs_snapshot(self) -> dict:
        snap = self.snapshot()
        return {"jobs": snap["jobs"], "states": snap["states"]}

    # -- the scheduler ---------------------------------------------------------
    def _build_request(self, job: Job, final_attempt: bool):
        from ..api import RenderRequest
        from ..runtime import AnimationSpec

        spec = dict(job.spec)
        workload = spec.pop("workload", "newton")
        if isinstance(workload, dict):
            workload = AnimationSpec(
                str(workload.get("factory", "")), dict(workload.get("kwargs") or {})
            )
        spool = self.state_dir / "jobs" / job.job_id / "spool"
        resume = spool if (spool / "manifest.json").exists() else None
        kwargs = {
            "workload": workload,
            "engine": "farm",
            "schedule": "static",  # spooling requires the static schedule
            "n_workers": spec.pop("n_workers", self.n_workers),
            "executor": spec.pop("executor", self.executor),
            "transport": spec.pop("transport", self.transport),
            "run_dir": None if resume is not None else spool,
            "resume": resume,
            **spec,
        }
        if final_attempt:
            # Last chance: never let a collapsed pool dead-letter a job
            # the master can render alone, deterministically.
            kwargs.update(executor="serial", transport="process", n_workers=1)
        return RenderRequest(**kwargs)

    def step(self, now: float | None = None) -> Job | None:
        """Run the most urgent runnable job to one attempt's conclusion.

        Returns the job (inspect ``job.state``) or ``None`` when nothing
        was runnable (empty queue, or every queued job inside its
        backoff window).
        """
        from ..api import render

        now = time.time() if now is None else now
        with self._lock:
            job = self.queue.pop(now=now)
            if job is None:
                return None
            attempt = job.n_attempts + 1
            final = attempt >= job.max_attempts
            self._set_state(
                job, "running", f"attempt {attempt}/{job.max_attempts}"
            )
        job_dir = self.state_dir / "jobs" / job.job_id
        # One event log per *attempt*: a killed attempt leaves a truncated
        # trace (its run span never closed), which would read as orphan
        # spans forever if appended to.  The ledger keeps the attempt
        # history; the event log describes the attempt that produced the
        # frames on disk — always a complete, connected trace.
        (job_dir / "events.jsonl").unlink(missing_ok=True)
        tel = Telemetry(
            sinks=[
                JsonlSink(job_dir / "events.jsonl"),
                _TaskRecordSink(self, job.job_id),
            ]
        )
        t0 = time.perf_counter()
        try:
            request = self._build_request(job, final_attempt=final)
            result = render(request, telemetry=tel)
            self._save_frames(job_dir, result.frames)
            if result.frames is not None:
                # frames.npz is on disk; recycle the pixel stack so the
                # daemon's resident set stays one job deep and the next
                # same-shaped job composites into the same memory.
                result.frames.release()
        except Exception as exc:  # noqa: BLE001 — any failure is one attempt
            duration = time.perf_counter() - t0
            tel.close()
            self._record_failure(job, attempt, duration, repr(exc), now=now)
            return job
        duration = time.perf_counter() - t0
        tel.close()
        with self._lock:
            self.ledger.append(
                "attempt",
                job=job.job_id,
                attempt=attempt,
                outcome="ok",
                duration=round(duration, 6),
                error="",
                backoff=0.0,
            )
            job.attempts.append(
                {"attempt": attempt, "outcome": "ok", "error": "",
                 "duration": duration, "backoff": 0.0}
            )
            self.telemetry.event(
                "job.attempt",
                job=job.job_id,
                attempt=attempt,
                outcome="ok",
                duration=round(duration, 6),
                error="",
            )
            job.n_tasks = result.n_tasks
            job.n_from_checkpoint = result.n_from_checkpoint
            self._set_state(
                job,
                "done",
                f"{result.n_tasks} tasks, {result.n_from_checkpoint} from checkpoint",
                n_tasks=result.n_tasks,
                n_from_checkpoint=result.n_from_checkpoint,
            )
        return job

    def _record_failure(
        self, job: Job, attempt: int, duration: float, error: str, *, now: float
    ) -> None:
        with self._lock:
            retry = attempt < job.max_attempts
            backoff = (
                min(self.retry_cap, self.retry_base * (2.0 ** (attempt - 1)))
                if retry
                else 0.0
            )
            self.ledger.append(
                "attempt",
                job=job.job_id,
                attempt=attempt,
                outcome="error",
                duration=round(duration, 6),
                error=error,
                backoff=backoff,
            )
            job.attempts.append(
                {"attempt": attempt, "outcome": "error", "error": error,
                 "duration": duration, "backoff": backoff}
            )
            self.telemetry.event(
                "job.attempt",
                job=job.job_id,
                attempt=attempt,
                outcome="error",
                duration=round(duration, 6),
                error=error,
            )
            if retry:
                job.not_before = now + backoff
                self._set_state(
                    job,
                    "queued",
                    f"retry {attempt + 1}/{job.max_attempts} in {backoff:.2f}s: {error}",
                )
                self.queue.requeue(job)
            else:
                self._set_state(
                    job, "dead-letter", f"{attempt} attempts exhausted: {error}"
                )

    @staticmethod
    def _save_frames(job_dir: Path, frames) -> None:
        """Atomic-rename the finished frames next to the job's spool."""
        if frames is None:
            return
        job_dir.mkdir(parents=True, exist_ok=True)
        final = job_dir / "frames.npz"
        tmp = job_dir / "frames.npz.tmp"
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, frames=np.asarray(frames))
        os.replace(tmp, final)

    # -- control socket --------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind the control socket (and status endpoint); returns the addr."""
        self.recorder.install()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self.port))
        self._listener.listen(16)
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        if self.status_port is not None:
            from ..obs import StatusServer

            self._status_server = StatusServer(
                self,
                port=int(self.status_port),
                routes={"/jobs": self._jobs_snapshot, "/metrics": self.metrics.route},
            )
            self._status_server.start()
        self._write_addr_file()
        self._log(f"control socket on {self.host}:{self.port}")
        return self.host, self.port

    def _write_addr_file(self) -> None:
        """Publish the bound addresses (atomic) so tools can find a daemon
        that picked its ports dynamically."""
        info = {
            "host": self.host,
            "port": self.port,
            "status_port": getattr(self._status_server, "port", None),
            "pid": os.getpid(),
        }
        tmp = self.state_dir / "service.json.tmp"
        tmp.write_text(json.dumps(info, indent=1, sort_keys=True))
        os.replace(tmp, self.state_dir / "service.json")

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            threading.Thread(
                target=self._serve_conn, args=(conn,),
                name="repro-serve-conn", daemon=True,
            ).start()

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                got = wire.recv_frame(conn)
                if got is None:
                    return
                msg_type, payload = got
                reply = self._handle(msg_type, payload or {})
                wire.send_frame(conn, wire.MSG_JOB_STATUS, reply)
        except (OSError, wire.ProtocolError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle(self, msg_type: int, payload: dict) -> dict:
        service = {"addr": f"{self.host}:{self.port}", "queue_capacity": self.queue_capacity}
        try:
            if msg_type == wire.MSG_JOB_SUBMIT:
                job, shed = self.submit(
                    dict(payload.get("spec") or {}),
                    priority=int(payload.get("priority", 0)),
                    owner=str(payload.get("owner", "")),
                    max_attempts=int(payload.get("max_attempts", 3)),
                )
                if shed is job:
                    return {
                        "ok": False,
                        "error": "rejected: queue full of higher-priority work",
                        "job": job.to_dict(),
                        "service": service,
                    }
                return {"ok": True, "job": job.to_dict(), "service": service}
            if msg_type == wire.MSG_JOB_STATUS:
                job_id = payload.get("job")
                if job_id:
                    with self._lock:
                        job = self.jobs.get(str(job_id))
                    if job is None:
                        return {
                            "ok": False,
                            "error": f"unknown job {job_id!r}",
                            "service": service,
                        }
                    return {"ok": True, "job": job.to_dict(), "service": service}
                snap = self.snapshot()
                return {"ok": True, "jobs": snap["jobs"], "service": snap}
            if msg_type == wire.MSG_JOB_CANCEL:
                job = self.cancel(str(payload.get("job", "")))
                return {"ok": True, "job": job.to_dict(), "service": service}
            return {
                "ok": False,
                "error": f"unexpected message type {wire.MSG_NAMES.get(msg_type, msg_type)!r}",
                "service": service,
            }
        except (ValueError, TypeError) as exc:
            return {"ok": False, "error": str(exc), "service": service}

    # -- lifecycle -------------------------------------------------------------
    def serve_forever(self, poll: float = 0.2) -> None:
        """The daemon loop: run jobs as they become runnable, until stop()."""
        while not self._stop.is_set():
            job = self.step()
            if job is None:
                self._stop.wait(poll)

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        if self._status_server is not None:
            self._status_server.stop()
            self._status_server = None
        self.telemetry.close()
        self.ledger.close()
        self.recorder.uninstall()

    def __enter__(self) -> "RenderService":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
