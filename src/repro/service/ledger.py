"""JobLedger: the render service's crash-safe write-ahead log.

Every state transition the service makes — a job submitted, queued,
started, checkpointed task by task, retried, finished, shed, cancelled —
is appended to one on-disk journal *before* the service acts on it.
``kill -9`` the daemon at any instant and a restart replays the journal
back into the exact job table the dead process held, minus at most the
single record that was mid-write.

Record framing
--------------
The journal is a text file of independently verifiable lines::

    <crc32:08x> <compact-json>\\n

The CRC covers the JSON bytes, so every record carries its own proof of
integrity — the same stance the PR 1 checkpoint spool takes with
atomic-rename ``.npz`` files, adapted to an append-only journal where
rename-per-record would cost a file per transition.  Appends are
``write + flush + fsync``: when :meth:`JobLedger.append` returns, the
record is durable.  Replay (:func:`replay_records`) drops any line whose
CRC or JSON fails — a torn tail from a mid-write crash loses only the
record being written, never an earlier one, and a flipped byte anywhere
invalidates exactly one record instead of poisoning the file.

Large payloads (frames, spooled task results) never enter the journal:
they live in each job's spool directory as atomic-rename ``.npz`` files,
and the journal records only that they exist.  That keeps replay O(jobs)
cheap and the torn-tail blast radius one *transition*, not one *render*.

Fold semantics
--------------
:func:`fold_jobs` reduces a replayed record stream to the job table.  A
job whose last durable state is ``running`` was in flight when the
process died; the fold re-queues it (``recovered=True``) so a resumed
service continues it — its completed tasks are re-counted from the
``task`` records (and re-validated against the spool by the farm), so
finished work is never re-rendered and the crash costs at most the one
task that was in flight.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobLedger",
    "replay_records",
    "fold_jobs",
]

#: The service job state machine: queued -> running -> done, with the
#: failure exits described in DESIGN §13.
JOB_STATES = ("queued", "running", "done", "dead-letter", "rejected", "cancelled")

#: States a job never leaves (replay keeps them as-is).
TERMINAL_STATES = frozenset({"done", "dead-letter", "rejected", "cancelled"})


@dataclass
class Job:
    """One render job as the service (and the ledger fold) tracks it."""

    job_id: str
    spec: dict
    priority: int = 0
    owner: str = ""
    max_attempts: int = 3
    state: str = "queued"
    detail: str = ""
    submitted_at: float = 0.0
    finished_at: float | None = None
    attempts: list[dict] = field(default_factory=list)
    tasks_done: set = field(default_factory=set)
    n_tasks: int = 0
    n_from_checkpoint: int = 0
    not_before: float = 0.0  # retry-backoff gate (wall clock)
    recovered: bool = False  # re-queued by a --resume replay

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    def to_dict(self) -> dict:
        """A JSON/wire-able snapshot (sets become counts)."""
        d = asdict(self)
        d["tasks_done"] = len(self.tasks_done)
        d["n_attempts"] = self.n_attempts
        return d


class JobLedger:
    """Append-only, CRC-framed, fsync-durable journal of service records.

    Records are plain dicts with a ``kind`` key; the service uses
    ``submit`` / ``state`` / ``attempt`` / ``task`` (see :func:`fold_jobs`)
    but the framing is kind-agnostic.  One ledger instance owns the file
    handle for the life of the service; replay happens on a closed file.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, kind: str, **fields) -> dict:
        """Durably append one record; returns it (with ``kind`` and ``t``)."""
        record = {"kind": kind, "t": time.time(), **fields}
        data = json.dumps(record, sort_keys=True, separators=(",", ":"))
        line = f"{zlib.crc32(data.encode('utf-8')):08x} {data}\n"
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JobLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def replay_records(path: str | Path) -> tuple[list[dict], int]:
    """Read every intact record from a journal.

    Returns ``(records, n_dropped)`` where ``n_dropped`` counts lines
    that failed CRC or JSON validation (a torn tail from a crash, or a
    corrupted byte).  A missing file is an empty ledger, not an error.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    records: list[dict] = []
    dropped = 0
    with open(path, "rb") as fh:
        raw = fh.read()
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        head, _, data = line.partition(b" ")
        try:
            crc = int(head, 16)
        except ValueError:
            dropped += 1
            continue
        if len(head) != 8 or zlib.crc32(data) != crc:
            dropped += 1
            continue
        try:
            record = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            dropped += 1
            continue
        if isinstance(record, dict) and "kind" in record:
            records.append(record)
        else:
            dropped += 1
    return records, dropped


def fold_jobs(records: list[dict]) -> dict[str, Job]:
    """Reduce a record stream to the job table a restarted service needs.

    Record kinds:

    * ``submit`` — creates the job (spec, priority, owner, max_attempts);
    * ``state`` — a transition to one of :data:`JOB_STATES`;
    * ``attempt`` — one finished execution attempt (outcome, error, the
      backoff the service chose);
    * ``task`` — one task of the job's render spooled to disk.

    Jobs whose last durable state is ``queued`` or ``running`` are
    returned as ``queued`` with ``recovered=True`` — the crash-restart
    contract: in-flight work continues, it is never dropped and never
    double-finished (terminal states stay terminal).
    """
    jobs: dict[str, Job] = {}
    for rec in records:
        kind = rec.get("kind")
        job_id = str(rec.get("job", ""))
        if kind == "submit":
            jobs[job_id] = Job(
                job_id=job_id,
                spec=dict(rec.get("spec") or {}),
                priority=int(rec.get("priority", 0)),
                owner=str(rec.get("owner", "")),
                max_attempts=max(1, int(rec.get("max_attempts", 3))),
                submitted_at=float(rec.get("t", 0.0)),
            )
            continue
        job = jobs.get(job_id)
        if job is None:
            continue  # transition for a job whose submit record was lost
        if kind == "state":
            state = str(rec.get("state", ""))
            if state not in JOB_STATES or job.state in TERMINAL_STATES:
                continue
            job.state = state
            job.detail = str(rec.get("detail", ""))
            if state in TERMINAL_STATES:
                job.finished_at = float(rec.get("t", 0.0))
            if state == "done":
                job.n_tasks = int(rec.get("n_tasks", job.n_tasks))
                job.n_from_checkpoint = int(
                    rec.get("n_from_checkpoint", job.n_from_checkpoint)
                )
        elif kind == "attempt":
            job.attempts.append(
                {
                    "attempt": int(rec.get("attempt", len(job.attempts) + 1)),
                    "outcome": str(rec.get("outcome", "error")),
                    "error": str(rec.get("error", "")),
                    "duration": float(rec.get("duration", 0.0)),
                    "backoff": float(rec.get("backoff", 0.0)),
                }
            )
        elif kind == "task":
            job.tasks_done.add(int(rec.get("task", -1)))
            job.n_tasks = max(job.n_tasks, int(rec.get("n_tasks", 0)))
    for job in jobs.values():
        if job.state == "running":
            job.state = "queued"
            job.recovered = True
            job.detail = "recovered after service restart"
        elif job.state == "queued" and job.attempts:
            # Interrupted between retries: keep the backoff history but
            # run as soon as the resumed service gets to it.
            job.recovered = True
    return jobs
