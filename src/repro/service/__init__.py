"""repro.service — the persistent multi-job render service.

Three layers, smallest first:

* :mod:`~repro.service.ledger` — the crash-safe write-ahead JobLedger
  (CRC-framed fsync'd journal, torn-tail-tolerant replay, the job fold);
* :mod:`~repro.service.queue` — bounded priority admission with explicit
  shedding;
* :mod:`~repro.service.daemon` — :class:`RenderService`, the
  ``repro serve`` daemon tying ledger + queue + farm together behind an
  RNW1 control socket;
* :mod:`~repro.service.client` — ``submit``/``wait``/``job_status``/
  ``cancel`` RPC helpers (re-exported from :mod:`repro.api`).

See DESIGN §13 for the state machine and the restart-recovery sequence.
"""

from .client import ServiceError, cancel, job_status, list_jobs, submit, wait
from .daemon import RenderService
from .ledger import (
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobLedger,
    fold_jobs,
    replay_records,
)
from .queue import JobQueue

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobLedger",
    "JobQueue",
    "RenderService",
    "ServiceError",
    "cancel",
    "fold_jobs",
    "job_status",
    "list_jobs",
    "replay_records",
    "submit",
    "wait",
]
