"""Unified render API: one request, three engines, one telemetry spine.

The reproduction grew three ways to turn an animation into pixels:

* the **animation** engine (:mod:`repro.pipeline`) — single-process frame
  coherence, the paper's extended POV-Ray renderer;
* the **farm** (:mod:`repro.runtime`) — real master/worker parallelism with
  crash/hang recovery and checkpoint-resume;
* the **simulators** (:mod:`repro.parallel`) — the discrete-event NOW model
  behind Table 1.

:func:`render` dispatches a :class:`RenderRequest` to any of them and
returns a :class:`RenderResult`.  All three paths thread the same
:class:`~repro.telemetry.Telemetry` through, so a real farm run and a
simulated run of the same workload emit telemetry with an identical
schema — compare them with ``repro telemetry <run_dir>`` or
:func:`repro.telemetry.report_from_events`.

Example::

    from repro.api import RenderRequest, render

    result = render(RenderRequest(workload="newton", n_frames=8,
                                  engine="farm", n_workers=4,
                                  telemetry=True, events_path="run/"))
    print(result.stats.total, "rays;", len(result.events), "events")
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .render import RayStats
from .scene import Animation
from .service.client import (  # noqa: F401 (re-exported client surface)
    ServiceError,
    cancel,
    job_status,
    list_jobs,
    submit,
    wait,
)
from .telemetry import NULL as NULL_TELEMETRY
from .telemetry import InMemorySink, JsonlSink, Telemetry

__all__ = [
    "RenderRequest",
    "RenderResult",
    "LazyFrames",
    "render",
    "ENGINES",
    "SIM_STRATEGIES",
    # render-service client surface (thin re-exports of repro.service.client;
    # `render` runs one request here, `submit`/`wait` hand it to a daemon)
    "ServiceError",
    "submit",
    "job_status",
    "list_jobs",
    "cancel",
    "wait",
]

ENGINES = ("animation", "farm", "simulate")

#: CLI/Request strategy names -> Table-1 simulator entry points (resolved lazily).
SIM_STRATEGIES = (
    "single",
    "single-fc",
    "frame-division-nofc",
    "sequence-division-nofc",
    "sequence-division-fc",
    "frame-division-fc",
    "hybrid-fc",
    "frame-division-fc-ft",
    "sequence-division-fc-ft",
)

_WORKLOAD_FACTORIES = {
    "newton": "repro.scenes.newton:newton_animation",
    "brick": "repro.scenes.brick_room:brick_room_animation",
    "spheres": "repro.scenes.stress:random_spheres_animation",
    "orbit": "repro.scenes.orbit:orbit_animation",
}


@dataclass
class RenderRequest:
    """Everything the facade needs to run any engine.

    Only the fields relevant to the chosen ``engine`` are consulted; the
    rest keep their defaults harmlessly.
    """

    workload: Any = "newton"  # name, Animation, or runtime.AnimationSpec
    engine: str = "animation"
    n_frames: int = 8
    width: int = 160
    height: int = 120
    grid_resolution: int = 24
    samples_per_axis: int = 1
    shadow_coherence: bool = False
    chunk_size: int = 32768
    #: Streaming progress callbacks, uniform across engines.  ``on_frame``
    #: receives a :class:`repro.dfb.FrameEvent` per completed frame;
    #: ``on_tile`` a :class:`repro.dfb.TileEvent` per composited tile.  A
    #: TCP farm fires them live as wire tiles land; the animation engine
    #: and the process-pool farm synthesize whole-frame events as frames
    #: complete; the simulators emit pixel-less frame events (image None).
    on_frame: Callable | None = None
    on_tile: Callable | None = None

    # farm (engine="farm")
    mode: str = "frame"
    n_workers: int | None = None
    executor: str = "process"
    schedule: str = "static"
    transport: str = "process"  # "process" pool, or "tcp" loopback network farm
    net_die_after: dict | None = None  # tcp fault drill: worker idx -> kill point
    net_die_after_frames: dict | None = None  # mid-task fault drill: idx -> frame count
    blackbox_dir: str | Path | None = None  # flight-recorder dumps (None: run/events dir)
    segment_frames: int | None = None
    tile_px: int | None = None  # tcp tile edge; None = default, 0 = whole-subarea wire
    max_attempts: int = 3
    task_timeout: float | None = None
    run_dir: str | Path | None = None
    resume: str | Path | None = None
    fault_plan: Any = None
    verify: bool = False

    # simulators (engine="simulate")
    strategy: str = "sequence-division-fc"
    machines: list | None = None  # default: cluster.ncsu_testbed()
    oracle: Any = None  # AnimationCostOracle, or a saved-oracle path
    sec_per_work_unit: float = 1e-4
    failures: list[tuple[str, float]] | None = None
    worker_timeout: float | None = None

    # telemetry / profiling
    telemetry: Any = False  # bool, or a ready-made Telemetry instance
    events_path: str | Path | None = None  # JSONL file or directory
    profile_dir: str | Path | None = None

    # observability (implies telemetry when set)
    status_port: int | None = None  # serve live JSON farm status on 127.0.0.1:<port>
    trace_out: str | Path | None = None  # write Chrome trace JSON here at run end


class LazyFrames:
    """Lazy ``(n, H, W, 3)`` accessor behind :attr:`RenderResult.frames`.

    Wraps either a materialized array or a zero-arg thunk producing one;
    the thunk runs at most once, on first pixel access.  The common
    ndarray surface (``np.asarray``, ``shape``, indexing, iteration,
    ``tobytes``) is forwarded so array-shaped callers keep working
    without materializing explicitly.

    A ``releaser`` callback, when given, returns the backing buffers to
    their pool.  For a thunk source it fires automatically right after
    the first materialization (the thunk's shared-memory refs are dead
    weight once this object owns its own stack); for an array source it
    fires only on an explicit :meth:`release`, because then the buffer
    being recycled *is* the one this object serves — after release the
    frames must not be read through this object again, and any access
    raises.
    """

    __slots__ = ("_value", "_thunk", "_releaser")

    def __init__(self, source, releaser=None):
        if callable(source):
            self._value = None
            self._thunk = source
        else:
            self._value = np.asarray(source)
            self._thunk = None
        self._releaser = releaser

    def materialize(self) -> np.ndarray:
        if self._value is None:
            if self._thunk is None:
                raise RuntimeError(
                    "frames were released; re-render to read pixels again"
                )
            self._value = np.asarray(self._thunk())
            self._thunk = None
            self._fire()
        return self._value

    def _fire(self) -> None:
        releaser, self._releaser = self._releaser, None
        if releaser is not None:
            releaser()

    def release(self) -> None:
        """Hand the backing storage back to its owner (idempotent).

        Call when the frames are spooled/consumed and will never be read
        through this object again — e.g. the render service releases a
        job's frames the moment ``frames.npz`` is on disk, so a
        long-lived daemon's resident set stays one job deep.
        """
        self._value = None
        self._thunk = None
        self._fire()

    def __array__(self, dtype=None, copy=None):
        a = self.materialize()
        if dtype is not None:
            a = a.astype(dtype, copy=False)
        if copy:
            a = a.copy()
        return a

    @property
    def shape(self):
        return self.materialize().shape

    @property
    def dtype(self):
        return self.materialize().dtype

    @property
    def nbytes(self) -> int:
        return self.materialize().nbytes

    def __len__(self) -> int:
        return len(self.materialize())

    def __getitem__(self, key):
        return self.materialize()[key]

    def __iter__(self):
        return iter(self.materialize())

    def tobytes(self) -> bytes:
        return self.materialize().tobytes()

    def __repr__(self) -> str:
        if self._value is not None:
            return f"LazyFrames(shape={self._value.shape})"
        if self._thunk is None:
            return "LazyFrames(<released>)"
        return "LazyFrames(<unmaterialized>)"


@dataclass
class RenderResult:
    """Engine-independent result envelope.

    ``frames``/``stats``/``reports`` are populated by the real engines
    (``frames`` as a :class:`LazyFrames` accessor — index it, iterate it,
    or ``np.asarray`` it); ``outcome`` carries the
    :class:`~repro.parallel.SimulationOutcome` for ``engine="simulate"``
    (whose ``frames`` stays ``None``).  ``events`` holds the telemetry
    records captured during the run (empty unless telemetry was
    requested).
    """

    engine: str
    workload: str
    n_frames: int
    wall_time: float
    frames: LazyFrames | None = None
    stats: RayStats | None = None
    mode: str = ""
    reports: list = field(default_factory=list)
    sequences: list = field(default_factory=list)
    per_sequence_stats: list = field(default_factory=list)
    shadow_rays_saved: int = 0
    n_tasks: int = 0
    n_workers: int = 1
    recovery: dict = field(default_factory=dict)
    n_from_checkpoint: int = 0
    bit_identical: bool | None = None
    outcome: Any = None
    events: list = field(default_factory=list)
    events_path: Path | None = None
    trace_path: Path | None = None

    def total_computed_pixels(self) -> int:
        return sum(r.n_computed for r in self.reports)

    def total_copied_pixels(self) -> int:
        return sum(r.n_copied for r in self.reports)


# -- request resolution ----------------------------------------------------------
def _resolve_workload(req: RenderRequest):
    """Return ``(label, spec_or_None, animation_or_None)``.

    The animation is built lazily by callers that need it; the farm engine
    requires a picklable spec (a name or an AnimationSpec), not a live
    Animation object.
    """
    from .runtime import AnimationSpec

    w = req.workload
    if isinstance(w, str):
        try:
            factory = _WORKLOAD_FACTORIES[w]
        except KeyError:
            raise ValueError(
                f"unknown workload {w!r}; expected one of {sorted(_WORKLOAD_FACTORIES)} "
                "or an Animation/AnimationSpec"
            ) from None
        spec = AnimationSpec(
            factory,
            {"n_frames": req.n_frames, "width": req.width, "height": req.height},
        )
        return w, spec, None
    if isinstance(w, AnimationSpec):
        return w.factory, w, None
    if isinstance(w, Animation):
        if req.engine == "farm":
            raise ValueError(
                "engine='farm' needs a workload name or AnimationSpec "
                "(workers rebuild the animation from a picklable recipe)"
            )
        return type(w).__name__, None, w
    raise TypeError(f"workload must be str, Animation or AnimationSpec, not {type(w).__name__}")


def _setup_telemetry(req: RenderRequest):
    """Return ``(telemetry, memory_sink, jsonl_path, ledger, plane, owned)``."""
    ledger = None
    plane = None
    if req.status_port is not None:
        from .obs import MetricsPlane, RunLedger

        ledger = RunLedger()
        plane = MetricsPlane()  # streaming percentiles + health, for /metrics
    if isinstance(req.telemetry, Telemetry):
        if ledger is not None:
            req.telemetry.sinks.append(ledger)
        if plane is not None:
            req.telemetry.sinks.append(plane)
            plane.bind(req.telemetry)
        return req.telemetry, None, None, ledger, plane, False
    want = (
        bool(req.telemetry)
        or req.events_path is not None
        or req.trace_out is not None
        or ledger is not None
    )
    if not want:
        return NULL_TELEMETRY, None, None, None, None, False
    target = req.events_path
    if target is None:
        target = req.run_dir if req.run_dir is not None else req.resume
    mem = InMemorySink()
    sinks = [mem]
    jsonl_path = None
    if target is not None:
        jsonl_path = Path(target)
        if jsonl_path.suffix != ".jsonl":
            jsonl_path = jsonl_path / "events.jsonl"
        jsonl_path.parent.mkdir(parents=True, exist_ok=True)
        sinks.append(JsonlSink(jsonl_path))
    if ledger is not None:
        sinks.append(ledger)
    tel = Telemetry(sinks=sinks)
    if plane is not None:
        tel.sinks.append(plane)  # Telemetry copies the sinks list
        plane.bind(tel)
    return tel, mem, jsonl_path, ledger, plane, True


# -- engine dispatch -------------------------------------------------------------
def _run_animation(req: RenderRequest, tel, label, spec, anim) -> RenderResult:
    from .pipeline import _render_animation

    if anim is None:
        anim = spec.build()
    on_frame = None
    if req.on_frame is not None or req.on_tile is not None:
        from .dfb import FrameEvent, TileEvent

        # The pipeline's native callback is (index, report, image); adapt
        # it to the unified streaming surface (one whole-frame "tile"
        # plus a frame event, same as a non-streaming farm run).
        def on_frame(f, report, image):
            if req.on_tile is not None:
                h, w = int(image.shape[0]), int(image.shape[1])
                req.on_tile(TileEvent(
                    frame=f, x0=0, y0=0, x1=w, y1=h,
                    pixels=image, frame_complete=True,
                ))
            if req.on_frame is not None:
                req.on_frame(FrameEvent(f, image, report))

    t0 = time.perf_counter()
    out = _render_animation(
        anim,
        grid_resolution=req.grid_resolution,
        shadow_coherence=req.shadow_coherence,
        samples_per_axis=req.samples_per_axis,
        chunk_size=req.chunk_size,
        on_frame=on_frame,
        telemetry=tel,
        workload=label,
    )
    return RenderResult(
        engine="animation",
        workload=label,
        n_frames=out.n_frames,
        wall_time=time.perf_counter() - t0,
        frames=LazyFrames(out.frames),
        stats=out.stats,
        mode="shadow-coherent" if req.shadow_coherence else "coherent",
        reports=out.reports,
        sequences=out.sequences,
        per_sequence_stats=out.per_sequence_stats,
        shadow_rays_saved=out.shadow_rays_saved,
        n_tasks=len(out.sequences),
    )


def _run_farm(req: RenderRequest, tel, label, spec, preview=None) -> RenderResult:
    from .runtime import LocalRenderFarm

    farm = LocalRenderFarm(
        spec,
        n_workers=req.n_workers,
        mode=req.mode,
        executor=req.executor,
        schedule=req.schedule,
        transport=req.transport,
        net_die_after=req.net_die_after,
        net_die_after_frames=req.net_die_after_frames,
        blackbox_dir=req.blackbox_dir,
        segment_frames=req.segment_frames,
        grid_resolution=req.grid_resolution,
        samples_per_axis=req.samples_per_axis,
        max_attempts=req.max_attempts,
        task_timeout=req.task_timeout,
        fault_plan=req.fault_plan,
        telemetry=tel,
        profile_dir=req.profile_dir,
        tile_px=req.tile_px,
        preview=preview,
        on_tile=req.on_tile,
        on_frame=req.on_frame,
    )
    t0 = time.perf_counter()
    out = farm.render(run_dir=req.run_dir, resume=req.resume)
    wall = time.perf_counter() - t0
    identical = None
    if req.verify:
        reference = farm.render_reference()
        identical = bool(np.array_equal(out.frames, reference.frames))
    recovery = {
        "retries": out.n_retries,
        "timeouts": out.n_timeouts,
        "crashes": out.n_crashes,
        "invalid": out.n_invalid,
        "degraded": out.n_degraded,
    }
    # The farm's final stack is pool-acquired (dfb take_frames); wiring
    # the pool back in lets frames.release() recycle it once consumed —
    # a long-running service re-renders same-shaped jobs allocation-free.
    from .buffers import default_pool

    out_frames = out.frames
    return RenderResult(
        engine="farm",
        workload=label,
        n_frames=out.n_frames,
        wall_time=wall,
        frames=LazyFrames(out_frames, releaser=lambda: default_pool().release(out_frames)),
        stats=out.stats,
        mode=out.mode,
        n_tasks=out.n_tasks,
        n_workers=farm.n_workers,
        recovery=recovery,
        n_from_checkpoint=out.n_from_checkpoint,
        bit_identical=identical,
    )


def _run_simulate(req: RenderRequest, tel, label, spec, anim) -> RenderResult:
    from .cluster import ncsu_testbed
    from .parallel import (
        AnimationCostOracle,
        build_oracle,
        simulate_frame_division_fc,
        simulate_frame_division_fc_fault_tolerant,
        simulate_frame_division_nofc,
        simulate_hybrid_fc,
        simulate_sequence_division_fc,
        simulate_sequence_division_fc_fault_tolerant,
        simulate_sequence_division_nofc,
        simulate_single_processor,
    )

    oracle = req.oracle
    if isinstance(oracle, (str, Path)):
        oracle = AnimationCostOracle.load(oracle)
    elif oracle is None:
        if anim is None:
            anim = spec.build()
        oracle = build_oracle(anim, grid_resolution=req.grid_resolution)
    machines = req.machines if req.machines is not None else ncsu_testbed()
    if not machines:
        raise ValueError("engine='simulate' needs at least one machine")

    common = {"sec_per_work_unit": req.sec_per_work_unit, "telemetry": tel}
    ft = {"failures": req.failures, "worker_timeout": req.worker_timeout}
    dispatch = {
        "single": lambda: simulate_single_processor(oracle, machines[0], **common),
        "single-fc": lambda: simulate_single_processor(
            oracle, machines[0], use_coherence=True, **common
        ),
        "frame-division-nofc": lambda: simulate_frame_division_nofc(
            oracle, machines, **common
        ),
        "sequence-division-nofc": lambda: simulate_sequence_division_nofc(
            oracle, machines, **common
        ),
        "sequence-division-fc": lambda: simulate_sequence_division_fc(
            oracle, machines, **common
        ),
        "frame-division-fc": lambda: simulate_frame_division_fc(oracle, machines, **common),
        "hybrid-fc": lambda: simulate_hybrid_fc(oracle, machines, **common),
        "frame-division-fc-ft": lambda: simulate_frame_division_fc_fault_tolerant(
            oracle, machines, **common, **ft
        ),
        "sequence-division-fc-ft": lambda: simulate_sequence_division_fc_fault_tolerant(
            oracle, machines, **common, **ft
        ),
    }
    try:
        run = dispatch[req.strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {req.strategy!r}; expected one of {list(SIM_STRATEGIES)}"
        ) from None
    t0 = time.perf_counter()
    outcome = run()
    if req.on_frame is not None:
        from .dfb import FrameEvent

        # Simulated frames have no pixels; the unified surface still
        # reports per-frame completion (image None), so progress UIs
        # work unchanged against a simulation.
        for f in range(oracle.n_frames):
            req.on_frame(FrameEvent(f, None))
    return RenderResult(
        engine="simulate",
        workload=label,
        n_frames=oracle.n_frames,
        wall_time=time.perf_counter() - t0,
        mode=req.strategy,
        n_tasks=0,
        n_workers=len(machines) if not req.strategy.startswith("single") else 1,
        outcome=outcome,
    )


def render(request: RenderRequest | None = None, /, **kwargs) -> RenderResult:
    """Run ``request`` on its chosen engine and return a :class:`RenderResult`.

    Accepts either a prebuilt :class:`RenderRequest`, keyword arguments for
    one, or both (keywords override request fields)::

        render(workload="brick", engine="animation", n_frames=4)
    """
    if request is None:
        request = RenderRequest(**kwargs)
    elif kwargs:
        request = replace(request, **kwargs)
    if request.engine not in ENGINES:
        raise ValueError(f"unknown engine {request.engine!r}; expected one of {ENGINES}")

    label, spec, anim = _resolve_workload(request)
    tel, mem, jsonl_path, ledger, plane, owned = _setup_telemetry(request)
    if request.engine == "farm" and request.blackbox_dir is None:
        # Black boxes default into the run directory (or beside the event
        # log) so a post-mortem finds dump and trace in one place.
        bb = request.run_dir
        if bb is None and jsonl_path is not None:
            bb = jsonl_path.parent
        if bb is not None:
            request = replace(request, blackbox_dir=bb)
    server = None
    preview = None
    if ledger is not None:
        from .obs import StatusServer

        routes = {}
        if plane is not None:
            # Prometheus text exposition: streaming task-latency
            # percentiles and per-worker health, live during the run.
            routes["/metrics"] = plane.route
        if request.engine == "farm":
            from .dfb import PreviewHub

            # /preview serves the partially composited frame while a
            # streaming (TCP) farm run is live; until the farm attaches
            # its assembler the endpoint reports {"available": false}.
            preview = PreviewHub()
            routes["/preview"] = preview.route
        server = StatusServer(ledger, port=int(request.status_port), routes=routes)
        server.start()
    try:
        if request.engine == "animation":
            result = _run_animation(request, tel, label, spec, anim)
        elif request.engine == "farm":
            result = _run_farm(request, tel, label, spec, preview=preview)
        else:
            result = _run_simulate(request, tel, label, spec, anim)
    finally:
        if server is not None:
            server.stop()
        if owned:
            tel.close()
        else:
            # Borrowed Telemetry: detach the sinks we hung on it.
            for sink in (ledger, plane):
                if sink is not None:
                    try:
                        request.telemetry.sinks.remove(sink)
                    except ValueError:
                        pass
    if mem is not None:
        result.events = list(mem.events)
    result.events_path = jsonl_path
    if request.trace_out is not None and result.events:
        from .obs import write_chrome_trace

        run_id = next((r.get("run") for r in result.events if r.get("run")), "")
        write_chrome_trace(result.events, request.trace_out, run_id=str(run_id or ""))
        result.trace_path = Path(request.trace_out)
    return result
