"""Light sources."""

from .lights import PointLight, fibonacci_sphere

__all__ = ["PointLight", "fibonacci_sphere"]
