"""Light sources.

The paper's renderer (POV-Ray 3.0) uses point lights with shadow tests; we
implement point lights with optional distance attenuation plus an ambient
term carried by the scene.  Each light can answer, for a batch of shading
points, the direction/distance of its shadow rays — the renderer fires those
as first-class rays so they are counted in the statistics and marked in the
coherence voxel map, exactly as the paper describes ("for a given pixel,
numerous rays may be generated, including ... shadow rays").

POV 3.0's ``area_light`` soft shadows are supported as spherical emitters:
a light with ``radius > 0`` and ``n_samples > 1`` fires one shadow ray per
deterministic sample point on the emitter surface and averages the
attenuations — penumbrae at ``n_samples`` times the shadow-ray cost, with
all rays counted and voxel-marked as usual.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PointLight", "fibonacci_sphere"]


def fibonacci_sphere(n: int) -> np.ndarray:
    """``n`` deterministic, roughly uniform unit vectors (golden spiral)."""
    if n < 1:
        raise ValueError("need at least one sample")
    i = np.arange(n, dtype=np.float64)
    phi = np.pi * (3.0 - np.sqrt(5.0)) * i
    y = 1.0 - 2.0 * (i + 0.5) / n
    r = np.sqrt(np.maximum(0.0, 1.0 - y * y))
    return np.stack([r * np.cos(phi), y, r * np.sin(phi)], axis=-1)


@dataclass
class PointLight:
    """An isotropic emitter: a point, or a sphere for soft shadows.

    Attributes
    ----------
    position : (3,) world position
    color : (3,) RGB intensity
    fade_distance, fade_power:
        POV-style attenuation: at distance d the intensity is scaled by
        ``2 / (1 + (d / fade_distance)**fade_power)`` when enabled
        (``fade_distance > 0``); no attenuation otherwise.
    radius, n_samples:
        Soft-shadow emitter size and shadow-sample count; a light is *soft*
        when both ``radius > 0`` and ``n_samples > 1``.
    """

    position: np.ndarray
    color: np.ndarray
    fade_distance: float = 0.0
    fade_power: float = 2.0
    radius: float = 0.0
    n_samples: int = 1
    name: str | None = None

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64).reshape(3)
        self.color = np.asarray(self.color, dtype=np.float64).reshape(3)
        if np.any(self.color < 0):
            raise ValueError("light color must be non-negative")
        if self.fade_distance < 0:
            raise ValueError("fade_distance must be >= 0")
        if self.radius < 0:
            raise ValueError("radius must be >= 0")
        if self.n_samples < 1:
            raise ValueError("n_samples must be >= 1")

    @property
    def is_soft(self) -> bool:
        return self.radius > 0.0 and self.n_samples > 1

    def sample_positions(self) -> np.ndarray:
        """Emitter sample points, ``(n_samples, 3)`` (one point if hard)."""
        if not self.is_soft:
            return self.position[None, :]
        return self.position + self.radius * fibonacci_sphere(self.n_samples)

    def shadow_rays(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Directions (unit) and distances from shading points to the light
        center (the central ray used for the diffuse/specular geometry)."""
        to_light = self.position - np.asarray(points, dtype=np.float64)
        dist = np.linalg.norm(to_light, axis=-1)
        safe = np.where(dist > 0, dist, 1.0)
        return to_light / safe[..., None], dist

    def shadow_rays_to(self, points: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Directions and distances toward one emitter sample point."""
        to_light = np.asarray(target, dtype=np.float64) - np.asarray(points, dtype=np.float64)
        dist = np.linalg.norm(to_light, axis=-1)
        safe = np.where(dist > 0, dist, 1.0)
        return to_light / safe[..., None], dist

    def intensity_at(self, dist: np.ndarray) -> np.ndarray:
        """Per-point RGB intensity after attenuation, shape ``(N, 3)``."""
        dist = np.asarray(dist, dtype=np.float64)
        if self.fade_distance <= 0.0:
            return np.broadcast_to(self.color, dist.shape + (3,)).copy()
        f = 2.0 / (1.0 + (dist / self.fade_distance) ** self.fade_power)
        return np.clip(f, 0.0, 1.0)[..., None] * self.color
