"""A minimal PNG encoder for the ``/preview`` endpoint (stdlib only).

The preview serves a partially-composited framebuffer to a browser or a
``curl`` poll; a real image codec dependency is not worth that.  This
writes the simplest legal PNG: 8-bit RGB, no interlace, every scanline
filtered with filter type 0 (None), one zlib-compressed IDAT chunk.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

__all__ = ["encode_png"]

_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _chunk(tag: bytes, data: bytes) -> bytes:
    return (
        struct.pack("!I", len(data))
        + tag
        + data
        + struct.pack("!I", zlib.crc32(tag + data) & 0xFFFFFFFF)
    )


def encode_png(image: np.ndarray) -> bytes:
    """Encode an ``(H, W, 3)`` float (0..1) or uint8 array as PNG bytes."""
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got shape {image.shape}")
    if image.dtype != np.uint8:
        image = (np.clip(image, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    height, width = image.shape[:2]
    # Filter byte 0 ("None") in front of every scanline.
    raw = np.empty((height, 1 + width * 3), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = image.reshape(height, width * 3)
    ihdr = struct.pack("!IIBBBBB", width, height, 8, 2, 0, 0, 0)
    return b"".join(
        (
            _SIGNATURE,
            _chunk(b"IHDR", ihdr),
            _chunk(b"IDAT", zlib.compress(raw.tobytes(), 6)),
            _chunk(b"IEND", b""),
        )
    )
