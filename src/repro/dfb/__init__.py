"""``repro.dfb`` — the distributed framebuffer.

The paper's farm ships each sub-area back as one monolithic RESULT, so
the first pixel lands only when the *last* pixel of a segment is done and
result frames dominate the wire.  "Scalable Ray Tracing Using the
Distributed FrameBuffer" points the way out: workers stream fixed-size
**tiles** as they finish and the master composites them incrementally.

This module is the transport-agnostic half of that design:

* :func:`tile_rects` — the one deterministic tiling both sides share, so
  a worker's tile boundaries always match the master's bookkeeping.
* :class:`FrameBuffer` — one frame's compositor: pixels + coverage mask,
  idempotent under duplicate tiles.
* :class:`FrameAssembler` — the per-run compositor the master folds every
  tile *and* every whole-segment result into.  Completion is tracked per
  pixel, so when a worker dies mid-segment the scheduler re-renders only
  the frames that are actually missing (see
  ``SchedulingPolicy.on_partial_result``), and ``covered_tiles`` tells
  the replacement worker which tiles it can skip outright.
* :class:`PreviewHub` — the live window: a StatusServer route serving the
  partially-composited frame as JSON metadata, PNG, or npz.

Everything here is pure numpy + stdlib and fully thread-safe: the
master's event loop writes while the preview HTTP thread reads.
"""

from __future__ import annotations

import io
import threading
from dataclasses import dataclass, field

import numpy as np

from ..buffers import BufferPool, default_pool
from .png import encode_png

__all__ = [
    "tile_rects",
    "FrameBuffer",
    "FrameAssembler",
    "PreviewHub",
    "TileEvent",
    "FrameEvent",
    "encode_png",
]

#: Default tile edge in pixels.  32x32x3 float64 = 24 KB raw — small
#: enough that a tile frame is within an order of magnitude of a
#: heartbeat, large enough that framing overhead stays negligible.
DEFAULT_TILE_PX = 32


@dataclass(frozen=True)
class TileEvent:
    """One composited tile, as delivered to ``on_tile`` callbacks."""

    frame: int
    x0: int
    y0: int
    x1: int
    y1: int
    pixels: np.ndarray  #: (y1-y0, x1-x0, 3) float64, bit-exact
    worker: str = ""
    frame_complete: bool = False


@dataclass(frozen=True)
class FrameEvent:
    """A fully-composited frame, as delivered to ``on_frame`` callbacks.

    ``image`` is ``None`` for engines that never materialize pixels (the
    cluster simulator); ``report`` carries the per-frame
    :class:`~repro.pipeline.FrameReport` when the engine produces one
    (the animation engine does; the farm's per-frame reports are
    aggregate-only and arrive as ``None``).
    """

    frame: int
    image: np.ndarray | None
    report: object | None = None


def tile_rects(x0: int, y0: int, x1: int, y1: int, tile_px: int):
    """Yield ``(tx0, ty0, tx1, ty1)`` tiles covering the box, row-major.

    The grid is anchored at the *image* origin, not the box origin, so
    two workers assigned adjacent boxes produce compatible tile keys.
    Edge tiles are clipped to the box.
    """
    if tile_px <= 0:
        raise ValueError(f"tile_px must be positive, got {tile_px}")
    ty = (y0 // tile_px) * tile_px
    while ty < y1:
        tx = (x0 // tile_px) * tile_px
        while tx < x1:
            yield (max(tx, x0), max(ty, y0), min(tx + tile_px, x1), min(ty + tile_px, y1))
            tx += tile_px
        ty += tile_px


class FrameBuffer:
    """One frame of the distributed framebuffer: pixels plus coverage.

    ``add_tile`` is idempotent — a duplicate delivery (worker retried, or
    a tile raced its worker's loss) overwrites with identical pixels and
    reports zero newly-covered pixels.

    The pixel plane comes from a :class:`~repro.buffers.BufferPool` when
    one is passed: the compositor owns that buffer's lifetime and must
    hand it back via :meth:`release` once the pixels have been copied
    out (``FrameAssembler.take_frames`` does).
    """

    __slots__ = ("height", "width", "image", "covered", "_pool")

    def __init__(self, height: int, width: int, pool: BufferPool | None = None):
        self.height = int(height)
        self.width = int(width)
        self._pool = pool
        if pool is not None:
            self.image = pool.acquire((self.height, self.width, 3), np.float64, zero=True)
        else:
            self.image = np.zeros((self.height, self.width, 3), dtype=np.float64)
        self.covered = np.zeros((self.height, self.width), dtype=bool)

    def release(self) -> None:
        """Return the pixel plane to the pool; the buffer must no longer
        be read through ``image`` afterwards (it will be recycled)."""
        image, self.image = self.image, None
        if self._pool is not None and image is not None:
            self._pool.release(image)

    def add_tile(self, x0: int, y0: int, x1: int, y1: int, pixels: np.ndarray) -> int:
        """Composite one tile; returns the count of newly-covered pixels."""
        if not (0 <= x0 < x1 <= self.width and 0 <= y0 < y1 <= self.height):
            raise ValueError(
                f"tile ({x0},{y0})-({x1},{y1}) outside {self.width}x{self.height} frame"
            )
        pixels = np.asarray(pixels, dtype=np.float64)
        if pixels.shape != (y1 - y0, x1 - x0, 3):
            raise ValueError(
                f"tile pixels shape {pixels.shape} != {(y1 - y0, x1 - x0, 3)}"
            )
        newly = int((y1 - y0) * (x1 - x0) - np.count_nonzero(self.covered[y0:y1, x0:x1]))
        self.image[y0:y1, x0:x1] = pixels
        self.covered[y0:y1, x0:x1] = True
        return newly

    @property
    def complete(self) -> bool:
        return bool(self.covered.all())

    def coverage(self) -> float:
        return float(np.count_nonzero(self.covered)) / float(self.covered.size)

    def box_complete(self, x0: int, y0: int, x1: int, y1: int) -> bool:
        return bool(self.covered[y0:y1, x0:x1].all())


class FrameAssembler:
    """The run-wide compositor: every frame's :class:`FrameBuffer`.

    The master folds streamed tiles (``add_tile``) and whole-segment
    results from pre-tile workers (``add_segment``) into the same state,
    so final assembly, loss salvage, and the live preview are uniform
    regardless of which workers streamed.  All methods are thread-safe.
    """

    def __init__(
        self,
        n_frames: int,
        width: int,
        height: int,
        pool: BufferPool | None = None,
    ):
        self.n_frames = int(n_frames)
        self.width = int(width)
        self.height = int(height)
        # Per-frame composite planes come from the buffer pool (the
        # process-wide one unless a private pool is passed), and go back
        # to it in take_frames()/release() — repeated runs recycle the
        # same memory instead of reallocating every framebuffer.
        self.pool = default_pool() if pool is None else pool
        self._frames = [
            FrameBuffer(height, width, pool=self.pool) for _ in range(self.n_frames)
        ]
        self._lock = threading.Lock()
        self._released = False
        self.n_tiles = 0  #: tiles folded in (duplicates included)

    def _box(self, box) -> tuple[int, int, int, int]:
        if box is None:
            return (0, 0, self.width, self.height)
        x0, y0, x1, y1 = (int(v) for v in box)
        return (x0, y0, x1, y1)

    def _check_frame(self, frame: int) -> int:
        frame = int(frame)
        if not 0 <= frame < self.n_frames:
            raise ValueError(f"frame {frame} outside [0, {self.n_frames})")
        return frame

    def add_tile(
        self, frame: int, x0: int, y0: int, x1: int, y1: int, pixels: np.ndarray
    ) -> tuple[int, bool]:
        """Fold one tile in; returns ``(newly_covered, frame_complete)``."""
        frame = self._check_frame(frame)
        with self._lock:
            self._check_live()
            fb = self._frames[frame]
            newly = fb.add_tile(int(x0), int(y0), int(x1), int(y1), pixels)
            self.n_tiles += 1
            return newly, fb.complete

    def add_segment(self, box, frame0: int, frame1: int, frames: np.ndarray) -> None:
        """Fold a whole-segment result (pre-tile worker, or local task).

        ``frames`` is ``(n, h, w, 3)`` for the box, or the flat
        ``(n, h*w, 3)`` row-major layout the render task ships.
        """
        x0, y0, x1, y1 = self._box(box)
        h, w = y1 - y0, x1 - x0
        frames = np.asarray(frames, dtype=np.float64)
        n = int(frame1) - int(frame0)
        if frames.shape == (n, h * w, 3):
            frames = frames.reshape(n, h, w, 3)
        elif frames.shape != (n, h, w, 3):
            raise ValueError(
                f"segment frames shape {frames.shape} fits neither "
                f"{(n, h * w, 3)} nor {(n, h, w, 3)}"
            )
        with self._lock:
            self._check_live()
            for i in range(n):
                self._frames[self._check_frame(frame0 + i)].add_tile(
                    x0, y0, x1, y1, frames[i]
                )

    def box_complete(self, box, frame: int) -> bool:
        x0, y0, x1, y1 = self._box(box)
        with self._lock:
            return self._frames[self._check_frame(frame)].box_complete(x0, y0, x1, y1)

    def range_complete(self, box, frame0: int, frame1: int) -> bool:
        x0, y0, x1, y1 = self._box(box)
        with self._lock:
            return all(
                self._frames[self._check_frame(f)].box_complete(x0, y0, x1, y1)
                for f in range(int(frame0), int(frame1))
            )

    def frames_done(self, box, frame0: int, frame1: int) -> int:
        """Leading fully-complete frames of ``[frame0, frame1)`` for the
        box — the salvage count when that range's worker is lost."""
        x0, y0, x1, y1 = self._box(box)
        done = int(frame0)
        with self._lock:
            for f in range(int(frame0), int(frame1)):
                if not self._frames[self._check_frame(f)].box_complete(x0, y0, x1, y1):
                    break
                done = f + 1
        return done

    def covered_tiles(self, box, frame0: int, frame1: int, tile_px: int) -> list:
        """Tile keys already composited for the box — the skip-list sent
        to a replacement worker so it re-renders only what is missing."""
        x0, y0, x1, y1 = self._box(box)
        skip = []
        with self._lock:
            for f in range(int(frame0), int(frame1)):
                fb = self._frames[self._check_frame(f)]
                for tx0, ty0, tx1, ty1 in tile_rects(x0, y0, x1, y1, tile_px):
                    if fb.box_complete(tx0, ty0, tx1, ty1):
                        skip.append((f, tx0, ty0, tx1, ty1))
        return skip

    @property
    def n_complete(self) -> int:
        with self._lock:
            return sum(1 for fb in self._frames if fb.complete)

    @property
    def complete(self) -> bool:
        return self.n_complete == self.n_frames

    def _check_live(self) -> None:
        if self._released:
            raise RuntimeError("framebuffer already released its composite buffers")

    def frames(self) -> np.ndarray:
        """The final ``(n_frames, H, W, 3)`` stack; raises if incomplete."""
        with self._lock:
            self._check_live()
            missing = [f for f, fb in enumerate(self._frames) if not fb.complete]
            if missing:
                raise RuntimeError(
                    f"framebuffer incomplete: frames {missing[:8]}"
                    f"{'...' if len(missing) > 8 else ''} have uncovered pixels"
                )
            return np.stack([fb.image for fb in self._frames])

    def take_frames(self) -> np.ndarray:
        """:meth:`frames`, then hand every composite buffer back to the
        pool.  The returned stack is the caller's own storage (the one
        copy final assembly always was) but is itself pool-acquired, so
        a caller done with the pixels can release it back (see
        :meth:`repro.api.LazyFrames.release`) and a steady-state service
        re-renders same-shaped jobs without fresh stack allocations.
        The assembler is spent afterwards."""
        with self._lock:
            self._check_live()
            missing = [f for f, fb in enumerate(self._frames) if not fb.complete]
            if missing:
                raise RuntimeError(
                    f"framebuffer incomplete: frames {missing[:8]}"
                    f"{'...' if len(missing) > 8 else ''} have uncovered pixels"
                )
            out = self.pool.acquire(
                (len(self._frames), self.height, self.width, 3), np.float64
            )
            for i, fb in enumerate(self._frames):
                out[i] = fb.image
            self._released = True
            for fb in self._frames:
                fb.release()
        return out

    def release(self) -> None:
        """Return all composite buffers to the pool; idempotent.  The
        assembler refuses pixel reads afterwards (coverage bookkeeping
        for late salvage queries stays valid)."""
        with self._lock:
            if self._released:
                return
            self._released = True
            for fb in self._frames:
                fb.release()

    def frame_image(self, frame: int) -> np.ndarray:
        with self._lock:
            self._check_live()
            return self._frames[self._check_frame(frame)].image.copy()

    def preview(self, frame: int | None = None) -> tuple[int, np.ndarray, float]:
        """A snapshot for the live view: ``(frame, image copy, coverage)``.

        With ``frame=None`` picks the busiest incomplete frame (most
        coverage short of 100%), falling back to the last complete one —
        the frame a watcher most wants to see filling in.
        """
        with self._lock:
            self._check_live()
            if frame is None:
                partial = [
                    (fb.coverage(), f)
                    for f, fb in enumerate(self._frames)
                    if 0.0 < fb.coverage() < 1.0
                ]
                if partial:
                    frame = max(partial)[1]
                else:
                    complete = [f for f, fb in enumerate(self._frames) if fb.complete]
                    frame = complete[-1] if complete else 0
            frame = self._check_frame(frame)
            fb = self._frames[frame]
            return frame, fb.image.copy(), fb.coverage()


@dataclass
class PreviewHub:
    """The ``/preview`` endpoint's state: whichever run is live right now.

    A hub outlives individual runs — the StatusServer mounts ``route``
    once, and each render attaches its assembler on the way in.  Query
    parameters: ``fmt`` (``json`` | ``png`` | ``npz``, default json) and
    ``frame`` (index; default: the frame currently filling in).
    """

    assembler: FrameAssembler | None = None
    meta: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def attach(self, assembler: FrameAssembler, **meta) -> None:
        with self._lock:
            self.assembler = assembler
            self.meta = dict(meta)

    def detach(self) -> None:
        with self._lock:
            self.assembler = None

    def route(self, query: dict):
        """StatusServer handler (``takes_query``): dict → JSON reply,
        ``(bytes, content_type)`` → raw body."""
        with self._lock:
            asm = self.assembler
            meta = dict(self.meta)
        if asm is None:
            return {"available": False}
        frame_q = query.get("frame")
        frame = int(frame_q) if frame_q not in (None, "") else None
        fmt = query.get("fmt", "json")
        try:
            frame, image, coverage = asm.preview(frame)
        except ValueError as exc:
            return {"available": True, "error": str(exc)}
        if fmt == "png":
            return encode_png(image), "image/png"
        if fmt == "npz":
            buf = io.BytesIO()
            np.savez_compressed(
                buf, frame=np.int64(frame), image=image, coverage=np.float64(coverage)
            )
            return buf.getvalue(), "application/octet-stream"
        if fmt != "json":
            return {"available": True, "error": f"unknown fmt {fmt!r}"}
        return {
            "available": True,
            "frame": frame,
            "coverage": round(coverage, 4),
            "frames_complete": asm.n_complete,
            "n_frames": asm.n_frames,
            "n_tiles": asm.n_tiles,
            "width": asm.width,
            "height": asm.height,
            **meta,
        }


# StatusServer feature probe: handlers with ``takes_query`` get the parsed
# query-string dict (bound-method attribute lookup delegates to __func__).
PreviewHub.route.takes_query = True
