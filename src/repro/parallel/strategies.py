"""The rendering strategies of Table 1, as simulated PVM programs.

Each ``simulate_*`` function builds the pure scheduling policy for its
Table-1 column (:mod:`repro.sched.core`) and replays it over the
discrete-event :class:`~repro.cluster.VirtualPVM` via
:class:`~repro.sched.sim.SimTransport`, pricing every assignment with
the animation's measured costs (from the
:class:`~repro.parallel.oracle.AnimationCostOracle`) and returning a
:class:`~repro.parallel.outcome.SimulationOutcome`.

Strategies:

* :func:`simulate_single_processor` — Table 1 columns (1)/(2);
* :func:`simulate_frame_division_nofc` — columns (4)/(5): 80x80 blocks of
  each frame, demand-driven, no coherence;
* :func:`simulate_sequence_division_fc` — columns (6)/(7): contiguous
  subsequences with coherence, adaptively subdivided;
* :func:`simulate_frame_division_fc` — columns (8)/(9): 80x80 subareas for
  the whole sequence with per-block coherence, demand-driven + adaptive;
* :func:`simulate_sequence_division_nofc`, :func:`simulate_hybrid_fc` —
  ablations.

The master always runs on the first (fastest) machine and performs no
compute, only scheduling and file output; a worker runs on *every* machine,
including the master's — matching the paper's three-machine testbed.
The same policy objects drive the real multiprocessing farm through
:class:`~repro.sched.process.ProcessTransport`, which is what makes a
simulated schedule directly comparable to an executed one.
"""

from __future__ import annotations

from ..cluster import Machine, ThrashModel
from ..sched.core import Chain, make_policy, single_processor_policy
from ..sched.sim import (
    RunAccounting,
    SimTelemetry,
    SimTransport,
    outcome_from,
    spawn_farm,
    worker_program,
)
from .config import RenderFarmConfig
from .oracle import AnimationCostOracle
from .outcome import SimulationOutcome
from .partition import PixelRegion, default_block_layout, sequence_ranges

__all__ = [
    "simulate_single_processor",
    "simulate_frame_division_nofc",
    "simulate_sequence_division_nofc",
    "simulate_sequence_division_fc",
    "simulate_frame_division_fc",
    "simulate_hybrid_fc",
    "default_blocks",
]

# Back-compat aliases: fault_tolerance and external callers grew up on the
# underscore names this module used before the plumbing moved to repro.sched.
_Chain = Chain
_SimTelemetry = SimTelemetry
_RunAccounting = RunAccounting
_spawn_farm = spawn_farm
_worker_program = worker_program
_outcome = outcome_from


def default_blocks(oracle: AnimationCostOracle) -> list[PixelRegion]:
    """The paper's 80x80-of-320x240 block layout, scaled to the oracle's
    resolution: a 4x3 grid of equal blocks."""
    return default_block_layout(oracle.width, oracle.height)


def effective_speed_weights(
    machines: list[Machine], cfg: RenderFarmConfig, oracle: AnimationCostOracle,
    thrash: ThrashModel | None,
) -> list[float]:
    """Raw speed divided by the expected thrash factor of a full-frame
    coherence chain — the paper's "matching the computation of a
    subproblem to the most appropriate processor" on a heterogeneous NOW."""
    th = thrash if thrash is not None else ThrashModel(alpha=0.0)
    ws = cfg.fc_working_set_mb(oracle.n_pixels)
    return [m.speed / th.slowdown(ws, m.memory_mb) for m in machines]


# -- Table 1 columns (1) and (2): single processor ------------------------------
def simulate_single_processor(
    oracle: AnimationCostOracle,
    machine: Machine,
    cfg: RenderFarmConfig | None = None,
    use_coherence: bool = False,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    telemetry=None,
) -> SimulationOutcome:
    """One renderer process computing and writing every frame in order."""
    cfg = cfg or RenderFarmConfig()
    name = "single+fc" if use_coherence else "single"
    policy = single_processor_policy(oracle.n_frames, use_coherence=use_coherence)
    transport = SimTransport(
        policy,
        oracle,
        [machine],
        cfg,
        label=name,
        sec_per_work_unit=sec_per_work_unit,
        thrash=thrash,
        telemetry=telemetry,
        single=True,
    )
    return transport.run()


# -- Table 1 columns (4)/(5): distributed, no coherence -------------------------
def simulate_frame_division_nofc(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig | None = None,
    regions: list[PixelRegion] | None = None,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    trace: bool = False,
    telemetry=None,
    **ethernet_kwargs,
) -> SimulationOutcome:
    """Each frame subdivided into blocks "distributed to the machines as
    they request them" — pure demand-driven, every task full cost."""
    cfg = cfg or RenderFarmConfig()
    regions = regions if regions is not None else default_blocks(oracle)
    policy = make_policy("frame-division-nofc", oracle.n_frames, n_regions=len(regions))
    transport = SimTransport(
        policy,
        oracle,
        machines,
        cfg,
        regions=regions,
        label="frame-division",
        sec_per_work_unit=sec_per_work_unit,
        thrash=thrash,
        trace=trace,
        telemetry=telemetry,
        **ethernet_kwargs,
    )
    return transport.run()


# -- Table 1 columns (6)/(7): sequence division + coherence ----------------------
def simulate_sequence_division_fc(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig | None = None,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    trace: bool = False,
    telemetry=None,
    **ethernet_kwargs,
) -> SimulationOutcome:
    """Whole-frame subsequences per processor, coherence inside each,
    adaptively subdivided to keep all processors busy.

    Initial ranges are weighted by *effective* speed — raw speed divided by
    the expected thrash factor of a full-frame coherence chain — the paper's
    "matching the computation of a subproblem to the most appropriate
    processor" on a heterogeneous NOW.
    """
    cfg = cfg or RenderFarmConfig()
    weights = effective_speed_weights(machines, cfg, oracle, thrash)
    ranges = sequence_ranges(oracle.n_frames, len(machines), weights=weights)
    policy = make_policy(
        "sequence-division-fc",
        oracle.n_frames,
        sequence_ranges=ranges,
        min_steal_frames=cfg.min_steal_frames,
    )
    transport = SimTransport(
        policy,
        oracle,
        machines,
        cfg,
        label="sequence-division+fc",
        sec_per_work_unit=sec_per_work_unit,
        thrash=thrash,
        trace=trace,
        telemetry=telemetry,
        **ethernet_kwargs,
    )
    return transport.run()


def simulate_sequence_division_nofc(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig | None = None,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    trace: bool = False,
    telemetry=None,
    **ethernet_kwargs,
) -> SimulationOutcome:
    """Ablation: subsequence assignment without coherence."""
    cfg = cfg or RenderFarmConfig()
    ranges = sequence_ranges(
        oracle.n_frames, len(machines), weights=[m.speed for m in machines]
    )
    policy = make_policy(
        "sequence-division-nofc",
        oracle.n_frames,
        sequence_ranges=ranges,
        min_steal_frames=cfg.min_steal_frames,
    )
    transport = SimTransport(
        policy,
        oracle,
        machines,
        cfg,
        label="sequence-division",
        sec_per_work_unit=sec_per_work_unit,
        thrash=thrash,
        trace=trace,
        telemetry=telemetry,
        **ethernet_kwargs,
    )
    return transport.run()


# -- Table 1 columns (8)/(9): frame division + coherence -------------------------
def simulate_frame_division_fc(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig | None = None,
    regions: list[PixelRegion] | None = None,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    trace: bool = False,
    telemetry=None,
    **ethernet_kwargs,
) -> SimulationOutcome:
    """80x80 subareas computed "for the entire 45 frames, or until the
    sequence was adaptively subdivided": per-block coherence chains,
    demand-driven block assignment, time-axis stealing for stragglers."""
    cfg = cfg or RenderFarmConfig()
    regions = regions if regions is not None else default_blocks(oracle)
    policy = make_policy(
        "frame-division-fc",
        oracle.n_frames,
        n_regions=len(regions),
        min_steal_frames=cfg.min_steal_frames,
    )
    transport = SimTransport(
        policy,
        oracle,
        machines,
        cfg,
        regions=regions,
        label="frame-division+fc",
        sec_per_work_unit=sec_per_work_unit,
        thrash=thrash,
        trace=trace,
        telemetry=telemetry,
        **ethernet_kwargs,
    )
    return transport.run()


# -- ablation: hybrid (subarea x subsequence) -----------------------------------
def simulate_hybrid_fc(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig | None = None,
    regions: list[PixelRegion] | None = None,
    frames_per_chunk: int = 10,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    trace: bool = False,
    telemetry=None,
    **ethernet_kwargs,
) -> SimulationOutcome:
    """The paper's hybrid: "each processor computes pixels in a subarea of a
    frame for a subsequence of the entire animation"."""
    cfg = cfg or RenderFarmConfig()
    regions = regions if regions is not None else default_blocks(oracle)
    policy = make_policy(
        "hybrid-fc",
        oracle.n_frames,
        n_regions=len(regions),
        frames_per_chunk=frames_per_chunk,
        min_steal_frames=cfg.min_steal_frames,
    )
    transport = SimTransport(
        policy,
        oracle,
        machines,
        cfg,
        regions=regions,
        label="hybrid+fc",
        sec_per_work_unit=sec_per_work_unit,
        thrash=thrash,
        trace=trace,
        telemetry=telemetry,
        **ethernet_kwargs,
    )
    return transport.run()
