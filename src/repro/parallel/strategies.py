"""The rendering strategies of Table 1, as simulated PVM programs.

Each ``simulate_*`` function stands up a :class:`~repro.cluster.VirtualPVM`
with a master task (which owns the strategy's scheduling policy and writes
finished frames to disk) and one generic worker task per machine, replays
the animation's measured costs (from the
:class:`~repro.parallel.oracle.AnimationCostOracle`) through it, and
returns a :class:`~repro.parallel.outcome.SimulationOutcome`.

Strategies:

* :func:`simulate_single_processor` — Table 1 columns (1)/(2);
* :func:`simulate_frame_division_nofc` — columns (4)/(5): 80x80 blocks of
  each frame, demand-driven, no coherence;
* :func:`simulate_sequence_division_fc` — columns (6)/(7): contiguous
  subsequences with coherence, adaptively subdivided;
* :func:`simulate_frame_division_fc` — columns (8)/(9): 80x80 subareas for
  the whole sequence with per-block coherence, demand-driven + adaptive;
* :func:`simulate_sequence_division_nofc`, :func:`simulate_hybrid_fc` —
  ablations.

The master always runs on the first (fastest) machine and performs no
compute, only scheduling and file output; a worker runs on *every* machine,
including the master's — matching the paper's three-machine testbed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..cluster import Compute, Machine, Recv, Send, ThrashModel, VirtualPVM, WriteFile
from ..imageio import targa_nbytes
from ..telemetry import NULL as NULL_TELEMETRY
from ..telemetry import VirtualClock
from .config import RenderFarmConfig
from .oracle import AnimationCostOracle
from .outcome import SimulationOutcome
from .partition import PixelRegion, block_regions, sequence_ranges

__all__ = [
    "simulate_single_processor",
    "simulate_frame_division_nofc",
    "simulate_sequence_division_nofc",
    "simulate_sequence_division_fc",
    "simulate_frame_division_fc",
    "simulate_hybrid_fc",
    "default_blocks",
]


def default_blocks(oracle: AnimationCostOracle) -> list[PixelRegion]:
    """The paper's 80x80-of-320x240 block layout, scaled to the oracle's
    resolution: a 4x3 grid of equal blocks."""
    return block_regions(
        oracle.width,
        oracle.height,
        block_w=max(1, oracle.width // 4),
        block_h=max(1, oracle.height // 3),
    )


# -- shared plumbing ----------------------------------------------------------
class _SimTelemetry:
    """Bridges a strategy replay onto the pinned telemetry schema.

    Spans and events carry *virtual* timestamps (the telemetry clock is
    rebound to ``pvm.sim.now`` once the farm exists), but their names and
    attribute keys are exactly those of a real farm run — the property the
    schema-equality acceptance test pins down.  Masters stamp dispatch
    metadata into the task payload (``_t0``/``_rays``/...): payload contents
    don't affect the modeled message size (``reply_bytes`` is explicit), and
    the echo-back of the payload is what lets the master close the span.
    """

    def __init__(self, telemetry, oracle: AnimationCostOracle, mode: str):
        self.tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self.enabled = self.tel.enabled
        self.oracle = oracle
        self.mode = mode
        self.names: dict[int, str] = {}  # worker tid -> machine name
        self.tasks_of: dict[str, int] = {}
        self.frame_rays: dict[int, int] = {}
        self.frame_computed: dict[int, int] = {}
        self.kind_totals = np.zeros(4, dtype=np.int64)
        self.rays_total = 0
        self.computed_pixels = 0
        self.copied_pixels = 0
        self.n_tasks = 0

    def bind(self, pvm: VirtualPVM, machines: list[Machine], worker_tids: list[int]) -> None:
        if not self.enabled:
            return
        self.tel.use_clock(VirtualClock(lambda: pvm.sim.now))
        self.names = {tid: m.name for tid, m in zip(worker_tids, machines)}
        self.tel.event(
            "run.start",
            engine="sim",
            workload="oracle",
            n_frames=self.oracle.n_frames,
            width=self.oracle.width,
            height=self.oracle.height,
            n_workers=len(machines) if machines else 1,
            mode=self.mode,
        )

    def on_dispatch(
        self, payload: dict, frame: int, region_px: int, rays: int, n_computed: int, now: float
    ) -> None:
        if not self.enabled:
            return
        self.frame_rays[frame] = self.frame_rays.get(frame, 0) + int(rays)
        self.frame_computed[frame] = self.frame_computed.get(frame, 0) + int(n_computed)
        payload["_t0"] = now
        payload["_region_px"] = int(region_px)
        payload["_rays"] = int(rays)
        payload["_n_computed"] = int(n_computed)

    def on_done(self, src: int, payload: dict, now: float) -> None:
        if not self.enabled:
            return
        worker = self.names.get(src, f"tid{src}")
        self.n_tasks += 1
        self.tasks_of[worker] = self.tasks_of.get(worker, 0) + 1
        t0 = payload.get("_t0", now)
        self.tel.emit_span(
            "task",
            t0,
            now - t0,
            worker=worker,
            mode=self.mode,
            frame0=int(payload["frame"]),
            frame1=int(payload["frame"]) + 1,
            region=payload.get("_region_px", 0),
            rays=payload.get("_rays", 0),
            n_computed=payload.get("_n_computed", 0),
            attempt=0,
        )

    def frame_done(self, frame: int) -> None:
        if not self.enabled:
            return
        rays = self.frame_rays.get(frame, 0)
        computed = self.frame_computed.get(frame, 0)
        copied = max(0, self.oracle.n_pixels - computed)
        self.computed_pixels += computed
        self.copied_pixels += copied
        self.rays_total += rays
        kinds = self.oracle.kind_counts(frame, rays)
        if kinds is None:  # pre-kind-counts oracle: totals only
            kinds = np.zeros(4, dtype=np.int64)
        self.kind_totals += kinds
        self.tel.event(
            "frame",
            frame=frame,
            n_computed=computed,
            n_copied=copied,
            rays_camera=int(kinds[0]),
            rays_reflected=int(kinds[1]),
            rays_refracted=int(kinds[2]),
            rays_shadow=int(kinds[3]),
            rays_total=int(rays),
        )

    def recovery(self, kind: str, task: int, duration: float) -> None:
        if not self.enabled:
            return
        self.tel.event("recovery", kind=kind, task=int(task), attempt=0, duration=duration)
        self.tel.counter("recovery.events", 1)

    def finish(self, pvm: VirtualPVM, total_time: float) -> None:
        if not self.enabled:
            return
        busy_by_machine = pvm.cpu_busy_seconds()
        for worker in sorted(self.tasks_of):
            busy = busy_by_machine.get(worker, 0.0)
            self.tel.event(
                "worker",
                worker=worker,
                busy=busy,
                n_tasks=self.tasks_of[worker],
                utilization=(busy / total_time) if total_time > 0 else 0.0,
            )
        self.tel.event(
            "run.end",
            wall_time=total_time,
            computed_pixels=self.computed_pixels,
            copied_pixels=self.copied_pixels,
            n_tasks=self.n_tasks,
            n_workers=len(self.names) if self.names else 1,
            rays_camera=int(self.kind_totals[0]),
            rays_reflected=int(self.kind_totals[1]),
            rays_refracted=int(self.kind_totals[2]),
            rays_shadow=int(self.kind_totals[3]),
            rays_total=int(self.rays_total),
        )


@dataclass
class _RunAccounting:
    """Mutable counters the master updates while the simulation runs."""

    total_rays: int = 0
    total_units: float = 0.0
    n_chain_starts: int = 0
    n_steals: int = 0
    frame_done_at: dict[int, float] = field(default_factory=dict)


def _worker_program(master_tid: int) -> Iterator:
    """The generic slave: receive a task, compute it, return the result.

    The payload carries precomputed ``units`` (from the oracle) and the
    modelled working-set size; the worker is strategy-agnostic, exactly like
    the paper's slaves ("the slaves themselves do not need to communicate
    with each other").
    """
    while True:
        msg = yield Recv()
        if msg.tag == "stop":
            return
        p = msg.payload
        yield Compute(units=p["units"], working_set_mb=p["ws_mb"])
        yield Send(master_tid, p["reply_bytes"], payload=p, tag="done")


def _spawn_farm(
    machines: list[Machine],
    sec_per_work_unit: float,
    thrash: ThrashModel | None,
    master_factory,
    trace: bool = False,
    sim_tel: _SimTelemetry | None = None,
    **ethernet_kwargs,
) -> tuple[VirtualPVM, _RunAccounting]:
    """Wire up master + one worker per machine; master_factory(pvm, worker_tids, acct)."""
    pvm = VirtualPVM(
        machines, sec_per_work_unit=sec_per_work_unit, thrash=thrash, **ethernet_kwargs
    )
    pvm.tracing = bool(trace)
    acct = _RunAccounting()
    # Reserve tid 1 for the master so workers can address it: spawn order
    # matters, so create the master generator lazily after worker tids exist.
    # Trick: master tid is allocated first by spawning a placeholder-free
    # design — instead we spawn workers first and pass their tids in.
    worker_tids: list[int] = []
    master_tid_holder: list[int] = []

    def late_master():
        # Delegate to the strategy program once spawned.
        yield from master_factory(pvm, worker_tids, acct)

    # Workers address the master through its (future) tid; since tids are
    # assigned sequentially we can predict it: workers take 1..n, master n+1.
    predicted_master_tid = len(machines) + 1
    for m in machines:
        worker_tids.append(
            pvm.spawn(_worker_program(predicted_master_tid), m.name, name=f"worker-{m.name}")
        )
    mtid = pvm.spawn(late_master(), machines[0].name, name="master")
    master_tid_holder.append(mtid)
    if mtid != predicted_master_tid:  # defensive: spawn order is the contract
        raise RuntimeError("tid allocation changed; master address is stale")
    if sim_tel is not None:
        sim_tel.bind(pvm, machines, worker_tids)
    return pvm, acct


def _outcome(
    strategy: str,
    oracle: AnimationCostOracle,
    pvm: VirtualPVM,
    acct: _RunAccounting,
    total_time: float,
    first_frame_time: float | None = None,
    sim_tel: _SimTelemetry | None = None,
) -> SimulationOutcome:
    if sim_tel is not None:
        sim_tel.finish(pvm, total_time)
    timeline = None
    if pvm.tracing and pvm.events:
        from ..cluster import render_timeline

        timeline = render_timeline(pvm)
    return SimulationOutcome(
        strategy=strategy,
        n_frames=oracle.n_frames,
        total_time=total_time,
        first_frame_time=first_frame_time,
        frame_completion_times=dict(acct.frame_done_at),
        total_rays=acct.total_rays,
        total_units=acct.total_units,
        machine_busy_seconds=pvm.cpu_busy_seconds(),
        ethernet_busy_seconds=pvm.ethernet.busy_seconds,
        n_messages=pvm.ethernet.n_messages,
        bytes_on_wire=pvm.ethernet.bytes_carried,
        n_chain_starts=acct.n_chain_starts,
        n_steals=acct.n_steals,
        timeline=timeline,
    )


# -- Table 1 columns (1) and (2): single processor ------------------------------
def simulate_single_processor(
    oracle: AnimationCostOracle,
    machine: Machine,
    cfg: RenderFarmConfig | None = None,
    use_coherence: bool = False,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    telemetry=None,
) -> SimulationOutcome:
    """One renderer process computing and writing every frame in order."""
    cfg = cfg or RenderFarmConfig()
    pvm = VirtualPVM([machine], sec_per_work_unit=sec_per_work_unit, thrash=thrash)
    acct = _RunAccounting()
    frame_bytes = targa_nbytes(oracle.width, oracle.height)
    name = "single+fc" if use_coherence else "single"
    sim_tel = _SimTelemetry(telemetry, oracle, name)
    sim_tel.bind(pvm, [machine], [])
    sim_tel.names = {0: machine.name}  # the lone renderer is tid-less

    def renderer():
        for f in range(oracle.n_frames):
            if use_coherence:
                chain_start = f == 0
                if chain_start:
                    rays, n_computed = oracle.full_rays(f), oracle.n_pixels
                else:
                    rays, n_computed = oracle.coherent_rays(f)
                units = cfg.task_units(
                    rays, True, chain_start=chain_start, region_pixels=oracle.n_pixels
                )
                ws = cfg.fc_working_set_mb(oracle.n_pixels)
                if chain_start:
                    acct.n_chain_starts += 1
            else:
                rays = oracle.full_rays(f)
                n_computed = oracle.n_pixels
                units = cfg.task_units(rays, False)
                ws = cfg.nofc_working_set_mb(oracle.n_pixels)
            acct.total_rays += rays
            acct.total_units += units
            p = {"frame": f}
            sim_tel.on_dispatch(p, f, oracle.n_pixels, rays, n_computed, pvm.sim.now)
            yield Compute(units=units, working_set_mb=ws)
            if cfg.write_frames:
                yield WriteFile(frame_bytes)
            acct.frame_done_at[f] = pvm.sim.now
            sim_tel.on_done(0, p, pvm.sim.now)
            sim_tel.frame_done(f)

    pvm.spawn(renderer(), machine.name, name="renderer")
    end = pvm.run()
    return _outcome(
        name, oracle, pvm, acct, end, first_frame_time=acct.frame_done_at.get(0), sim_tel=sim_tel
    )


# -- Table 1 columns (4)/(5): distributed, no coherence -------------------------
def simulate_frame_division_nofc(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig | None = None,
    regions: list[PixelRegion] | None = None,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    trace: bool = False,
    telemetry=None,
    **ethernet_kwargs,
) -> SimulationOutcome:
    """Each frame subdivided into blocks "distributed to the machines as
    they request them" — pure demand-driven, every task full cost."""
    cfg = cfg or RenderFarmConfig()
    regions = regions if regions is not None else default_blocks(oracle)
    frame_bytes = targa_nbytes(oracle.width, oracle.height)
    region_pixels = [r.pixels for r in regions]
    sim_tel = _SimTelemetry(telemetry, oracle, "frame-division")

    def master_factory(pvm: VirtualPVM, worker_tids: list[int], acct: _RunAccounting):
        tasks = deque((f, ri) for f in range(oracle.n_frames) for ri in range(len(regions)))
        remaining = {f: len(regions) for f in range(oracle.n_frames)}
        n_total = len(tasks)

        def payload(f: int, ri: int) -> dict:
            rays = oracle.full_rays(f, region_pixels[ri])
            units = cfg.task_units(rays, False)
            acct.total_rays += rays
            acct.total_units += units
            p = {
                "frame": f,
                "region": ri,
                "units": units,
                "ws_mb": cfg.nofc_working_set_mb(regions[ri].n_pixels),
                "reply_bytes": cfg.result_bytes(regions[ri].n_pixels),
            }
            sim_tel.on_dispatch(p, f, regions[ri].n_pixels, rays, regions[ri].n_pixels, pvm.sim.now)
            return p

        n_done = 0
        stopped = set()
        for tid in worker_tids:
            if tasks:
                f, ri = tasks.popleft()
                yield Send(tid, cfg.request_bytes, payload(f, ri), tag="task")
            else:
                stopped.add(tid)
                yield Send(tid, cfg.msg_overhead_bytes, None, tag="stop")
        while n_done < n_total:
            msg = yield Recv(tag="done")
            n_done += 1
            sim_tel.on_done(msg.src, msg.payload, pvm.sim.now)
            f = msg.payload["frame"]
            remaining[f] -= 1
            if remaining[f] == 0:
                if cfg.write_frames:
                    yield WriteFile(frame_bytes)
                acct.frame_done_at[f] = pvm.sim.now
                sim_tel.frame_done(f)
            if tasks:
                nf, nri = tasks.popleft()
                yield Send(msg.src, cfg.request_bytes, payload(nf, nri), tag="task")
            else:
                stopped.add(msg.src)
                yield Send(msg.src, cfg.msg_overhead_bytes, None, tag="stop")
        for tid in worker_tids:
            if tid not in stopped:
                yield Send(tid, cfg.msg_overhead_bytes, None, tag="stop")

    pvm, acct = _spawn_farm(
        machines, sec_per_work_unit, thrash, master_factory, trace=trace, sim_tel=sim_tel,
        **ethernet_kwargs,
    )
    end = pvm.run()
    return _outcome("frame-division", oracle, pvm, acct, end, sim_tel=sim_tel)


# -- chained (coherence) strategies: shared master -----------------------------
@dataclass
class _Chain:
    """A coherence chain: frames [next, end) over one region, owned by a worker."""

    region_index: int  # index into the regions list (0 == whole frame)
    next_frame: int
    end_frame: int
    fresh: bool  # next dispatch is a chain start (full render)

    @property
    def remaining(self) -> int:
        return self.end_frame - self.next_frame


def _chained_master_factory(
    oracle: AnimationCostOracle,
    cfg: RenderFarmConfig,
    regions: list[PixelRegion] | None,
    initial_chains: list[_Chain],
    pending_chains: deque,
    use_coherence: bool,
    strategy_blocks_per_frame: int,
    sim_tel: _SimTelemetry | None = None,
):
    """Master for chain-structured strategies (sequence/frame/hybrid division).

    ``initial_chains`` are handed to workers in order; ``pending_chains``
    supplies further chains on demand; when both run dry, idle workers
    *steal* the tail half of the chain with the most remaining frames
    (the paper's adaptive subdivision), paying a fresh chain start.
    """
    region_pixels = (
        [r.pixels for r in regions] if regions is not None else None
    )
    frame_bytes_full = None  # bound in factory below

    def factory(pvm: VirtualPVM, worker_tids: list[int], acct: _RunAccounting):
        nonlocal frame_bytes_full
        frame_bytes_full = targa_nbytes(oracle.width, oracle.height)
        chains: dict[int, _Chain] = {}
        blocks_done_of_frame: dict[int, int] = {f: 0 for f in range(oracle.n_frames)}
        supply = deque(initial_chains)
        supply.extend(pending_chains)

        total_steps = sum(c.remaining for c in supply)
        n_done = 0

        def region_of(chain: _Chain) -> np.ndarray | None:
            return None if region_pixels is None else region_pixels[chain.region_index]

        def region_size(chain: _Chain) -> int:
            return oracle.n_pixels if regions is None else regions[chain.region_index].n_pixels

        def dispatch_payload(chain: _Chain) -> dict:
            f = chain.next_frame
            reg = region_of(chain)
            if use_coherence:
                if chain.fresh:
                    rays = oracle.full_rays(f, reg)
                    n_computed = region_size(chain)
                    acct.n_chain_starts += 1
                else:
                    rays, n_computed = oracle.coherent_rays(f, reg)
                units = cfg.task_units(
                    rays, True, chain_start=chain.fresh, region_pixels=region_size(chain)
                )
                ws = cfg.fc_working_set_mb(region_size(chain))
            else:
                rays = oracle.full_rays(f, reg)
                n_computed = region_size(chain)
                units = cfg.task_units(rays, False)
                ws = cfg.nofc_working_set_mb(region_size(chain))
            acct.total_rays += rays
            acct.total_units += units
            p = {
                "frame": f,
                "region": chain.region_index,
                "units": units,
                "ws_mb": ws,
                "reply_bytes": cfg.result_bytes(max(n_computed, 1)),
            }
            if sim_tel is not None:
                sim_tel.on_dispatch(p, f, region_size(chain), rays, n_computed, pvm.sim.now)
            chain.next_frame += 1
            chain.fresh = False
            return p

        def next_assignment(tid: int) -> _Chain | None:
            """Continue the worker's chain, take a fresh one, or steal."""
            c = chains.get(tid)
            if c is not None and c.remaining > 0:
                return c
            if supply:
                chains[tid] = supply.popleft()
                return chains[tid]
            # Adaptive subdivision: split the largest remaining chain.
            victim_tid, victim = None, None
            for otid, oc in chains.items():
                if otid == tid or oc.remaining < cfg.min_steal_frames:
                    continue
                if victim is None or oc.remaining > victim.remaining:
                    victim_tid, victim = otid, oc
            if victim is None:
                return None
            keep = max(1, victim.remaining // 2)
            mid = victim.next_frame + keep
            stolen = _Chain(
                region_index=victim.region_index,
                next_frame=mid,
                end_frame=victim.end_frame,
                fresh=True,
            )
            victim.end_frame = mid
            acct.n_steals += 1
            chains[tid] = stolen
            return stolen

        stopped: set[int] = set()
        for tid in worker_tids:
            c = next_assignment(tid)
            if c is None:
                stopped.add(tid)
                yield Send(tid, cfg.msg_overhead_bytes, None, tag="stop")
            else:
                yield Send(tid, cfg.request_bytes, dispatch_payload(c), tag="task")

        while n_done < total_steps:
            msg = yield Recv(tag="done")
            n_done += 1
            if sim_tel is not None:
                sim_tel.on_done(msg.src, msg.payload, pvm.sim.now)
            f = msg.payload["frame"]
            blocks_done_of_frame[f] += 1
            if blocks_done_of_frame[f] == strategy_blocks_per_frame:
                if cfg.write_frames:
                    yield WriteFile(frame_bytes_full)
                acct.frame_done_at[f] = pvm.sim.now
                if sim_tel is not None:
                    sim_tel.frame_done(f)
            c = next_assignment(msg.src)
            if c is None:
                stopped.add(msg.src)
                yield Send(msg.src, cfg.msg_overhead_bytes, None, tag="stop")
            else:
                yield Send(msg.src, cfg.request_bytes, dispatch_payload(c), tag="task")
        for tid in worker_tids:
            if tid not in stopped:
                yield Send(tid, cfg.msg_overhead_bytes, None, tag="stop")

    return factory


# -- Table 1 columns (6)/(7): sequence division + coherence ----------------------
def simulate_sequence_division_fc(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig | None = None,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    trace: bool = False,
    telemetry=None,
    **ethernet_kwargs,
) -> SimulationOutcome:
    """Whole-frame subsequences per processor, coherence inside each,
    adaptively subdivided to keep all processors busy.

    Initial ranges are weighted by *effective* speed — raw speed divided by
    the expected thrash factor of a full-frame coherence chain — the paper's
    "matching the computation of a subproblem to the most appropriate
    processor" on a heterogeneous NOW.
    """
    cfg = cfg or RenderFarmConfig()
    th = thrash if thrash is not None else ThrashModel(alpha=0.0)
    ws = cfg.fc_working_set_mb(oracle.n_pixels)
    weights = [m.speed / th.slowdown(ws, m.memory_mb) for m in machines]
    ranges = sequence_ranges(oracle.n_frames, len(machines), weights=weights)
    initial = [_Chain(0, a, b, True) for a, b in ranges]
    sim_tel = _SimTelemetry(telemetry, oracle, "sequence-division+fc")
    factory = _chained_master_factory(
        oracle, cfg, None, initial, deque(), use_coherence=True, strategy_blocks_per_frame=1,
        sim_tel=sim_tel,
    )
    pvm, acct = _spawn_farm(
        machines, sec_per_work_unit, thrash, factory, trace=trace, sim_tel=sim_tel,
        **ethernet_kwargs,
    )
    end = pvm.run()
    return _outcome("sequence-division+fc", oracle, pvm, acct, end, sim_tel=sim_tel)


def simulate_sequence_division_nofc(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig | None = None,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    trace: bool = False,
    telemetry=None,
    **ethernet_kwargs,
) -> SimulationOutcome:
    """Ablation: subsequence assignment without coherence."""
    cfg = cfg or RenderFarmConfig()
    ranges = sequence_ranges(
        oracle.n_frames, len(machines), weights=[m.speed for m in machines]
    )
    initial = [_Chain(0, a, b, True) for a, b in ranges]
    sim_tel = _SimTelemetry(telemetry, oracle, "sequence-division")
    factory = _chained_master_factory(
        oracle, cfg, None, initial, deque(), use_coherence=False, strategy_blocks_per_frame=1,
        sim_tel=sim_tel,
    )
    pvm, acct = _spawn_farm(
        machines, sec_per_work_unit, thrash, factory, trace=trace, sim_tel=sim_tel,
        **ethernet_kwargs,
    )
    end = pvm.run()
    return _outcome("sequence-division", oracle, pvm, acct, end, sim_tel=sim_tel)


# -- Table 1 columns (8)/(9): frame division + coherence -------------------------
def simulate_frame_division_fc(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig | None = None,
    regions: list[PixelRegion] | None = None,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    trace: bool = False,
    telemetry=None,
    **ethernet_kwargs,
) -> SimulationOutcome:
    """80x80 subareas computed "for the entire 45 frames, or until the
    sequence was adaptively subdivided": per-block coherence chains,
    demand-driven block assignment, time-axis stealing for stragglers."""
    cfg = cfg or RenderFarmConfig()
    regions = regions if regions is not None else default_blocks(oracle)
    chains = deque(
        _Chain(ri, 0, oracle.n_frames, True) for ri in range(len(regions))
    )
    sim_tel = _SimTelemetry(telemetry, oracle, "frame-division+fc")
    factory = _chained_master_factory(
        oracle,
        cfg,
        regions,
        [],
        chains,
        use_coherence=True,
        strategy_blocks_per_frame=len(regions),
        sim_tel=sim_tel,
    )
    pvm, acct = _spawn_farm(
        machines, sec_per_work_unit, thrash, factory, trace=trace, sim_tel=sim_tel,
        **ethernet_kwargs,
    )
    end = pvm.run()
    return _outcome("frame-division+fc", oracle, pvm, acct, end, sim_tel=sim_tel)


# -- ablation: hybrid (subarea x subsequence) -----------------------------------
def simulate_hybrid_fc(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig | None = None,
    regions: list[PixelRegion] | None = None,
    frames_per_chunk: int = 10,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    trace: bool = False,
    telemetry=None,
    **ethernet_kwargs,
) -> SimulationOutcome:
    """The paper's hybrid: "each processor computes pixels in a subarea of a
    frame for a subsequence of the entire animation"."""
    cfg = cfg or RenderFarmConfig()
    if frames_per_chunk < 1:
        raise ValueError("frames_per_chunk must be >= 1")
    regions = regions if regions is not None else default_blocks(oracle)
    chains = deque(
        _Chain(ri, a, min(a + frames_per_chunk, oracle.n_frames), True)
        for ri in range(len(regions))
        for a in range(0, oracle.n_frames, frames_per_chunk)
    )
    sim_tel = _SimTelemetry(telemetry, oracle, "hybrid+fc")
    factory = _chained_master_factory(
        oracle,
        cfg,
        regions,
        [],
        chains,
        use_coherence=True,
        strategy_blocks_per_frame=len(regions),
        sim_tel=sim_tel,
    )
    pvm, acct = _spawn_farm(
        machines, sec_per_work_unit, thrash, factory, trace=trace, sim_tel=sim_tel,
        **ethernet_kwargs,
    )
    end = pvm.run()
    return _outcome("hybrid+fc", oracle, pvm, acct, end, sim_tel=sim_tel)
