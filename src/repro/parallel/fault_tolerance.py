"""Fault-tolerant distributed rendering (an extension beyond the paper).

A NOW is built from workstations that people reboot, unplug and crash; a
render that loses a night's frames to one dead slave is not "an extremely
powerful rendering environment".  This module hardens the coherence
strategies against machine failures:

* the master hands out per-frame steps with a **deadline** and waits with
  a Recv timeout instead of blocking forever;
* an assignment that misses its deadline declares the worker dead; the
  orphaned chain is re-queued with ``fresh=True`` (its coherence state
  died with the machine — the paper's chain-restart cost, paid only on
  failure) and handed to the next live worker;
* duplicate completions (a worker that was merely slow, not dead) are
  detected by a completed-(block, frame) set and ignored.

Every frame of every block completes exactly once as long as at least one
worker survives.  Both of the paper's coherence decompositions are
covered: :func:`simulate_frame_division_fc_fault_tolerant` (per-block
chains over the whole animation) and
:func:`simulate_sequence_division_fc_fault_tolerant` (whole-frame chains
over contiguous subsequences).  The same deadline heuristic —
:func:`default_worker_timeout`, 3x the worst legitimate task — also
informs the *real* farm's supervisor (:mod:`repro.runtime.supervisor`),
which applies the identical factor to observed task durations.
"""

from __future__ import annotations

from collections import deque

from ..cluster import Machine, Recv, Send, ThrashModel, WriteFile
from ..imageio import targa_nbytes
from ..sched.core import Chain as _Chain
from ..sched.sim import (
    RunAccounting as _RunAccounting,
)
from ..sched.sim import (
    SimTelemetry as _SimTelemetry,
)
from ..sched.sim import (
    outcome_from as _outcome,
)
from ..sched.sim import (
    spawn_farm as _spawn_farm,
)
from .config import RenderFarmConfig
from .oracle import AnimationCostOracle
from .outcome import SimulationOutcome
from .partition import PixelRegion, sequence_ranges
from .strategies import default_blocks

__all__ = [
    "simulate_frame_division_fc_fault_tolerant",
    "simulate_sequence_division_fc_fault_tolerant",
    "default_worker_timeout",
]


def default_worker_timeout(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig,
    sec_per_work_unit: float,
    thrash: ThrashModel | None,
    regions: list[PixelRegion] | None = None,
) -> float:
    """A deadline safely above the slowest legitimate task.

    Worst case: a fresh chain start of the most expensive block (or the
    whole frame when ``regions`` is None — sequence division) on the
    slowest (and most memory-pressured) machine, tripled for scheduling
    slack.
    """
    th = thrash if thrash is not None else ThrashModel(alpha=0.0)
    region_list = [(None, oracle.n_pixels)] if regions is None else [
        (r.pixels, r.n_pixels) for r in regions
    ]
    worst_units = 0.0
    for pixels, n_pixels in region_list:
        for f in range(oracle.n_frames):
            rays = oracle.full_rays(f, pixels)
            units = cfg.task_units(rays, True, chain_start=True, region_pixels=n_pixels)
            worst_units = max(worst_units, units)
    worst_ws = cfg.fc_working_set_mb(max(n for _p, n in region_list))
    worst_rate = min(m.speed / th.slowdown(worst_ws, m.memory_mb) for m in machines)
    return 3.0 * worst_units * sec_per_work_unit / worst_rate + 1.0


def _ft_master_factory(
    oracle: AnimationCostOracle,
    cfg: RenderFarmConfig,
    regions: list[PixelRegion] | None,
    initial_chains: list[_Chain],
    worker_timeout: float,
    blocks_per_frame: int,
    sim_tel: _SimTelemetry | None = None,
):
    """Deadline-supervised master shared by both fault-tolerant strategies.

    ``regions`` is the block list for frame division or None for sequence
    division (chains then cover whole frames; region index 0 means "the
    frame").
    """
    region_pixels = None if regions is None else [r.pixels for r in regions]
    frame_bytes = targa_nbytes(oracle.width, oracle.height)
    total_steps = sum(c.remaining for c in initial_chains)

    def reg_of(ri: int):
        return None if region_pixels is None else region_pixels[ri]

    def size_of(ri: int) -> int:
        return oracle.n_pixels if regions is None else regions[ri].n_pixels

    def master_factory(pvm, worker_tids, acct: _RunAccounting):
        timeout = worker_timeout
        supply = deque(initial_chains)
        assigned: dict[int, tuple[_Chain, int, float]] = {}
        dead: set[int] = set()
        idle: set[int] = set()
        completed: set[tuple[int, int]] = set()
        blocks_done_of_frame = {f: 0 for f in range(oracle.n_frames)}

        def dispatch_payload(chain: _Chain) -> dict:
            f = chain.next_frame
            reg = reg_of(chain.region_index)
            if chain.fresh:
                rays = oracle.full_rays(f, reg)
                n_computed = size_of(chain.region_index)
                acct.n_chain_starts += 1
            else:
                rays, n_computed = oracle.coherent_rays(f, reg)
            units = cfg.task_units(
                rays, True, chain_start=chain.fresh,
                region_pixels=size_of(chain.region_index),
            )
            acct.total_rays += rays
            acct.total_units += units
            payload = {
                "frame": f,
                "region": chain.region_index,
                "units": units,
                "ws_mb": cfg.fc_working_set_mb(size_of(chain.region_index)),
                "reply_bytes": cfg.result_bytes(max(n_computed, 1)),
            }
            if sim_tel is not None:
                sim_tel.on_dispatch(
                    payload, f, size_of(chain.region_index), rays, n_computed, pvm.sim.now
                )
            chain.next_frame += 1
            chain.fresh = False
            return payload

        def next_chain_for(tid: int) -> _Chain | None:
            c_info = assigned.get(tid)
            if c_info is not None and c_info[0].remaining > 0:
                return c_info[0]
            if supply:
                return supply.popleft()
            return None

        def steal_tail() -> _Chain | None:
            """Split the largest not-yet-dispatched chain tail (the base
            strategy's adaptive subdivision, applied to live assignments)."""
            victim_tid, victim = None, None
            for tid, (chain, _f, _dl) in assigned.items():
                if tid in dead or chain.remaining < cfg.min_steal_frames:
                    continue
                if victim is None or chain.remaining > victim.remaining:
                    victim_tid, victim = tid, chain
            if victim is None:
                return None
            keep = max(1, victim.remaining // 2)
            mid = victim.next_frame + keep
            stolen = _Chain(victim.region_index, mid, victim.end_frame, True)
            victim.end_frame = mid
            acct.n_steals += 1
            return stolen

        def sweep_deadlines(now: float):
            for tid in list(assigned):
                chain, frame, deadline = assigned[tid]
                if now >= deadline and tid not in dead:
                    # Presumed dead: orphan the chain, restart it fresh at
                    # the frame that was in flight.
                    dead.add(tid)
                    acct.n_steals += 1  # recorded as recovery events
                    if sim_tel is not None:
                        sim_tel.recovery(
                            "deadline",
                            chain.region_index,
                            worker_timeout,
                            worker=sim_tel.names.get(tid, f"tid{tid}"),
                        )
                    chain.fresh = True
                    chain.next_frame = frame
                    supply.append(chain)
                    del assigned[tid]

        # -- prime every worker ------------------------------------------------
        for tid in worker_tids:
            c = next_chain_for(tid)
            if c is None:
                idle.add(tid)
                continue
            frame = c.next_frame
            yield Send(tid, cfg.request_bytes, dispatch_payload(c), tag="task")
            assigned[tid] = (c, frame, pvm.sim.now + timeout)

        while len(completed) < total_steps:
            msg = yield Recv(tag="done", timeout=timeout / 2.0)
            now = pvm.sim.now
            if msg is not None and msg.src not in dead:
                if sim_tel is not None:
                    sim_tel.on_done(msg.src, msg.payload, now)
                key = (msg.payload["region"], msg.payload["frame"])
                if key not in completed:
                    completed.add(key)
                    f = msg.payload["frame"]
                    blocks_done_of_frame[f] += 1
                    if blocks_done_of_frame[f] == blocks_per_frame:
                        if cfg.write_frames:
                            yield WriteFile(frame_bytes)
                        acct.frame_done_at[f] = pvm.sim.now
                        if sim_tel is not None:
                            sim_tel.frame_done(f)
                # The sender is alive and hungry regardless of duplication.
                info = assigned.pop(msg.src, None)
                c = info[0] if info is not None and info[0].remaining > 0 else None
                if c is None and supply:
                    c = supply.popleft()
                if c is not None:
                    frame = c.next_frame
                    yield Send(msg.src, cfg.request_bytes, dispatch_payload(c), tag="task")
                    assigned[msg.src] = (c, frame, pvm.sim.now + timeout)
                else:
                    idle.add(msg.src)
            sweep_deadlines(now)
            # Re-dispatch recovered chains to idle live workers; when the
            # supply is dry, steal tail halves from loaded chains instead.
            while idle:
                tid = idle.pop()
                if tid in dead:
                    continue
                c = supply.popleft() if supply else steal_tail()
                if c is None:
                    idle.add(tid)
                    break
                frame = c.next_frame
                yield Send(tid, cfg.request_bytes, dispatch_payload(c), tag="task")
                assigned[tid] = (c, frame, pvm.sim.now + timeout)
            if not assigned and not supply and len(completed) < total_steps:
                raise RuntimeError("all workers dead with work remaining")

        # Stop every worker, including ones we *declared* dead: a worker
        # that was merely slow (false positive) must not deadlock the
        # simulation, and messages to truly crashed tasks are dropped.
        for tid in worker_tids:
            yield Send(tid, cfg.msg_overhead_bytes, None, tag="stop")

    return master_factory


def simulate_frame_division_fc_fault_tolerant(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig | None = None,
    regions: list[PixelRegion] | None = None,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    failures: list[tuple[str, float]] | None = None,
    worker_timeout: float | None = None,
    trace: bool = False,
    telemetry=None,
    **ethernet_kwargs,
) -> SimulationOutcome:
    """Frame division + FC with deadline-based failure recovery.

    ``failures`` is a list of ``(machine_name, virtual_time)`` crashes to
    inject.  The master must still complete every (block, frame) exactly
    once; the returned outcome's ``n_steals`` counts adaptive events of
    both kinds (deadline recoveries and tail steals) and every fresh chain
    restart shows up in ``n_chain_starts`` and the ray total.
    """
    cfg = cfg or RenderFarmConfig()
    regions = regions if regions is not None else default_blocks(oracle)
    if worker_timeout is None:
        worker_timeout = default_worker_timeout(
            oracle, machines, cfg, sec_per_work_unit, thrash, regions
        )
    chains = [_Chain(ri, 0, oracle.n_frames, True) for ri in range(len(regions))]
    sim_tel = _SimTelemetry(telemetry, oracle, "frame-division+fc+ft")
    factory = _ft_master_factory(
        oracle, cfg, regions, chains, worker_timeout, blocks_per_frame=len(regions),
        sim_tel=sim_tel,
    )
    pvm, acct = _spawn_farm(
        machines, sec_per_work_unit, thrash, factory, trace=trace, sim_tel=sim_tel,
        **ethernet_kwargs,
    )
    for machine_name, at in failures or []:
        pvm.fail_machine(machine_name, at)
    end = pvm.run()
    return _outcome("frame-division+fc+ft", oracle, pvm, acct, end, sim_tel=sim_tel)


def simulate_sequence_division_fc_fault_tolerant(
    oracle: AnimationCostOracle,
    machines: list[Machine],
    cfg: RenderFarmConfig | None = None,
    sec_per_work_unit: float = 1e-4,
    thrash: ThrashModel | None = None,
    failures: list[tuple[str, float]] | None = None,
    worker_timeout: float | None = None,
    trace: bool = False,
    telemetry=None,
    **ethernet_kwargs,
) -> SimulationOutcome:
    """Sequence division + FC with the same deadline-based recovery.

    Initial subsequences are weighted by effective machine speed exactly
    like :func:`~repro.parallel.strategies.simulate_sequence_division_fc`;
    a machine death orphans its whole-frame chain, which restarts fresh
    (full-frame cost for one frame) on the next live worker.
    """
    cfg = cfg or RenderFarmConfig()
    th = thrash if thrash is not None else ThrashModel(alpha=0.0)
    if worker_timeout is None:
        worker_timeout = default_worker_timeout(
            oracle, machines, cfg, sec_per_work_unit, thrash, regions=None
        )
    ws = cfg.fc_working_set_mb(oracle.n_pixels)
    weights = [m.speed / th.slowdown(ws, m.memory_mb) for m in machines]
    ranges = sequence_ranges(oracle.n_frames, len(machines), weights=weights)
    chains = [_Chain(0, a, b, True) for a, b in ranges]
    sim_tel = _SimTelemetry(telemetry, oracle, "sequence-division+fc+ft")
    factory = _ft_master_factory(
        oracle, cfg, None, chains, worker_timeout, blocks_per_frame=1, sim_tel=sim_tel
    )
    pvm, acct = _spawn_farm(
        machines, sec_per_work_unit, thrash, factory, trace=trace, sim_tel=sim_tel,
        **ethernet_kwargs,
    )
    for machine_name, at in failures or []:
        pvm.fail_machine(machine_name, at)
    end = pvm.run()
    return _outcome("sequence-division+fc+ft", oracle, pvm, acct, end, sim_tel=sim_tel)
