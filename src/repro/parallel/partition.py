"""Data partitioning schemes (Section 3 / Figure 4 of the paper).

Two axes of decomposition:

* **Sequence division** (Figure 4a) — the *time* axis: each processor gets a
  contiguous subsequence of whole frames, preserving coherence inside the
  subsequence.
* **Frame division** (Figure 4b) — the *image* axis: each processor gets a
  subarea of every frame for the entire animation (the paper uses 80x80
  pixel blocks), preserving coherence inside the subarea and cutting
  per-node memory ("memory requirements are directly proportional to the
  size of the image area").
* **Hybrid division** — both axes at once ("each processor computes pixels
  in a subarea of a frame for a subsequence of the entire animation").
* **Pixel division** — the degenerate extreme the paper warns about ("we
  could assign each processor a single pixel ... the overhead of message
  passing ... would result in inefficiency").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PixelRegion",
    "block_regions",
    "default_block_layout",
    "strip_regions",
    "pixel_regions",
    "sequence_ranges",
    "hybrid_tasks",
    "region_grid_shape",
]


@dataclass(frozen=True)
class PixelRegion:
    """A rectangular subarea of the frame.

    ``pixels`` are the flat row-major framebuffer indices of the region;
    ``label`` identifies it in traces and Figure-4 style layouts.
    """

    x0: int
    y0: int
    x1: int  # exclusive
    y1: int  # exclusive
    width: int  # frame width (for flat indexing)
    label: str = ""

    def __post_init__(self) -> None:
        if not (0 <= self.x0 < self.x1) or not (0 <= self.y0 < self.y1):
            raise ValueError("degenerate region")
        if self.x1 > self.width:
            raise ValueError("region exceeds frame width")

    @property
    def n_pixels(self) -> int:
        return (self.x1 - self.x0) * (self.y1 - self.y0)

    @property
    def pixels(self) -> np.ndarray:
        xs = np.arange(self.x0, self.x1, dtype=np.int64)
        ys = np.arange(self.y0, self.y1, dtype=np.int64)
        gy, gx = np.meshgrid(ys, xs, indexing="ij")
        return (gy * self.width + gx).ravel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PixelRegion({self.label or 'region'} [{self.x0}:{self.x1})x[{self.y0}:{self.y1}))"


def block_regions(width: int, height: int, block_w: int = 80, block_h: int = 80) -> list[PixelRegion]:
    """Tile the frame into ``block_w x block_h`` blocks (edge blocks clipped).

    The paper's frame-division experiments use 80x80 blocks of a 320x240
    frame — "now we have more subareas than processors, so whenever a
    processor finishes its sequence, it can request another one".
    """
    if block_w < 1 or block_h < 1:
        raise ValueError("block dimensions must be positive")
    regions = []
    for y0 in range(0, height, block_h):
        for x0 in range(0, width, block_w):
            regions.append(
                PixelRegion(
                    x0=x0,
                    y0=y0,
                    x1=min(x0 + block_w, width),
                    y1=min(y0 + block_h, height),
                    width=width,
                    label=f"block({x0},{y0})",
                )
            )
    return regions


def default_block_layout(
    width: int, height: int, block_w: int | None = None, block_h: int | None = None
) -> list[PixelRegion]:
    """The canonical farm/simulator block tiling.

    The paper renders 320x240 frames in 80x80 blocks — a 4x3 grid; scaled
    to any resolution that is ``width//4 x height//3`` blocks.  Both the
    simulator's ``default_blocks`` and the real farm's frame-division
    layout call this, so the two systems always partition identically.
    """
    bw = block_w or max(1, width // 4)
    bh = block_h or max(1, height // 3)
    return block_regions(width, height, block_w=bw, block_h=bh)


def strip_regions(width: int, height: int, n: int) -> list[PixelRegion]:
    """Split the frame into ``n`` horizontal strips of near-equal height."""
    if not (1 <= n <= height):
        raise ValueError("need 1 <= n <= height strips")
    bounds = np.linspace(0, height, n + 1).astype(int)
    return [
        PixelRegion(0, int(bounds[i]), width, int(bounds[i + 1]), width, label=f"strip{i}")
        for i in range(n)
        if bounds[i + 1] > bounds[i]
    ]


def pixel_regions(width: int, height: int) -> list[PixelRegion]:
    """One region per pixel — the message-passing-overhead extreme."""
    return [
        PixelRegion(x, y, x + 1, y + 1, width, label=f"px({x},{y})")
        for y in range(height)
        for x in range(width)
    ]


def sequence_ranges(n_frames: int, n_parts: int, weights: list[float] | None = None) -> list[tuple[int, int]]:
    """Contiguous half-open frame ranges, one per processor (Figure 4a).

    ``weights`` (e.g. machine speeds) skew the initial split so a faster
    processor starts with proportionally more frames.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    n_parts = min(n_parts, n_frames)
    if weights is None:
        weights = [1.0] * n_parts
    if len(weights) < n_parts or any(w <= 0 for w in weights[:n_parts]):
        raise ValueError("need a positive weight per part")
    w = np.asarray(weights[:n_parts], dtype=np.float64)
    cuts = np.round(np.cumsum(w) / w.sum() * n_frames).astype(int)
    ranges: list[tuple[int, int]] = []
    start = 0
    for c in cuts:
        stop = max(int(c), start + 1) if start < n_frames else start
        stop = min(stop, n_frames)
        if stop > start:
            ranges.append((start, stop))
        start = stop
    if ranges:
        last_start = ranges[-1][0]
        ranges[-1] = (last_start, n_frames)
    return ranges


def hybrid_tasks(
    width: int, height: int, n_frames: int, block_w: int, block_h: int, frames_per_chunk: int
) -> list[tuple[PixelRegion, tuple[int, int]]]:
    """The hybrid scheme: (subarea, subsequence) task pairs."""
    if frames_per_chunk < 1:
        raise ValueError("frames_per_chunk must be >= 1")
    regions = block_regions(width, height, block_w, block_h)
    chunks = [
        (f, min(f + frames_per_chunk, n_frames)) for f in range(0, n_frames, frames_per_chunk)
    ]
    return [(r, c) for r in regions for c in chunks]


def region_grid_shape(regions: list[PixelRegion]) -> tuple[int, int]:
    """(columns, rows) of a rectangular tiling (for Figure-4 layouts)."""
    xs = sorted({r.x0 for r in regions})
    ys = sorted({r.y0 for r in regions})
    return len(xs), len(ys)
