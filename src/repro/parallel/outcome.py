"""Simulation outcomes: the quantities Table 1 reports, per strategy."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SimulationOutcome", "format_hms", "load_imbalance"]


def format_hms(seconds: float) -> str:
    """Seconds -> ``h:mm:ss`` (the paper reports times this way)."""
    if seconds < 0:
        raise ValueError("negative duration")
    total = int(round(seconds))
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}"


def load_imbalance(busy_seconds: dict[str, float]) -> float:
    """max/mean busy-time ratio across workers (1.0 = perfectly balanced)."""
    vals = np.asarray(list(busy_seconds.values()), dtype=np.float64)
    if vals.size == 0 or vals.mean() == 0:
        return 1.0
    return float(vals.max() / vals.mean())


@dataclass
class SimulationOutcome:
    """Everything measured from one simulated rendering run."""

    strategy: str
    n_frames: int
    total_time: float
    first_frame_time: float | None
    frame_completion_times: dict[int, float]
    total_rays: int
    total_units: float
    machine_busy_seconds: dict[str, float] = field(default_factory=dict)
    ethernet_busy_seconds: float = 0.0
    n_messages: int = 0
    bytes_on_wire: int = 0
    n_chain_starts: int = 0
    n_steals: int = 0
    #: Text Gantt chart of the run (populated when the strategy was called
    #: with ``trace=True``); see repro.cluster.render_timeline.
    timeline: str | None = None

    @property
    def avg_frame_time(self) -> float:
        return self.total_time / self.n_frames if self.n_frames else 0.0

    def speedup_vs(self, baseline: "SimulationOutcome") -> float:
        """Wall-clock speedup relative to a baseline run (Table 1's ratio columns)."""
        if self.total_time <= 0:
            raise ValueError("degenerate run time")
        return baseline.total_time / self.total_time

    @property
    def load_imbalance(self) -> float:
        return load_imbalance(self.machine_busy_seconds)

    def summary(self) -> dict[str, object]:
        return {
            "strategy": self.strategy,
            "total_time": format_hms(self.total_time),
            "total_seconds": round(self.total_time, 2),
            "avg_frame": format_hms(self.avg_frame_time),
            "first_frame": format_hms(self.first_frame_time)
            if self.first_frame_time is not None
            else "-",
            "rays": self.total_rays,
            "messages": self.n_messages,
            "chain_starts": self.n_chain_starts,
            "steals": self.n_steals,
            "imbalance": round(self.load_imbalance, 3),
        }
