"""Parallel rendering: partitioning, cost oracle, simulated strategies."""

from .config import RenderFarmConfig
from .oracle import AnimationCostOracle, build_oracle
from .outcome import SimulationOutcome, format_hms, load_imbalance
from .partition import (
    PixelRegion,
    block_regions,
    hybrid_tasks,
    pixel_regions,
    region_grid_shape,
    sequence_ranges,
    strip_regions,
)

# strategies / fault_tolerance sit on top of repro.sched, which itself
# builds on this package's config/oracle/partition layers; loading them
# lazily keeps `import repro.parallel` (or any repro.sched entry point)
# from chasing that loop back into a partially initialized module.
_LAZY = {
    "default_blocks": "strategies",
    "simulate_frame_division_fc": "strategies",
    "simulate_frame_division_nofc": "strategies",
    "simulate_hybrid_fc": "strategies",
    "simulate_sequence_division_fc": "strategies",
    "simulate_sequence_division_nofc": "strategies",
    "simulate_single_processor": "strategies",
    "default_worker_timeout": "fault_tolerance",
    "simulate_frame_division_fc_fault_tolerant": "fault_tolerance",
    "simulate_sequence_division_fc_fault_tolerant": "fault_tolerance",
}


def __getattr__(name: str):
    modname = _LAZY.get(name)
    if modname is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{modname}", __name__), name)

__all__ = [
    "AnimationCostOracle",
    "PixelRegion",
    "RenderFarmConfig",
    "SimulationOutcome",
    "block_regions",
    "build_oracle",
    "default_blocks",
    "default_worker_timeout",
    "format_hms",
    "simulate_frame_division_fc_fault_tolerant",
    "hybrid_tasks",
    "load_imbalance",
    "pixel_regions",
    "region_grid_shape",
    "sequence_ranges",
    "simulate_frame_division_fc",
    "simulate_frame_division_nofc",
    "simulate_hybrid_fc",
    "simulate_sequence_division_fc",
    "simulate_sequence_division_fc_fault_tolerant",
    "simulate_sequence_division_nofc",
    "simulate_single_processor",
    "strip_regions",
]
