"""Parallel rendering: partitioning, cost oracle, simulated strategies."""

from .config import RenderFarmConfig
from .fault_tolerance import (
    default_worker_timeout,
    simulate_frame_division_fc_fault_tolerant,
    simulate_sequence_division_fc_fault_tolerant,
)
from .oracle import AnimationCostOracle, build_oracle
from .outcome import SimulationOutcome, format_hms, load_imbalance
from .partition import (
    PixelRegion,
    block_regions,
    hybrid_tasks,
    pixel_regions,
    region_grid_shape,
    sequence_ranges,
    strip_regions,
)
from .strategies import (
    default_blocks,
    simulate_frame_division_fc,
    simulate_frame_division_nofc,
    simulate_hybrid_fc,
    simulate_sequence_division_fc,
    simulate_sequence_division_nofc,
    simulate_single_processor,
)

__all__ = [
    "AnimationCostOracle",
    "PixelRegion",
    "RenderFarmConfig",
    "SimulationOutcome",
    "block_regions",
    "build_oracle",
    "default_blocks",
    "default_worker_timeout",
    "format_hms",
    "simulate_frame_division_fc_fault_tolerant",
    "hybrid_tasks",
    "load_imbalance",
    "pixel_regions",
    "region_grid_shape",
    "sequence_ranges",
    "simulate_frame_division_fc",
    "simulate_frame_division_nofc",
    "simulate_hybrid_fc",
    "simulate_sequence_division_fc",
    "simulate_sequence_division_fc_fault_tolerant",
    "simulate_sequence_division_nofc",
    "simulate_single_processor",
    "strip_regions",
]
