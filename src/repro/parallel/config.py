"""Render-farm modelling parameters and calibration constants.

Everything the cluster simulation needs beyond measured ray counts lives
here, with defaults calibrated against Table 1's single-processor columns:

* ``fc_overhead`` — fractional extra work per ray for DDA path marking and
  pixel-list maintenance.  The paper reports the frame-coherence overhead as
  "a reasonable 12% of the total generation time" on the first frame.
* ``fc_mem_bytes_per_pixel`` — resident bytes of coherence state per owned
  pixel (dominated by the voxel pixel lists).  At the paper's 320x240 this
  puts a full-frame chain slightly above the 64 MB of the fastest machine
  and far above the 32 MB machines — the paper's "increased aggregate
  memory of multiple machines" argument for why distributed FC runs beat
  the multiplicative expectation.
* message sizes — a worker returns only the pixels it computed (color +
  pixel index), the master writes whole 24-bit Targa frames.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RenderFarmConfig"]


@dataclass(frozen=True)
class RenderFarmConfig:
    """Knobs of the NOW render-farm model (see module docstring)."""

    # --- work model -------------------------------------------------------
    fc_overhead: float = 0.12
    frame_fixed_units: float = 0.0
    chain_start_fixed_units: float = 0.0
    #: Per-frame coherence maintenance cost, in work units per owned pixel
    #: (pixel-list deletion/insertion, change detection, framebuffer
    #: carry-over).  Charged on every coherent step over a region.
    fc_frame_units_per_pixel: float = 0.015

    # --- message model -------------------------------------------------------
    bytes_per_result_pixel: int = 7  # 3 bytes color + 4 bytes pixel index
    msg_overhead_bytes: int = 128
    request_bytes: int = 64

    # --- memory model ----------------------------------------------------------
    fc_mem_base_mb: float = 8.0
    fc_mem_bytes_per_pixel: float = 850.0
    nofc_mem_base_mb: float = 6.0
    nofc_mem_bytes_per_pixel: float = 60.0

    # --- output model -----------------------------------------------------------
    write_frames: bool = True

    # --- adaptive subdivision ------------------------------------------------
    min_steal_frames: int = 2

    # --- resolution scaling ------------------------------------------------------
    #: Multiplier applied to pixel counts in the memory and message models.
    #: When the cost oracle was measured at a reduced resolution, setting
    #: this to (paper_pixels / oracle_pixels) makes working sets and result
    #: messages the size they would be at the paper's 320x240.
    pixel_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.fc_overhead < 0:
            raise ValueError("fc_overhead must be >= 0")
        if self.min_steal_frames < 1:
            raise ValueError("min_steal_frames must be >= 1")
        if self.pixel_scale <= 0:
            raise ValueError("pixel_scale must be positive")
        for name in (
            "frame_fixed_units",
            "chain_start_fixed_units",
            "fc_mem_base_mb",
            "fc_mem_bytes_per_pixel",
            "nofc_mem_base_mb",
            "nofc_mem_bytes_per_pixel",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    # --- derived quantities -----------------------------------------------
    def fc_working_set_mb(self, n_pixels: int) -> float:
        """Resident size of a frame-coherence chain over ``n_pixels``."""
        eff = n_pixels * self.pixel_scale
        return self.fc_mem_base_mb + eff * self.fc_mem_bytes_per_pixel / 1e6

    def nofc_working_set_mb(self, n_pixels: int) -> float:
        """Resident size of a plain render of ``n_pixels``."""
        eff = n_pixels * self.pixel_scale
        return self.nofc_mem_base_mb + eff * self.nofc_mem_bytes_per_pixel / 1e6

    def result_bytes(self, n_pixels_computed: int) -> int:
        eff = int(round(n_pixels_computed * self.pixel_scale))
        return self.msg_overhead_bytes + eff * self.bytes_per_result_pixel

    def task_units(
        self,
        rays: int,
        coherent_bookkeeping: bool,
        chain_start: bool = False,
        region_pixels: int = 0,
    ) -> float:
        """Work units charged for a task that traces ``rays`` rays over a
        region of ``region_pixels`` owned pixels."""
        units = float(rays)
        if coherent_bookkeeping:
            units *= 1.0 + self.fc_overhead
            units += self.fc_frame_units_per_pixel * region_pixels * self.pixel_scale
            if chain_start:
                units += self.chain_start_fixed_units
        units += self.frame_fixed_units
        return units
